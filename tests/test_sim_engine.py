"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(2.0, out.append, "b")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(3.0, out.append, "c")
        sim.run()
        assert out == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_priority_orders_simultaneous_events(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "late", priority=1)
        sim.schedule(1.0, out.append, "early", priority=-1)
        sim.schedule(1.0, out.append, "mid")
        sim.run()
        assert out == ["early", "mid", "late"]

    def test_fifo_among_equal_time_and_priority(self):
        sim = Simulator()
        out = []
        for name in "abc":
            sim.schedule(1.0, out.append, name)
        sim.run()
        assert out == ["a", "b", "c"]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(4.0, lambda: None)

    def test_schedule_in(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: sim.schedule_in(0.5, lambda: out.append(sim.now)))
        sim.run()
        assert out == [1.5]
        with pytest.raises(SimulationError):
            sim.schedule_in(-1, lambda: None)


class TestRun:
    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, 1)
        sim.schedule(5.0, out.append, 5)
        sim.run(until=3.0)
        assert out == [1]
        assert sim.now == 3.0
        sim.run()
        assert out == [1, 5]

    def test_max_events(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule(float(i), out.append, i)
        sim.run(max_events=3)
        assert out == [0, 1, 2]

    def test_callbacks_can_chain(self):
        sim = Simulator()
        out = []

        def tick(n):
            out.append(n)
            if n < 5:
                sim.schedule_in(1.0, tick, n + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        assert out == [0, 1, 2, 3, 4, 5]
        assert sim.events_processed == 6

    def test_not_reentrant(self):
        sim = Simulator()

        def bad():
            sim.run()

        sim.schedule(0.0, bad)
        with pytest.raises(SimulationError):
            sim.run()


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        out = []
        ev = sim.schedule(1.0, out.append, "x")
        sim.schedule(2.0, out.append, "y")
        ev.cancel()
        sim.run()
        assert out == ["y"]

    def test_cancel_inside_callback(self):
        sim = Simulator()
        out = []
        later = sim.schedule(2.0, out.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert out == []

    def test_step(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, 1)
        sim.schedule(2.0, out.append, 2)
        ev = sim.step()
        assert out == [1]
        assert ev.time == 1.0
        sim.step()
        assert sim.step() is None


def _queued_entries(sim):
    """Engine-agnostic view of the queued (live + tombstone) entries."""
    if sim._cal is not None:
        return list(sim._cal.entries())
    return list(sim._queue)


class TestLazyCompaction:
    """Bulk cancellation must shrink the queue, not just tombstone it."""

    def test_bulk_cancel_compacts_the_queue(self):
        sim = Simulator()
        keep = sim.schedule(10.0, lambda: None)
        doomed = [sim.schedule(1.0 + i * 1e-6, lambda: None)
                  for i in range(1000)]
        assert sim.pending == 1001
        for ev in doomed:
            ev.cancel()
        # The tombstones were reclaimed eagerly: the internal queue holds
        # only the live event, and pending agrees.
        assert len(_queued_entries(sim)) < Simulator.COMPACT_MIN_CANCELLED
        assert sim.pending == 1
        assert any(entry[3] is keep for entry in _queued_entries(sim))

    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
        events[0].cancel()
        events[3].cancel()
        assert sim.pending == 6  # below the floor: no compaction yet
        assert len(_queued_entries(sim)) == 8

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending == 1

    def test_cancel_after_firing_is_a_noop(self):
        sim = Simulator()
        out = []
        ev = sim.schedule(1.0, out.append, "x")
        sim.schedule(2.0, out.append, "y")
        sim.step()
        ev.cancel()  # already fired: must not corrupt the live count
        assert out == ["x"]
        assert sim.pending == 1
        sim.run()
        assert out == ["x", "y"]

    def test_compaction_preserves_run_order(self):
        sim = Simulator()
        out = []
        doomed = [sim.schedule(1.0 + i * 1e-6, out.append, "bad")
                  for i in range(200)]
        survivors = [5.0, 3.0, 4.0]
        for t in survivors:
            sim.schedule(t, out.append, t)
        for ev in doomed:
            ev.cancel()
        sim.run()
        assert out == sorted(survivors)


class TestAdvanceTo:
    """The bounded inline clock advance behind the link's burst-drain."""

    def run_with(self, body, until=None):
        """Run `body` from inside a callback so _inline_ok is active."""
        sim = Simulator()
        out = []
        sim.schedule(1.0, body, sim, out)
        sim.run(until=until)
        return sim, out

    def test_advance_moves_clock_and_counts(self):
        def body(sim, out):
            sim.advance_to(1.5)
            out.append(sim.now)
            sim.advance_to(1.75)
            out.append(sim.now)

        sim, out = self.run_with(body)
        assert out == [1.5, 1.75]
        assert sim.events_elided == 2

    def test_advance_backwards_rejected(self):
        def body(sim, out):
            with pytest.raises(SimulationError):
                sim.advance_to(0.5)

        self.run_with(body)

    def test_advance_cannot_overtake_pending_event(self):
        def body(sim, out):
            sim.schedule(2.0, out.append, "pending")
            sim.advance_to(2.0)  # exactly at the event is fine
            with pytest.raises(SimulationError):
                sim.advance_to(2.5)

        sim, out = self.run_with(body)
        assert out == ["pending"]

    def test_advance_cannot_overtake_run_horizon(self):
        def body(sim, out):
            sim.advance_to(3.0)  # exactly at the horizon is fine
            with pytest.raises(SimulationError):
                sim.advance_to(3.1)

        sim, _out = self.run_with(body, until=3.0)
        assert sim.now == 3.0

    def test_advance_ignores_cancelled_head(self):
        def body(sim, out):
            doomed = sim.schedule(2.0, out.append, "doomed")
            sim.schedule(4.0, out.append, "live")
            doomed.cancel()
            sim.advance_to(3.0)  # past the tombstone, before the live event
            out.append(sim.now)

        sim, out = self.run_with(body)
        assert out == [3.0, "live"]

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        doomed = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 1.0
        doomed.cancel()
        assert sim.peek_time() == 2.0

    def test_run_horizon_cleared_after_run(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim._run_until is None
        assert sim._inline_ok is False
