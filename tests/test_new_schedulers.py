"""Tests for VirtualClock, WRR, FFQ, and the WF2Q+ ablation variants."""

from fractions import Fraction as Fr

import pytest

from repro.core.ablation import NoEligibilityWF2QPlus, NoFloorWF2QPlus
from repro.core.ffq import FFQScheduler
from repro.core.packet import Packet
from repro.core.virtual_clock import VirtualClockScheduler
from repro.core.wrr import WRRScheduler
from repro.errors import ConfigurationError

from tests.conftest import assert_fifo_per_flow, assert_no_overlap


def fill(s, per_flow, length=Fr(1), now=Fr(0)):
    for fid, n in per_flow.items():
        for k in range(n):
            s.enqueue(Packet(fid, length, seqno=k), now=now)


class TestVirtualClock:
    def make(self):
        s = VirtualClockScheduler(Fr(4))
        s.add_flow("a", 3)
        s.add_flow("b", 1)
        return s

    def test_clock_paces_at_guaranteed_rate(self):
        s = self.make()
        s.enqueue(Packet("a", Fr(3)), now=Fr(0))
        assert s.flow_clock("a") == Fr(1)  # L / r_a = 3/3
        s.enqueue(Packet("a", Fr(3)), now=Fr(0))
        assert s.flow_clock("a") == Fr(2)

    def test_clock_floored_at_real_time(self):
        s = self.make()
        s.enqueue(Packet("a", Fr(3)), now=Fr(0))
        s.drain()
        # Flow idles; at t=10 the clock restarts from real time.
        s.enqueue(Packet("a", Fr(3)), now=Fr(10))
        assert s.flow_clock("a") == Fr(11)

    def test_order_by_tag(self):
        s = self.make()
        fill(s, {"a": 4, "b": 2})
        # a tags: 1/3, 2/3, 1, 4/3; b tags: 1, 2.
        order = [r.flow_id for r in s.drain()]
        assert order == ["a", "a", "a", "b", "a", "b"]

    def test_punishes_flow_after_idle_burst_credit(self):
        """The famous Virtual Clock pathology: a flow that overdrew while
        alone keeps a future clock and is then starved by a newcomer."""
        s = self.make()
        # b alone sends 8 packets back-to-back (served at full rate 4,
        # far above its guarantee 1): clock ends at 8.
        for _ in range(8):
            s.enqueue(Packet("b", Fr(1)), now=Fr(0))
        records = [s.dequeue() for _ in range(8)]
        assert all(r.flow_id == "b" for r in records)
        assert s.flow_clock("b") == Fr(8)
        # At t=2, both send; b's tags start at 8, a's near real time.
        fill(s, {"a": 6, "b": 6}, now=Fr(2))
        order = [r.flow_id for r in s.drain()]
        assert order[:6] == ["a"] * 6  # b starved while "paying back"

    def test_fifo_no_overlap(self):
        s = self.make()
        fill(s, {"a": 5, "b": 5})
        records = s.drain()
        assert_fifo_per_flow(records)
        assert_no_overlap(records, Fr(4))

    def test_record_tags(self):
        s = self.make()
        s.enqueue(Packet("a", Fr(3)), now=Fr(0))
        rec = s.dequeue()
        assert rec.virtual_start == Fr(0)
        assert rec.virtual_finish == Fr(1)


class TestWRR:
    def make(self):
        s = WRRScheduler(Fr(1))
        s.add_flow("a", 2)
        s.add_flow("b", 1)
        return s

    def test_visit_budgets(self):
        s = self.make()
        fill(s, {"a": 6, "b": 6})
        order = [r.flow_id for r in s.drain()][:9]
        assert order == ["a", "a", "b"] * 3

    def test_fractional_share_rounds_up(self):
        s = WRRScheduler(Fr(1))
        s.add_flow("a", 2.5)
        s.add_flow("b", 1)
        fill(s, {"a": 6, "b": 2})
        order = [r.flow_id for r in s.drain()][:4]
        assert order == ["a", "a", "a", "b"]  # ceil(2.5) = 3 per visit

    def test_skips_empty_flows(self):
        s = self.make()
        fill(s, {"b": 3})
        assert [r.flow_id for r in s.drain()] == ["b"] * 3

    def test_flow_drain_mid_visit(self):
        s = self.make()
        fill(s, {"a": 1, "b": 2})
        order = [r.flow_id for r in s.drain()]
        assert order == ["a", "b", "b"]

    def test_min_share_recomputed_on_removal(self):
        s = WRRScheduler(Fr(1))
        s.add_flow("small", 1)
        s.add_flow("big", 4)
        s.remove_flow("small")
        fill(s, {"big": 2})
        assert len(s.drain()) == 2
        assert s._min_share == 4

    def test_fifo_per_flow(self):
        s = self.make()
        fill(s, {"a": 8, "b": 8})
        assert_fifo_per_flow(s.drain())


class TestFFQ:
    def make(self, mtu=Fr(1)):
        s = FFQScheduler(Fr(4), mtu=mtu)
        s.add_flow("a", 3)
        s.add_flow("b", 1)
        return s

    def test_bad_mtu(self):
        with pytest.raises(ConfigurationError):
            FFQScheduler(1, mtu=0)

    def test_frame_size_uses_slowest_flow(self):
        s = self.make()
        # min guaranteed rate = 1 (flow b) -> frame = mtu / 1 = 1.
        assert s.frame_size() == Fr(1)

    def test_share_split(self):
        s = self.make()
        fill(s, {"a": 30, "b": 30})
        served = {"a": 0, "b": 0}
        for rec in s.drain():
            if rec.finish_time <= Fr(8):
                served[rec.flow_id] += 1
        assert abs(served["a"] - 3 * served["b"]) <= 4

    def test_potential_advances_and_recalibrates(self):
        s = self.make()
        fill(s, {"a": 8})
        s.drain()
        assert s.potential() > 0

    def test_busy_period_reset(self):
        s = self.make()
        fill(s, {"a": 2})
        s.drain()
        s.enqueue(Packet("a", Fr(1)), now=Fr(50))
        assert s.potential() == 0
        assert s._flows["a"].start_tag == 0

    def test_fifo_no_overlap(self):
        s = self.make()
        fill(s, {"a": 6, "b": 6})
        records = s.drain()
        assert_fifo_per_flow(records)
        assert_no_overlap(records, Fr(4))


class TestAblationVariants:
    def fig2(self, cls):
        s = cls(Fr(1))
        s.add_flow(1, Fr(1, 2))
        for j in range(2, 12):
            s.add_flow(j, Fr(1, 20))
        for _ in range(11):
            s.enqueue(Packet(1, Fr(1)), now=Fr(0))
        for j in range(2, 12):
            s.enqueue(Packet(j, Fr(1)), now=Fr(0))
        return [r.flow_id for r in s.drain()]

    def test_no_eligibility_reintroduces_the_burst(self):
        """Dropping SEFF brings back WFQ's Figure 2 pathology even with
        the WF2Q+ virtual time."""
        order = self.fig2(NoEligibilityWF2QPlus)
        # Session 1 monopolises the start (at least 8 of the first 10).
        assert sum(1 for f in order[:10] if f == 1) >= 8

    def test_full_wf2qplus_interleaves(self):
        from repro.core.wf2qplus import WF2QPlusScheduler
        order = self.fig2(WF2QPlusScheduler)
        assert order[0::2] == [1] * 11

    def test_no_floor_still_work_conserving(self):
        s = NoFloorWF2QPlus(Fr(1))
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        for k in range(10):
            s.enqueue(Packet("a", Fr(1), seqno=k), now=Fr(0))
        records = s.drain()
        assert len(records) == 10
        assert records[-1].finish_time == Fr(10)  # no idling

    def test_no_floor_changes_newly_backlogged_start(self):
        """Without the min-S arm, V lags behind a lone session's tags, so
        a newcomer starts with a smaller tag than it would under WF2Q+."""
        def newcomer_start(cls):
            s = cls(Fr(2))
            s.add_flow("a", 1)
            s.add_flow("b", 1)
            for _ in range(8):
                s.enqueue(Packet("a", Fr(2)), now=Fr(0))
            for _ in range(4):
                s.dequeue()
            s.enqueue(Packet("b", Fr(2)), now=s.busy_until)
            return s._flows["b"].start_tag

        from repro.core.wf2qplus import WF2QPlusScheduler
        assert newcomer_start(NoFloorWF2QPlus) <= newcomer_start(WF2QPlusScheduler)
