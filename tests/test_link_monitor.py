"""Tests for the Link component and the measurement probes."""

import pytest

from repro.core.fifo import FIFOScheduler
from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import DelayMonitor, ServiceTrace


def setup(rate=1000.0, scheduler_cls=FIFOScheduler, **link_kw):
    sim = Simulator()
    sched = scheduler_cls(rate)
    sched.add_flow("a", 1)
    sched.add_flow("b", 1)
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace, **link_kw)
    return sim, sched, link, trace


class TestLink:
    def test_transmission_pacing(self):
        sim, _sched, link, trace = setup(rate=1000.0)
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.schedule(0.0, lambda: link.send(Packet("a", 200)))
        sim.run()
        f = [r.finish_time for r in trace.services]
        assert f == [pytest.approx(0.1), pytest.approx(0.3)]
        assert link.bits_sent == 300
        assert link.packets_sent == 2

    def test_work_conserving_after_idle(self):
        sim, _sched, link, trace = setup()
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.schedule(5.0, lambda: link.send(Packet("a", 100)))
        sim.run()
        starts = [r.start_time for r in trace.services]
        assert starts == [0.0, 5.0]

    def test_receiver_called_on_delivery(self):
        sim, _sched, link, _trace = setup()
        got = []
        link.receiver = lambda p, t: got.append((p.flow_id, t))
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.run()
        assert got == [("a", pytest.approx(0.1))]

    def test_propagation_delay(self):
        sim, _sched, link, _trace = setup(propagation_delay=0.5)
        got = []
        link.receiver = lambda p, t: got.append(t)
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.run()
        assert got == [pytest.approx(0.6)]

    def test_negative_propagation_rejected(self):
        sim = Simulator()
        sched = FIFOScheduler(1.0)
        with pytest.raises(SimulationError):
            Link(sim, sched, propagation_delay=-1)

    def test_drops_counted_and_callbacked(self):
        sim, sched, link, trace = setup()
        sched.set_buffer_limit("a", 1)
        dropped = []
        link.drop_callback = lambda p, t: dropped.append(p)
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.run()
        # First packet enters service immediately, freeing the buffer slot;
        # the second waits; the third finds the buffer full.
        assert link.packets_dropped == 1
        assert len(dropped) == 1
        assert len(trace.arrivals) == 2

    def test_utilization(self):
        sim, _sched, link, _trace = setup(rate=1000.0)
        sim.schedule(0.0, lambda: link.send(Packet("a", 500)))
        sim.run(until=1.0)
        assert link.utilization == pytest.approx(0.5)

    def test_utilization_across_rate_change(self):
        # Busy time must be integrated per transmission: 0.5 s at 1000 bps
        # plus 1.0 s at 500 bps = 1.5 s busy out of 4 s.  The old
        # ``bits_sent / (rate * now)`` formula would report
        # 1000 / (500 * 4) = 0.5 after the rate drop.
        sim, _sched, link, _trace = setup(rate=1000.0)
        sim.schedule(0.0, lambda: link.send(Packet("a", 500)))
        sim.schedule(1.0, lambda: link.set_rate(500.0))
        sim.schedule(1.0, lambda: link.send(Packet("a", 500)))
        sim.run(until=4.0)
        assert link.busy_time == pytest.approx(1.5)
        assert link.utilization == pytest.approx(1.5 / 4.0)

    def test_utilization_counts_packet_in_flight(self):
        sim, _sched, link, _trace = setup(rate=1000.0)
        sim.schedule(0.0, lambda: link.send(Packet("a", 500)))
        sim.run(until=0.25)
        # Mid-transmission: the in-flight portion counts.
        assert link.utilization == pytest.approx(1.0)
        sim.run(until=2.0)
        assert link.utilization == pytest.approx(0.25)


class TestServiceTrace:
    def make_trace(self):
        sim, _sched, link, trace = setup(rate=100.0, scheduler_cls=WF2QPlusScheduler)
        for k in range(3):
            sim.schedule(k * 1.0, lambda k=k: link.send(Packet("a", 100, seqno=k)))
        sim.schedule(0.5, lambda: link.send(Packet("b", 100, seqno=0)))
        sim.run()
        return trace

    def test_flows_and_counts(self):
        trace = self.make_trace()
        assert trace.flows() == ["a", "b"]
        assert trace.packets_served() == 4
        assert trace.packets_served("a") == 3
        assert trace.bits_served("b") == 100

    def test_delays(self):
        trace = self.make_trace()
        d = trace.delays("a")
        assert len(d) == 3
        assert d[0] == (0.0, pytest.approx(1.0))
        assert trace.max_delay("a") >= trace.mean_delay("a") > 0
        assert trace.max_delay("nope") == 0.0

    def test_curves_are_monotone_steps(self):
        trace = self.make_trace()
        ac = trace.arrival_curve("a")
        sc = trace.service_curve("a")
        assert [v for _t, v in ac] == [1, 2, 3]
        assert [v for _t, v in sc] == [1, 2, 3]
        assert all(t1 <= t2 for (t1, _), (t2, _) in zip(sc, sc[1:]))

    def test_bits_served_until(self):
        trace = self.make_trace()
        assert trace.bits_served("a", until=1.01) == 100

    def test_curve_units(self):
        trace = self.make_trace()
        bits_curve = trace.arrival_curve("a", unit="bits")
        assert [v for _t, v in bits_curve] == [100, 200, 300]


class TestDelayMonitor:
    def test_streaming_stats(self):
        mon = DelayMonitor()
        sim, _sched, link, trace = setup(rate=100.0)
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.run()
        for rec in trace.services:
            mon.observe(rec)
        assert mon.count("a") == 2
        assert mon.maximum("a") == pytest.approx(2.0)
        assert mon.mean("a") == pytest.approx(1.5)
        assert mon.flows() == ["a"]

    def test_unstamped_packets_skipped(self):
        mon = DelayMonitor()

        class Rec:
            packet = Packet("x", 1)
            finish_time = 1.0
            flow_id = "x"
        Rec.packet.arrival_time = None
        mon.observe(Rec)
        assert mon.count("x") == 0
