"""Batch APIs x checkpoint/restore: the interplay must stay exact.

The batched enqueue/dequeue kernels keep derived columnar state next to
the authoritative ``FlowState`` objects, and the Link's burst-drain path
services whole chunks between simulator events.  None of that may leak
into checkpoints: a snapshot taken mid-way through a batched workload
must restore to packet-for-packet identical continuations — Fraction
tags, conservation ledgers, source timetables, and fault timelines
included.
"""

import random
from fractions import Fraction

import pytest

from repro.config import leaf, node
from repro.core import HPFQScheduler, WF2QPlusScheduler
from repro.core.packet import Packet
from repro.faults import FaultInjector, FaultPlan, checkpoint, rollback
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic import CBRSource

F = Fraction


def record_tuple(rec):
    return (rec.flow_id, rec.packet.length, rec.start_time,
            rec.finish_time, rec.virtual_start, rec.virtual_finish)


def build_flat(flows=6, rate=F(1_000_000)):
    sched = WF2QPlusScheduler(rate)
    for i in range(flows):
        sched.add_flow(str(i), F(1 + i % 3))
    return sched


def build_tree(rate=F(1_000_000)):
    spec = node("root", 1, [
        node("left", 2, [leaf("0", 1), leaf("1", 2), leaf("2", 1)]),
        node("right", 1, [leaf("3", 2), leaf("4", 1), leaf("5", 3)]),
    ])
    return HPFQScheduler(spec, rate, policy="wf2qplus")


BUILDERS = [("wf2q+", build_flat), ("h-wf2q+", build_tree)]


def batch_churn(sched, rng, flows=6, steps=40, clock=F(0)):
    """Drive the *batch* APIs with a seeded mixed workload.

    Decisions depend only on the RNG and the scheduler's emptiness, so
    two schedulers in identical states driven by identically-seeded RNGs
    take identical trajectories.  Returns (records, clock) so a caller
    can resume the clock across a snapshot boundary.
    """
    records = []
    for _ in range(steps):
        if sched.is_empty or rng.random() < 0.5:
            k = rng.choice((1, 3, 8, 17))
            packets = [Packet(str(rng.randrange(flows)),
                              rng.choice((500, 1000, 1500)))
                       for _ in range(k)]
            sched.enqueue_batch(packets, now=clock)
        else:
            out = sched.dequeue_batch(rng.choice((1, 2, 6, 12)))
            records.extend(out)
            if out:
                clock = max(clock, out[-1].finish_time)
        clock += F(rng.randrange(0, 5), 1000)
    return records, clock


def drain_tuples(sched):
    return [record_tuple(rec) for rec in sched.drain()]


@pytest.mark.parametrize("name,build", BUILDERS)
def test_midbatch_snapshot_roundtrip_exact(name, build):
    """Snapshot amid a batched workload; both continuations agree."""
    sched = build()
    _, clock = batch_churn(sched, random.Random(21), steps=50)
    # Land the snapshot mid-batch: a large burst just arrived and only
    # part of it has been served, so kernels have hot columnar state.
    sched.enqueue_batch([Packet(str(i % 6), 1000) for i in range(24)],
                        now=clock)
    served = sched.dequeue_batch(5)
    clock = max(clock, served[-1].finish_time)
    snap = sched.snapshot()
    ledger = dict(sched.conservation())

    first, _ = batch_churn(sched, random.Random(99), steps=30, clock=clock)
    first_tuples = [record_tuple(r) for r in first] + drain_tuples(sched)

    sched.restore(snap)
    assert dict(sched.conservation()) == ledger
    second, _ = batch_churn(sched, random.Random(99), steps=30, clock=clock)
    second_tuples = [record_tuple(r) for r in second] + drain_tuples(sched)

    assert first_tuples == second_tuples
    assert len(first_tuples) > 20
    for row in first_tuples:
        # Exactness: times *and* virtual tags stay Fraction throughout.
        assert all(isinstance(v, Fraction) for v in row[2:])


@pytest.mark.parametrize("name,build", BUILDERS)
def test_midbatch_snapshot_restores_into_fresh_instance(name, build):
    a = build()
    _, clock = batch_churn(a, random.Random(5), steps=60)
    snap = a.snapshot()
    b = build()
    b.restore(snap)
    ra, _ = batch_churn(a, random.Random(77), steps=25, clock=clock)
    rb, _ = batch_churn(b, random.Random(77), steps=25, clock=clock)
    assert ([record_tuple(r) for r in ra] + drain_tuples(a)
            == [record_tuple(r) for r in rb] + drain_tuples(b))
    assert dict(a.conservation()) == dict(b.conservation())


def test_snapshot_between_drain_until_chunks():
    """A checkpoint taken after a partial drain_until restores exactly."""
    sched = build_tree()
    sched.enqueue_batch([Packet(str(i % 6), 1000) for i in range(30)],
                        now=F(0))
    sched.drain_until(F(9, 1000))  # stop part-way through the backlog
    snap = sched.snapshot()
    first = drain_tuples(sched)
    assert first
    sched.restore(snap)
    assert drain_tuples(sched) == first


class TestJointCheckpointUnderBatchDrain:
    """checkpoint(sim, link) while the Link's burst-drain path is active."""

    END = 0.06

    def build(self):
        sched = WF2QPlusScheduler(1e6)
        for i in range(4):
            sched.add_flow(str(i), 1 + i % 2)
        sim = Simulator()
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace)
        sources = [
            CBRSource(str(i), 2.4e5, 1000, start_time=i * 1e-4,
                      stop_time=0.05).attach(sim, link).start()
            for i in range(4)
        ]
        return sim, link, trace, sources

    @staticmethod
    def _restore_sources(sources, snaps):
        # The simulator snapshot already holds each source's pending
        # emission event by reference, so restore only the internal
        # timetable/counters — a re-schedule here would double-emit.
        for src, snap in zip(sources, snaps):
            src.restore(dict(snap, pending_time=None))

    def test_rollback_replays_services_and_arrivals(self):
        sim, link, trace, sources = self.build()
        sim.run(until=0.02)
        assert link.current is not None  # mid-transmission checkpoint
        snap = checkpoint(sim, link)
        src_snaps = [s.snapshot() for s in sources]
        n_srv, n_arr = len(trace.services), len(trace.arrivals)

        sim.run(until=self.END)
        tail_srv = [record_tuple(r) for r in trace.services[n_srv:]]
        tail_arr = trace.arrivals[n_arr:]
        ledger = dict(link.scheduler.conservation())
        assert len(tail_srv) >= 30

        rollback(sim, link, snap)
        self._restore_sources(sources, src_snaps)
        mark_srv, mark_arr = len(trace.services), len(trace.arrivals)
        sim.run(until=self.END)

        assert [record_tuple(r)
                for r in trace.services[mark_srv:]] == tail_srv
        assert trace.arrivals[mark_arr:] == tail_arr
        assert dict(link.scheduler.conservation()) == ledger

    def test_source_seqnos_replay_identically(self):
        sim, link, trace, sources = self.build()
        sim.run(until=0.02)
        snap = checkpoint(sim, link)
        src_snaps = [s.snapshot() for s in sources]
        n = len(trace.services)
        sim.run(until=self.END)
        tail = [(r.flow_id, r.packet.seqno) for r in trace.services[n:]]

        rollback(sim, link, snap)
        self._restore_sources(sources, src_snaps)
        mark = len(trace.services)
        sim.run(until=self.END)
        assert [(r.flow_id, r.packet.seqno)
                for r in trace.services[mark:]] == tail


class TestCheckpointUnderFaultPlan:
    """Rollback must also replay live set_share / link_rate faults."""

    END = 0.08

    def build(self):
        sched = WF2QPlusScheduler(1e6)
        for i in range(4):
            sched.add_flow(str(i), 1)
        sim = Simulator()
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace)
        sources = [
            CBRSource(str(i), 2.4e5, 1000, start_time=i * 1e-4,
                      stop_time=0.06).attach(sim, link).start()
            for i in range(4)
        ]
        plan = FaultPlan(seed=13)
        plan.set_share(0.01, "2", 5)        # before the checkpoint
        plan.link_rate(0.03, 6e5)           # after it: must replay
        plan.set_share(0.045, "0", 4)       # after it: must replay
        FaultInjector(plan, link).arm()
        return sim, link, trace, sources

    def test_rollback_replays_fault_timeline(self):
        sim, link, trace, sources = self.build()
        sim.run(until=0.02)
        snap = checkpoint(sim, link)
        src_snaps = [s.snapshot() for s in sources]
        n = len(trace.services)

        sim.run(until=self.END)
        tail = [record_tuple(r) for r in trace.services[n:]]
        rate_after = link.scheduler.rate
        ledger = dict(link.scheduler.conservation())
        assert rate_after == 6e5  # the post-checkpoint fault landed

        rollback(sim, link, snap)
        assert link.scheduler.rate == 1e6  # rolled back before the fault
        for src, s in zip(sources, src_snaps):
            src.restore(dict(s, pending_time=None))
        mark = len(trace.services)
        sim.run(until=self.END)

        assert [record_tuple(r) for r in trace.services[mark:]] == tail
        assert link.scheduler.rate == rate_after
        assert dict(link.scheduler.conservation()) == ledger
