"""IndexedHeap under adversarial churn, differentially vs a model.

The reference model is a sorted list of (key, seq, item) triples — the
exact total order the heap promises (key, then FIFO insertion seq).  A
seeded op mix (push / pop / update / remove / replace_top / move_top_to /
peeks) runs against both; every observable result must match and
``check_invariants`` must hold throughout.  A snapshot is taken mid-storm
and later restored — the post-restore op tail must replay the *identical*
observable sequence, FIFO tie-breaks included.
"""

import bisect
import random

import pytest

from repro.dstruct.heap import IndexedHeap


class ModelHeap:
    """Sorted-list oracle with IndexedHeap's exact tie-break semantics."""

    def __init__(self):
        self.entries = []   # sorted (key, seq, item)
        self.seq = 0

    def __len__(self):
        return len(self.entries)

    def __contains__(self, item):
        return any(e[2] == item for e in self.entries)

    def _locate(self, item):
        for index, entry in enumerate(self.entries):
            if entry[2] == item:
                return index
        raise KeyError(item)

    def push(self, item, key):
        if item in self:
            raise ValueError(item)
        bisect.insort(self.entries, (key, self.seq, item))
        self.seq += 1

    def pop(self):
        key, _seq, item = self.entries.pop(0)
        return item, key

    def peek(self):
        key, _seq, item = self.entries[0]
        return item, key

    def key_of(self, item):
        return self.entries[self._locate(item)][0]

    def update(self, item, key):
        index = self._locate(item)
        old_key = self.entries[index][0]
        if not (key < old_key or old_key < key):
            return  # equal keys keep the existing tiebreak
        del self.entries[index]
        bisect.insort(self.entries, (key, self.seq, item))
        self.seq += 1

    def remove(self, item):
        index = self._locate(item)
        key = self.entries[index][0]
        del self.entries[index]
        return key

    def replace_top(self, item, key):
        old_key, _seq, old_item = self.entries[0]
        if item != old_item and item in self:
            raise ValueError(item)
        del self.entries[0]
        bisect.insort(self.entries, (key, self.seq, item))
        self.seq += 1
        return old_item, old_key

    def snapshot(self):
        return {"entries": list(self.entries), "seq": self.seq}

    def restore(self, snap):
        self.entries = list(snap["entries"])
        self.seq = snap["seq"]


def drive(heap, model, rng, steps, log, next_id):
    """Apply ``steps`` random ops to both structures, appending every
    observable result to ``log``; returns the updated item counter."""
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.30 or not heap:
            item = f"i{next_id}"
            next_id += 1
            key = rng.randint(0, 20)   # small range → many FIFO ties
            heap.push(item, key)
            model.push(item, key)
            log.append(("push", item, key))
        elif roll < 0.50:
            popped = heap.pop()
            assert popped == model.pop()
            log.append(("pop", popped))
        elif roll < 0.70:
            item = rng.choice(list(heap))
            key = rng.randint(0, 20)
            heap.update(item, key)
            model.update(item, key)
            log.append(("update", item, key))
        elif roll < 0.80:
            item = rng.choice(list(heap))
            assert heap.remove(item) == model.remove(item)
            log.append(("remove", item))
        elif roll < 0.90:
            item = f"r{next_id}"
            next_id += 1
            key = rng.randint(0, 20)
            assert heap.replace_top(item, key) == model.replace_top(item, key)
            log.append(("replace", item, key))
        else:
            assert heap.peek() == model.peek()
            assert heap.min_key() == model.entries[0][0]
            log.append(("peek",))
        if heap:
            assert heap.peek() == model.peek()
        assert len(heap) == len(model)
        heap.check_invariants()
    return next_id


@pytest.mark.parametrize("seed", range(6))
def test_adversarial_churn_matches_model(seed):
    rng = random.Random(seed)
    heap, model = IndexedHeap(), ModelHeap()
    drive(heap, model, rng, steps=400, log=[], next_id=0)
    # Full drain must agree to the last FIFO tie.
    while heap:
        assert heap.pop() == model.pop()
    assert not model.entries


@pytest.mark.parametrize("seed", range(4))
def test_snapshot_restore_mid_churn_replays_identically(seed):
    rng = random.Random(1000 + seed)
    heap, model = IndexedHeap(), ModelHeap()
    next_id = drive(heap, model, rng, steps=150, log=[], next_id=0)

    heap_snap = heap.snapshot()
    model_snap = model.snapshot()
    tail_rng_state = rng.getstate()

    first_log = []
    next_after = drive(heap, model, rng, steps=150, log=first_log,
                       next_id=next_id)
    first_drain = []
    while heap:
        pair = heap.pop()
        assert pair == model.pop()
        first_drain.append(pair)

    # Rewind everything and replay the identical op tail.
    heap.restore(heap_snap)
    model.restore(model_snap)
    rng.setstate(tail_rng_state)
    second_log = []
    assert drive(heap, model, rng, steps=150, log=second_log,
                 next_id=next_id) == next_after
    second_drain = []
    while heap:
        pair = heap.pop()
        assert pair == model.pop()
        second_drain.append(pair)

    assert second_log == first_log
    assert second_drain == first_drain


def test_snapshot_tokens_roundtrip_objects():
    class Node:
        def __init__(self, name):
            self.name = name

    nodes = {name: Node(name) for name in "abcd"}
    heap = IndexedHeap()
    for rank, name in enumerate("badc"):
        heap.push(nodes[name], rank)
    snap = heap.snapshot(lambda n: n.name)
    fresh = IndexedHeap()
    fresh.restore(snap, lambda token: nodes[token])
    assert [fresh.pop()[0].name for _ in range(4)] == ["b", "a", "d", "c"]
    fresh.check_invariants()


def test_restore_preserves_public_aliases():
    heap = IndexedHeap()
    entries_alias, pos_alias = heap.entries, heap.pos
    heap.push("x", 1)
    heap.restore(heap.snapshot())
    assert heap.entries is entries_alias and heap.pos is pos_alias
    assert pos_alias["x"] == 0
