"""Integration tests: the paper's experiments, asserted on their *shape*.

Short-duration versions of the benchmark runs; the full-length versions
live in benchmarks/.
"""

from fractions import Fraction as Fr

import pytest

from repro.analysis.bandwidth import mean_rate
from repro.analysis.bounds import hpfq_delay_bound
from repro.analysis.lag import max_service_lag
from repro.core.hgps import hierarchical_fair_rates
from repro.core.wf2q import WF2QScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler
from repro.experiments import delay as delay_exp
from repro.experiments import linksharing as ls_exp
from repro.experiments.fig2 import (
    fig2_gps_departures,
    fig2_schedule,
    run_fig2,
    service_discrepancy_vs_gps,
)


class TestFig2:
    """Figure 2: WFQ bursts, WF2Q/WF2Q+ interleave, GPS is the reference."""

    def test_wfq_timeline(self):
        order = [fid for fid, _s, _f in fig2_schedule(WFQScheduler)]
        assert order[:10] == [1] * 10
        assert order[20] == 1  # p_1^11 served last

    def test_wf2q_and_wf2qplus_identical_here(self):
        o1 = [fid for fid, _s, _f in fig2_schedule(WF2QScheduler)]
        o2 = [fid for fid, _s, _f in fig2_schedule(WF2QPlusScheduler)]
        assert o1 == o2
        assert o1[0::2] == [1] * 11  # session 1 in every other slot

    def test_gps_reference(self):
        finishes = dict()
        for fid, t in fig2_gps_departures():
            finishes.setdefault(fid, t)  # first packet's finish
        assert finishes[1] == Fr(2)
        assert finishes[2] == Fr(20)

    def test_discrepancy_ranking(self):
        """WFQ ~N/2 packets off GPS; WF2Q/WF2Q+ < 1 packet."""
        wfq = service_discrepancy_vs_gps(fig2_schedule(WFQScheduler))
        wf2q = service_discrepancy_vs_gps(fig2_schedule(WF2QScheduler))
        wf2qp = service_discrepancy_vs_gps(fig2_schedule(WF2QPlusScheduler))
        assert wfq >= Fr(4)
        assert wf2q <= Fr(1)
        assert wf2qp <= Fr(1)

    def test_run_fig2_collects_everything(self):
        out = run_fig2([WFQScheduler, WF2QScheduler, WF2QPlusScheduler])
        assert set(out) == {"GPS", "WFQ", "WF2Q", "WF2Q+"}
        assert len(out["GPS"]) == 21


class TestDelayScenarios:
    """Figures 4-7 (short versions): H-WF2Q+ must beat H-WFQ on worst-case
    delay and respect its Corollary 2 bound."""

    @pytest.fixture(scope="class")
    def traces(self):
        out = {}
        for policy in ("wf2qplus", "wfq"):
            out[policy] = delay_exp.run_delay_experiment(
                policy, scenario=1, duration=3.0)
        return out

    def test_rt1_bound_holds_for_hwf2qplus(self, traces):
        spec = delay_exp.build_fig3_spec()
        bound = hpfq_delay_bound(
            spec, "RT-1", delay_exp.RT1_SIGMA, delay_exp.FIG3_LINK_RATE,
            lambda n: delay_exp.FIG3_PACKET_LENGTH)
        worst = traces["wf2qplus"].max_delay("RT-1")
        assert worst <= float(bound) + 1e-9

    def test_hwfq_worse_than_hwf2qplus(self, traces):
        assert traces["wfq"].max_delay("RT-1") > \
            1.2 * traces["wf2qplus"].max_delay("RT-1")

    def test_service_lag_ranking(self, traces):
        """Figure 5: the arrival/service curves separate under H-WFQ."""
        lag_wfq = max_service_lag(traces["wfq"], "RT-1")
        lag_w2q = max_service_lag(traces["wf2qplus"], "RT-1")
        assert lag_wfq >= lag_w2q

    def test_be1_continuously_backlogged(self, traces):
        """The scenario requires BE-1 to keep N-1..N-R busy."""
        trace = traces["wf2qplus"]
        served = trace.bits_served("BE-1", until=3.0)
        guaranteed = float(delay_exp.build_fig3_spec().guaranteed_rate(
            "BE-1", delay_exp.FIG3_LINK_RATE))
        assert served >= guaranteed * 2.5  # got >= its share over [0, 3]

    @pytest.mark.parametrize("scenario", [2, 3])
    def test_overload_scenarios_run(self, scenario):
        trace = delay_exp.run_delay_experiment("wf2qplus", scenario,
                                               duration=1.0)
        assert trace.packets_served("RT-1") > 0
        if scenario == 2:
            assert trace.packets_served("CS-1") == 0  # CS off in scenario 2
        else:
            assert trace.packets_served("CS-1") > 0

    def test_rt1_conforms_to_declared_envelope(self, traces):
        """RT-1's arrivals must satisfy (sigma, r_i) or the bound test is
        vacuous."""
        arrivals = traces["wf2qplus"].arrivals_of("RT-1")
        sigma = delay_exp.RT1_SIGMA
        rho = delay_exp.RT1_GUARANTEED_RATE
        times = [(t, length) for _f, t, length in arrivals]
        for i in range(len(times)):
            total = 0
            for j in range(i, len(times)):
                total += times[j][1]
                assert total <= sigma + rho * (times[j][0] - times[i][0]) + 1e-6


class TestLinkSharing:
    """Figure 9 (short version): H-WF2Q+ tracks the H-GPS ideal."""

    @pytest.fixture(scope="class")
    def trace(self):
        return ls_exp.run_linksharing("wf2qplus", duration=6.0)

    def test_steady_state_matches_ideal(self, trace):
        spec = ls_exp.build_fig8_spec()
        ideal = hierarchical_fair_rates(
            spec, ls_exp.TCP_FLOWS + ls_exp.active_onoff(1.0),
            ls_exp.FIG8_LINK_RATE,
            {n: spec.guaranteed_rate(n, ls_exp.FIG8_LINK_RATE)
             for n in ls_exp.active_onoff(1.0)})
        for fid in ("TCP-1", "TCP-5", "TCP-8", "TCP-10", "TCP-11"):
            measured = mean_rate(trace, fid, 2.0, 5.0)
            assert measured == pytest.approx(float(ideal[fid]), rel=0.15), fid

    def test_transition_directions_at_5s(self, trace):
        """Paper: at t=5s TCP-5/8 gain, TCP-10/11 lose.  The window must
        end before 5.25s, where OO-1 going idle lifts everyone."""
        for fid, direction in (("TCP-5", +1), ("TCP-8", +1),
                               ("TCP-10", -1), ("TCP-11", -1)):
            before = mean_rate(trace, fid, 4.0, 5.0)
            after = mean_rate(trace, fid, 5.02, 5.24)
            assert (after - before) * direction > 0, (fid, before, after)

    def test_tcp1_isolated_from_lower_levels(self, trace):
        """TCP-1 sits at level 1: the t=5s reshuffle below N1 must not
        move its bandwidth (window ends before OO-1's own 5.25s toggle)."""
        before = mean_rate(trace, "TCP-1", 4.0, 5.0)
        after = mean_rate(trace, "TCP-1", 5.02, 5.24)
        assert after == pytest.approx(before, rel=0.1)

    def test_onoff_sources_capped_at_their_peak(self, trace):
        spec = ls_exp.build_fig8_spec()
        peak = float(spec.guaranteed_rate("OO-1", ls_exp.FIG8_LINK_RATE))
        measured = mean_rate(trace, "OO-1", 1.0, 5.0)
        assert measured <= peak * 1.05

    def test_ideal_intervals_cover_schedule(self):
        ivals = ls_exp.ideal_intervals(10.0)
        assert ivals[0][0] == 0.0
        assert ivals[-1][1] == 10.0
        for (t1, t2, _a, _d), (t3, _t4, _a2, _d2) in zip(ivals, ivals[1:]):
            assert t2 == t3
        # OO-2 is only active in the first interval.
        assert "OO-2" in ivals[0][2]
        assert all("OO-2" not in iv[2] for iv in ivals[1:])
