"""Advanced H-PFQ coverage: mixed policies, deep random trees against the
waterfill reference, and long-horizon stress."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hgps import hierarchical_fair_rates
from repro.core.hierarchy import HPFQScheduler
from repro.core.packet import Packet

RATE = 1000.0
PKT = 10.0


class TestMixedPolicies:
    def spec(self):
        return HierarchySpec(node("root", 1, [
            node("guaranteed", 1, [leaf("rt", 3), leaf("av", 1)]),
            node("besteffort", 1, [leaf("web", 1), leaf("bulk", 1)]),
        ]))

    def test_wf2qplus_root_wfq_leafclass(self):
        """The paper's suggested deployment: worst-case-fair nodes where
        delay matters, cheaper nodes where it does not."""
        s = HPFQScheduler(self.spec(), RATE, policy="wf2qplus",
                          policy_overrides={"besteffort": "scfq"})
        assert s._nodes["root"].policy.name == "wf2qplus"
        assert s._nodes["besteffort"].policy.name == "scfq"
        for fid in ("rt", "av", "web", "bulk"):
            for k in range(30):
                s.enqueue(Packet(fid, PKT, seqno=k), now=0.0)
        served = {}
        for rec in s.drain():
            if rec.finish_time <= 0.6:
                served[rec.flow_id] = served.get(rec.flow_id, 0) + 1
        # Top-level halves: guaranteed 30, besteffort 30 (within a packet);
        # rt:av = 3:1 within the guaranteed class.
        assert abs((served["rt"] + served["av"]) - 30) <= 1
        assert abs(served["rt"] - 3 * served["av"]) <= 3

    def test_every_policy_pairing_runs(self):
        for top in ("wf2qplus", "wfq", "scfq", "sfq"):
            for inner in ("wf2qplus", "wfq", "scfq", "sfq"):
                s = HPFQScheduler(self.spec(), RATE, policy=top,
                                  policy_overrides={"guaranteed": inner})
                for fid in ("rt", "web"):
                    s.enqueue(Packet(fid, PKT), now=0.0)
                assert len(s.drain()) == 2


def random_spec(rng, max_depth=3, max_children=3):
    """A random tree with unique names; returns (spec, leaf names)."""
    counter = [0]

    def build(depth):
        counter[0] += 1
        name = f"n{counter[0]}"
        share = rng.randint(1, 5)
        if depth >= max_depth or rng.random() < 0.4:
            return leaf(name, share)
        n_children = rng.randint(1, max_children)
        children = [build(depth + 1) for _ in range(n_children)]
        if all(c.is_leaf for c in children) and n_children == 1:
            return children[0]
        return node(name, share, children)

    while True:
        children = [build(1) for _ in range(rng.randint(2, max_children))]
        if any(True for _ in children):
            root = node("root", 1, children)
            spec = HierarchySpec(root)
            if len(spec.leaf_names()) >= 2:
                return spec


class TestRandomTreesMatchWaterfill:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_saturated_shares_match_ideal(self, seed):
        """All leaves saturated: windowed H-WF2Q+ service fractions match
        the hierarchical waterfill within per-leaf packet slack."""
        rng = random.Random(seed)
        spec = random_spec(rng)
        leaves = spec.leaf_names()
        s = HPFQScheduler(spec, RATE, policy="wf2qplus")
        n_packets = 60
        for fid in leaves:
            for k in range(n_packets):
                s.enqueue(Packet(fid, PKT, seqno=k), now=0.0)
        ideal = hierarchical_fair_rates(spec, leaves, RATE)
        served = {fid: 0.0 for fid in leaves}
        window = None
        for rec in s.drain():
            # Measure over the window before any leaf drains.
            done = served[rec.flow_id] + rec.packet.length
            if done >= n_packets * PKT and window is None:
                window = rec.finish_time
                break
            served[rec.flow_id] = done
        if window is None:
            window = n_packets * len(leaves) * PKT / RATE
        for fid in leaves:
            expected = float(ideal[fid]) * window
            assert served[fid] >= expected - 3 * PKT - 1e-9, (
                seed, fid, served[fid], expected
            )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_arrivals_never_wedge(self, seed):
        """Random enqueue/dequeue interleavings preserve all invariants."""
        rng = random.Random(seed)
        spec = random_spec(rng)
        leaves = spec.leaf_names()
        s = HPFQScheduler(spec, RATE, policy="wf2qplus")
        t = 0.0
        served = 0
        sent = 0
        for _step in range(300):
            if rng.random() < 0.55 or s.is_empty:
                fid = rng.choice(leaves)
                s.enqueue(Packet(fid, PKT), now=t)
                sent += 1
            else:
                rec = s.dequeue()
                t = max(t, rec.finish_time)
                served += 1
            if rng.random() < 0.2:
                t += rng.random()
        while not s.is_empty:
            s.dequeue()
            served += 1
        assert served == sent


class TestLongHorizon:
    def test_many_busy_periods(self):
        spec = HierarchySpec(node("root", 1, [
            node("a", 1, [leaf("x", 1), leaf("y", 1)]),
            leaf("z", 1),
        ]))
        s = HPFQScheduler(spec, RATE, policy="wf2qplus")
        total = 0
        for period in range(50):
            base = period * 10.0
            for fid in ("x", "y", "z"):
                for k in range(3):
                    s.enqueue(Packet(fid, PKT), now=base)
                    total += 1
            while not s.is_empty:
                s.dequeue()
        assert s.node_service("root") == pytest.approx(total * PKT)

    def test_single_leaf_subtree(self):
        """Interior nodes with one child must pass service straight down."""
        spec = HierarchySpec(node("root", 1, [
            node("wrap", 1, [leaf("only", 1)]),
            leaf("other", 1),
        ]))
        s = HPFQScheduler(spec, RATE, policy="wf2qplus")
        for k in range(10):
            s.enqueue(Packet("only", PKT, seqno=k), now=0.0)
            s.enqueue(Packet("other", PKT, seqno=k), now=0.0)
        served = {"only": 0, "other": 0}
        for rec in s.drain():
            if rec.finish_time <= 0.1:
                served[rec.flow_id] += 1
        assert abs(served["only"] - served["other"]) <= 1
