"""Tests for the traffic source models."""

import pytest

from repro.core.fifo import FIFOScheduler
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import (
    CBRSource,
    IntervalSource,
    OnOffSource,
    PacketTrainSource,
    PoissonSource,
    ShapedSource,
    TraceSource,
)


def harness(rate=1_000_000.0):
    sim = Simulator()
    sched = FIFOScheduler(rate)
    sched.add_flow("f", 1)
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    return sim, link, trace


class TestSourceBase:
    def test_requires_attach(self):
        src = CBRSource("f", rate=1000, packet_length=100)
        with pytest.raises(ConfigurationError):
            src.start()

    def test_bad_packet_length(self):
        with pytest.raises(ConfigurationError):
            CBRSource("f", rate=1000, packet_length=0)

    def test_stop_before_start_rejected(self):
        with pytest.raises(ConfigurationError):
            CBRSource("f", 1000, 100, start_time=5, stop_time=4)


class TestCBR:
    def test_rate_and_spacing(self):
        sim, link, trace = harness()
        CBRSource("f", rate=1000.0, packet_length=100).attach(sim, link).start()
        sim.run(until=1.0)
        times = [t for _f, t, _l in trace.arrivals]
        assert len(times) == 11  # t = 0, 0.1, ..., 1.0 inclusive
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_stop_time(self):
        sim, link, trace = harness()
        CBRSource("f", rate=1000.0, packet_length=100,
                  stop_time=0.35).attach(sim, link).start()
        sim.run(until=1.0)
        assert len(trace.arrivals) == 4  # t = 0, .1, .2, .3

    def test_counters(self):
        sim, link, _trace = harness()
        src = CBRSource("f", rate=1000.0, packet_length=100).attach(sim, link).start()
        sim.run(until=0.55)
        assert src.packets_sent == 6
        assert src.bits_sent == 600


class TestPoisson:
    def test_mean_rate(self):
        sim, link, trace = harness()
        PoissonSource("f", rate=100_000.0, packet_length=1000,
                      seed=42).attach(sim, link).start()
        sim.run(until=50.0)
        bits = sum(length for _f, _t, length in trace.arrivals)
        assert bits / 50.0 == pytest.approx(100_000, rel=0.1)

    def test_deterministic_given_seed(self):
        def times(seed):
            sim, link, trace = harness()
            PoissonSource("f", 100_000.0, 1000, seed=seed).attach(sim, link).start()
            sim.run(until=1.0)
            return [t for _f, t, _l in trace.arrivals]
        assert times(7) == times(7)
        assert times(7) != times(8)


class TestOnOff:
    def test_emissions_confined_to_on_periods(self):
        sim, link, trace = harness()
        src = OnOffSource("f", peak_rate=100_000.0, packet_length=1000,
                          on_duration=0.025, off_duration=0.075,
                          start_time=0.2).attach(sim, link).start()
        sim.run(until=1.0)
        for _f, t, _l in trace.arrivals:
            phase = (t - 0.2) % 0.1
            # Float modulo can report a phase of ~0.0999 for an emission at
            # an exact cycle boundary (phase 0); accept both.
            in_on = phase < 0.025 + 1e-9 or 0.1 - phase < 1e-6
            assert in_on, f"emission at off-phase {phase}"
        assert src.packets_sent > 0

    def test_is_on(self):
        src = OnOffSource("f", 1000, 100, on_duration=1, off_duration=1,
                          start_time=10)
        assert not src.is_on(5)
        assert src.is_on(10.5)
        assert not src.is_on(11.5)
        assert src.is_on(12.5)

    def test_average_rate_is_duty_scaled(self):
        sim, link, trace = harness()
        OnOffSource("f", peak_rate=400_000.0, packet_length=1000,
                    on_duration=0.025, off_duration=0.075).attach(sim, link).start()
        sim.run(until=10.0)
        bits = sum(length for _f, _t, length in trace.arrivals)
        # ~quarter duty cycle -> ~100 kbps.
        assert bits / 10.0 == pytest.approx(100_000, rel=0.15)

    def test_float_phase_boundary_does_not_stall(self):
        """Regression: 0.3 % 0.1 == 0.0999... used to wedge the clock."""
        sim, link, trace = harness()
        OnOffSource("f", peak_rate=36e6, packet_length=65536,
                    on_duration=0.025, off_duration=0.075,
                    start_time=0.2).attach(sim, link).start()
        sim.run(until=2.0, max_events=100_000)
        assert sim.now == 2.0  # reached the horizon, no stall

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            OnOffSource("f", 0, 100, 1, 1)
        with pytest.raises(ConfigurationError):
            OnOffSource("f", 10, 100, 0, 1)


class TestIntervalSource:
    def test_emits_only_inside_intervals(self):
        sim, link, trace = harness()
        IntervalSource("f", peak_rate=100_000.0, packet_length=1000,
                       intervals=[(0.0, 0.1), (0.5, 0.6)]).attach(sim, link).start()
        sim.run(until=2.0)
        for _f, t, _l in trace.arrivals:
            assert t < 0.1 or 0.5 <= t < 0.6

    def test_open_ended_final_interval(self):
        sim, link, trace = harness()
        IntervalSource("f", 100_000.0, 1000,
                       intervals=[(0.0, None)], stop_time=0.5).attach(sim, link).start()
        sim.run(until=1.0)
        assert all(t <= 0.5 for _f, t, _l in trace.arrivals)
        assert len(trace.arrivals) > 10

    def test_is_on(self):
        src = IntervalSource("f", 1000, 100, intervals=[(1, 2), (3, None)])
        assert not src.is_on(0.5)
        assert src.is_on(1.5)
        assert not src.is_on(2.5)
        assert src.is_on(100)

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            IntervalSource("f", 1000, 100, intervals=[(0, 2), (1, 3)])
        with pytest.raises(ConfigurationError):
            IntervalSource("f", 1000, 100, intervals=[(2, 1)])
        with pytest.raises(ConfigurationError):
            IntervalSource("f", 1000, 100, intervals=[])


class TestPacketTrain:
    def test_train_structure(self):
        sim, link, trace = harness(rate=100e6)
        PacketTrainSource("f", packet_length=1000, train_length=5,
                          train_interval=0.1,
                          line_rate=1_000_000.0).attach(sim, link).start()
        sim.run(until=0.35)
        times = [t for _f, t, _l in trace.arrivals]
        assert len(times) == 20  # 4 trains of 5
        # Within a train: 1ms spacing; between trains: large gap.
        gaps = [b - a for a, b in zip(times, times[1:])]
        in_train = [g for g in gaps if g < 0.01]
        between = [g for g in gaps if g >= 0.01]
        assert all(g == pytest.approx(0.001) for g in in_train)
        assert len(between) == 3

    def test_average_rate_property(self):
        src = PacketTrainSource("f", 1000, train_length=5,
                                train_interval=0.1, line_rate=1e6)
        assert src.average_rate == pytest.approx(50_000)

    def test_interval_too_short_rejected(self):
        src = PacketTrainSource("f", 1000, train_length=100,
                                train_interval=0.01, line_rate=1e4)
        sim, link, _ = harness()
        src.attach(sim, link).start()
        with pytest.raises(ConfigurationError):
            sim.run(until=10)

    def test_jitter_reproducible(self):
        def times(seed):
            sim, link, trace = harness()
            PacketTrainSource("f", 1000, 3, 0.1, 1e6, jitter=0.01,
                              jitter_seed=seed).attach(sim, link).start()
            sim.run(until=1.0)
            return [t for _f, t, _l in trace.arrivals]
        assert times(1) == times(1)
        assert times(1) != times(2)


class TestTraceSource:
    def test_exact_times(self):
        sim, link, trace = harness()
        TraceSource("f", [0.5, 0.1, 0.9], packet_length=100).attach(sim, link).start()
        sim.run()
        times = [t for _f, t, _l in trace.arrivals]
        assert times == [0.1, 0.5, 0.9]

    def test_per_packet_lengths(self):
        sim, link, trace = harness()
        TraceSource("f", [(0.1, 200), (0.2, 300)], packet_length=100).attach(sim, link).start()
        sim.run()
        lengths = [length for _f, _t, length in trace.arrivals]
        assert lengths == [200, 300]

    def test_simultaneous_arrivals(self):
        sim, link, trace = harness()
        TraceSource("f", [1.0, 1.0, 1.0], packet_length=100).attach(sim, link).start()
        sim.run()
        assert len(trace.arrivals) == 3


class TestShapedSource:
    def test_output_conforms_to_bucket(self):
        sim, link, trace = harness(rate=10e6)
        inner = TraceSource("f", [0.0] * 20, packet_length=1000)
        ShapedSource(inner, sigma=2000, rho=10_000).attach(sim, link).start()
        sim.run()
        times = [t for _f, t, _l in trace.arrivals]
        assert len(times) == 20
        # Envelope check: A(t1, t2) <= sigma + rho (t2 - t1).
        for i in range(len(times)):
            for j in range(i, len(times)):
                arrived = (j - i + 1) * 1000
                assert arrived <= 2000 + 10_000 * (times[j] - times[i]) + 1e-6

    def test_conforming_traffic_passes_untouched(self):
        sim, link, trace = harness()
        inner = TraceSource("f", [0.0, 1.0, 2.0], packet_length=100)
        ShapedSource(inner, sigma=1000, rho=1000).attach(sim, link).start()
        sim.run()
        times = [t for _f, t, _l in trace.arrivals]
        assert times == [0.0, 1.0, 2.0]
