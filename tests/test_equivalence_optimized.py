"""Packet-for-packet equivalence of the optimized hot paths.

The hot-path engineering (epoch-based lazy busy-period resets, cached
inverse rates, single-sift ``replace_top``/``update`` heap re-keying) must
be *observably invisible*: the optimized WF2Q+ and H-WF2Q+ must produce
exactly the same service order, service times and virtual tags as a naive
transliteration of the paper's equations.

This file keeps two deliberately naive references:

* :class:`NaiveWF2QPlus` — eqs. (27)-(29) with O(N) list scans, an eager
  O(N) tag sweep at every busy-period boundary, and plain divisions by
  ``r_i``;
* :class:`NaiveWF2QPlusNodePolicy` — the RESTART-NODE selection rule with
  list scans and divisions, plugged into the shared H-PFQ shell.

Arithmetic note: the optimized code computes ``L * (1/r)`` where the
naive code computes ``L / r``.  The float workloads therefore use shares
and link rates chosen so every guaranteed rate is a power of two (both
expressions are then exact and bit-identical), and one workload runs
entirely under :class:`fractions.Fraction`, where all arithmetic is exact
regardless of the shares — that run uses the awkward shares.
"""

import random
from fractions import Fraction as Fr

from repro.config import leaf, node
from repro.core.hierarchy import HPFQScheduler, NodePolicy
from repro.core.packet import Packet
from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.core.wf2qplus import WF2QPlusScheduler


# ----------------------------------------------------------------------
# Naive references
# ----------------------------------------------------------------------
class NaiveWF2QPlus(PacketScheduler):
    """WF2Q+ by direct transliteration: scans, sweeps and divisions."""

    name = "WF2Q+naive"
    seff = True

    def __init__(self, rate):
        super().__init__(rate)
        self._virtual = 0
        self._virtual_stamp = 0

    def _r(self, state):
        return state.config.share / self._total_share * self.rate

    def _set_head_tags(self, state, was_flow_empty):
        head = state.head()
        if was_flow_empty:
            state.start_tag = max(state.finish_tag, self._virtual)
        else:
            state.start_tag = state.finish_tag
        state.finish_tag = state.start_tag + head.length / self._r(state)

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        if was_idle and now >= self._free_at:
            # Eager busy-period boundary: sweep every flow's tags.
            self._virtual = 0
            self._virtual_stamp = now
            for st in self._flows.values():
                st.start_tag = 0
                st.finish_tag = 0
        if was_flow_empty:
            self._virtual = self._virtual + (now - self._virtual_stamp)
            self._virtual_stamp = now
            self._set_head_tags(state, True)

    def _select_flow(self, now):
        backlogged = [st for st in self._flows.values() if st.queue]
        # eq. (27) with the min-S floor, by scan.
        v = self._virtual + (now - self._virtual_stamp)
        min_start = min(st.start_tag for st in backlogged)
        if min_start > v:
            v = min_start
        self._virtual = v
        self._virtual_stamp = now
        eligible = [st for st in backlogged if st.start_tag <= v]
        return min(eligible, key=lambda st: (st.finish_tag, st.index))

    def _on_dequeued(self, state, packet, now):
        if state.queue:
            self._set_head_tags(state, False)

    def _make_record(self, state, packet, now, finish):
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=state.start_tag,
            virtual_finish=state.finish_tag,
        )

    def system_virtual_time(self, now=None):
        return self._virtual


class NaiveWF2QPlusNodePolicy(NodePolicy):
    """RESTART-NODE selection with list scans and divisions."""

    name = "wf2qplus-naive"

    def __init__(self, node_obj):
        super().__init__(node_obj)
        self._headed = []

    def child_head_set(self, child):
        if child not in self._headed:
            self._headed.append(child)

    def child_head_cleared(self, child):
        if child in self._headed:
            self._headed.remove(child)

    def select(self):
        headed = self._headed
        if not headed:
            return None
        threshold = max(self.node.virtual,
                        min(c.start_tag for c in headed))
        eligible = [c for c in headed if c.start_tag <= threshold]
        return min(eligible, key=lambda c: (c.finish_tag, c.child_index))

    def on_select(self, child, length):
        node_obj = self.node
        smin = min(c.start_tag for c in self._headed)
        node_obj.virtual = max(node_obj.virtual, smin) + length / node_obj.rate
        node_obj.reference += length / node_obj.rate

    def reset(self):
        self._headed.clear()


class _NullSink:
    """Minimal observer: forces the eager reset path in H-PFQ."""

    def accept(self, event):
        pass


# ----------------------------------------------------------------------
# Workload driving
# ----------------------------------------------------------------------
def drive(sched, arrivals):
    """Feed sorted ``(time, seq, flow_id, length)`` arrivals; greedy server.

    Returns the observable transcript: one
    ``(flow_id, start_time, finish_time, virtual_start, virtual_finish)``
    tuple per transmitted packet.
    """
    out = []
    idx, n = 0, len(arrivals)
    while idx < n or not sched.is_empty:
        next_arr = arrivals[idx][0] if idx < n else None
        if sched.is_empty:
            t, _seq, fid, length = arrivals[idx]
            idx += 1
            sched.enqueue(Packet(fid, length, arrival_time=t), now=t)
            continue
        free = max(sched.clock, sched.busy_until)
        if next_arr is not None and next_arr <= free:
            t, _seq, fid, length = arrivals[idx]
            idx += 1
            sched.enqueue(Packet(fid, length, arrival_time=t), now=t)
        else:
            rec = sched.dequeue()
            out.append((rec.flow_id, rec.start_time, rec.finish_time,
                        rec.virtual_start, rec.virtual_finish))
    return out


def fig2_style_arrivals(one=1):
    """One dominant flow with a back-to-back train, 10 one-packet flows."""
    arrivals = [(0 * one, k, "A", one) for k in range(11)]
    arrivals += [(0 * one, 100 + i, f"f{i}", one) for i in range(1, 11)]
    return sorted(arrivals)


def bursty_arrivals(flow_ids, seed=3, bursts=40, one=1.0):
    """Small on/off bursts with guaranteed-drain gaps between them."""
    rng = random.Random(seed)
    arrivals, t, seq = [], 0.0, 0
    for _ in range(bursts):
        active = rng.sample(flow_ids, rng.randint(1, 4))
        for fid in active:
            for _ in range(rng.randint(1, 2)):
                arrivals.append(
                    (t + rng.random() * 0.25, seq, fid,
                     rng.choice([one / 2, one, 2 * one])))
                seq += 1
        # 8 packets x at most 2 bits at rate 16 always drain within 1 s.
        t += 2.5 + rng.random()
    return sorted(arrivals)


def _add_pow2_flows(sched):
    """Shares summing to 16 with per-flow rates that are powers of two."""
    for i, share in enumerate([4, 2, 1, 1, 4, 2, 1, 1]):
        sched.add_flow(f"f{i}", share)


def pow2_tree():
    """Two-level spec whose node rates are all powers of two (rate=16)."""
    return node("root", 1, [
        node("g0", 1, [leaf("a", 1), leaf("b", 1), leaf("c", 2)]),
        node("g1", 1, [leaf("d", 2), leaf("e", 2), leaf("f", 4)]),
    ])


def awkward_tree():
    """Two-level spec with non-binary shares (Fraction workloads only)."""
    return node("root", 1, [
        node("g0", 2, [leaf("a", 1), leaf("b", 2), leaf("c", 3)]),
        node("g1", 1, [leaf("d", 3), leaf("e", 1)]),
    ])


# ----------------------------------------------------------------------
# Flat WF2Q+ equivalence
# ----------------------------------------------------------------------
class TestFlatWF2QPlus:
    def test_fig2_style_exact_fraction(self):
        """Awkward shares, exact arithmetic: tags must match exactly."""
        arrivals = fig2_style_arrivals(one=Fr(1))
        opt = WF2QPlusScheduler(Fr(1))
        ref = NaiveWF2QPlus(Fr(1))
        for s in (opt, ref):
            s.add_flow("A", 10)
            for i in range(1, 11):
                s.add_flow(f"f{i}", 1)
        assert drive(opt, arrivals) == drive(ref, arrivals)

    def test_bursty_float_pow2_rates(self):
        """Many busy-period boundaries: the lazy epoch reset must be
        indistinguishable from the naive eager sweep (bit-identical)."""
        flow_ids = [f"f{i}" for i in range(8)]
        arrivals = bursty_arrivals(flow_ids, seed=3)
        opt = WF2QPlusScheduler(16.0)
        ref = NaiveWF2QPlus(16.0)
        _add_pow2_flows(opt)
        _add_pow2_flows(ref)
        assert drive(opt, arrivals) == drive(ref, arrivals)

    def test_saturated_churn_float_pow2_rates(self):
        """Steady state: the replace_top re-keying path, packet for packet."""
        opt = WF2QPlusScheduler(16.0)
        ref = NaiveWF2QPlus(16.0)
        _add_pow2_flows(opt)
        _add_pow2_flows(ref)
        rng = random.Random(11)
        arrivals = sorted(
            (rng.random() * 0.1, i, f"f{rng.randrange(8)}",
             rng.choice([0.5, 1.0, 2.0]))
            for i in range(200))
        assert drive(opt, arrivals) == drive(ref, arrivals)

    def test_bursty_exact_fraction(self):
        flow_ids = [f"f{i}" for i in range(8)]
        arrivals = [(Fr(t).limit_denominator(1 << 12), seq, fid, Fr(ln))
                    for t, seq, fid, ln in
                    bursty_arrivals(flow_ids, seed=7, bursts=25)]
        opt = WF2QPlusScheduler(Fr(7))
        ref = NaiveWF2QPlus(Fr(7))
        for s in (opt, ref):
            for i in range(8):
                s.add_flow(f"f{i}", 1 + (i % 3))
        assert drive(opt, arrivals) == drive(ref, arrivals)


# ----------------------------------------------------------------------
# H-WF2Q+ equivalence
# ----------------------------------------------------------------------
def _hier_arrivals(leaves, seed, bursts, one=1.0):
    return bursty_arrivals(leaves, seed=seed, bursts=bursts, one=one)


class TestHierarchy:
    LEAVES = ["a", "b", "c", "d", "e", "f"]

    def test_naive_policy_matches_heap_policy_float(self):
        arrivals = _hier_arrivals(self.LEAVES, seed=5, bursts=40)
        opt = HPFQScheduler(pow2_tree(), 16.0, policy="wf2qplus")
        ref = HPFQScheduler(pow2_tree(), 16.0,
                            policy=NaiveWF2QPlusNodePolicy)
        assert drive(opt, arrivals) == drive(ref, arrivals)

    def test_naive_policy_matches_heap_policy_fraction(self):
        arrivals = [(Fr(t).limit_denominator(1 << 12), seq, fid, Fr(ln))
                    for t, seq, fid, ln in
                    _hier_arrivals(["a", "b", "c", "d", "e"], seed=9,
                                   bursts=25)]
        opt = HPFQScheduler(awkward_tree(), Fr(5), policy="wf2qplus")
        ref = HPFQScheduler(awkward_tree(), Fr(5),
                            policy=NaiveWF2QPlusNodePolicy)
        assert drive(opt, arrivals) == drive(ref, arrivals)

    def test_lazy_epoch_reset_matches_eager_sweep(self):
        """With an observer attached H-PFQ eagerly sweeps the whole tree
        at every drain; without one it only bumps the epoch.  Both must
        yield the same transcript across many busy-period boundaries."""
        arrivals = _hier_arrivals(self.LEAVES, seed=13, bursts=50)
        lazy = HPFQScheduler(pow2_tree(), 16.0, policy="wf2qplus")
        eager = HPFQScheduler(pow2_tree(), 16.0, policy="wf2qplus")
        eager.attach_observer(_NullSink())
        assert drive(lazy, arrivals) == drive(eager, arrivals)

    def test_flat_lazy_reset_matches_eager_reference_virtual_time(self):
        """After every drain both systems restart V at zero: spot-check
        the virtual clock alongside the transcript equality."""
        flow_ids = [f"f{i}" for i in range(8)]
        arrivals = bursty_arrivals(flow_ids, seed=21, bursts=10)
        opt = WF2QPlusScheduler(16.0)
        ref = NaiveWF2QPlus(16.0)
        _add_pow2_flows(opt)
        _add_pow2_flows(ref)
        assert drive(opt, arrivals) == drive(ref, arrivals)
        assert opt.system_virtual_time() == ref.system_virtual_time()
