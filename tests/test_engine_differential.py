"""Differential proof that every event engine is observably identical.

The calendar queue and the ``+pool`` free lists are pure speed plays:
``Simulator(engine=...)`` must never change callback order, clock
values, drop decisions, Fraction virtual tags, digests, or
checkpoint/rollback behaviour.  These tests pin that equivalence at
every layer — raw pop order vs ``heapq``, mixed simulator workloads,
the service runner's chained digest (Fractions intact), recovery
across engine switches, drop ledgers under finite buffers, and the
sharded driver's merged digest with and without migration — plus the
boundary cases where the calendar could plausibly diverge: events
exactly at a drain horizon, tombstones straddling a bucket resize, and
pool recycling across checkpoint rollback.
"""

import heapq
import random
from fractions import Fraction

import pytest

from repro.dstruct.calendar import DEGENERATE_MIN, CalendarQueue
from repro.sim.engine import ENGINES, Simulator

CALENDAR_ENGINES = tuple(e for e in ENGINES if e.startswith("calendar"))


class _Handle:
    """Minimal stand-in for the Event riding in a queue entry."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False


def _entries(times):
    return [(t, 0, seq, _Handle()) for seq, t in enumerate(times)]


class TestCalendarPopOrder:
    """Byte-identical pop order vs heapq on the same pushes."""

    def _differential(self, times):
        cal = CalendarQueue()
        heap = []
        for entry in _entries(times):
            cal.push(entry)
            heapq.heappush(heap, entry)
        got = [cal.pop() for _ in range(len(heap))]
        want = [heapq.heappop(heap) for _ in range(len(heap))]
        assert got == want
        assert len(cal) == 0

    def test_random_times(self):
        rng = random.Random(7)
        self._differential([rng.uniform(0.0, 50.0) for _ in range(3000)])

    def test_heavy_ties_break_by_sequence(self):
        rng = random.Random(8)
        # A coarse grid forces many exact-time ties: the seq tie-break
        # must reproduce heapq's FIFO order exactly.
        self._differential([rng.choice((0.0, 1.0, 1.5, 2.0))
                            for _ in range(2000)])

    def test_interleaved_push_pop(self):
        rng = random.Random(9)
        cal = CalendarQueue()
        heap = []
        seq = 0
        floor = 0.0
        for _ in range(4000):
            if heap and rng.random() < 0.45:
                got, want = cal.pop(), heapq.heappop(heap)
                assert got == want
                floor = want[0]
            else:
                entry = (floor + rng.uniform(0.0, 5.0), 0, seq, _Handle())
                seq += 1
                cal.push(entry)
                heapq.heappush(heap, entry)
        while heap:
            assert cal.pop() == heapq.heappop(heap)

    def test_resizes_happen_and_preserve_order(self):
        # Enough pushes over a wide span to force several calibrations.
        rng = random.Random(10)
        times = [rng.uniform(0.0, 1000.0) for _ in range(5000)]
        cal = CalendarQueue()
        for entry in _entries(times):
            cal.push(entry)
        assert cal.resizes > 0
        drained = [cal.pop() for _ in range(len(times))]
        assert drained == sorted(drained)

    def test_degenerate_spread_raises_flag(self):
        cal = CalendarQueue()
        for entry in _entries([1.0] * max(300, DEGENERATE_MIN + 44)):
            cal.push(entry)
        assert cal.degenerate


@pytest.mark.parametrize("engine", ENGINES)
class TestSimulatorEquivalence:
    """Same mixed workload, identical observable trace on every engine."""

    def _churn(self, engine, seed=3):
        rng = random.Random(seed)
        sim = Simulator(engine=engine)
        out = []
        handles = []

        def fire(label):
            out.append((sim.now, label))
            if len(out) < 4000:
                if rng.random() < 0.3:
                    # Retained (cancellable) handles must NOT be pooled:
                    # pooled=True is the call-site promise that nobody
                    # touches the handle once it may have fired.
                    handles.append(sim.schedule_in(
                        rng.uniform(0.0, 2.0), fire, len(out)))
                else:
                    sim.schedule_in(rng.choice((0.0, 0.5, 1.0)), fire,
                                    -len(out), pooled=True)
                if handles and rng.random() < 0.2:
                    handles.pop(rng.randrange(len(handles))).cancel()

        for i in range(64):
            sim.schedule(rng.uniform(0.0, 1.0), fire, i)
        sim.run(until=400.0)
        return out, sim

    def test_trace_matches_heap(self, engine):
        want, ref = self._churn("heap")
        got, sim = self._churn(engine)
        assert got == want
        assert sim.events_processed == ref.events_processed
        assert sim.now == ref.now

    def test_event_exactly_at_drain_horizon_fires(self, engine):
        # run(until=t) serves events at exactly t and leaves anything
        # later queued — the boundary the calendar's year arithmetic
        # must not blur (its horizon check uses the entry time itself,
        # never a recomputed bucket edge).
        sim = Simulator(engine=engine)
        out = []
        sim.schedule(1.0, out.append, "before")
        sim.schedule(2.0, out.append, "at")
        sim.schedule(2.0, out.append, "at-too")
        sim.schedule(2.0 + 5e-9, out.append, "after")
        sim.run(until=2.0)
        assert out == ["before", "at", "at-too"]
        assert sim.now == 2.0
        assert sim.pending == 1
        sim.run()
        assert out[-1] == "after"

    def test_tombstones_straddling_resize(self, engine):
        # Cancel a third of a large population, then keep pushing until
        # the calendar recalibrates (rehashing live entries *and*
        # tombstones), then drain: survivors must fire in exact order
        # and the tombstones must stay dead through the rebuild.
        rng = random.Random(11)
        sim = Simulator(engine=engine)
        out = []
        doomed = []
        for i in range(900):
            t = rng.uniform(0.0, 10.0)
            ev = sim.schedule(t, out.append, (t, i))
            if i % 3 == 0:
                doomed.append((ev, (t, i)))
        for ev, _ in doomed:
            ev.cancel()
        for i in range(900, 2400):
            t = rng.uniform(0.0, 1000.0)  # 100x the span: forces rewidth
            sim.schedule(t, out.append, (t, i))
        if engine.startswith("calendar"):
            assert sim.calendar_resizes > 0
        sim.run()
        dead = {payload for _, payload in doomed}
        assert not dead & set(out)
        assert out == sorted(out)
        assert sim.pending == 0

    def test_pool_recycling_across_checkpoint_rollback(self, engine):
        # Rolling back to a snapshot must replay byte-identically even
        # though the pool keeps recycling Event records across the
        # rollback (acquire restamps every field, and restore bumps the
        # epoch so pre-snapshot handles are dead).  Snapshots capture
        # callbacks by reference, so rollback happens on the same sim.
        sim = Simulator(engine=engine)
        out = []

        def tick(n, dt):
            out.append((sim.now, n))
            if sim.now < 30.0:
                sim.schedule_in(dt, tick, n, dt, pooled=True)

        for i in range(40):
            sim.schedule_in(0.1 + i * 0.01, tick, i, 0.7 + i * 0.013,
                            pooled=True)
        sim.run(until=10.0)
        snap = sim.snapshot()
        prefix = list(out)
        sim.run()
        want = list(out)

        sim.restore(snap)  # events recycled above now re-enter service
        out[:] = prefix
        sim.run()
        assert out == want
        assert sim.now == want[-1][0]


class TestServeDifferential:
    """Service traces, chained digests and recovery across engines."""

    def _spec(self):
        from repro.serve.soak import build_service_spec

        return build_service_spec(flows=12, rate=1e6, duration=0.5, seed=4)

    def _run(self, engine, **kwargs):
        from repro.serve.runner import ServiceRunner

        runner = ServiceRunner(self._spec(), engine=engine, **kwargs)
        runner.run_to(0.5)
        return runner

    def test_digest_and_rows_engine_invariant(self):
        # The chained digest folds every service row — Fraction virtual
        # tags rendered exactly as num/den — so digest equality is exact
        # trace equality, not float-tolerant equality.
        baseline = self._run("heap")
        assert baseline.trace.rows > 0
        for engine in ENGINES[1:]:
            runner = self._run(engine)
            assert runner.digest == baseline.digest, engine
            assert runner.trace.rows == baseline.trace.rows, engine

    def test_service_records_fraction_exact(self):
        # Same equivalence at full fidelity, on an exact timeline: with
        # Fraction rates and start times every event timestamp and every
        # virtual tag stays a Fraction end to end, so the comparison is
        # exact rational equality — and the calendar's bucket arithmetic
        # (``int(t / width)``) is exercised on non-float timestamps.
        from repro.core import WF2QPlusScheduler
        from repro.sim.link import Link
        from repro.sim.monitor import ServiceTrace
        from repro.traffic.source import CBRSource

        def rows(engine):
            sim = Simulator(engine=engine)
            sched = WF2QPlusScheduler(Fraction(10 ** 6))
            trace = ServiceTrace()
            link = Link(sim, sched, trace=trace)
            for i in range(6):
                # Fraction shares: int shares divide to float (see
                # test_batch) and would poison the virtual tags.
                sched.add_flow(str(i), Fraction(1 + i))
                src = CBRSource(str(i), Fraction(10 ** 5), 4000,
                                start_time=Fraction(i, 10 ** 4))
                src.attach(sim, link)
                src.start()
            sim.run(until=Fraction(1, 10))
            return [(r.flow_id, r.packet.seqno, r.start_time,
                     r.finish_time, r.virtual_start, r.virtual_finish)
                    for r in trace.services]

        want = rows("heap")
        assert want
        for r in want:
            # Exact rationals only (ints are the pristine initial tags);
            # a single float would mean the exact pipeline leaked.
            assert all(isinstance(v, (int, Fraction)) and
                       not isinstance(v, bool) for v in r[2:]), r
        assert any(isinstance(r[5], Fraction) for r in want)
        for engine in ENGINES[1:]:
            assert rows(engine) == want, engine

    def test_recovery_switches_engines_exactly(self, tmp_path):
        # A service checkpointed under calendar+pool and recovered under
        # plain heap (and vice versa) must land on the uninterrupted
        # baseline's digest: checkpoints are engine-agnostic and the
        # free lists never leak state across a recovery boundary.
        from repro.serve.runner import ServiceRunner

        baseline = self._run("heap")
        for ckpt_engine, recover_engine in (("calendar+pool", "heap"),
                                            ("heap", "calendar+pool")):
            directory = tmp_path / f"{ckpt_engine}-to-{recover_engine}"
            directory.mkdir()
            first = ServiceRunner(self._spec(), engine=ckpt_engine,
                                  checkpoint_dir=str(directory),
                                  checkpoint_every=0.1)
            first.run_to(0.34)  # beyond several checkpoint boundaries
            recovered = ServiceRunner.recover(str(directory),
                                              engine=recover_engine)
            recovered.run_to(0.5)
            assert recovered.digest == baseline.digest
            assert recovered.trace.rows == baseline.trace.rows


class TestDropLedgerDifferential:
    """Finite-buffer drop decisions are engine-invariant."""

    @pytest.mark.parametrize("engine", ENGINES[1:])
    def test_drops_and_ledger_match_heap(self, engine):
        def run(engine):
            from repro.core import WF2QPlusScheduler
            from repro.core.packet import PacketPool
            from repro.sim.link import Link
            from repro.traffic.source import CBRSource

            sim = Simulator(engine=engine)
            sched = WF2QPlusScheduler(1e6)
            for i in range(8):
                sched.add_flow(str(i), 1 + (i % 3))
                sched.set_buffer_limit(str(i), 3)
            pool = (PacketPool()
                    if engine.endswith("+pool") else None)
            link = Link(sim, sched, packet_pool=pool)
            for i in range(8):
                src = CBRSource(str(i), 2.5e5, 8000.0,
                                start_time=i * 1e-4)
                src.attach(sim, link)
                if pool is not None:
                    src.packet_pool = pool
                src.start()
            sim.run(until=0.4)
            drops = {fid: sched.drops(fid) for fid in sched.flow_ids}
            return drops, sched.conservation()

        drops, ledger = run(engine)
        want_drops, want_ledger = run("heap")
        assert sum(want_drops.values()) > 0, "workload must actually drop"
        assert drops == want_drops
        assert ledger == want_ledger
        assert ledger["balanced"]


class TestShardDifferential:
    """Merged shard digests are engine-invariant, migration included."""

    def _digest(self, **kwargs):
        from repro.shard import run_sharded

        report = run_sharded("cbr_flat", flows=24, cells=2, duration=0.02,
                             **kwargs)
        return report["digest"]

    def test_digest_engine_invariant_across_shards(self):
        want = self._digest(shards=1, engine="heap")
        for engine in ENGINES[1:]:
            assert self._digest(shards=1, engine=engine) == want, engine
        assert self._digest(shards=2, engine="calendar+pool") == want

    def test_migration_digest_engine_invariant(self):
        want = self._digest(shards=1, engine="heap")
        got = self._digest(shards=2, engine="calendar+pool",
                           migrate={"cell": "c0", "at": 0.01})
        assert got == want
