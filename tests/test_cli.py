"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_delay_defaults(self):
        args = build_parser().parse_args(["delay"])
        assert args.scenario == 1
        assert args.policy == "wf2qplus"
        assert args.duration == 6.0

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["delay", "--scenario", "9"])

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["delay", "--policy", "nope"])


class TestCommands:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "WFQ" in out and "WF2Q+" in out and "GPS" in out

    def test_delay(self, capsys):
        assert main(["delay", "--duration", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "max delay" in out
        assert "Cor. 2 bound" in out

    def test_delay_series(self, capsys):
        assert main(["delay", "--duration", "0.5", "--series"]) == 0
        out = capsys.readouterr().out
        # Series lines: "<time> <delay_ms>".
        data_lines = [l for l in out.splitlines()
                      if l and l[0].isdigit() and " " in l]
        assert len(data_lines) > 0

    def test_linksharing(self, capsys):
        assert main(["linksharing", "--duration", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "TCP-1" in out
        assert "mean relative error" in out

    def test_bounds(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "RT-1" in out
        assert "WF2Q/WF2Q+" in out


class TestStatsParser:
    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.scheduler == "wf2qplus"
        assert args.flows == 64
        assert args.packets == 20000
        assert args.trace is None
        assert args.check is False

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--scheduler", "nope"])


class TestStats:
    def test_stats_with_check_and_trace(self, capsys, tmp_path):
        from repro.obs.sinks import read_jsonl

        trace = tmp_path / "trace.jsonl"
        assert main(["stats", "--scheduler", "wf2qplus", "--flows", "8",
                     "--packets", "200", "--check",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "enqueue" in out and "dequeue" in out  # profiler table
        assert "invariants: OK" in out
        assert "trace: wrote" in out
        events = read_jsonl(str(trace))
        assert len(events) > 400  # enq + deq per churned packet, at least
        assert {e.kind for e in events} >= {"enqueue", "dequeue",
                                            "virtual-time"}

    def test_stats_hierarchical(self, capsys):
        assert main(["stats", "--scheduler", "hwf2qplus", "--flows", "12",
                     "--packets", "100", "--check"]) == 0
        out = capsys.readouterr().out
        assert "invariants: OK" in out
        assert "total" in out  # metrics table

    def test_stats_fifo(self, capsys):
        assert main(["stats", "--scheduler", "fifo", "--flows", "4",
                     "--packets", "50"]) == 0
        out = capsys.readouterr().out
        assert "repro stats" in out
        assert "invariants" not in out
