"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_delay_defaults(self):
        args = build_parser().parse_args(["delay"])
        assert args.scenario == 1
        assert args.policy == "wf2qplus"
        assert args.duration == 6.0

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["delay", "--scenario", "9"])

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["delay", "--policy", "nope"])


class TestCommands:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "WFQ" in out and "WF2Q+" in out and "GPS" in out

    def test_delay(self, capsys):
        assert main(["delay", "--duration", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "max delay" in out
        assert "Cor. 2 bound" in out

    def test_delay_series(self, capsys):
        assert main(["delay", "--duration", "0.5", "--series"]) == 0
        out = capsys.readouterr().out
        # Series lines: "<time> <delay_ms>".
        data_lines = [l for l in out.splitlines()
                      if l and l[0].isdigit() and " " in l]
        assert len(data_lines) > 0

    def test_linksharing(self, capsys):
        assert main(["linksharing", "--duration", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "TCP-1" in out
        assert "mean relative error" in out

    def test_bounds(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "RT-1" in out
        assert "WF2Q/WF2Q+" in out
