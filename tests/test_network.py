"""Tests for the multi-hop network substrate."""

import pytest

from repro.analysis.bounds import end_to_end_delay_bound
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import DeliveryLog, Network
from repro.traffic.source import CBRSource, TraceSource


def build_chain(sim, hops, rate=1000.0, propagation=0.0):
    net = Network(sim)
    for h in range(hops):
        net.add_node(f"s{h}", WF2QPlusScheduler(rate),
                     propagation_delay=propagation)
    return net


class TestTopology:
    def test_duplicate_node_rejected(self):
        net = build_chain(Simulator(), 1)
        with pytest.raises(ConfigurationError):
            net.add_node("s0", WF2QPlusScheduler(1000.0))

    def test_unknown_node_in_route(self):
        net = build_chain(Simulator(), 1)
        with pytest.raises(ConfigurationError):
            net.add_route("f", ["nope"])

    def test_empty_route_rejected(self):
        net = build_chain(Simulator(), 1)
        with pytest.raises(ConfigurationError):
            net.add_route("f", [])

    def test_duplicate_route_rejected(self):
        net = build_chain(Simulator(), 1)
        net.add_route("f", ["s0"])
        with pytest.raises(ConfigurationError):
            net.add_route("f", ["s0"])

    def test_route_registers_flow_at_each_hop(self):
        net = build_chain(Simulator(), 3)
        net.add_route("f", ["s0", "s1", "s2"], share=2)
        for h in range(3):
            assert "f" in net.node(f"s{h}").scheduler.flow_ids
        assert net.route_of("f") == ["s0", "s1", "s2"]

    def test_per_node_share_override(self):
        net = build_chain(Simulator(), 2)
        net.add_node("other", WF2QPlusScheduler(1000.0))
        net.add_route("f", ["s0", "s1"], share={"s0": 1, "s1": 5})
        assert net.node("s1").scheduler._flows["f"].share == 5


class TestForwarding:
    def test_single_hop_delivery(self):
        sim = Simulator()
        net = build_chain(sim, 1)
        net.add_route("f", ["s0"])
        TraceSource("f", [0.0, 0.1], 100.0).attach(sim, net.entry("f")).start()
        sim.run()
        assert net.log.count("f") == 2
        # 100 bits at 1000 bps -> 0.1s per hop.
        assert net.log.delays("f")[0] == (0.0, pytest.approx(0.1))

    def test_three_hop_delay_accumulates(self):
        sim = Simulator()
        net = build_chain(sim, 3, propagation=0.01)
        net.add_route("f", ["s0", "s1", "s2"])
        TraceSource("f", [0.0], 100.0).attach(sim, net.entry("f")).start()
        sim.run()
        # 3 transmissions + 3 propagations.
        assert net.log.max_delay("f") == pytest.approx(3 * 0.1 + 3 * 0.01)

    def test_flows_diverge_at_shared_hop(self):
        sim = Simulator()
        net = build_chain(sim, 3)
        net.add_route("x", ["s0", "s1"])
        net.add_route("y", ["s0", "s2"])
        TraceSource("x", [0.0], 100.0).attach(sim, net.entry("x")).start()
        TraceSource("y", [0.0], 100.0).attach(sim, net.entry("y")).start()
        sim.run()
        assert net.log.count("x") == 1
        assert net.log.count("y") == 1
        assert net.trace_of("s1").packets_served() == 1
        assert net.trace_of("s2").packets_served() == 1
        assert net.trace_of("s0").packets_served() == 2

    def test_per_hop_traces(self):
        sim = Simulator()
        net = build_chain(sim, 2)
        net.add_route("f", ["s0", "s1"])
        TraceSource("f", [0.0] * 3, 100.0).attach(sim, net.entry("f")).start()
        sim.run()
        assert net.trace_of("s0").packets_served("f") == 3
        assert net.trace_of("s1").packets_served("f") == 3

    def test_buffer_limit_applies_per_hop(self):
        sim = Simulator()
        net = build_chain(sim, 1)
        net.add_route("f", ["s0"], buffer=1)
        TraceSource("f", [0.0] * 5, 100.0).attach(sim, net.entry("f")).start()
        sim.run()
        # 1 in service + 1 buffered; 3 dropped.
        assert net.log.count("f") == 2
        assert net.node("s0").scheduler.drops("f") == 3


class TestEndToEndBound:
    def test_e2e_delay_bound_formula(self):
        bound = end_to_end_delay_bound(
            sigma=3000, rate_i=100, l_i_max=1000,
            hops=[(1500, 1000), (1500, 2000)], propagation=0.05)
        expected = 3000 / 100 + 1 * 1000 / 100 + 1500 / 1000 + 1500 / 2000 + 0.05
        assert bound == pytest.approx(expected)

    def test_needs_hops(self):
        with pytest.raises(ValueError):
            end_to_end_delay_bound(1, 1, 1, [])

    def test_measured_e2e_within_bound(self):
        """A shaped flow crossing 3 congested WF2Q+ hops stays within the
        Parekh-Gallager end-to-end bound."""
        sim = Simulator()
        rate = 1000.0
        net = build_chain(sim, 3, rate=rate)
        # Session under test: share 1 of 4 at each hop -> r_i = 250.
        net.add_route("rt", ["s0", "s1", "s2"], share=1)
        for h in range(3):
            cross = f"cross{h}"
            net.add_route(cross, [f"s{h}"], share=3)
            CBRSource(cross, rate=0.9 * rate, packet_length=100.0).attach(
                sim, net.entry(cross)).start()
        # rt: 2-packet bursts every 1s (sigma = 2 x 100, rho = 200 < 250).
        times = [float(b) for b in range(10) for _ in range(2)]
        TraceSource("rt", times, 100.0).attach(sim, net.entry("rt")).start()
        sim.run(until=14.0)
        assert net.log.count("rt") == 20
        bound = end_to_end_delay_bound(
            sigma=200.0, rate_i=250.0, l_i_max=100.0,
            hops=[(100.0, rate)] * 3)
        assert net.log.max_delay("rt") <= bound + 1e-9


class TestDeliveryLog:
    def test_stats(self):
        log = DeliveryLog()

        class P:
            flow_id = "f"
            uid = 1
        log.record(P, 1.0, 3.0)
        log.record(P, 2.0, 3.5)
        assert log.count() == 2
        assert log.max_delay("f") == pytest.approx(2.0)
        assert log.mean_delay("f") == pytest.approx(1.75)
        assert log.max_delay("ghost") == 0.0
