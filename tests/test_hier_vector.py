"""Differential and unit suite for the columnar H-WF2Q+ backend.

Pins the contracts the vectorized hierarchy must honour:

* **Bit-equivalence on floats** — :class:`VectorHWF2QPlus` driven through
  the batch APIs produces the exact transcript of a float
  ``HPFQScheduler(policy="wf2qplus")`` driven per-packet, on randomized
  depth <= 4 topologies (same trees as the exact differential suite).
* **Exactness on power-of-two rates** — dyadic shares make every tag a
  float-representable rational, so the float64 columns match the
  Fraction-driven exact scheduler *exactly*; arbitrary shares get a
  documented tolerance on cumulative service instead (float division is
  inexact there even packet-by-packet, so transcript order near exact
  ties is the only thing allowed to differ).
* **Level-synchronous tag view** — ``level_tags`` agrees with a
  recursive walk of the live node objects at every depth.
* **Fallback guards** — an attached observer or a subclass disengages
  the kernels (counters prove it) with identical service.
* **Chunked drains are service-invariant** — ``drain_chunk`` bounds
  kernel latency, never what is scheduled.
* **Autotuning is deterministic** — ``recommend_chunk`` is a pure
  bucket-argmin; ``ChunkAutotuner`` applies it after a fixed window and
  detaches its wrappers.
* **Shard digests** — the vector backend keeps the merged-report digest
  invariant across shard counts and drain chunks (like-for-like: vector
  digests compare with vector digests — exact tags serialise int zeros
  where float columns hold ``0.0``).
"""

import multiprocessing
import random
from fractions import Fraction as Fr

import pytest

from repro.config import leaf, node
from repro.core.hbatch import VectorHWF2QPlus, make_vhwf2qplus
from repro.core.hierarchy import HPFQScheduler
from repro.core.packet import Packet
from repro.core.scheduler import BATCH_BUCKETS
from repro.errors import ConfigurationError
from repro.obs import (
    CHUNK_CHOICES,
    ChunkAutotuner,
    MetricsSink,
    recommend_chunk,
)

from tests.test_equivalence_optimized import bursty_arrivals, pow2_tree
from tests.test_hierarchy_differential import random_tree


# ----------------------------------------------------------------------
# Batch-driven workload harness
# ----------------------------------------------------------------------
def float_workload(rng, leaves, bursts=18):
    """Bursty float arrivals plus a dense same-instant churn window."""
    arrivals = [
        (rng.randrange(4096) / 4096.0, seq, rng.choice(leaves),
         rng.choice([0.5, 1.0, 1.5]))
        for seq in range(100)
    ]
    arrivals += [
        (2.0 + t, 1000 + seq, fid, ln)
        for t, seq, fid, ln in bursty_arrivals(leaves, seed=7, bursts=bursts)
    ]
    return sorted(arrivals)


def drive_batched(sched, arrivals, chunk=16):
    """Feed same-instant groups via ``enqueue_batch``; drain in chunks.

    Greedy server like the exact suite's ``drive``, but through the batch
    APIs so the vector kernels actually engage.  Returns the observable
    transcript ``(flow_id, start, finish, virtual_start, virtual_finish)``.
    """
    out = []
    idx, n = 0, len(arrivals)
    while idx < n or not sched.is_empty:
        next_arr = arrivals[idx][0] if idx < n else None
        if next_arr is not None and (
                sched.is_empty
                or next_arr <= max(sched.clock, sched.busy_until)):
            group = []
            while idx < n and arrivals[idx][0] == next_arr:
                _t, _seq, fid, ln = arrivals[idx]
                group.append(Packet(fid, ln, arrival_time=next_arr))
                idx += 1
            sched.enqueue_batch(group, now=next_arr)
            continue
        # Serve until the next arrival's instant (the crossing packet is
        # included, exactly like the one-at-a-time greedy server), or in
        # count-bounded chunks once the trace is exhausted.
        records = (sched.dequeue_batch(chunk) if next_arr is None
                   else sched.drain_until(next_arr))
        for rec in records:
            out.append((rec.flow_id, rec.start_time, rec.finish_time,
                        rec.virtual_start, rec.virtual_finish))
    return out


# ----------------------------------------------------------------------
# Differential: vector vs exact
# ----------------------------------------------------------------------
class TestVectorDifferential:
    @pytest.mark.parametrize("seed", [1, 2, 3, 5, 8])
    def test_random_topology_bit_identical_to_float_exact(self, seed):
        rng = random.Random(seed)
        spec, leaves = random_tree(rng)
        while len(leaves) < 4:
            spec, leaves = random_tree(rng)
        arrivals = float_workload(rng, leaves)

        vec = VectorHWF2QPlus(spec, 16.0)
        ref = HPFQScheduler(spec, 16.0, policy="wf2qplus")
        got = drive_batched(vec, arrivals)
        want = drive_batched(ref, arrivals)

        assert len(got) == len(arrivals)
        # Bit-identical, not approximately equal: the columns evaluate
        # the same IEEE-754 expressions in the same order.
        assert got == want
        # Small same-instant groups stay under BATCH_KERNEL_MIN on the
        # enqueue side, but the drains go through the vector kernels.
        assert vec.vector_stats()["vector_dequeued"] > 0

    def test_pow2_rates_match_fraction_exact_exactly(self):
        # Dyadic shares, lengths and arrival grid: every Fraction tag the
        # exact scheduler computes stays a small dyadic rational (all
        # divisors are powers of two), so the float64 columns must land
        # on it *exactly* — no tolerance.  Times are snapped to a /4096
        # grid to keep the significands short enough that float addition
        # never rounds.
        rng = random.Random(11)
        spec = pow2_tree()
        leaves = ["a", "b", "c", "d", "e", "f"]
        arrivals = sorted(
            (round(t * 4096) / 4096.0, seq, fid, ln)
            for t, seq, fid, ln in float_workload(rng, leaves))

        vec = VectorHWF2QPlus(spec, 16.0)
        ref = HPFQScheduler(spec, Fr(16), policy="wf2qplus")
        got = drive_batched(vec, arrivals)
        want = [
            (fid, float(s), float(f), float(vs), float(vf))
            for fid, s, f, vs, vf in drive_batched(
                ref, [(Fr(t), seq, fid, Fr(ln))
                      for t, seq, fid, ln in arrivals])
        ]
        assert got == want

    def test_arbitrary_shares_service_within_tolerance(self):
        # Non-dyadic shares: float division rounds, so only cumulative
        # per-flow service is compared (order may differ at exact ties).
        spec = node("root", 1, [
            node("g0", 3, [leaf("a", 1), leaf("b", 7)]),
            node("g1", 5, [leaf("c", 3), leaf("d", 1), leaf("e", 2)]),
        ])
        rng = random.Random(23)
        arrivals = float_workload(rng, ["a", "b", "c", "d", "e"])
        vec = VectorHWF2QPlus(spec, 10.0)
        ref = HPFQScheduler(spec, Fr(10), policy="wf2qplus")
        got = drive_batched(vec, arrivals)
        want = drive_batched(
            ref, [(Fr(t), seq, fid, Fr(ln)) for t, seq, fid, ln in arrivals])

        served_vec = {}
        served_ref = {}
        for fid, _s, f, _vs, _vf in got:
            served_vec[fid] = served_vec.get(fid, 0) + 1
        for fid, _s, f, _vs, _vf in want:
            served_ref[fid] = served_ref.get(fid, 0) + 1
        assert served_vec == served_ref
        last_vec = max(f for _fid, _s, f, _vs, _vf in got)
        last_ref = max(f for _fid, _s, f, _vs, _vf in want)
        assert last_vec == pytest.approx(float(last_ref), rel=1e-9)

    def test_level_tags_match_recursive_walk(self):
        rng = random.Random(5)
        spec, leaves = random_tree(rng)
        while len(leaves) < 4:
            spec, leaves = random_tree(rng)
        vec = VectorHWF2QPlus(spec, 16.0)
        arrivals = float_workload(rng, leaves, bursts=6)
        # Stop mid-backlog so the tags are non-trivial.
        mid = arrivals[: len(arrivals) // 2]
        drive_batched(vec, mid, chunk=8)

        order = sorted(vec._nodes.values(), key=lambda n: n.node_id)
        by_depth = {}
        for nd in order:  # recursive-walk equivalent, in dense-id order
            by_depth.setdefault(len(nd.path) - 1, []).append(
                (nd.name, float(nd.start_tag), float(nd.finish_tag),
                 float(nd.virtual)))
        for depth, want in by_depth.items():
            assert vec.level_tags(depth) == want


# ----------------------------------------------------------------------
# Kernel engagement guards
# ----------------------------------------------------------------------
class TestFallbackGuards:
    def _spec(self):
        return node("root", 1, [
            node("g", 1, [leaf("a", 1), leaf("b", 1)]),
            leaf("c", 2),
        ])

    def test_large_burst_engages_both_kernels(self):
        vec = VectorHWF2QPlus(pow2_tree(), 16.0)
        pkts = [Packet(fid, 1.0, arrival_time=0.0)
                for fid in "abcdef" for _ in range(16)]
        vec.enqueue_batch(pkts, now=0.0)
        stats = vec.vector_stats()
        # New heads on idle chains hand off to the exact RESTART walk by
        # design, so the kernel takes most — not all — of the burst.
        assert stats["vector_enqueued"] > 0
        assert stats["vector_enqueued"] + stats["exact_enqueued"] == len(pkts)
        vec.dequeue_batch(len(pkts))
        stats = vec.vector_stats()
        assert stats["vector_dequeued"] > 0
        assert stats["vector_dequeued"] + stats["exact_dequeued"] == len(pkts)

    def test_observer_forces_exact_path(self):
        vec = VectorHWF2QPlus(self._spec(), 8.0)
        vec.attach_observer(MetricsSink())
        pkts = [Packet("a", 1.0, arrival_time=0.0) for _ in range(32)]
        vec.enqueue_batch(pkts, now=0.0)
        vec.dequeue_batch(32)
        stats = vec.vector_stats()
        assert stats["vector_enqueued"] == 0
        assert stats["vector_dequeued"] == 0
        assert stats["exact_enqueued"] == 32
        assert stats["exact_dequeued"] == 32

    def test_subclass_forces_exact_path(self):
        class Sub(VectorHWF2QPlus):
            pass

        sub = Sub(self._spec(), 8.0)
        sub.enqueue_batch(
            [Packet("a", 1.0, arrival_time=0.0) for _ in range(32)],
            now=0.0)
        sub.dequeue_batch(32)
        stats = sub.vector_stats()
        assert stats["vector_enqueued"] == 0
        assert stats["vector_dequeued"] == 0

    def test_policy_guardrails(self):
        with pytest.raises(ConfigurationError):
            VectorHWF2QPlus(self._spec(), 8.0, policy="sfq")
        with pytest.raises(ConfigurationError):
            VectorHWF2QPlus(self._spec(), 8.0,
                            policy_overrides={"g": "sfq"})

    def test_factory(self):
        sched = make_vhwf2qplus(self._spec(), 8.0)
        assert isinstance(sched, VectorHWF2QPlus)
        assert sched.name == "VH-WF2Q+"


# ----------------------------------------------------------------------
# Chunked drains
# ----------------------------------------------------------------------
class TestDrainChunk:
    def test_drain_chunk_is_service_invariant(self):
        rng = random.Random(31)
        spec, leaves = random_tree(rng)
        while len(leaves) < 4:
            spec, leaves = random_tree(rng)
        arrivals = float_workload(rng, leaves, bursts=8)

        def transcript(chunk):
            sched = VectorHWF2QPlus(spec, 16.0)
            if chunk is not None:
                sched.drain_chunk = chunk
            out = []
            idx, n = 0, len(arrivals)
            while idx < n or not sched.is_empty:
                next_arr = arrivals[idx][0] if idx < n else None
                if next_arr is not None and (
                        sched.is_empty
                        or next_arr <= max(sched.clock, sched.busy_until)):
                    t, _seq, fid, ln = arrivals[idx]
                    idx += 1
                    sched.enqueue(Packet(fid, ln, arrival_time=t), now=t)
                    continue
                # Link._drain's loop shape: re-enter until the horizon is
                # reached, so a chunk-capped drain just yields in slices.
                while True:
                    records = sched.drain_until(next_arr)
                    out.extend(
                        (r.flow_id, r.start_time, r.finish_time)
                        for r in records)
                    if not records or sched.is_empty:
                        break
                    if (next_arr is not None
                            and records[-1].finish_time >= next_arr):
                        break
            return out

        base = transcript(None)
        for chunk in (1, 3, 64):
            assert transcript(chunk) == base

    def test_snapshot_restore_mid_run(self):
        rng = random.Random(17)
        spec, leaves = random_tree(rng)
        while len(leaves) < 4:
            spec, leaves = random_tree(rng)
        arrivals = float_workload(rng, leaves, bursts=6)
        half = len(arrivals) // 2

        sched = VectorHWF2QPlus(spec, 16.0)
        drive_batched(sched, arrivals[:half])
        for t, _seq, fid, ln in arrivals[half: half + 20]:
            sched.enqueue(Packet(fid, ln, arrival_time=t),
                          now=max(t, sched.clock))
        snap = sched.snapshot()

        tail = [r.flow_id for r in sched.drain_until(sched.clock + 1e9)]
        clone = VectorHWF2QPlus(spec, 16.0)
        clone.restore(snap)
        tail2 = [r.flow_id for r in clone.drain_until(clone.clock + 1e9)]
        assert tail and tail == tail2


# ----------------------------------------------------------------------
# Chunk autotuning
# ----------------------------------------------------------------------
class TestAutotuning:
    def test_recommend_chunk_fixed_histogram(self):
        # One sample per bucket; per-packet cost minimised in the 512+
        # bucket -> the largest choice wins, deterministically.
        samples = [
            (1e-6, 1),        # 1        -> 1000 ns/pkt
            (3e-6, 4),        # 2-7      -> 750
            (20e-6, 40),      # 8-63     -> 500
            (100e-6, 400),    # 64-511   -> 250
            (120e-6, 1200),   # 512+     -> 100
        ]
        assert len(BATCH_BUCKETS) == len(CHUNK_CHOICES)
        for _ in range(3):  # pure function: stable under repetition
            assert recommend_chunk(samples) == CHUNK_CHOICES[-1]

    def test_recommend_chunk_tie_prefers_smaller(self):
        samples = [(1e-6, 1), (4e-6, 4)]  # both 1000 ns/pkt
        assert recommend_chunk(samples) == CHUNK_CHOICES[0]

    def test_recommend_chunk_empty(self):
        assert recommend_chunk([]) is None
        assert recommend_chunk([(1e-6, 0)]) is None

    def test_recommend_chunk_validates_choices(self):
        with pytest.raises(ValueError):
            recommend_chunk([(1e-6, 1)], choices=(1, 2))

    def test_autotuner_applies_and_detaches(self):
        spec = node("root", 1, [leaf("a", 1), leaf("b", 1)])
        sched = VectorHWF2QPlus(spec, 4.0)
        ticks = iter(i * 1e-5 for i in range(10_000))
        tuner = ChunkAutotuner(sched, window=6, clock=lambda: next(ticks))
        assert tuner.attached
        t = 0.0
        for _ in range(3):
            sched.enqueue_batch(
                [Packet("a", 1.0, arrival_time=t) for _ in range(300)]
                + [Packet("b", 1.0, arrival_time=t) for _ in range(300)],
                now=t)
            while not sched.is_empty:
                sched.dequeue_batch(600)
            t = sched.clock + 1.0
        assert not tuner.attached  # window hit -> wrappers removed
        assert tuner.chosen in CHUNK_CHOICES
        assert sched.drain_chunk == tuner.chosen
        # Instance dict is clean: the methods are the class's own again.
        assert "dequeue_batch" not in vars(sched)

    def test_autotuner_no_packets_leaves_chunk_alone(self):
        spec = node("root", 1, [leaf("a", 1), leaf("b", 1)])
        sched = VectorHWF2QPlus(spec, 4.0)
        tuner = ChunkAutotuner(sched, window=2)
        sched.dequeue_batch(4)  # empty scheduler: 0 packets moved
        sched.dequeue_batch(4)
        assert not tuner.attached
        assert tuner.chosen is None
        assert sched.drain_chunk is None


# ----------------------------------------------------------------------
# Sharded runs with the vector backend
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard suite forks its worker pools")
class TestShardVectorBackend:
    def test_vector_digest_invariant_across_shards_and_chunks(self):
        from repro.shard import run_sharded

        params = dict(flows=8, cells=2, duration=0.003, backend="vector")
        base = run_sharded("hier", shards=1, **params)
        for variant in (
            run_sharded("hier", shards=2, mp_context="fork", **params),
            run_sharded("hier", shards=1, chunk=64, **params),
            run_sharded("hier", shards=1, chunk="auto", **params),
        ):
            assert variant["digest"] == base["digest"]

    def test_build_scheduler_rejects_unknown_backend(self):
        from repro.shard.worker import build_scheduler

        spec = {"kind": "flat", "policy": "wf2qplus", "rate": 8.0,
                "flows": [["a", 1], ["b", 1]], "backend": "simd"}
        with pytest.raises(ConfigurationError):
            build_scheduler(spec)

    def test_build_scheduler_vector_flat_requires_wf2qplus(self):
        from repro.shard.worker import build_scheduler

        spec = {"kind": "flat", "policy": "sfq", "rate": 8.0,
                "flows": [["a", 1], ["b", 1]], "backend": "vector"}
        with pytest.raises(ConfigurationError):
            build_scheduler(spec)
