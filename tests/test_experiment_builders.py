"""Coverage for the experiment builders' internal consistency.

The figure benchmarks rely on these invariants; testing them separately
means a parameter edit that silently breaks a scenario fails fast here
rather than as a mysterious shape change in a benchmark.
"""

import pytest

from repro.config.hierarchy_spec import HierarchySpec
from repro.experiments import delay as dexp
from repro.experiments import linksharing as lexp
from repro.experiments.fig2 import FIG2_BURST, FIG2_SESSIONS, _arrivals, _shares


class TestFig2Builder:
    def test_shares_sum_to_one(self):
        total = sum(share for _fid, share in _shares())
        assert total == 1

    def test_arrival_counts(self):
        arrivals = list(_arrivals())
        assert len(arrivals) == FIG2_BURST + (FIG2_SESSIONS - 1)
        assert sum(1 for fid, _l, _t in arrivals if fid == 1) == FIG2_BURST


class TestFig3Builder:
    def test_stated_quantities(self):
        """The quantities the paper states explicitly must hold exactly."""
        spec = dexp.build_fig3_spec()
        # RT-1: share 0.81 of N-1, guaranteed 9 Mbps.
        assert float(spec.normalized_share("RT-1")) == pytest.approx(0.81)
        assert float(spec.guaranteed_rate("RT-1", dexp.FIG3_LINK_RATE)) == \
            pytest.approx(9_000_000)
        # 8 KB packets.
        assert dexp.FIG3_PACKET_LENGTH == 8 * 1024 * 8

    def test_leaf_fractions_sum_to_one(self):
        spec = dexp.build_fig3_spec()
        total = sum(float(spec.guaranteed_fraction(n))
                    for n in spec.leaf_names())
        assert total == pytest.approx(1.0)

    def test_rt1_envelope_is_one_packet(self):
        """Peak == guarantee means emissions are spaced exactly L/rho, so
        sigma is a single packet — the hypothesis of the bound tests."""
        assert dexp.RT1_PEAK == dexp.RT1_GUARANTEED_RATE
        assert dexp.RT1_SIGMA == dexp.FIG3_PACKET_LENGTH

    def test_cs_sources_within_guarantee(self):
        spec = dexp.build_fig3_spec()
        cs_rate = float(spec.guaranteed_rate("CS-1", dexp.FIG3_LINK_RATE))
        avg = dexp.CS_TRAIN_LENGTH * dexp.FIG3_PACKET_LENGTH / dexp.CS_TRAIN_INTERVAL
        assert avg <= cs_rate

    @pytest.mark.parametrize("scenario,n_sources", [(1, 22), (2, 12), (3, 22)])
    def test_source_counts(self, scenario, n_sources):
        assert len(dexp.build_sources(scenario)) == n_sources

    def test_bad_scenario(self):
        with pytest.raises(ValueError):
            dexp.build_sources(9)

    def test_sources_cover_all_leaves_scenario1(self):
        spec = dexp.build_fig3_spec()
        flows = {s.flow_id for s in dexp.build_sources(1)}
        assert flows == set(spec.leaf_names())


class TestFig8Builder:
    def test_tree_structure(self):
        spec = lexp.build_fig8_spec()
        assert isinstance(spec, HierarchySpec)
        assert set(lexp.TCP_FLOWS) <= set(spec.leaf_names())
        # One on/off source per level, at increasing depth.
        assert spec.depth("OO-1") == 1
        assert spec.depth("OO-2") == 2
        assert spec.depth("OO-3") == 3
        assert spec.depth("OO-4") == 4

    def test_schedule_transitions_sorted(self):
        assert lexp.TRANSITIONS == sorted(lexp.TRANSITIONS)
        for name, intervals in lexp.ONOFF_SCHEDULE.items():
            for start, end in intervals:
                assert start in lexp.TRANSITIONS
                assert end is None or end in lexp.TRANSITIONS

    def test_active_onoff_matches_schedule(self):
        assert lexp.active_onoff(1.0) == ["OO-1", "OO-2", "OO-3"]
        assert lexp.active_onoff(5.1) == ["OO-1", "OO-4"]
        assert lexp.active_onoff(5.5) == ["OO-4"]
        assert lexp.active_onoff(9.5) == ["OO-1", "OO-3"]

    def test_ideal_intervals_partition_time(self):
        ivals = lexp.ideal_intervals(10.0)
        assert ivals[0][0] == 0.0 and ivals[-1][1] == 10.0
        for (t1, t2, _a, _d), (t3, _t4, _a2, _d2) in zip(ivals, ivals[1:]):
            assert t2 == t3
        # Demands only cover active on/off sources.
        for _t1, _t2, active, demands in ivals:
            assert set(demands) == {n for n in active if n.startswith("OO")}

    def test_short_run_skips_future_sources(self):
        """Regression: a 2-second run must not instantiate OO-4 (first on
        at t=5) with stop_time before start_time."""
        trace = lexp.run_linksharing("wf2qplus", duration=2.0)
        assert trace.packets_served("OO-4") == 0
        assert trace.packets_served("TCP-1") > 0
