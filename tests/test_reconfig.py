"""Live reconfiguration: set_share, set_link_rate, attach/detach.

The contract (flat and hierarchical alike): start tags persist across a
reconfiguration — they record service already owed — while finish tags,
heap keys and reference times rebase against the new shares/rates, so
eq. (27)'s ``min S_i`` arm and SEFF classification stay consistent.  The
invariant checker runs over every reconfigured workload here.
"""

import random
from fractions import Fraction

import pytest

from repro.config import leaf, node
from repro.config.hierarchy_spec import HierarchySpec
from repro.core import (
    HPFQScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
)
from repro.core.packet import Packet
from repro.errors import (
    ConfigurationError,
    HierarchyError,
    UnknownFlowError,
)
from repro.obs import InvariantChecker

F = Fraction


def build_wf2qplus(rate=F(1000)):
    sched = WF2QPlusScheduler(rate)
    sched.add_flow("a", 1)
    sched.add_flow("b", 1)
    return sched


def build_tree(rate=F(1000), policy="wf2qplus"):
    spec = node("root", 1, [
        node("left", 1, [leaf("a", 1), leaf("b", 1)]),
        node("right", 1, [leaf("c", 2)]),
    ])
    return HPFQScheduler(spec, rate, policy=policy)


def saturate(sched, flows, per_flow=6, length=100, now=F(0)):
    for fid in flows:
        for _ in range(per_flow):
            sched.enqueue(Packet(fid, length), now=now)


class TestFlatSetShare:
    def test_share_change_shifts_service_proportions(self):
        sched = build_wf2qplus()
        sched.attach_observer(InvariantChecker(tolerance=0))
        saturate(sched, "ab", per_flow=20)
        for _ in range(10):
            sched.dequeue()
        sched.set_share("a", 3)
        tail = [sched.dequeue().flow_id for _ in range(20)]
        # 3:1 shares with equal packet lengths → a gets ~3 of every 4 slots.
        assert tail.count("a") >= 13

    def test_start_tags_survive_share_change(self):
        sched = build_wf2qplus()
        saturate(sched, "ab", per_flow=4)
        sched.dequeue()
        state = sched._flows["a"]
        start_before = state.start_tag
        sched.set_share("a", 5)
        assert state.start_tag == start_before
        assert state.finish_tag == start_before + F(100, 1) * state.share \
            or state.finish_tag >= start_before  # policy-specific F = S+L/phi

    def test_noop_and_invalid_shares(self):
        sched = build_wf2qplus()
        gen = sched._share_gen
        sched.set_share("a", 1)          # unchanged → no generation bump
        assert sched._share_gen == gen
        with pytest.raises(ConfigurationError):
            sched.set_share("a", 0)
        with pytest.raises(UnknownFlowError):
            sched.set_share("zz", 2)

    def test_checker_clean_across_random_renegotiations(self):
        sched = build_wf2qplus()
        sched.attach_observer(InvariantChecker(tolerance=0))
        rng = random.Random(6)
        saturate(sched, "ab", per_flow=30)
        for step in range(50):
            if rng.random() < 0.3:
                sched.set_share(rng.choice("ab"), rng.randint(1, 9))
            sched.dequeue()


class TestFlatSetLinkRate:
    def test_rate_change_rescales_future_finishes(self):
        sched = build_wf2qplus(rate=F(1000))
        saturate(sched, "ab", per_flow=2, length=500)
        first = sched.dequeue()
        assert first.finish_time - first.start_time == F(1, 2)
        sched.set_link_rate(F(2000))
        second = sched.dequeue()
        assert second.finish_time - second.start_time == F(1, 4)

    def test_checker_clean_across_rate_flaps(self):
        sched = build_wf2qplus(rate=F(1000))
        sched.attach_observer(InvariantChecker(tolerance=0))
        saturate(sched, "ab", per_flow=10)
        for step in range(16):
            if step == 5:
                sched.set_link_rate(F(500))
            elif step == 11:
                sched.set_link_rate(F(1000))
            sched.dequeue()


class TestExactGPSLimits:
    """WFQ/WF2Q embed a fluid GPS reference; they refuse live surgery."""

    @pytest.mark.parametrize("cls", [WFQScheduler, WF2QScheduler])
    def test_reconfiguration_refused(self, cls):
        sched = cls(F(1000))
        sched.add_flow("a", 1)
        with pytest.raises(ConfigurationError):
            sched.set_share("a", 2)
        with pytest.raises(ConfigurationError):
            sched.set_link_rate(F(2000))
        with pytest.raises(ConfigurationError):
            sched.snapshot()

    @pytest.mark.parametrize("cls", [WFQScheduler, WF2QScheduler])
    def test_tail_drop_allowed_evicting_policies_refused(self, cls):
        sched = cls(F(1000))
        sched.add_flow("a", 1)
        sched.set_buffer_limit("a", 2)            # plain tail-drop is fine
        sched.set_buffer_limit("a", None)
        with pytest.raises(ConfigurationError):
            sched.set_buffer_limit("a", 2, "front")
        with pytest.raises(ConfigurationError):
            sched.set_shared_buffer(4, "longest")


class TestSpecSurgery:
    def build_spec(self):
        return HierarchySpec(node("root", 1, [
            node("left", 1, [leaf("a", 1), leaf("b", 1)]),
            node("right", 1, [leaf("c", 2)]),
        ]))

    def test_set_share(self):
        spec = self.build_spec()
        spec.set_share("left", 5)
        assert spec["left"].share == 5
        with pytest.raises(HierarchyError):
            spec.set_share("root", 2)
        with pytest.raises(HierarchyError):
            spec.set_share("left", 0)

    def test_attach_and_detach(self):
        spec = self.build_spec()
        sub = node("guest", 1, [leaf("g1", 1), leaf("g2", 1)])
        spec.attach("right", sub)
        leaf_names = [n.name for n in spec.leaves]
        assert "g1" in leaf_names and spec.parent("guest").name == "right"
        removed = spec.detach("guest")
        assert removed.name == "guest"
        leaf_names = [n.name for n in spec.leaves]
        assert "g1" not in leaf_names and "guest" not in spec.node_names()

    def test_attach_validates_before_mutating(self):
        spec = self.build_spec()
        with pytest.raises(HierarchyError):
            spec.attach("a", node("x", 1, [leaf("y", 1)]))  # leaf parent
        with pytest.raises(HierarchyError):
            spec.attach("left", node("c", 1, [leaf("d", 1)]))  # name clash
        assert "d" not in spec.node_names()  # nothing half-applied

    def test_detach_protects_root_and_last_child(self):
        spec = self.build_spec()
        with pytest.raises(HierarchyError):
            spec.detach("root")
        with pytest.raises(HierarchyError):
            spec.detach("c")  # would leave "right" childless


class TestHPFQReconfig:
    @pytest.mark.parametrize("policy", ["wf2qplus", "wfq", "scfq", "sfq"])
    def test_leaf_and_interior_share_changes_stay_clean(self, policy):
        sched = build_tree(policy=policy)
        sched.attach_observer(InvariantChecker(tolerance=0))
        saturate(sched, "abc", per_flow=10)
        for step in range(24):
            if step == 4:
                sched.set_share("a", 4)
            elif step == 9:
                sched.set_share("left", 3)   # interior class
            elif step == 15:
                sched.set_share("right", 2)
            sched.dequeue()

    def test_leaf_share_shifts_service(self):
        sched = build_tree()
        saturate(sched, "ab", per_flow=24)
        for _ in range(4):
            sched.dequeue()
        sched.set_share("a", 7)
        tail = [sched.dequeue().flow_id for _ in range(16)]
        assert tail.count("a") > tail.count("b")

    def test_link_rate_change_stays_clean(self):
        sched = build_tree()
        sched.attach_observer(InvariantChecker(tolerance=0))
        saturate(sched, "abc", per_flow=6)
        for step in range(18):
            if step == 6:
                sched.set_link_rate(F(400))
            elif step == 12:
                sched.set_link_rate(F(1000))
            sched.dequeue()

    def test_set_share_validation(self):
        sched = build_tree()
        with pytest.raises(HierarchyError):
            sched.set_share("nope", 2)
        with pytest.raises(ConfigurationError):
            sched.set_share("root", 2)
        with pytest.raises(ConfigurationError):
            sched.set_share("a", -1)

    def test_attach_route_traffic_detach(self):
        sched = build_tree()
        sched.attach_observer(InvariantChecker(tolerance=0))
        saturate(sched, "abc", per_flow=3)
        sched.dequeue()
        sub = node("guest", 2, [leaf("g", 1)])
        sched.attach_subtree("right", sub)
        now = sched.clock
        sched.enqueue(Packet("g", 100), now=now)
        sched.enqueue(Packet("g", 100), now=now)
        served = [rec.flow_id for rec in sched.drain()]
        assert served.count("g") == 2
        sched.sync()  # settle the deferred final RESET-PATH
        sched.detach_subtree("guest")
        assert "g" not in sched.flow_ids
        # The tree keeps working after the surgery.
        sched.enqueue(Packet("a", 100), now=sched.clock)
        assert sched.dequeue().flow_id == "a"

    def test_detach_refuses_backlogged_subtree(self):
        sched = build_tree()
        sched.enqueue(Packet("c", 100), now=F(0))
        with pytest.raises(ConfigurationError):
            sched.detach_subtree("right")

    def test_attach_rejects_duplicate_names(self):
        sched = build_tree()
        with pytest.raises(HierarchyError):
            sched.attach_subtree("right", node("left", 1, [leaf("q", 1)]))

    def test_reattach_same_name_after_detach(self):
        sched = build_tree()
        sub = node("guest", 1, [leaf("g", 1)])
        sched.attach_subtree("right", sub)
        sched.enqueue(Packet("g", 100), now=F(0))
        sched.dequeue()
        sched.sync()
        sched.detach_subtree("guest")
        sched.attach_subtree("left", node("guest", 1, [leaf("g", 1)]))
        sched.enqueue(Packet("g", 100), now=sched.clock)
        assert sched.dequeue().flow_id == "g"
