"""Vector-backend engagement guards re-checked on *every* batch call.

The columnar kernels (:class:`~repro.core.batch.VectorWF2QPlus`,
:class:`~repro.core.hbatch.VectorHWF2QPlus`) bypass the event bus and
the buffer-cap bookkeeping, so they may only run while neither exists.
The original guard was evaluated once; these are the regression tests
for the mid-run cases: an observer or buffer limit attached *between*
batch calls must disengage the kernel from the very next call onward
(and detaching the observer may re-engage it) — with the served schedule
identical either way.
"""

from repro.core.batch import VectorWF2QPlus
from repro.core.hbatch import VectorHWF2QPlus
from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.config import leaf, node
from repro.obs import MetricsSink, RingBufferSink

N = 32  # comfortably above BATCH_KERNEL_MIN


def burst(fids, length=1.0, t=0.0, base=0):
    return [Packet(fid, length, arrival_time=t, seqno=base + i)
            for i, fid in enumerate(list(fids) * (N // len(fids)))]


def flat(cls=VectorWF2QPlus):
    s = cls(8.0)
    for fid in "abcd":
        s.add_flow(fid, 1)
    return s


def tree():
    return node("root", 1, [
        node("g", 1, [leaf("a", 1), leaf("b", 1)]),
        leaf("c", 2),
    ])


# ----------------------------------------------------------------------
# Hierarchical: counters prove per-call re-evaluation
# ----------------------------------------------------------------------
class TestHierMidRun:
    def test_observer_attached_mid_run_disengages_next_batch(self):
        vec = VectorHWF2QPlus(tree(), 8.0)
        vec.enqueue_batch(burst("ab"), now=0.0)
        vec.dequeue_batch(N)
        engaged = vec.vector_stats()
        assert engaged["vector_dequeued"] > 0

        sink = RingBufferSink()
        vec.attach_observer(sink)  # mid-run, between batch calls
        vec.enqueue_batch(burst("ab", t=10.0, base=100), now=10.0)
        vec.dequeue_batch(N)
        after = vec.vector_stats()
        # Not one more packet through the kernels...
        assert after["vector_enqueued"] == engaged["vector_enqueued"]
        assert after["vector_dequeued"] == engaged["vector_dequeued"]
        assert after["exact_dequeued"] >= engaged["exact_dequeued"] + N
        # ...and the exact path really published the second burst.
        kinds = [e.kind for e in sink.events()]
        assert kinds.count("enqueue") == N and kinds.count("dequeue") == N

    def test_detaching_observer_reengages(self):
        vec = VectorHWF2QPlus(tree(), 8.0)
        sink = MetricsSink()
        vec.attach_observer(sink)
        vec.enqueue_batch(burst("ab"), now=0.0)
        vec.dequeue_batch(N)
        assert vec.vector_stats()["vector_dequeued"] == 0

        vec.detach_observer(sink)
        vec.enqueue_batch(burst("ab", t=10.0, base=100), now=10.0)
        vec.dequeue_batch(N)
        assert vec.vector_stats()["vector_dequeued"] > 0

    def test_buffer_limit_set_mid_run_disengages_and_enforces(self):
        vec = VectorHWF2QPlus(tree(), 8.0)
        vec.enqueue_batch(burst("ab"), now=0.0)
        vec.dequeue_batch(N)
        engaged = vec.vector_stats()

        vec.set_buffer_limit("a", 2)
        accepted = vec.enqueue_batch(burst("a", t=10.0, base=100), now=10.0)
        after = vec.vector_stats()
        assert after["vector_enqueued"] == engaged["vector_enqueued"]
        assert accepted == 2  # the cap is enforced, not bypassed
        assert vec.drops("a") == N - 2

        # Clearing the cap re-engages from the next call onward.
        vec.dequeue_batch(N)
        vec.set_buffer_limit("a", None)
        vec.enqueue_batch(burst("ab", t=20.0, base=200), now=20.0)
        assert vec.vector_stats()["vector_enqueued"] \
            > after["vector_enqueued"]


# ----------------------------------------------------------------------
# Flat: behavior proves it (no engagement counters on this backend)
# ----------------------------------------------------------------------
class TestFlatMidRun:
    def test_observer_attached_mid_run_sees_every_later_packet(self):
        """The kernel bypasses the event bus, so events for post-attach
        batches are only possible if the guard disengaged it."""
        vec = flat()
        vec.enqueue_batch(burst("abcd"), now=0.0)
        vec.dequeue_batch(N)

        sink = RingBufferSink()
        vec.attach_observer(sink)
        vec.enqueue_batch(burst("abcd", t=10.0, base=100), now=10.0)
        vec.dequeue_batch(N)
        kinds = [e.kind for e in sink.events()]
        assert kinds.count("enqueue") == N
        assert kinds.count("dequeue") == N

    def test_drain_until_also_guarded(self):
        vec = flat()
        vec.enqueue_batch(burst("abcd"), now=0.0)
        sink = RingBufferSink()
        vec.attach_observer(sink)
        vec.drain_until(limit=None)
        assert sum(e.kind == "dequeue" for e in sink.events()) == N

    def test_buffer_limit_set_mid_run_enforced_on_next_batch(self):
        vec = flat()
        vec.enqueue_batch(burst("abcd"), now=0.0)
        vec.dequeue_batch(N)

        vec.set_buffer_limit("a", 3)
        accepted = vec.enqueue_batch(burst("a", t=10.0, base=100), now=10.0)
        assert accepted == 3
        assert vec.drops("a") == N - 3

    def test_schedule_identical_across_mid_run_attach(self):
        """Disengaging mid-run must not perturb service: the vector run
        with a mid-run attach matches the exact scheduler transcript."""
        def drive(s):
            out = []
            s.enqueue_batch(burst("abcd"), now=0.0)
            out += s.dequeue_batch(N)
            if hasattr(s, "_cols"):  # the vector backend under test
                s.attach_observer(MetricsSink())
            s.enqueue_batch(burst("abcd", t=10.0, base=100), now=10.0)
            out += s.dequeue_batch(N)
            return [(r.packet.flow_id, r.packet.seqno, r.start_time,
                     r.finish_time) for r in out]

        exact = WF2QPlusScheduler(8.0)
        for fid in "abcd":
            exact.add_flow(fid, 1)
        assert drive(flat()) == drive(exact)
