"""Tests for the repro.bench perf-regression harness."""

import json

import pytest

from repro.bench import (
    BenchPoint,
    compare,
    format_compare,
    format_markdown,
    format_table,
    load,
    merge_best,
    parallel_map,
    point_key,
    run_scenarios,
    run_scenarios_parallel,
    save,
    to_payload,
)
from repro.bench.parallel import scenario_seed
from repro.bench.scenarios import SCENARIOS
from repro.cli import main


def _double(x):
    """Module-level (hence picklable) worker for parallel_map tests."""
    return 2 * x


def _payload(costs):
    """costs: {(scenario, scheduler, params_tuple): ns_per_packet}."""
    points = [
        BenchPoint(scenario, scheduler, dict(params), 1000, cost)
        for (scenario, scheduler, params), cost in costs.items()
    ]
    return to_payload(points)


BASE = {
    ("churn", "WF2Q+", (("flows", 64),)): 1000.0,
    ("churn", "WF2Q+", (("flows", 256),)): 2000.0,
    ("zoo", "FIFO", (("flows", 64),)): 100.0,
}


class TestPointKey:
    def test_params_order_insensitive(self):
        a = BenchPoint("s", "x", {"a": 1, "b": 2})
        b = {"scenario": "s", "scheduler": "x", "params": {"b": 2, "a": 1}}
        assert point_key(a) == point_key(b)

    def test_distinct_params_distinct_keys(self):
        a = BenchPoint("s", "x", {"flows": 64})
        b = BenchPoint("s", "x", {"flows": 256})
        assert point_key(a) != point_key(b)


class TestCompare:
    def test_no_regression_within_threshold(self):
        new = _payload({k: v * 1.2 for k, v in BASE.items()})
        rows, regressions = compare(_payload(BASE), new, threshold=0.25)
        assert regressions == []
        assert all(r["status"] == "ok" for r in rows)

    def test_injected_slowdown_is_flagged(self):
        costs = dict(BASE)
        costs[("churn", "WF2Q+", (("flows", 256),))] = 2000.0 * 1.4
        rows, regressions = compare(_payload(BASE), _payload(costs),
                                    threshold=0.25)
        assert len(regressions) == 1
        assert regressions[0]["params"] == {"flows": 256}
        assert regressions[0]["ratio"] == pytest.approx(1.4)

    def test_exactly_at_threshold_passes(self):
        costs = {k: v * 1.25 for k, v in BASE.items()}
        _rows, regressions = compare(_payload(BASE), _payload(costs),
                                     threshold=0.25)
        assert regressions == []

    def test_improvement_is_ok(self):
        costs = {k: v * 0.5 for k, v in BASE.items()}
        _rows, regressions = compare(_payload(BASE), _payload(costs))
        assert regressions == []

    def test_new_and_missing_points_are_not_failures(self):
        costs = dict(BASE)
        del costs[("zoo", "FIFO", (("flows", 64),))]
        costs[("zoo", "DRR", (("flows", 64),))] = 50.0
        rows, regressions = compare(_payload(BASE), _payload(costs))
        assert regressions == []
        statuses = {(r["scenario"], r["scheduler"]): r["status"]
                    for r in rows}
        assert statuses[("zoo", "DRR")] == "new"
        assert statuses[("zoo", "FIFO")] == "missing"

    def test_format_compare_mentions_failure(self):
        costs = {k: v * 2 for k, v in BASE.items()}
        rows, _regs = compare(_payload(BASE), _payload(costs))
        text = format_compare(rows)
        assert "FAIL" in text and "regression" in text


class TestMergeBest:
    def test_minimum_per_point_wins(self):
        a = [BenchPoint("s", "x", {"n": 1}, 10, 200.0),
             BenchPoint("s", "y", {"n": 1}, 10, 50.0)]
        b = [BenchPoint("s", "x", {"n": 1}, 10, 150.0),
             BenchPoint("s", "y", {"n": 1}, 10, 80.0)]
        merged = {(p.scheduler): p.ns_per_packet for p in merge_best(a, b)}
        assert merged == {"x": 150.0, "y": 50.0}

    def test_disjoint_points_are_kept(self):
        a = [BenchPoint("s", "x", {"n": 1}, 10, 100.0)]
        b = [BenchPoint("t", "x", {"n": 1}, 10, 100.0)]
        assert len(merge_best(a, b)) == 2


class TestProvenance:
    def test_payload_records_platform(self):
        info = to_payload([])["platform"]
        assert set(info) == {
            "system", "release", "machine", "processor", "cpu_count"}
        assert isinstance(info["cpu_count"], int) and info["cpu_count"] >= 1

    def test_payload_records_dirty_flag(self):
        # True/False from `git status --porcelain`, None when git is
        # unavailable — all three are valid provenance, absence is not.
        payload = to_payload([])
        assert "dirty" in payload
        assert payload["dirty"] in (True, False, None)

    def test_dirty_flag_reflects_porcelain_output(self, monkeypatch):
        import repro.bench.harness as harness

        class Done:
            returncode = 0
            stdout = " M src/repro/bench/harness.py\n"

        monkeypatch.setattr(harness.subprocess, "run",
                            lambda *args, **kwargs: Done())
        assert harness._git_dirty() is True
        Done.stdout = "\n"
        assert harness._git_dirty() is False

    def test_dirty_flag_unknown_without_git(self, monkeypatch):
        import repro.bench.harness as harness

        def boom(*args, **kwargs):
            raise OSError("no git binary")

        monkeypatch.setattr(harness.subprocess, "run", boom)
        assert harness._git_dirty() is None

    def test_packets_per_sec_is_derived_from_cost(self):
        point = BenchPoint("s", "x", {}, 10, 2000.0)
        assert point.packets_per_sec == pytest.approx(500_000.0)
        assert point.to_dict()["packets_per_sec"] == 500_000.0

    def test_zero_cost_has_zero_throughput(self):
        assert BenchPoint("s", "x", {}, 0, 0.0).packets_per_sec == 0.0

    def test_from_dict_ignores_derived_field(self):
        d = BenchPoint("s", "x", {"n": 1}, 10, 2000.0).to_dict()
        back = BenchPoint.from_dict(d)
        assert back.ns_per_packet == 2000.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        points = [BenchPoint("s", "x", {"flows": 4}, 10, 123.456)]
        path = tmp_path / "bench.json"
        payload = save(points, path)
        loaded = load(path)
        assert loaded["version"] == payload["version"]
        assert loaded["scenarios"] == payload["scenarios"]
        assert loaded["scenarios"][0]["ns_per_packet"] == 123.5  # rounded
        assert "python" in loaded and "git_rev" in loaded
        assert "platform" in loaded

    def test_load_rejects_non_bench_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load(path)

    def test_format_table_and_markdown(self):
        points = [BenchPoint("s", "x", {"flows": 4}, 10, 100.0)]
        assert "flows=4" in format_table(points)
        md = format_markdown(points)
        assert md.startswith("| scenario |")
        assert "| s | x | flows=4 | 100 |" in md


class TestRunScenarios:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            run_scenarios(names=["nope"])

    def test_fake_scenario_runs(self, monkeypatch):
        monkeypatch.setitem(
            SCENARIOS, "fake",
            lambda quick: [BenchPoint("fake", "x", {}, 1, 5.0)])
        points = run_scenarios(names=["fake"])
        assert len(points) == 1
        assert points[0].scenario == "fake"


class TestParallel:
    """The process-parallel sweep runner (``--jobs N``)."""

    @pytest.fixture
    def two_fakes(self, monkeypatch):
        monkeypatch.setitem(
            SCENARIOS, "fake_a",
            lambda quick: [BenchPoint("fake_a", "x", {}, 1, 5.0)])
        monkeypatch.setitem(
            SCENARIOS, "fake_b",
            lambda quick: [BenchPoint("fake_b", "y", {}, 1, 7.0)])

    def test_seed_is_deterministic_and_name_keyed(self):
        assert scenario_seed("hierarchy") == scenario_seed("hierarchy")
        assert scenario_seed("hierarchy") != scenario_seed("zoo")
        assert 0 <= scenario_seed("hierarchy") < 2**32

    def test_seed_mixes_the_request_index(self):
        # Collision safety: even if two names shared a crc32, their seeds
        # differ because the request position is mixed in.
        assert scenario_seed("hierarchy", 0) != scenario_seed("hierarchy", 1)
        assert scenario_seed("hierarchy", 3) == scenario_seed("hierarchy", 3)
        for index in range(8):
            assert 0 <= scenario_seed("zoo", index) < 2**32

    def test_duplicate_scenario_names_are_rejected(self, two_fakes):
        with pytest.raises(ValueError, match="duplicate"):
            run_scenarios_parallel(names=["fake_a", "fake_b", "fake_a"],
                                   jobs=2, mp_context="fork")

    def test_jobs_one_degrades_to_sequential(self, two_fakes):
        points = run_scenarios_parallel(names=["fake_b", "fake_a"], jobs=1)
        assert [p.scenario for p in points] == ["fake_b", "fake_a"]

    def test_unknown_scenario_raises_before_forking(self):
        with pytest.raises(ValueError):
            run_scenarios_parallel(names=["nope"], jobs=2)

    def test_pool_matches_sequential_set_and_order(self, two_fakes):
        # fork context: the workers inherit the monkeypatched SCENARIOS.
        sequential = run_scenarios(names=["fake_b", "fake_a"])
        parallel = run_scenarios_parallel(
            names=["fake_b", "fake_a"], jobs=2, mp_context="fork")
        assert ([point_key(p) for p in parallel]
                == [point_key(p) for p in sequential])

    def test_progress_callback_fires_per_scenario(self, two_fakes):
        seen = []
        run_scenarios_parallel(
            names=["fake_a", "fake_b"], jobs=2, mp_context="fork",
            progress=seen.append)
        assert sorted(seen) == ["fake_a", "fake_b"]

    def test_parallel_map_preserves_input_order(self):
        items = [3, 1, 2, 5]
        assert parallel_map(_double, items, jobs=1) == [6, 2, 4, 10]
        assert (parallel_map(_double, items, jobs=2, mp_context="fork")
                == [6, 2, 4, 10])


class TestCLI:
    """The ``python -m repro bench`` entry point, with a stub scenario."""

    @pytest.fixture
    def fake_scenario(self, monkeypatch):
        monkeypatch.setitem(
            SCENARIOS, "fake",
            lambda quick: [BenchPoint("fake", "WF2Q+", {"flows": 4},
                                      100, 1000.0)])

    def test_bench_writes_output(self, fake_scenario, tmp_path, capsys):
        out = tmp_path / "out.json"
        rc = main(["bench", "--scenario", "fake", "-o", str(out)])
        assert rc == 0
        assert load(out)["scenarios"][0]["scenario"] == "fake"
        assert "fake" in capsys.readouterr().out

    def test_compare_ok_exits_zero(self, fake_scenario, tmp_path):
        baseline = tmp_path / "base.json"
        save([BenchPoint("fake", "WF2Q+", {"flows": 4}, 100, 1000.0)],
             baseline)
        assert main(["bench", "--scenario", "fake",
                     "--compare", str(baseline)]) == 0

    def test_compare_injected_slowdown_exits_nonzero(self, fake_scenario,
                                                     tmp_path, capsys):
        # Baseline claims the point used to cost 1000/1.4 ns: the stubbed
        # current measurement of 1000 ns is a +40% "slowdown".
        baseline = tmp_path / "base.json"
        save([BenchPoint("fake", "WF2Q+", {"flows": 4}, 100, 1000.0 / 1.4)],
             baseline)
        rc = main(["bench", "--scenario", "fake",
                   "--compare", str(baseline)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_quick_mode_still_gates(self, fake_scenario, tmp_path,
                                            capsys):
        # --quick trims the workloads, never the enforcement: a regressed
        # point must fail the run with the same non-zero exit that a
        # full-mode measurement would produce (the CI perf-smoke job
        # relies on this).
        baseline = tmp_path / "base.json"
        save([BenchPoint("fake", "WF2Q+", {"flows": 4}, 100, 1000.0 / 1.4)],
             baseline)
        rc = main(["bench", "--quick", "--scenario", "fake",
                   "--compare", str(baseline)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_noise_retry_rescues_a_transient_spike(self, monkeypatch,
                                                   tmp_path, capsys):
        # First measurement of the point is a 2x noise spike; the retry
        # pass re-measures at the true cost and the compare passes.
        samples = iter([2000.0, 1000.0])
        monkeypatch.setitem(
            SCENARIOS, "fake",
            lambda quick: [BenchPoint("fake", "WF2Q+", {"flows": 4},
                                      100, next(samples))])
        baseline = tmp_path / "base.json"
        save([BenchPoint("fake", "WF2Q+", {"flows": 4}, 100, 1000.0)],
             baseline)
        rc = main(["bench", "--scenario", "fake",
                   "--compare", str(baseline)])
        assert rc == 0
        assert "re-measuring" in capsys.readouterr().out

    def test_compare_respects_threshold_flag(self, fake_scenario, tmp_path):
        baseline = tmp_path / "base.json"
        save([BenchPoint("fake", "WF2Q+", {"flows": 4}, 100, 1000.0 / 1.4)],
             baseline)
        assert main(["bench", "--scenario", "fake", "--threshold", "0.5",
                     "--compare", str(baseline)]) == 0

    def test_unknown_scenario_exits_two(self, fake_scenario):
        assert main(["bench", "--scenario", "nope"]) == 2

    def test_missing_baseline_exits_two(self, fake_scenario, tmp_path):
        assert main(["bench", "--scenario", "fake",
                     "--compare", str(tmp_path / "absent.json")]) == 2

    def test_real_quick_scenario_smoke(self, tmp_path):
        """One real (tiny) sweep through the harness end to end."""
        out = tmp_path / "real.json"
        rc = main(["bench", "--quick", "--scenario", "saturated_churn",
                   "-o", str(out)])
        assert rc == 0
        payload = load(out)
        assert {p["scenario"] for p in payload["scenarios"]} == {
            "saturated_churn"}
        assert all(p["ns_per_packet"] > 0 for p in payload["scenarios"])

    def test_jobs_flag_produces_same_points_as_sequential(self, tmp_path):
        """--jobs 2 must emit the identical point grid (modulo timings)."""
        seq, par = tmp_path / "seq.json", tmp_path / "par.json"
        assert main(["bench", "--quick", "--scenario", "saturated_churn",
                     "-o", str(seq)]) == 0
        assert main(["bench", "--quick", "--scenario", "saturated_churn",
                     "--jobs", "2", "-o", str(par)]) == 0
        keys = lambda path: [point_key(p)  # noqa: E731
                             for p in load(path)["scenarios"]]
        assert keys(par) == keys(seq)

    def test_jobs_rejects_non_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--jobs", "0"])
