"""Graceful degradation: drop-front, longest-queue-drop, conservation.

The invariants under pressure: the conservation ledger
``arrivals == departures + drops + backlog`` balances exactly through any
mix of rejections and evictions; an eviction retags the queue so the
survivor inherits the evicted head's start tag (service owed is never
forfeited); and the hierarchical scheduler never evicts a committed
logical head — those packets carry tags adopted up the tree.
"""

from fractions import Fraction

import pytest

from repro.config import leaf, node
from repro.core import FIFOScheduler, HPFQScheduler, WF2QPlusScheduler
from repro.core.packet import Packet
from repro.errors import ConfigurationError
from repro.obs import InvariantChecker, RingBufferSink

F = Fraction


def build(cls=WF2QPlusScheduler, flows=("a", "b"), rate=F(1000)):
    sched = cls(rate)
    for fid in flows:
        sched.add_flow(fid, 1)
    return sched


class TestPerFlowPolicies:
    def test_tail_drop_rejects_arrival(self):
        sched = build()
        sched.set_buffer_limit("a", 2)
        assert sched.enqueue(Packet("a", 100, seqno=0), now=0)
        assert sched.enqueue(Packet("a", 100, seqno=1), now=0)
        assert not sched.enqueue(Packet("a", 100, seqno=2), now=0)
        assert sched.drops("a") == 1
        served = [rec.packet.seqno for rec in sched.drain()]
        assert served == [0, 1]

    def test_drop_front_evicts_oldest_accepts_arrival(self):
        sched = build()
        sched.set_buffer_limit("a", 2, "front")
        for seq in range(4):
            assert sched.enqueue(Packet("a", 100, seqno=seq), now=0)
        assert sched.drops("a") == 2
        served = [rec.packet.seqno for rec in sched.drain()]
        assert served == [2, 3]   # oldest packets went overboard

    def test_drop_front_retags_survivor(self):
        """The survivor inherits the evicted head's start tag."""
        sched = build()
        sched.set_buffer_limit("a", 1, "front")
        sched.enqueue(Packet("a", 100), now=0)
        sched.enqueue(Packet("b", 100), now=0)
        state = sched._flows["a"]
        start_before = state.start_tag
        sched.enqueue(Packet("a", 400), now=0)  # evicts the queued 100-bit
        assert state.start_tag == start_before
        # F = S + L/r_i with r_i = 1000 * (1/2) = 500.
        assert float(state.finish_tag) == pytest.approx(
            float(start_before) + 400 / 500)

    def test_policy_validation(self):
        sched = build()
        with pytest.raises(ConfigurationError):
            sched.set_buffer_limit("a", 0)
        with pytest.raises(ConfigurationError):
            sched.set_buffer_limit("a", 2, "sideways")
        with pytest.raises(ConfigurationError):
            sched.set_shared_buffer(2, "front")  # per-flow-only policy

    def test_removing_cap_restores_admission(self):
        sched = build()
        sched.set_buffer_limit("a", 1)
        sched.enqueue(Packet("a", 100), now=0)
        assert not sched.enqueue(Packet("a", 100), now=0)
        sched.set_buffer_limit("a", None)
        assert sched.enqueue(Packet("a", 100), now=0)


class TestSharedBuffer:
    def test_lqd_evicts_tail_of_longest_queue(self):
        sched = build()
        sched.set_shared_buffer(4, "longest")
        for seq in range(3):
            sched.enqueue(Packet("a", 100, seqno=seq), now=0)
        sched.enqueue(Packet("b", 100, seqno=0), now=0)
        # Buffer full; b's arrival evicts a's newest packet (seqno 2).
        assert sched.enqueue(Packet("b", 100, seqno=1), now=0)
        assert sched.drops("a") == 1 and sched.drops("b") == 0
        served = [(rec.flow_id, rec.packet.seqno) for rec in sched.drain()]
        assert ("a", 2) not in served
        assert served.count(("a", 0)) == 1

    def test_shared_tail_rejects_arrival(self):
        sched = build()
        sched.set_shared_buffer(2)
        sched.enqueue(Packet("a", 100), now=0)
        sched.enqueue(Packet("b", 100), now=0)
        assert not sched.enqueue(Packet("a", 100), now=0)
        assert sched.backlog == 2


class TestConservation:
    def test_ledger_balances_through_mixed_drops(self):
        sched = build(flows=("a", "b", "c"))
        checker = InvariantChecker(tolerance=0)
        sched.attach_observer(checker)
        sched.set_buffer_limit("a", 2, "front")
        sched.set_buffer_limit("b", 1)
        sched.set_shared_buffer(5, "longest")
        for wave in range(6):
            for fid in "abc":
                sched.enqueue(Packet(fid, 100), now=wave)
            if wave % 2:
                sched.dequeue()
        sched.drain()
        ledger = sched.conservation()
        assert ledger["balanced"]
        assert ledger["drops"] > 0 and ledger["backlog"] == 0
        assert ledger["arrivals"] == 18

    def test_lifetime_drops_survive_flow_removal(self):
        sched = build()
        sched.set_buffer_limit("a", 1)
        sched.enqueue(Packet("a", 100), now=0)
        sched.enqueue(Packet("a", 100), now=0)  # dropped
        sched.drain()
        sched.remove_flow("a")
        ledger = sched.conservation()
        assert ledger["balanced"] and ledger["drops"] == 1
        assert sched.drops() == 0  # the *current* total followed the flow

    def test_drop_events_carry_policy_and_eviction_flag(self):
        sched = build()
        ring = RingBufferSink()
        sched.attach_observer(ring)
        sched.set_buffer_limit("a", 1, "front")
        sched.set_buffer_limit("b", 1)
        sched.enqueue(Packet("a", 100), now=0)
        sched.enqueue(Packet("a", 100), now=0)   # front eviction
        sched.enqueue(Packet("b", 100), now=0)
        sched.enqueue(Packet("b", 100), now=0)   # tail rejection
        drops = [e for e in ring.events() if e.kind == "drop"]
        assert [(e.policy, e.evicted) for e in drops] == [
            ("front", True), ("tail", False)]


class TestFIFODegradation:
    def test_fifo_supports_caps_too(self):
        sched = build(cls=FIFOScheduler)
        sched.set_buffer_limit("a", 1, "front")
        sched.enqueue(Packet("a", 100, seqno=0), now=0)
        sched.enqueue(Packet("a", 100, seqno=1), now=0)
        assert [r.packet.seqno for r in sched.drain()] == [1]
        assert sched.conservation()["balanced"]


class TestHPFQCommittedHead:
    def build_tree(self):
        spec = node("root", 1, [
            node("g", 1, [leaf("a", 1), leaf("b", 1)]),
        ])
        return HPFQScheduler(spec, F(1000))

    def test_drop_front_spares_committed_head(self):
        sched = self.build_tree()
        sched.attach_observer(InvariantChecker(tolerance=0))
        sched.set_buffer_limit("a", 1, "front")
        sched.enqueue(Packet("a", 100, seqno=0), now=0)
        # seqno 0 is the committed logical head (tags adopted up the tree):
        # drop-front must refuse to evict it and reject the arrival instead.
        assert not sched.enqueue(Packet("a", 100, seqno=1), now=0)
        assert sched.drops("a") == 1
        assert [r.packet.seqno for r in sched.drain()] == [0]
        assert sched.conservation()["balanced"]

    def test_drop_front_evicts_behind_committed_head(self):
        sched = self.build_tree()
        sched.attach_observer(InvariantChecker(tolerance=0))
        sched.set_buffer_limit("a", 2, "front")
        sched.enqueue(Packet("a", 100, seqno=0), now=0)
        sched.enqueue(Packet("a", 100, seqno=1), now=0)
        # Queue full: slot 0 is committed, so slot 1 (seqno 1) goes.
        assert sched.enqueue(Packet("a", 100, seqno=2), now=0)
        assert [r.packet.seqno for r in sched.drain()] == [0, 2]
        assert sched.conservation()["balanced"]

    def test_lqd_skips_single_packet_committed_queues(self):
        sched = self.build_tree()
        sched.attach_observer(InvariantChecker(tolerance=0))
        sched.set_shared_buffer(2, "longest")
        sched.enqueue(Packet("a", 100), now=0)
        sched.enqueue(Packet("b", 100), now=0)
        # Both queues hold exactly their committed head; LQD finds no
        # victim and falls back to rejecting the arrival.
        assert not sched.enqueue(Packet("b", 100), now=0)
        assert sched.backlog == 2
        served = [r.flow_id for r in sched.drain()]
        assert sorted(served) == ["a", "b"]
        assert sched.conservation()["balanced"]

    def test_overload_under_checker_stays_clean(self):
        sched = self.build_tree()
        sched.attach_observer(InvariantChecker(tolerance=0))
        sched.set_shared_buffer(4, "longest")
        now = F(0)
        for wave in range(12):
            sched.enqueue(Packet("a", 100), now=now)
            sched.enqueue(Packet("b", 100), now=now)
            if wave % 3 == 0:
                rec = sched.dequeue()
                now = rec.finish_time
        sched.drain()
        assert sched.conservation()["balanced"]
