"""Tests for the low-complexity baselines: SCFQ, SFQ, and DRR."""

from fractions import Fraction as Fr

import pytest

from repro.core.drr import DRRScheduler
from repro.core.packet import Packet
from repro.core.scfq import SCFQScheduler
from repro.core.sfq import SFQScheduler
from repro.errors import ConfigurationError

from tests.conftest import assert_fifo_per_flow, assert_no_overlap


def fill(s, per_flow, length=Fr(1)):
    for fid, n in per_flow.items():
        for k in range(n):
            s.enqueue(Packet(fid, length, seqno=k), now=Fr(0))


class TestSCFQ:
    def make(self):
        s = SCFQScheduler(Fr(4))
        s.add_flow("a", 3)
        s.add_flow("b", 1)
        return s

    def test_virtual_time_self_clocks(self):
        s = self.make()
        fill(s, {"a": 2, "b": 2})
        rec = s.dequeue()
        # V jumps to the finish tag of the packet entering service.
        assert s.virtual_time() == rec.virtual_finish

    def test_sff_by_finish_tag(self):
        s = self.make()
        fill(s, {"a": 4, "b": 1})
        order = [r.flow_id for r in s.drain()]
        # a's tags: 1/3, 2/3, 1, 4/3; b's: 1 -> a, a, a(tie reg order), b, a
        assert order == ["a", "a", "a", "b", "a"]

    def test_long_run_share(self):
        s = self.make()
        fill(s, {"a": 90, "b": 30})
        served = {"a": 0, "b": 0}
        for rec in s.drain():
            if rec.finish_time <= Fr(30):
                served[rec.flow_id] += 1
        assert abs(served["a"] - 3 * served["b"]) <= 4

    def test_busy_period_reset(self):
        s = self.make()
        fill(s, {"a": 1})
        s.drain()
        s.enqueue(Packet("a", Fr(1)), now=Fr(100))
        assert s.virtual_time() == 0

    def test_fifo_no_overlap(self):
        s = self.make()
        fill(s, {"a": 5, "b": 5})
        records = s.drain()
        assert_fifo_per_flow(records)
        assert_no_overlap(records, Fr(4))


class TestSFQ:
    def make(self):
        s = SFQScheduler(Fr(4))
        s.add_flow("a", 3)
        s.add_flow("b", 1)
        return s

    def test_orders_by_start_tag(self):
        s = self.make()
        fill(s, {"a": 3, "b": 2})
        order = [r.flow_id for r in s.drain()]
        # starts: a: 0, 1/3, 2/3; b: 0, 1.
        assert order == ["a", "b", "a", "a", "b"]

    def test_virtual_time_is_start_tag(self):
        s = self.make()
        fill(s, {"a": 1})
        rec = s.dequeue()
        assert s.virtual_time() == rec.virtual_start

    def test_long_run_share(self):
        s = self.make()
        fill(s, {"a": 90, "b": 30})
        served = {"a": 0, "b": 0}
        for rec in s.drain():
            if rec.finish_time <= Fr(30):
                served[rec.flow_id] += 1
        assert abs(served["a"] - 3 * served["b"]) <= 4


class TestDRR:
    def make(self, mtu=100):
        s = DRRScheduler(rate=1000, mtu=mtu)
        s.add_flow("a", 2)
        s.add_flow("b", 1)
        return s

    def test_bad_mtu(self):
        with pytest.raises(ConfigurationError):
            DRRScheduler(1000, mtu=0)

    def test_quantum_proportional_round(self):
        s = self.make(mtu=100)
        # a's quantum 200, b's 100; packets of 100 bits.
        for k in range(6):
            s.enqueue(Packet("a", 100, seqno=k), now=0)
            s.enqueue(Packet("b", 100, seqno=k), now=0)
        order = [r.flow_id for r in s.drain()][:9]
        # Round 1: a a b, round 2: a a b ...
        assert order == ["a", "a", "b"] * 3

    def test_deficit_accumulates_for_large_packets(self):
        s = DRRScheduler(rate=1000, mtu=100)
        s.add_flow("big", 1)
        s.add_flow("small", 1)
        s.enqueue(Packet("big", 250), now=0)   # needs 3 rounds of 100
        for k in range(3):
            s.enqueue(Packet("small", 100, seqno=k), now=0)
        order = [r.flow_id for r in s.drain()]
        # big cannot send until its deficit reaches 250.
        assert order == ["small", "small", "big", "small"]

    def test_deficit_reset_when_queue_empties(self):
        s = self.make(mtu=100)
        s.enqueue(Packet("a", 50), now=0)
        s.dequeue()
        assert s.deficit_of("a") == 0

    def test_fifo_per_flow(self):
        s = self.make()
        for k in range(10):
            s.enqueue(Packet("a", 60, seqno=k), now=0)
            s.enqueue(Packet("b", 90, seqno=k), now=0)
        assert_fifo_per_flow(s.drain())

    def test_long_run_bytes_follow_quanta(self):
        s = self.make(mtu=100)
        for k in range(100):
            s.enqueue(Packet("a", 100, seqno=k), now=0)
            s.enqueue(Packet("b", 100, seqno=k), now=0)
        bits = {"a": 0, "b": 0}
        count = 0
        for rec in s.drain():
            if count >= 90:
                break
            bits[rec.flow_id] += rec.packet.length
            count += 1
        assert bits["a"] == pytest.approx(2 * bits["b"], rel=0.1)

    def test_removed_flow_share_recached(self):
        s = DRRScheduler(1000, mtu=100)
        s.add_flow("tiny", 1)
        s.add_flow("big", 10)
        s.remove_flow("tiny")
        # min share is now 10 -> big's quantum is one MTU.
        s.enqueue(Packet("big", 100), now=0)
        assert s.dequeue().flow_id == "big"
        assert s._min_share == 10
