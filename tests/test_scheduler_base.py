"""Tests for the PacketScheduler base machinery (via FIFO, the thinnest
subclass) and the FIFO algorithm itself."""

import pytest

from repro.core.fifo import FIFOScheduler
from repro.core.packet import Packet
from repro.errors import (
    ConfigurationError,
    DuplicateFlowError,
    EmptySchedulerError,
    UnknownFlowError,
)


@pytest.fixture
def sched():
    s = FIFOScheduler(rate=1000)
    s.add_flow("a", 1)
    s.add_flow("b", 3)
    return s


class TestRegistration:
    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            FIFOScheduler(rate=0)

    def test_duplicate_flow(self, sched):
        with pytest.raises(DuplicateFlowError):
            sched.add_flow("a", 1)

    def test_unknown_flow_enqueue(self, sched):
        with pytest.raises(UnknownFlowError):
            sched.enqueue(Packet("zzz", 10), now=0)

    def test_flow_ids(self, sched):
        assert sched.flow_ids == ["a", "b"]

    def test_guaranteed_rate_and_share(self, sched):
        assert sched.guaranteed_rate("a") == pytest.approx(250)
        assert sched.guaranteed_rate("b") == pytest.approx(750)
        assert sched.normalized_share("b") == pytest.approx(0.75)

    def test_remove_flow(self, sched):
        sched.remove_flow("a")
        assert sched.flow_ids == ["b"]
        assert sched.guaranteed_rate("b") == pytest.approx(1000)

    def test_remove_backlogged_flow_rejected(self, sched):
        sched.enqueue(Packet("a", 10), now=0)
        with pytest.raises(ConfigurationError):
            sched.remove_flow("a")

    def test_registration_indices_monotonic(self, sched):
        assert sched._flows["a"].index < sched._flows["b"].index


class TestEnqueueDequeue:
    def test_empty_dequeue_raises(self, sched):
        with pytest.raises(EmptySchedulerError):
            sched.dequeue()

    def test_counts(self, sched):
        sched.enqueue(Packet("a", 10), now=0)
        sched.enqueue(Packet("b", 20), now=0)
        assert sched.backlog == 2
        assert sched.backlog_bits == 30
        assert sched.queue_length("a") == 1
        assert sched.queued_bits("b") == 20
        assert set(sched.backlogged_flows()) == {"a", "b"}
        sched.dequeue()
        assert sched.backlog == 1

    def test_clock_monotonicity_enforced(self, sched):
        sched.enqueue(Packet("a", 10), now=5.0)
        with pytest.raises(ValueError):
            sched.enqueue(Packet("a", 10), now=4.0)
        with pytest.raises(ValueError):
            sched.dequeue(now=4.0)

    def test_arrival_time_stamped(self, sched):
        p = Packet("a", 10)
        sched.enqueue(p, now=3.0)
        assert p.arrival_time == 3.0

    def test_enqueue_uses_packet_arrival_time(self, sched):
        sched.enqueue(Packet("a", 10, arrival_time=2.0))
        assert sched.clock == 2.0

    def test_record_timing(self, sched):
        sched.enqueue(Packet("a", 100), now=0)
        rec = sched.dequeue(now=1.0)
        assert rec.start_time == 1.0
        assert rec.finish_time == pytest.approx(1.1)  # 100 bits / 1000 bps
        assert rec.delay == pytest.approx(1.1)

    def test_default_dequeue_time_is_back_to_back(self, sched):
        sched.enqueue(Packet("a", 100), now=0)
        sched.enqueue(Packet("a", 100), now=0)
        r1 = sched.dequeue()
        r2 = sched.dequeue()
        assert r1.start_time == 0
        assert r2.start_time == pytest.approx(r1.finish_time)

    def test_drain_returns_everything(self, sched):
        for k in range(5):
            sched.enqueue(Packet("a", 10, seqno=k), now=0)
        records = sched.drain()
        assert [r.packet.seqno for r in records] == list(range(5))
        assert sched.is_empty

    def test_drain_empty(self, sched):
        assert sched.drain() == []


class TestBufferLimits:
    def test_drop_tail(self, sched):
        sched.set_buffer_limit("a", 2)
        assert sched.enqueue(Packet("a", 10), now=0) is True
        assert sched.enqueue(Packet("a", 10), now=0) is True
        assert sched.enqueue(Packet("a", 10), now=0) is False
        assert sched.backlog == 2
        assert sched.drops("a") == 1
        assert sched.drops() == 1

    def test_limit_lifts(self, sched):
        sched.set_buffer_limit("a", 1)
        sched.set_buffer_limit("a", None)
        for _ in range(5):
            assert sched.enqueue(Packet("a", 10), now=0)

    def test_invalid_limit(self, sched):
        with pytest.raises(ConfigurationError):
            sched.set_buffer_limit("a", 0)
        with pytest.raises(UnknownFlowError):
            sched.set_buffer_limit("zzz", 5)

    def test_dequeue_frees_space(self, sched):
        sched.set_buffer_limit("a", 1)
        sched.enqueue(Packet("a", 10), now=0)
        sched.dequeue()
        assert sched.enqueue(Packet("a", 10), now=1) is True


class TestFIFOOrder:
    def test_global_arrival_order(self, sched):
        sched.enqueue(Packet("a", 10, seqno=0), now=0)
        sched.enqueue(Packet("b", 10, seqno=0), now=1e-4)
        sched.enqueue(Packet("a", 10, seqno=1), now=2e-4)
        order = [r.flow_id for r in sched.drain()]
        assert order == ["a", "b", "a"]

    def test_shares_ignored(self):
        s = FIFOScheduler(1000)
        s.add_flow("small", 1)
        s.add_flow("big", 100)
        s.enqueue(Packet("small", 10), now=0)
        s.enqueue(Packet("big", 10), now=0)
        assert s.dequeue().flow_id == "small"


class TestRemoveFlowHygiene:
    """A removed flow id must leave no per-flow state behind."""

    def test_buffer_limit_does_not_survive_reregistration(self, sched):
        sched.set_buffer_limit("a", 1)
        sched.remove_flow("a")
        sched.add_flow("a", 2)
        # The old 1-packet cap must not silently apply to the new flow.
        assert sched.enqueue(Packet("a", 10), now=0) is True
        assert sched.enqueue(Packet("a", 10), now=0) is True
        assert sched.drops("a") == 0

    def test_drop_counter_does_not_survive_reregistration(self, sched):
        sched.set_buffer_limit("a", 1)
        sched.enqueue(Packet("a", 10), now=0)
        sched.enqueue(Packet("a", 10), now=0)  # dropped
        assert sched.drops("a") == 1
        sched.dequeue()
        sched.remove_flow("a")
        sched.add_flow("a", 1)
        assert sched.drops("a") == 0
        assert sched.drops() == 0


class TestEmptyShareQueries:
    """Rate/share queries with no registered flows must fail loudly and
    typed — not with a bare ZeroDivisionError or KeyError."""

    def test_guaranteed_rate_after_removing_all_flows(self, sched):
        sched.remove_flow("a")
        sched.remove_flow("b")
        with pytest.raises(ConfigurationError):
            sched.guaranteed_rate("a")

    def test_normalized_share_after_removing_all_flows(self, sched):
        sched.remove_flow("a")
        sched.remove_flow("b")
        with pytest.raises(ConfigurationError):
            sched.normalized_share("a")

    def test_queries_recover_after_reregistration(self, sched):
        sched.remove_flow("a")
        sched.remove_flow("b")
        sched.add_flow("c", 2)
        assert sched.normalized_share("c") == 1.0
        assert sched.guaranteed_rate("c") == 1000
