"""Tests for the exact fluid GPS simulation (eqs. 4-7, Property 1)."""

from fractions import Fraction as Fr

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gps import GPSFluidSystem
from repro.errors import ConfigurationError, DuplicateFlowError, UnknownFlowError


def make_gps(shares, rate=Fr(1)):
    gps = GPSFluidSystem(rate)
    for fid, share in shares.items():
        gps.add_flow(fid, share)
    return gps


class TestRegistration:
    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            GPSFluidSystem(0)

    def test_duplicate(self):
        gps = make_gps({"a": 1})
        with pytest.raises(DuplicateFlowError):
            gps.add_flow("a", 1)

    def test_bad_share(self):
        with pytest.raises(ConfigurationError):
            make_gps({"a": 0})

    def test_unknown_flow(self):
        gps = make_gps({"a": 1})
        with pytest.raises(UnknownFlowError):
            gps.arrive("zzz", 1, 0)

    def test_no_registration_while_busy(self):
        gps = make_gps({"a": 1})
        gps.arrive("a", 10, 0)
        with pytest.raises(ConfigurationError):
            gps.add_flow("b", 1)

    def test_guaranteed_rate_normalises(self):
        gps = make_gps({"a": 1, "b": 3}, rate=Fr(8))
        assert gps.guaranteed_rate("a") == Fr(2)
        assert gps.guaranteed_rate("b") == Fr(6)


class TestSingleFlow:
    def test_departure_at_line_rate(self):
        gps = make_gps({"a": 1}, rate=Fr(10))
        pkt = gps.arrive("a", Fr(50), Fr(0))
        deps = gps.finish_order()
        assert deps == [pkt]
        assert pkt.finish_time == Fr(5)  # alone -> full link rate

    def test_tags(self):
        gps = make_gps({"a": 1}, rate=Fr(10))
        p1 = gps.arrive("a", Fr(10), Fr(0))
        p2 = gps.arrive("a", Fr(10), Fr(0))
        assert p1.virtual_start == 0
        assert p1.virtual_finish == Fr(1)
        assert p2.virtual_start == Fr(1)
        assert p2.virtual_finish == Fr(2)

    def test_arrival_after_idle_resets_virtual_time(self):
        gps = make_gps({"a": 1}, rate=Fr(1))
        gps.arrive("a", Fr(1), Fr(0))
        gps.advance(Fr(10))  # drained long ago
        p = gps.arrive("a", Fr(1), Fr(10))
        assert p.virtual_start == 0  # new busy period


class TestTwoFlows:
    def test_equal_shares_split_evenly(self):
        gps = make_gps({"a": 1, "b": 1}, rate=Fr(2))
        pa = gps.arrive("a", Fr(2), Fr(0))
        pb = gps.arrive("b", Fr(2), Fr(0))
        gps.advance(Fr(1))
        assert gps.service_received("a") == Fr(1)
        assert gps.service_received("b") == Fr(1)
        deps = gps.finish_order()
        assert {p.finish_time for p in deps} == {Fr(2)}
        assert pa.finish_time == pb.finish_time == Fr(2)

    def test_weighted_split(self):
        gps = make_gps({"a": 3, "b": 1}, rate=Fr(4))
        gps.arrive("a", Fr(30), Fr(0))
        gps.arrive("b", Fr(10), Fr(0))
        gps.advance(Fr(1))
        assert gps.service_received("a") == Fr(3)
        assert gps.service_received("b") == Fr(1)

    def test_excess_redistributed_when_one_empties(self):
        gps = make_gps({"a": 1, "b": 1}, rate=Fr(2))
        gps.arrive("a", Fr(1), Fr(0))   # drains at t=1 (rate 1 each)
        gps.arrive("b", Fr(4), Fr(0))
        deps = gps.finish_order()
        by_flow = {p.flow_id: p.finish_time for p in deps}
        assert by_flow["a"] == Fr(1)
        # b: 1 bit by t=1 (shared), then full rate 2 for remaining 3 bits.
        assert by_flow["b"] == Fr(1) + Fr(3, 2)

    def test_backlogged_flow_gets_guaranteed_rate(self):
        """Eq. (3): W_i >= r_i (t2 - t1) while backlogged."""
        gps = make_gps({"a": 1, "b": 9}, rate=Fr(10))
        gps.arrive("a", Fr(100), Fr(0))
        gps.arrive("b", Fr(100), Fr(0))
        gps.advance(Fr(5))
        assert gps.service_received("a") >= Fr(1) * Fr(5)

    def test_late_arrival_joins_at_current_virtual_time(self):
        gps = make_gps({"a": 1, "b": 1}, rate=Fr(2))
        gps.arrive("a", Fr(10), Fr(0))
        # a alone: V slope = 1/phi_a = 2 per unit time; at t=1, V=2.
        p = gps.arrive("b", Fr(2), Fr(1))
        assert p.virtual_start == Fr(2)


class TestPaperFigure2:
    """The exact GPS timeline of Section 3.1."""

    def setup_method(self):
        self.gps = GPSFluidSystem(Fr(1))
        self.gps.add_flow(1, Fr(1, 2))
        for j in range(2, 12):
            self.gps.add_flow(j, Fr(1, 20))
        for _ in range(11):
            self.gps.arrive(1, Fr(1), Fr(0))
        for j in range(2, 12):
            self.gps.arrive(j, Fr(1), Fr(0))

    def test_finish_times(self):
        deps = self.gps.finish_order()
        finish = {}
        for p in deps:
            finish.setdefault(p.flow_id, []).append(p.finish_time)
        # Session 1 packet k finishes at 2k for k=1..10 and 21 for k=11.
        assert finish[1] == [Fr(2 * k) for k in range(1, 11)] + [Fr(21)]
        for j in range(2, 12):
            assert finish[j] == [Fr(20)]

    def test_virtual_time_slope_after_drain(self):
        # Between t=20 and t=21 only session 1 is backlogged:
        # slope = 1/0.5 = 2.
        v20 = self.gps.virtual_time(Fr(20))
        v21 = self.gps.virtual_time(Fr(21))
        assert v21 - v20 == Fr(2)


class TestAdvanceSemantics:
    def test_time_backwards_rejected(self):
        gps = make_gps({"a": 1})
        gps.advance(5)
        with pytest.raises(ValueError):
            gps.advance(4)

    def test_pop_departures_clears(self):
        gps = make_gps({"a": 1}, rate=Fr(1))
        gps.arrive("a", Fr(1), Fr(0))
        gps.advance(Fr(2))
        assert len(gps.pop_departures()) == 1
        assert gps.pop_departures() == []

    def test_is_backlogged(self):
        gps = make_gps({"a": 1}, rate=Fr(1))
        assert not gps.is_backlogged("a")
        gps.arrive("a", Fr(2), Fr(0))
        assert gps.is_backlogged("a", Fr(1))
        assert not gps.is_backlogged("a", Fr(3))


class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),            # flow index
                st.integers(1, 50),           # length
                st.integers(0, 100),          # arrival time step
            ),
            min_size=1, max_size=40,
        )
    )
    def test_total_service_equals_total_arrivals(self, arrivals):
        """After draining, every bit arrived has been served, and each
        packet's real finish time is consistent with its virtual tag order."""
        shares = {0: Fr(1), 1: Fr(2), 2: Fr(3), 3: Fr(4)}
        gps = make_gps(shares, rate=Fr(5))
        arrivals = sorted(arrivals, key=lambda a: a[2])
        total = 0
        for fid, length, t in arrivals:
            gps.arrive(fid, Fr(length), Fr(t))
            total += length
        deps = gps.finish_order()
        assert sum(p.length for p in deps) == total
        served = sum(gps.service_received(fid) for fid in shares)
        assert served == total
        # Departures are emitted in finish-time order.
        times = [p.finish_time for p in deps]
        assert times == sorted(times)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(1, 20), min_size=2, max_size=20),
    )
    def test_simultaneous_backlog_shares_exactly(self, lengths):
        """Two flows backlogged over [0, t]: service ratio == share ratio
        (eq. 2), checked with exact arithmetic."""
        gps = make_gps({"a": Fr(2), "b": Fr(3)}, rate=Fr(1))
        for L in lengths:
            gps.arrive("a", Fr(L), Fr(0))
            gps.arrive("b", Fr(L), Fr(0))
        # Probe while both are certainly backlogged.
        t = Fr(min(lengths), 2)
        wa = gps.service_received("a", t)
        wb = gps.service_received("b", t)
        assert wa * 3 == wb * 2
