"""Tests for the fluid H-GPS simulation and hierarchical waterfilling."""

from fractions import Fraction as Fr

import pytest

from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hgps import HGPSFluidSystem, hierarchical_fair_rates
from repro.errors import HierarchyError, UnknownFlowError


def two_level():
    return HierarchySpec(node("root", 1, [
        node("A", 8, [leaf("A1", 75), leaf("A2", 5)]),
        leaf("B", 2),
    ]))


class TestWaterfill:
    def test_paper_section22_example(self):
        """Root children A (0.8) and B (0.2); A has A1 (0.75) and A2 (0.05).

        With A1 idle, A2 gets all of A's 80%; once A1 is active the split
        inside A is 75:5."""
        spec = two_level()
        r = hierarchical_fair_rates(spec, ["A2", "B"], 1.0)
        assert r["A2"] == pytest.approx(0.8)
        assert r["B"] == pytest.approx(0.2)
        r = hierarchical_fair_rates(spec, ["A1", "A2", "B"], 1.0)
        assert r["A1"] == pytest.approx(0.75)
        assert r["A2"] == pytest.approx(0.05)
        assert r["B"] == pytest.approx(0.2)

    def test_single_active_gets_everything(self):
        r = hierarchical_fair_rates(two_level(), ["A2"], 10.0)
        assert r["A2"] == pytest.approx(10.0)
        assert r["A1"] == 0
        assert r["B"] == 0

    def test_no_active(self):
        r = hierarchical_fair_rates(two_level(), [], 10.0)
        assert all(v == 0 for v in r.values())

    def test_demand_capping_redistributes_to_siblings_first(self):
        spec = HierarchySpec(node("root", 1, [
            node("A", 1, [leaf("a1", 1), leaf("a2", 1)]),
            leaf("b", 1),
        ]))
        # a1 only wants 0.1; its excess goes to a2 (same subtree), not b.
        r = hierarchical_fair_rates(spec, ["a1", "a2", "b"], 1.0,
                                    demands={"a1": 0.1})
        assert r["a1"] == pytest.approx(0.1)
        assert r["a2"] == pytest.approx(0.4)
        assert r["b"] == pytest.approx(0.5)

    def test_subtree_demand_capped_then_excess_to_siblings(self):
        spec = HierarchySpec(node("root", 1, [
            node("A", 1, [leaf("a1", 1), leaf("a2", 1)]),
            leaf("b", 1),
        ]))
        r = hierarchical_fair_rates(spec, ["a1", "a2", "b"], 1.0,
                                    demands={"a1": 0.1, "a2": 0.1})
        assert r["a1"] == pytest.approx(0.1)
        assert r["a2"] == pytest.approx(0.1)
        assert r["b"] == pytest.approx(0.8)

    def test_total_never_exceeds_capacity(self):
        spec = two_level()
        r = hierarchical_fair_rates(spec, ["A1", "A2", "B"], 7.0)
        assert sum(r.values()) == pytest.approx(7.0)

    def test_non_leaf_rejected(self):
        with pytest.raises(HierarchyError):
            hierarchical_fair_rates(two_level(), ["A"], 1.0)

    def test_exact_fractions(self):
        r = hierarchical_fair_rates(two_level(), ["A1", "A2", "B"], Fr(1))
        assert r["A1"] == Fr(3, 4)
        assert r["A2"] == Fr(1, 20)
        assert r["B"] == Fr(1, 5)


class TestFluidSystem:
    def test_bad_rate(self):
        with pytest.raises(HierarchyError):
            HGPSFluidSystem(two_level(), 0)

    def test_unknown_leaf(self):
        h = HGPSFluidSystem(two_level(), 1.0)
        with pytest.raises(UnknownFlowError):
            h.arrive("nope", 1, 0)

    def test_single_backlog_drains_at_link_rate(self):
        h = HGPSFluidSystem(two_level(), 10.0)
        h.arrive("A2", 20, 0.0)
        h.advance(1.0)
        assert h.service_received("A2") == pytest.approx(10.0)
        assert h.backlog_of("A2") == pytest.approx(10.0)
        h.advance(3.0)
        assert h.is_idle

    def test_hierarchical_split(self):
        h = HGPSFluidSystem(two_level(), 1.0)
        h.arrive("A1", 100, 0.0)
        h.arrive("A2", 100, 0.0)
        h.arrive("B", 100, 0.0)
        h.advance(1.0)
        assert h.service_received("A1") == pytest.approx(0.75)
        assert h.service_received("A2") == pytest.approx(0.05)
        assert h.service_received("B") == pytest.approx(0.20)

    def test_excess_within_subtree_on_drain(self):
        h = HGPSFluidSystem(two_level(), 1.0)
        h.arrive("A1", 0.75, 0.0)  # exactly 1 second of A1 fluid
        h.arrive("A2", 10, 0.0)
        h.arrive("B", 10, 0.0)
        h.advance(1.0)
        # A1 empties at t=1; afterwards A2 inherits all of A's 0.8.
        h.advance(2.0)
        assert h.service_received("A2") == pytest.approx(0.05 + 0.8)
        assert h.service_received("B") == pytest.approx(0.4)

    def test_current_rates_match_waterfill(self):
        h = HGPSFluidSystem(two_level(), 1.0)
        h.arrive("A2", 100, 0.0)
        h.arrive("B", 100, 0.0)
        rates = h.current_rates()
        ideal = hierarchical_fair_rates(two_level(), ["A2", "B"], 1.0)
        for name in ideal:
            assert rates[name] == pytest.approx(ideal[name])

    def test_drain_serves_everything(self):
        h = HGPSFluidSystem(two_level(), 2.0)
        h.arrive("A1", 5, 0.0)
        h.arrive("B", 3, 0.5)
        h.drain()
        assert h.is_idle
        total = sum(h.service_received(n) for n in ("A1", "A2", "B"))
        assert total == pytest.approx(8.0)

    def test_time_backwards_rejected(self):
        h = HGPSFluidSystem(two_level(), 1.0)
        h.advance(2.0)
        with pytest.raises(ValueError):
            h.advance(1.0)

    def test_wfi_zero_property(self):
        """H-GPS has B-WFI 0: a newly backlogged leaf receives its
        guaranteed rate immediately (Section 3.2)."""
        h = HGPSFluidSystem(two_level(), 1.0)
        h.arrive("A2", 100, 0.0)
        h.arrive("B", 100, 0.0)
        h.advance(5.0)
        h.arrive("A1", 100, 5.0)
        h.advance(5.0 + 1e-3)
        got = h.service_received("A1")
        assert got == pytest.approx(0.75 * 1e-3, rel=1e-6)
