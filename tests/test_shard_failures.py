"""Worker failure handling in the sharded driver (robustness satellite).

A worker that dies — a hard process exit (``BrokenProcessPool``) or an
exception that pickles back — must be retried with exponential backoff
up to ``max_retries`` times; with the budget exhausted the driver either
raises a :class:`~repro.errors.WorkerError` naming the failed cells
(``strict=True``, the default) or returns the partial report with a
``"failures"`` section (``strict=False``) — never hangs, never loses the
successful shards' results.  Crash injection rides in the cell spec
(``"fail": {"mode", "attempts"}``; see ``repro.shard.worker._maybe_fail``)
so every failure here is deterministic.
"""

import copy
import multiprocessing

import pytest

from repro.cli import build_parser
from repro.errors import WorkerError
from repro.shard import run_sharded
from repro.shard.driver import DEFAULT_MAX_RETRIES, _run_jobs

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="failure suite forks its worker pools")

FORK = "fork"


def cells(n=2, flows=3, duration=0.002):
    out = []
    for c in range(n):
        fids = [f"c{c}-f{i}" for i in range(flows)]
        out.append({
            "cell": f"cell{c}", "kind": "flat", "duration": duration,
            "scheduler": {"kind": "flat", "policy": "wf2qplus",
                          "rate": 1e6, "flows": [(fid, 1) for fid in fids]},
            "sources": [{"type": "cbr", "flow": fid, "length": 1000.0,
                         "rate": 2e5} for fid in fids],
        })
    return out


def scenario(cell_list, duration=0.002):
    return {"name": "failure-lab", "duration": duration, "cells": cell_list}


def flaky(spec, mode, attempts):
    spec = copy.deepcopy(spec)
    spec["fail"] = {"mode": mode, "attempts": attempts}
    return spec


class TestRetries:
    @pytest.mark.parametrize("mode", ["raise", "exit"])
    def test_worker_death_retried_and_digest_unchanged(self, mode):
        """One shard dies on its first attempt (exception or hard exit);
        the retry succeeds and the merged report is byte-identical to a
        run that never failed."""
        plain = cells()
        clean = run_sharded(scenario(plain), shards=2, mp_context=FORK,
                            retry_backoff=0.001)
        shaky = [flaky(plain[0], mode, 1), plain[1]]
        retried = run_sharded(scenario(shaky), shards=2, mp_context=FORK,
                              retry_backoff=0.001)
        assert retried["digest"] == clean["digest"]
        assert "failures" not in retried

    def test_exhausted_budget_strict_raises_worker_error(self):
        shaky = [flaky(cells()[0], "raise", 99)] + cells()[1:]
        with pytest.raises(WorkerError) as err:
            run_sharded(scenario(shaky), shards=2, mp_context=FORK,
                        max_retries=1, retry_backoff=0.001)
        assert "injected worker failure" in str(err.value)

    def test_exhausted_budget_non_strict_names_failed_cells(self):
        plain = cells()
        shaky = [flaky(plain[0], "raise", 99), plain[1]]
        report = run_sharded(scenario(shaky), shards=2, mp_context=FORK,
                             max_retries=1, retry_backoff=0.001,
                             strict=False)
        assert len(report["failures"]) == 1
        (_shard, entry), = report["failures"].items()
        assert entry["cells"] == ["cell0"]
        assert "RuntimeError" in entry["cause"]
        # The surviving shard's results are intact and the failed cell
        # is absent — a caller can re-plan exactly the missing work.
        assert "cell1" in report["cells"]
        assert "cell0" not in report["cells"]

    def test_zero_retries_fails_fast(self):
        plain = cells()
        shaky = [flaky(plain[0], "raise", 1), plain[1]]
        with pytest.raises(WorkerError):
            run_sharded(scenario(shaky), shards=2, mp_context=FORK,
                        max_retries=0, retry_backoff=0.001)

    def test_hard_exit_exhausted_names_broken_pool(self):
        """A worker that keeps dying with a hard process exit surfaces as
        BrokenProcessPool in the failure cause, not as a hang."""
        plain = cells()
        shaky = [flaky(plain[0], "exit", 99), plain[1]]
        report = run_sharded(scenario(shaky), shards=2, mp_context=FORK,
                             max_retries=1, retry_backoff=0.001,
                             strict=False)
        # A hard exit poisons the whole wave's pool, so innocent shards
        # sharing it may fail too — the point is a typed report, no hang.
        causes = [e["cause"] for e in report["failures"].values()]
        assert any("BrokenProcessPool" in c for c in causes)
        failed_cells = {c for e in report["failures"].values()
                        for c in e["cells"]}
        assert "cell0" in failed_cells


class TestBackoffSchedule:
    def test_exponential_backoff_between_waves(self):
        """Retry wave k sleeps ``backoff * 2**(k-1)`` — asserted via an
        injected sleep, so no real waiting happens."""
        ctx = multiprocessing.get_context(FORK)
        sleeps = []
        spec = flaky(cells(n=1)[0], "raise", 2)
        results, failures = _run_jobs(
            ctx, [(0, [spec])], 0.002, max_retries=3, backoff=0.2,
            absorb=lambda _stats: None, sleep=sleeps.append)
        assert sleeps == [0.2, 0.4]  # two retry waves, then success
        assert not failures and "cell0" in results

    def test_failures_map_carries_last_cause(self):
        ctx = multiprocessing.get_context(FORK)
        spec = flaky(cells(n=1)[0], "raise", 99)
        results, failures = _run_jobs(
            ctx, [(0, [spec])], 0.002, max_retries=1, backoff=0.0,
            absorb=lambda _stats: None, sleep=lambda _s: None)
        assert results == {}
        assert set(failures) == {0}
        assert "attempt 1" in failures[0]  # the *last* attempt's cause


class TestCLIKnob:
    def test_max_retries_flag_parses_with_default(self):
        parser = build_parser()
        args = parser.parse_args(["sim", "--scenario", "cbr_flat"])
        assert args.max_retries == DEFAULT_MAX_RETRIES
        args = parser.parse_args(
            ["sim", "--scenario", "cbr_flat", "--max-retries", "7"])
        assert args.max_retries == 7
