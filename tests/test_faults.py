"""Fault plans and the injector: determinism, validation, retry logic."""

from fractions import Fraction

import pytest

from repro.core import WF2QPlusScheduler
from repro.core.packet import Packet
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan
from repro.obs import RingBufferSink
from repro.sim.engine import Simulator
from repro.sim.link import Link


def plan_fingerprint(plan):
    return [(a.time, a.kind, a.target, a.value) for a in plan]


def make_stack(rate=Fraction(1000), flows=2):
    sched = WF2QPlusScheduler(rate)
    for i in range(flows):
        sched.add_flow(str(i), i + 1)
    sim = Simulator()
    link = Link(sim, sched)
    return sim, link, sched


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        def build(seed):
            plan = FaultPlan(seed=seed)
            plan.link_outage(1.0, 0.5)
            plan.share_storm(0.0, 10.0, ["a", "b", "c"], count=20)
            plan.churn_storm(2.0, 5.0, count=6)
            plan.buffer_ramp(0.5, 4.0, high=64, low=8)
            return plan

        assert plan_fingerprint(build(42)) == plan_fingerprint(build(42))
        assert plan_fingerprint(build(42)) != plan_fingerprint(build(43))

    def test_iteration_sorted_by_time_then_creation(self):
        plan = FaultPlan()
        plan.link_rate(5.0, 100)
        plan.link_down(1.0)
        plan.set_share(1.0, "a", 3)   # same instant as link_down, added later
        plan.link_up(2.0)
        kinds = [a.kind for a in plan]
        assert kinds == ["link_down", "set_share", "link_up", "link_rate"]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().link_down(-0.1)

    def test_outage_needs_positive_duration(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().link_outage(1.0, 0)

    def test_degradation_factor_must_be_fractional(self):
        plan = FaultPlan()
        with pytest.raises(ConfigurationError):
            plan.link_degradation(0.0, 1.0, factor=Fraction(3, 2))
        with pytest.raises(ConfigurationError):
            plan.link_degradation(0.0, 1.0, factor=0)

    def test_degradation_factors_cancel_exactly(self):
        plan = FaultPlan()
        plan.link_degradation(0.0, 1.0, factor=Fraction(1, 3))
        factors = [a.value for a in plan]
        assert factors[0] * factors[1] == 1

    def test_share_storm_needs_targets(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().share_storm(0.0, 1.0, [], count=3)

    def test_buffer_ramp_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().buffer_ramp(0.0, 1.0, high=4, low=8)
        with pytest.raises(ConfigurationError):
            FaultPlan().buffer_ramp(0.0, 1.0, high=8, low=4, steps=0)

    def test_churn_storm_lifetimes_inside_window(self):
        plan = FaultPlan(seed=9)
        plan.churn_storm(1.0, 4.0, count=8)
        born = {a.target: a.time for a in plan if a.kind == "add_flow"}
        for action in plan:
            if action.kind == "remove_flow":
                assert born[action.target] < action.time <= 5.0
            assert 1.0 <= action.time <= 5.0


class TestFaultInjector:
    def test_retry_interval_positive(self):
        sim, link, _ = make_stack()
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultPlan(), link, retry_interval=0)

    def test_outage_pauses_and_resumes(self):
        sim, link, sched = make_stack()
        plan = FaultPlan()
        plan.link_outage(0.5, 1.0)
        FaultInjector(plan, link).arm()
        for k in range(4):
            sim.schedule(0.1 * k, link.send, Packet("0", 1000))
        sim.run(until=0.6)
        assert link.paused and not sched.is_empty
        down_backlog = sched.backlog
        sim.run(until=1.4)
        assert sched.backlog == down_backlog  # nothing served while down
        sim.run()
        assert not link.paused and sched.is_empty
        assert link.packets_sent == 4

    def test_degradation_restores_exact_rate(self):
        sim, link, sched = make_stack(rate=Fraction(1000))
        plan = FaultPlan()
        plan.link_degradation(0.25, 0.5, factor=Fraction(1, 4))
        FaultInjector(plan, link).arm()
        sim.schedule(0.0, link.send, Packet("0", 500))
        sim.run()
        assert sched.rate == Fraction(1000)

    def test_remove_flow_retries_until_drained(self):
        sim, link, sched = make_stack()
        plan = FaultPlan()
        plan.add_flow(0.0, "late", share=2)
        plan.enqueue_burst(0.0, "late", 3, 1000)
        plan.remove_flow(0.1, "late")  # long before the burst can drain
        injector = FaultInjector(plan, link).arm()
        sim.run()
        assert injector.retries > 0
        assert "late" not in sched.flow_ids
        assert link.packets_sent == 3

    def test_actions_emit_fault_events(self):
        sim, link, sched = make_stack()
        ring = RingBufferSink()
        sched.attach_observer(ring)
        plan = FaultPlan()
        plan.link_outage(0.2, 0.2)
        plan.set_share(0.3, "0", 5)
        FaultInjector(plan, link).arm()
        sim.schedule(0.0, link.send, Packet("0", 1000))
        sim.run()
        faults = [e for e in ring.events() if e.kind == "fault"]
        assert [e.action for e in faults] == ["link_down", "set_share",
                                              "link_up"]
        assert faults[1].target == "0" and faults[1].value == 5

    def test_empty_plan_applies_nothing(self):
        sim, link, _ = make_stack()
        injector = FaultInjector(FaultPlan(), link).arm()
        sim.schedule(0.0, link.send, Packet("0", 1000))
        sim.run()
        assert injector.applied == 0 and injector.retries == 0
