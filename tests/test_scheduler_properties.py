"""Property-based invariants that every scheduler must satisfy.

These run each algorithm on randomized arrival patterns (driven through a
work-conserving link) and check the universal contracts:

* every accepted packet is served exactly once (conservation),
* per-flow service is FIFO,
* service intervals never overlap and are paced at the link rate,
* the link never idles while packets are queued (work conservation),
* the busy period ends exactly when total work / rate says it should,
* for the fair queueing disciplines: a continuously backlogged flow's
  service over the whole busy period is at least its guaranteed share
  minus the algorithm's WFI-scale slack.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.ablation import NoEligibilityWF2QPlus, NoFloorWF2QPlus
from repro.core.drr import DRRScheduler
from repro.core.ffq import FFQScheduler
from repro.core.fifo import FIFOScheduler
from repro.core.hierarchy import HPFQScheduler
from repro.core.packet import Packet
from repro.core.scfq import SCFQScheduler
from repro.core.sfq import SFQScheduler
from repro.core.virtual_clock import VirtualClockScheduler
from repro.core.wf2q import WF2QScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler
from repro.core.wrr import WRRScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import TraceSource

from tests.conftest import assert_fifo_per_flow, assert_no_overlap

RATE = 1000.0
SHARES = {"a": 1, "b": 2, "c": 4}

FLAT_SCHEDULERS = [
    FIFOScheduler,
    DRRScheduler,
    WRRScheduler,
    VirtualClockScheduler,
    SCFQScheduler,
    SFQScheduler,
    FFQScheduler,
    WFQScheduler,
    WF2QScheduler,
    WF2QPlusScheduler,
    NoEligibilityWF2QPlus,
    NoFloorWF2QPlus,
]


def flat(cls):
    if cls is DRRScheduler:
        # Size the quantum to the workload's packets (<= 400 bits), else
        # one visit could serve an entire test queue.
        s = cls(RATE, mtu=400)
    else:
        s = cls(RATE)
    for fid, share in SHARES.items():
        s.add_flow(fid, share)
    return s


def hier(policy):
    spec = HierarchySpec(node("root", 1, [
        node("x", 3, [leaf("a", 1), leaf("b", 2)]),
        leaf("c", 4),
    ]))
    return HPFQScheduler(spec, RATE, policy=policy)


ALL_FACTORIES = (
    [(cls.name, lambda cls=cls: flat(cls)) for cls in FLAT_SCHEDULERS]
    + [(f"H-PFQ[{p}]", lambda p=p: hier(p)) for p in
       ("wf2qplus", "wfq", "scfq", "sfq")]
)


arrival_pattern = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(0, 400),     # arrival time in ms
        st.integers(50, 400),    # length in bits
    ),
    min_size=1, max_size=60,
)


def run_pattern(factory, pattern):
    sched = factory()
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    by_flow = {}
    for fid, t_ms, length in pattern:
        by_flow.setdefault(fid, []).append((t_ms / 1000.0, float(length)))
    for fid, entries in by_flow.items():
        TraceSource(fid, entries, 100.0).attach(sim, link).start()
    sim.run()
    while not sched.is_empty:  # safety; the link should have drained it
        sched.dequeue()
    return sched, trace


@pytest.mark.parametrize("name,factory", ALL_FACTORIES,
                         ids=[n for n, _f in ALL_FACTORIES])
class TestUniversalInvariants:
    @settings(max_examples=25, deadline=None)
    @given(pattern=arrival_pattern)
    def test_conservation_fifo_pacing(self, name, factory, pattern):
        _sched, trace = run_pattern(factory, pattern)
        assert len(trace.services) == len(pattern)
        total_arrived = sum(length for _f, _t, length in pattern)
        assert sum(r.packet.length for r in trace.services) == total_arrived
        assert_fifo_per_flow(trace.services)
        assert_no_overlap(trace.services, RATE)

    @settings(max_examples=25, deadline=None)
    @given(pattern=arrival_pattern)
    def test_work_conservation(self, name, factory, pattern):
        """Any service gap must coincide with an empty system: the bits
        served by the end of each gap equal the bits arrived before it."""
        _sched, trace = run_pattern(factory, pattern)
        records = trace.services
        arrived = sorted(
            (t_ms / 1000.0, length) for _f, t_ms, length in pattern
        )
        for prev, nxt in zip(records, records[1:]):
            if nxt.start_time - prev.finish_time <= 1e-9:
                continue
            # Gap: everything that arrived by prev.finish_time must have
            # been served by then.
            arrived_bits = sum(
                length for t, length in arrived if t <= prev.finish_time + 1e-9
            )
            served_bits = sum(
                r.packet.length for r in records
                if r.finish_time <= prev.finish_time + 1e-9
            )
            assert served_bits >= arrived_bits - 1e-6, (
                f"{name}: idle gap after {prev.finish_time} with work queued"
            )


FAIR_FACTORIES = [
    (n, f) for n, f in ALL_FACTORIES if "FIFO" not in n
]


@pytest.mark.parametrize("name,factory", FAIR_FACTORIES,
                         ids=[n for n, _f in FAIR_FACTORIES])
class TestFairnessInvariants:
    @settings(max_examples=15, deadline=None)
    @given(n_packets=st.integers(10, 40), length=st.integers(100, 300))
    def test_backlogged_flow_gets_guaranteed_share(self, name, factory,
                                                   n_packets, length):
        """All three flows saturated from t=0: over the first half of the
        busy period each gets its share within a generous WFI allowance."""
        sched = factory()
        for fid in SHARES:
            for k in range(n_packets):
                sched.enqueue(Packet(fid, float(length), seqno=k), now=0.0)
        records = sched.drain()
        horizon = records[-1].finish_time / 2
        served = {fid: 0.0 for fid in SHARES}
        for rec in records:
            if rec.finish_time <= horizon:
                served[rec.flow_id] += rec.packet.length
        total_share = sum(SHARES.values())
        window_bits = RATE * horizon
        # Round-robin schedulers' slack is a full frame (one round of
        # quanta: mtu * sum(shares)/min(share) = 400 * 7); the ablated
        # WF2Q+ variants lose worst-case fairness by design (a few packets
        # of run-ahead); everyone else is within ~3 packets.
        if "DRR" in name or "WRR" in name:
            slack = 2 * 400 * 7
        elif "no-" in name:
            slack = 6 * length
        else:
            slack = 3 * length
        for fid, share in SHARES.items():
            guaranteed = share / total_share * window_bits
            # A flow can only fall short if it drained early.
            if any(r.flow_id == fid and r.finish_time > horizon for r in records):
                assert served[fid] >= guaranteed - slack, (
                    f"{name}: {fid} got {served[fid]} of {guaranteed}"
                )
