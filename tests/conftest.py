"""Shared helpers for the test suite."""

from fractions import Fraction

import pytest

from repro.core.packet import Packet


def make_packets(flow_id, n, length=1000, start=0.0, gap=0.0):
    """n packets for one flow, arrivals spaced by ``gap`` from ``start``."""
    return [
        Packet(flow_id, length, arrival_time=start + k * gap, seqno=k)
        for k in range(n)
    ]


def drain_order(scheduler):
    """Dequeue everything; return the list of flow ids in service order."""
    return [rec.flow_id for rec in scheduler.drain()]


def service_records(scheduler):
    return scheduler.drain()


def enqueue_all(scheduler, packets, now=None):
    for p in packets:
        scheduler.enqueue(p, now=now if now is not None else p.arrival_time)


@pytest.fixture
def fr():
    """Shorthand Fraction constructor for exact-arithmetic tests."""
    return Fraction


def assert_fifo_per_flow(records):
    """Per-flow service must respect arrival (seqno) order."""
    last_seq = {}
    for rec in records:
        seq = rec.packet.seqno
        if seq is None:
            continue
        fid = rec.flow_id
        if fid in last_seq:
            assert seq > last_seq[fid], (
                f"flow {fid!r} served seq {seq} after {last_seq[fid]}"
            )
        last_seq[fid] = seq


def assert_no_overlap(records, rate):
    """Service intervals must be disjoint and each sized length/rate."""
    prev_finish = None
    for rec in records:
        expected = rec.packet.length / rate
        assert rec.finish_time - rec.start_time == pytest.approx(expected)
        if prev_finish is not None:
            assert rec.start_time >= prev_finish - 1e-9, (
                f"overlapping service at {rec.start_time}"
            )
        prev_finish = rec.finish_time


def assert_work_conserving(records, arrivals_by_time):
    """The link may only idle when nothing is queued.

    ``arrivals_by_time``: sorted list of (arrival_time, packet).  Between
    consecutive services, if there is a gap, no packet may have been
    waiting through the whole gap.
    """
    for prev, nxt in zip(records, records[1:]):
        gap_start, gap_end = prev.finish_time, nxt.start_time
        if gap_end - gap_start <= 1e-9:
            continue
        for a_time, packet in arrivals_by_time:
            if a_time >= gap_end:
                break
            # A packet that arrived before the gap ended and was served
            # after the gap implies the link idled with work available.
            served_at = next(
                (r.start_time for r in records if r.packet is packet), None
            )
            assert not (
                a_time <= gap_start + 1e-9 and served_at is not None
                and served_at >= gap_end - 1e-9
            ), f"link idled during [{gap_start}, {gap_end}] with {packet!r} queued"
