"""Differential suite: burst-drain fast path vs the plain event loop.

The link's event-eliding fast path (``Link(burst_drain=True)``, the
default) must never be observable except as wall-clock speed: the same
simulation run with ``burst_drain=False`` has to produce packet-for-packet
identical service traces, identical obs event streams, and an identical
drop ledger — exactly, not approximately (and bit-exactly under
``Fraction`` inputs).

Every scenario here runs the *same* configuration twice, once per path,
with the global packet-uid counter reset so even the uids line up, then
compares everything the simulation can externally exhibit.
"""

import itertools
from fractions import Fraction

import pytest

import repro.core.packet as packet_mod
from repro.config import leaf, node
from repro.core import FIFOScheduler, HPFQScheduler, WF2QPlusScheduler
from repro.core.packet import Packet
from repro.faults.checkpoint import checkpoint, rollback
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import (
    CBRSource,
    OnOffSource,
    PacketTrainSource,
    PoissonSource,
)

RATE = 1e6          # bps
LENGTH = 1000.0     # bits -> 1 ms per packet at full rate
FLOWS = ["f0", "f1", "f2", "f3", "f4", "f5"]


class RecordingSink:
    """Minimal obs sink: keeps every event in arrival order."""

    def __init__(self):
        self.events = []

    def accept(self, event):
        self.events.append(event)


def _tree_spec():
    return node("root", 1, [
        node("left", 2, [leaf("f0", 3), leaf("f1", 1), leaf("f2", 2)]),
        node("right", 1, [leaf("f3", 1), leaf("f4", 2), leaf("f5", 1)]),
    ])


def make_scheduler(kind, rate=RATE):
    if kind == "fifo":
        sched = FIFOScheduler(rate)
    elif kind == "wf2qplus":
        sched = WF2QPlusScheduler(rate)
    else:
        return HPFQScheduler(_tree_spec(), rate, policy="wf2qplus")
    for i, fid in enumerate(FLOWS):
        sched.add_flow(fid, 1 + (i % 3))
    return sched


def make_sources(profile, rate=RATE, length=LENGTH):
    if profile == "churn":
        # Oversubscribed mixed arrivals: steady CBR plus Poisson chatter.
        return [
            CBRSource("f0", 0.35 * rate, length, start_time=0.0),
            CBRSource("f1", 0.30 * rate, length, start_time=0.0007),
            CBRSource("f2", 0.25 * rate, length, start_time=0.0013),
            PoissonSource("f3", 0.30 * rate, length, seed=7),
            PoissonSource("f4", 0.25 * rate, length, seed=11),
            CBRSource("f5", 0.20 * rate, length, start_time=0.002),
        ]
    # Bursty: back-to-back trains and duty-cycled peaks, so busy periods
    # end (every boundary crosses the drain's engage/disengage edges).
    return [
        PacketTrainSource("f0", length, train_length=12, train_interval=0.05,
                          line_rate=8 * rate),
        PacketTrainSource("f1", length, train_length=8, train_interval=0.04,
                          line_rate=8 * rate, start_time=0.011,
                          jitter=0.002, jitter_seed=3),
        OnOffSource("f2", 0.8 * rate, length, on_duration=0.01,
                    off_duration=0.03),
        OnOffSource("f3", 0.6 * rate, length, on_duration=0.015,
                    off_duration=0.025, start_time=0.004),
        PoissonSource("f4", 0.15 * rate, length, seed=23),
        CBRSource("f5", 0.10 * rate, length),
    ]


def run_pipeline(burst_drain, sched_kind, profile, duration=0.6,
                 buffer_limit=25, fault=None):
    """One full end-to-end run; returns everything observable."""
    packet_mod._packet_ids = itertools.count()
    sim = Simulator()
    sched = make_scheduler(sched_kind)
    if buffer_limit is not None:
        for fid in FLOWS:
            sched.set_buffer_limit(fid, buffer_limit)
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace, burst_drain=burst_drain)
    sink = RecordingSink()
    link.attach_observer(sink)
    dropped = []
    link.drop_callback = lambda p, t: dropped.append((p.flow_id, p.seqno, t))
    for src in make_sources(profile):
        src.attach(sim, link).start()
    if fault is not None:
        fault(sim, link)
    sim.run(until=duration)
    return {
        "sim": sim,
        "link": link,
        "trace": trace,
        "events": sink.events,
        "dropped": dropped,
    }


def trace_signature(trace):
    return (
        list(trace.arrivals),
        [(r.packet.uid, r.packet.flow_id, r.packet.seqno, r.packet.length,
          r.packet.arrival_time, r.start_time, r.finish_time,
          r.virtual_start, r.virtual_finish)
         for r in trace.services],
    )


def assert_equivalent(fast, plain):
    assert trace_signature(fast["trace"]) == trace_signature(plain["trace"])
    assert fast["events"] == plain["events"]
    assert fast["dropped"] == plain["dropped"]
    assert fast["link"].packets_dropped == plain["link"].packets_dropped
    assert fast["link"].packets_sent == plain["link"].packets_sent
    assert fast["link"].bits_sent == plain["link"].bits_sent
    assert fast["link"].busy_time == pytest.approx(plain["link"].busy_time)
    assert fast["sim"].now == plain["sim"].now


@pytest.mark.parametrize("sched_kind", ["fifo", "wf2qplus", "hwf2qplus"])
@pytest.mark.parametrize("profile", ["churn", "bursty"])
def test_fast_path_equivalence(sched_kind, profile):
    fast = run_pipeline(True, sched_kind, profile)
    plain = run_pipeline(False, sched_kind, profile)
    # The scenario must be non-trivial on both axes: the fast path really
    # elided events, and the workload really transmitted and dropped.
    assert fast["sim"].events_elided > 0
    assert plain["sim"].events_elided == 0
    assert fast["link"].packets_sent > 100
    if profile == "churn":
        assert fast["link"].packets_dropped > 0
    assert_equivalent(fast, plain)


@pytest.mark.parametrize("sched_kind", ["fifo", "wf2qplus"])
def test_fast_path_equivalence_under_pause_resume(sched_kind):
    def fault(sim, link):
        for k in range(4):
            sim.schedule(0.05 + 0.1 * k, link.pause)
            sim.schedule(0.08 + 0.1 * k, link.resume)

    fast = run_pipeline(True, sched_kind, "bursty", fault=fault)
    plain = run_pipeline(False, sched_kind, "bursty", fault=fault)
    assert fast["sim"].events_elided > 0
    assert_equivalent(fast, plain)


@pytest.mark.parametrize("profile", ["churn", "bursty"])
def test_fast_path_equivalence_under_set_rate(profile):
    def fault(sim, link):
        sim.schedule(0.15, link.set_rate, RATE / 2)
        sim.schedule(0.35, link.set_rate, RATE * 2)
        sim.schedule(0.5, link.set_rate, RATE)

    fast = run_pipeline(True, "wf2qplus", profile, fault=fault)
    plain = run_pipeline(False, "wf2qplus", profile, fault=fault)
    assert fast["sim"].events_elided > 0
    assert_equivalent(fast, plain)


@pytest.mark.parametrize("sched_kind", ["fifo", "wf2qplus", "hwf2qplus"])
def test_fast_path_equivalence_under_checkpoint_rollback(sched_kind):
    def run(burst_drain):
        packet_mod._packet_ids = itertools.count()
        sim = Simulator()
        sched = make_scheduler(sched_kind)
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace, burst_drain=burst_drain)
        sink = RecordingSink()
        link.attach_observer(sink)
        for src in make_sources("bursty"):
            src.attach(sim, link).start()
        sim.run(until=0.2)
        snap = checkpoint(sim, link)
        sim.run(until=0.4)
        rollback(sim, link, snap)
        sim.run(until=0.45)
        return {"sim": sim, "link": link, "trace": trace,
                "events": sink.events, "dropped": []}

    fast = run(True)
    plain = run(False)
    assert fast["sim"].events_elided > 0
    assert_equivalent(fast, plain)


class TestFractionExactness:
    """The equivalence is exact arithmetic, not approximate timing."""

    def build(self, burst_drain):
        packet_mod._packet_ids = itertools.count()
        rate = Fraction(10**6)
        length = Fraction(1000)
        sim = Simulator()
        sched = WF2QPlusScheduler(rate)
        for i, fid in enumerate(FLOWS[:4]):
            sched.add_flow(fid, 1 + i)
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace, burst_drain=burst_drain)
        sources = [
            CBRSource("f0", Fraction(2, 5) * rate, length,
                      start_time=Fraction(0)),
            CBRSource("f1", Fraction(3, 10) * rate, length,
                      start_time=Fraction(1, 1000)),
            OnOffSource("f2", Fraction(4, 5) * rate, length,
                        on_duration=Fraction(1, 100),
                        off_duration=Fraction(3, 100),
                        start_time=Fraction(0)),
            CBRSource("f3", Fraction(1, 5) * rate, length,
                      start_time=Fraction(1, 500)),
        ]
        for src in sources:
            src.attach(sim, link).start()
        sim.run(until=Fraction(1, 2))
        return sim, trace

    def test_fraction_traces_identical(self):
        sim_fast, fast = self.build(True)
        sim_plain, plain = self.build(False)
        assert sim_fast.events_elided > 0
        fast_sig = trace_signature(fast)
        plain_sig = trace_signature(plain)
        assert fast_sig == plain_sig
        # Exactness: service timestamps stayed rational end to end.
        services = fast.services
        assert len(services) > 50
        for record in services:
            assert isinstance(record.finish_time, Fraction)


class TestTimetableEquivalence:
    """Precomputed arrival timetables replicate the classic per-packet
    next_gap() path bit for bit (same floats, same RNG draw order)."""

    class _Collector:
        def __init__(self, sim):
            self.sim = sim
            self.sent = []

        def send(self, packet):
            self.sent.append((packet.flow_id, packet.seqno, packet.length,
                              self.sim.now))
            return True

    @staticmethod
    def _classic(cls):
        return type("Classic" + cls.__name__, (cls,), {"TIMETABLE_CHUNK": 0})

    def _arrivals(self, factory, duration=2.0):
        sim = Simulator()
        collector = self._Collector(sim)
        src = factory()
        src.attach(sim, collector).start()
        sim.run(until=duration)
        return collector.sent

    @pytest.mark.parametrize("make", [
        lambda cls: cls("x", 5e4, 1000.0),
        lambda cls: cls("x", 5e4, 1000.0, start_time=0.123, stop_time=1.7),
    ])
    def test_cbr(self, make):
        fast = self._arrivals(lambda: make(CBRSource))
        classic = self._arrivals(lambda: make(self._classic(CBRSource)))
        assert fast == classic
        assert len(fast) > 50

    def test_poisson(self):
        fast = self._arrivals(
            lambda: PoissonSource("x", 5e4, 1000.0, seed=42))
        classic = self._arrivals(
            lambda: self._classic(PoissonSource)("x", 5e4, 1000.0, seed=42))
        assert fast == classic
        assert len(fast) > 50

    def test_onoff(self):
        def make(cls):
            return cls("x", 8e4, 1000.0, on_duration=0.0315,
                       off_duration=0.0185, start_time=0.009)
        fast = self._arrivals(lambda: make(OnOffSource))
        classic = self._arrivals(lambda: make(self._classic(OnOffSource)))
        assert fast == classic
        assert len(fast) > 50

    def test_packet_train_with_jitter(self):
        def make(cls):
            return cls("x", 1000.0, train_length=7, train_interval=0.05,
                       line_rate=1e6, jitter=0.004, jitter_seed=9)
        fast = self._arrivals(lambda: make(PacketTrainSource))
        classic = self._arrivals(
            lambda: make(self._classic(PacketTrainSource)))
        assert fast == classic
        assert len(fast) > 50

    def test_chunk_boundaries_are_seamless(self):
        # More packets than one chunk: the refill path must chain with the
        # same arithmetic as the initial fill.
        fast = self._arrivals(
            lambda: CBRSource("x", 1e6, 1000.0), duration=1.5)
        classic = self._arrivals(
            lambda: self._classic(CBRSource)("x", 1e6, 1000.0), duration=1.5)
        assert len(fast) > CBRSource.TIMETABLE_CHUNK * 2
        assert fast == classic


class TestDrainBoundaries:
    """Targeted edge cases for the drain's engage/disengage conditions."""

    def setup_link(self, burst_drain=True, **kw):
        sim = Simulator()
        sched = FIFOScheduler(1000.0)
        sched.add_flow("a", 1)
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace, burst_drain=burst_drain, **kw)
        return sim, sched, link, trace

    def test_equal_time_event_disengages_drain(self):
        # An event at exactly a packet's finish time must see the same
        # world as in the plain path: the finish (priority -1) first.
        order = []

        def run(burst_drain):
            sim, _sched, link, trace = self.setup_link(burst_drain)
            for k in range(4):
                sim.schedule(0.0, lambda k=k: link.send(Packet("a", 100)))
            # t=0.2 is exactly the second packet's finish time.
            sim.schedule(0.2, lambda: order.append(
                (burst_drain, link.packets_sent, sim.now)))
            sim.run()
            return trace

        fast = run(True)
        plain = run(False)
        assert [r.finish_time for r in fast.services] == \
            [r.finish_time for r in plain.services]
        assert order[0][1:] == order[1][1:] == (2, 0.2)

    def test_receiver_disables_drain(self):
        sim, _sched, link, _trace = self.setup_link()
        link.receiver = lambda p, t: None
        for _ in range(5):
            sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.run()
        assert sim.events_elided == 0
        assert link.packets_sent == 5

    def test_event_hook_disables_drain(self):
        sim, _sched, link, _trace = self.setup_link()
        hooked = []
        sim.event_hook = hooked.append
        for _ in range(5):
            sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.run()
        assert sim.events_elided == 0
        # One emission event per send plus one finish event per packet.
        assert len(hooked) == 10

    def test_max_events_disables_drain(self):
        sim, _sched, link, _trace = self.setup_link()
        for _ in range(5):
            sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
        sim.run(max_events=1000)
        assert sim.events_elided == 0
        assert link.packets_sent == 5

    def test_run_until_bounds_drain(self):
        # Backlog that would drain past `until` must stop at the horizon
        # with the in-flight packet's finish event pending, exactly like
        # the plain path.
        def run(burst_drain):
            sim, _sched, link, trace = self.setup_link(burst_drain)
            for _ in range(10):
                sim.schedule(0.0, lambda: link.send(Packet("a", 100)))
            sim.run(until=0.45)
            return sim, link, trace

        sim_f, link_f, trace_f = run(True)
        sim_p, link_p, trace_p = run(False)
        assert sim_f.now == sim_p.now == 0.45
        assert link_f.packets_sent == link_p.packets_sent == 4
        assert [r.finish_time for r in trace_f.services] == \
            [r.finish_time for r in trace_p.services]
        # Continue: the remaining backlog must still transmit identically.
        sim_f.run()
        sim_p.run()
        assert link_f.packets_sent == link_p.packets_sent == 10
        assert [r.finish_time for r in trace_f.services] == \
            [r.finish_time for r in trace_p.services]

    def test_drain_counts_elisions(self):
        sim, _sched, link, _trace = self.setup_link()
        sim.schedule(0.0, lambda: [link.send(Packet("a", 100))
                                   for _ in range(8)])
        sim.run()
        # First packet is a scheduled finish event; the remaining 7 drain.
        assert sim.events_elided == 7
        assert link.packets_sent == 8
