"""Shared contracts across the whole scheduler zoo.

Two robustness satellites, checked uniformly for every scheduler:

* an empty dequeue raises :class:`EmptySchedulerError` — never ``None``,
  never an IndexError from some internal structure;
* enqueue validates packet fields and raises
  :class:`ConfigurationError` on anything that would corrupt the tag
  arithmetic (NaN, infinite, non-positive, boolean, or non-numeric
  lengths), leaving the scheduler state untouched.
"""

import math

import pytest

from repro.config import leaf, node
from repro.core import (
    DRRScheduler,
    FFQScheduler,
    FIFOScheduler,
    HPFQScheduler,
    SCFQScheduler,
    SFQScheduler,
    VirtualClockScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
    WRRScheduler,
)
from repro.core.packet import Packet
from repro.errors import ConfigurationError, EmptySchedulerError


def _flat(cls):
    def build():
        sched = cls(1000.0)
        sched.add_flow("a", 1)
        sched.add_flow("b", 2)
        return sched
    return build


def _hier(policy):
    def build():
        spec = node("root", 1, [
            node("g", 1, [leaf("a", 1), leaf("b", 2)]),
        ])
        return HPFQScheduler(spec, 1000.0, policy=policy)
    return build


BUILDERS = {
    "fifo": _flat(FIFOScheduler),
    "wrr": _flat(WRRScheduler),
    "drr": _flat(DRRScheduler),
    "scfq": _flat(SCFQScheduler),
    "sfq": _flat(SFQScheduler),
    "vclock": _flat(VirtualClockScheduler),
    "ffq": _flat(FFQScheduler),
    "wfq": _flat(WFQScheduler),
    "wf2q": _flat(WF2QScheduler),
    "wf2qplus": _flat(WF2QPlusScheduler),
    "hwf2qplus": _hier("wf2qplus"),
    "hwfq": _hier("wfq"),
    "hscfq": _hier("scfq"),
    "hsfq": _hier("sfq"),
}


@pytest.fixture(params=sorted(BUILDERS), ids=sorted(BUILDERS))
def sched(request):
    return BUILDERS[request.param]()


class TestEmptyDequeueContract:
    def test_fresh_scheduler_raises(self, sched):
        with pytest.raises(EmptySchedulerError):
            sched.dequeue()

    def test_raises_again_after_drain(self, sched):
        sched.enqueue(Packet("a", 100), now=0.0)
        sched.enqueue(Packet("b", 100), now=0.0)
        sched.drain()
        assert sched.is_empty
        with pytest.raises(EmptySchedulerError):
            sched.dequeue()
        # And the scheduler still works afterwards.
        sched.enqueue(Packet("a", 100), now=sched.clock)
        assert sched.dequeue().flow_id == "a"


BAD_LENGTHS = [
    pytest.param(float("nan"), id="nan"),
    pytest.param(float("inf"), id="inf"),
    pytest.param(-float("inf"), id="-inf"),
    pytest.param(0, id="zero"),
    pytest.param(-100, id="negative"),
    pytest.param(-0.5, id="negative-float"),
    pytest.param(True, id="bool"),
    pytest.param("800", id="string"),
    pytest.param(None, id="none"),
]


def bad_packet(flow_id, length):
    """A packet whose length went bad *after* construction (corruption,
    a hand-built from_dict payload) — the constructor rejects what it
    can, the scheduler must still guard its own tag arithmetic."""
    packet = Packet(flow_id, 100)
    packet.length = length
    return packet


class TestEnqueueValidation:
    @pytest.mark.parametrize("length", BAD_LENGTHS)
    def test_bad_length_rejected_without_side_effects(self, sched, length):
        sched.enqueue(Packet("b", 100), now=0.0)   # a healthy baseline
        before = sched.conservation()
        with pytest.raises(ConfigurationError):
            sched.enqueue(bad_packet("a", length), now=0.0)
        assert sched.conservation() == before
        assert sched.backlog == 1
        assert sched.dequeue().flow_id == "b"

    def test_packet_constructor_rejects_what_it_can(self):
        with pytest.raises(ValueError):
            Packet("a", 0)
        with pytest.raises(ValueError):
            Packet("a", -5)
        with pytest.raises(TypeError):
            Packet("a", "800")

    def test_fractional_and_integral_lengths_accepted(self, sched):
        from fractions import Fraction

        sched.enqueue(Packet("a", 1), now=0.0)
        sched.enqueue(Packet("a", 0.25), now=0.0)
        sched.enqueue(Packet("b", Fraction(1, 3)), now=0.0)
        assert len(sched.drain()) == 3
