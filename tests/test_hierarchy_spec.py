"""Tests for the declarative hierarchy specification."""

from fractions import Fraction as Fr

import pytest

from repro.config.hierarchy_spec import HierarchySpec, NodeSpec, leaf, node
from repro.errors import HierarchyError


def example():
    return HierarchySpec(node("root", 1, [
        node("A1", 50, [leaf("rt", 30), leaf("be", 20)]),
        leaf("A2", 20),
        leaf("A3", 30),
    ]))


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchySpec(node("r", 1, [leaf("x", 1), leaf("x", 2)]))

    def test_leaf_root_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchySpec(leaf("r", 1))

    def test_empty_interior_rejected(self):
        with pytest.raises(HierarchyError):
            node("n", 1, [])

    def test_nonpositive_share_rejected(self):
        with pytest.raises(HierarchyError):
            leaf("x", 0)
        with pytest.raises(HierarchyError):
            NodeSpec("x", -1)

    def test_lookup(self):
        spec = example()
        assert "rt" in spec
        assert "nope" not in spec
        assert spec["A1"].share == 50
        with pytest.raises(HierarchyError):
            spec["nope"]

    def test_parent(self):
        spec = example()
        assert spec.parent("rt").name == "A1"
        assert spec.parent("A1").name == "root"
        assert spec.parent("root") is None

    def test_leaf_names(self):
        assert example().leaf_names() == ["rt", "be", "A2", "A3"]

    def test_is_leaf(self):
        spec = example()
        assert spec.is_leaf("rt")
        assert not spec.is_leaf("A1")

    def test_walk_parents_first(self):
        names = [n.name for n in example().walk()]
        assert names.index("root") < names.index("A1") < names.index("rt")
        assert len(names) == 6


class TestShares:
    def test_normalized_share(self):
        spec = example()
        assert spec.normalized_share("A1") == pytest.approx(0.5)
        assert spec.normalized_share("rt") == pytest.approx(0.6)
        assert spec.normalized_share("root") == 1

    def test_guaranteed_fraction_is_product(self):
        spec = example()
        assert spec.guaranteed_fraction("rt") == pytest.approx(0.3)
        assert spec.guaranteed_fraction("be") == pytest.approx(0.2)
        assert spec.guaranteed_fraction("A2") == pytest.approx(0.2)

    def test_fractions_sum_to_one_over_leaves(self):
        spec = example()
        total = sum(spec.guaranteed_fraction(n) for n in spec.leaf_names())
        assert total == pytest.approx(1.0)

    def test_guaranteed_rate(self):
        spec = example()
        assert spec.guaranteed_rate("rt", 10_000_000) == pytest.approx(3_000_000)

    def test_exact_with_fractions(self):
        spec = HierarchySpec(node("r", 1, [
            node("a", Fr(1, 2), [leaf("x", Fr(81)), leaf("y", Fr(19))]),
            leaf("b", Fr(1, 2)),
        ]))
        assert spec.guaranteed_fraction("x") == Fr(81, 200)


class TestTopology:
    def test_ancestors(self):
        spec = example()
        assert [a.name for a in spec.ancestors("rt")] == ["A1", "root"]
        assert spec.ancestors("root") == []

    def test_depth(self):
        spec = example()
        assert spec.depth("rt") == 2
        assert spec.depth("A2") == 1
        assert spec.max_depth() == 2

    def test_deep_tree(self):
        spec = HierarchySpec(node("r", 1, [
            node("a", 1, [node("b", 1, [node("c", 1, [leaf("x", 1)])])]),
            leaf("y", 1),
        ]))
        assert spec.depth("x") == 4
        assert spec.guaranteed_fraction("x") == pytest.approx(0.5)
