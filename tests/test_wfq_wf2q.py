"""Tests for WFQ and WF2Q (the exact-GPS-tag schedulers)."""

from fractions import Fraction as Fr

import pytest

from repro.core.packet import Packet
from repro.core.wf2q import WF2QScheduler
from repro.core.wfq import WFQScheduler
from repro.experiments.fig2 import (
    fig2_gps_departures,
    fig2_schedule,
    service_discrepancy_vs_gps,
)

from tests.conftest import assert_fifo_per_flow, assert_no_overlap


def make(cls, shares, rate=Fr(1)):
    s = cls(rate)
    for fid, share in shares.items():
        s.add_flow(fid, share)
    return s


class TestWFQ:
    def test_single_flow_fifo(self):
        s = make(WFQScheduler, {"a": 1})
        for k in range(5):
            s.enqueue(Packet("a", Fr(1), seqno=k), now=Fr(0))
        assert [r.packet.seqno for r in s.drain()] == list(range(5))

    def test_sff_order(self):
        """Smallest GPS virtual finish first."""
        s = make(WFQScheduler, {"a": 3, "b": 1}, rate=Fr(4))
        s.enqueue(Packet("a", Fr(3)), now=Fr(0))  # F = 1
        s.enqueue(Packet("b", Fr(2)), now=Fr(0))  # F = 2
        assert s.dequeue().flow_id == "a"
        assert s.dequeue().flow_id == "b"

    def test_wfq_serves_burst_back_to_back(self):
        """Figure 2: ten session-1 packets run ahead under WFQ."""
        order = [fid for fid, _s, _f in fig2_schedule(WFQScheduler)]
        assert order[:10] == [1] * 10
        assert order[-1] == 1  # p_1^11 is punished to the very end
        assert sorted(order[10:20]) == list(range(2, 12))

    def test_wfq_discrepancy_is_many_packets(self):
        schedule = fig2_schedule(WFQScheduler)
        assert service_discrepancy_vs_gps(schedule) >= Fr(4)

    def test_records_have_gps_tags(self):
        s = make(WFQScheduler, {"a": 1, "b": 1}, rate=Fr(2))
        s.enqueue(Packet("a", Fr(2)), now=Fr(0))
        rec = s.dequeue()
        assert rec.virtual_start == 0
        assert rec.virtual_finish == Fr(2)

    def test_gps_view_exposed(self):
        s = make(WFQScheduler, {"a": 1}, rate=Fr(1))
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        assert s.gps_virtual_time(Fr(0)) == 0
        assert s.gps.is_backlogged("a")


class TestWF2Q:
    def test_seff_interleaves_fig2(self):
        order = [fid for fid, _s, _f in fig2_schedule(WF2QScheduler)]
        assert order == [1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 7, 1, 8,
                         1, 9, 1, 10, 1, 11, 1]

    def test_wf2q_discrepancy_below_one_packet(self):
        """Section 3.3: WF2Q never differs from GPS by a full packet."""
        schedule = fig2_schedule(WF2QScheduler)
        assert service_discrepancy_vs_gps(schedule) <= Fr(1)

    def test_eligibility_defers_early_start(self):
        s = make(WF2QScheduler, {1: Fr(1, 2), 2: Fr(1, 4), 3: Fr(1, 4)})
        s.enqueue(Packet(1, Fr(1)), now=Fr(0))
        s.enqueue(Packet(1, Fr(1)), now=Fr(0))
        s.enqueue(Packet(2, Fr(1)), now=Fr(0))
        s.enqueue(Packet(3, Fr(1)), now=Fr(0))
        assert s.dequeue().flow_id == 1
        # p_1^2 has S=2 in GPS; at t=1 V_GPS=1 so it is ineligible.
        assert s.dequeue().flow_id == 2

    def test_fifo_and_no_overlap(self):
        s = make(WF2QScheduler, {"a": 1, "b": 2}, rate=Fr(3))
        for k in range(6):
            s.enqueue(Packet("a", Fr(1), seqno=k), now=Fr(0))
            s.enqueue(Packet("b", Fr(1), seqno=k), now=Fr(0))
        records = s.drain()
        assert_fifo_per_flow(records)
        assert_no_overlap(records, Fr(3))


class TestAgainstGPSTimeline:
    def test_gps_departures_match_paper(self):
        deps = fig2_gps_departures()
        finish = {}
        for fid, t in deps:
            finish.setdefault(fid, []).append(t)
        assert finish[1][:10] == [Fr(2 * k) for k in range(1, 11)]
        assert finish[1][10] == Fr(21)
        for j in range(2, 12):
            assert finish[j] == [Fr(20)]

    @pytest.mark.parametrize("cls", [WFQScheduler, WF2QScheduler])
    def test_total_completion_time_equals_gps(self, cls):
        """Both packet systems finish all 21 packets at t=21 (work
        conservation ties the busy periods together)."""
        schedule = fig2_schedule(cls)
        assert schedule[-1][2] == Fr(21)

    @pytest.mark.parametrize("cls", [WFQScheduler, WF2QScheduler])
    def test_delay_within_one_packet_of_gps(self, cls):
        """Per-packet: packet-system finish <= GPS finish + Lmax/r for the
        tagged packets (the classic PGPS bound)."""
        gps_finish = {}
        for fid, t in fig2_gps_departures():
            gps_finish.setdefault(fid, []).append(t)
        seen = {}
        for fid, _start, finish in fig2_schedule(cls):
            idx = seen.get(fid, 0)
            seen[fid] = idx + 1
            assert finish <= gps_finish[fid][idx] + Fr(1)
