"""Unit tests for repro.shard: planner, merge/digest, CLI, bench family.

The cross-process differential guarantees (sharded == single-process,
migration-invariant digests) live in ``test_shard_differential.py``;
this file covers the deterministic planning and merge layers that make
those guarantees possible, plus the ``repro sim`` / ``repro stats``
surface.
"""

import json
from fractions import Fraction

import pytest

from repro.cli import build_parser, main
from repro.config import HierarchySpec, leaf, node
from repro.errors import ConfigurationError
from repro.shard import (
    SHARD_SCENARIOS,
    assign_shards,
    build_scenario,
    canonical_digest,
    cell_weight,
    connected_components,
    run_sharded,
    subtree_slices,
    validate_cells,
)


def _cbr_cell(cid, flows, rate=1e6, duration=1.0, per_flow_rate=1e5):
    return {
        "cell": cid,
        "kind": "flat",
        "duration": duration,
        "scheduler": {"kind": "flat", "policy": "wf2qplus", "rate": rate,
                      "flows": [(fid, 1) for fid in flows]},
        "sources": [{"type": "cbr", "flow": fid, "length": 1000.0,
                     "rate": per_flow_rate} for fid in flows],
    }


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestCellWeight:
    def test_cbr_expected_packets(self):
        spec = _cbr_cell("c", ["a", "b"], duration=2.0, per_flow_rate=5e5)
        # Two flows x (5e5 bps x 2 s / 1000 bits) = 2000 packets.
        assert cell_weight(spec) == pytest.approx(2000.0)

    def test_window_respects_start_and_stop(self):
        spec = _cbr_cell("c", ["a"], duration=10.0, per_flow_rate=1e3)
        spec["sources"][0]["start"] = 1.0
        spec["sources"][0]["stop"] = 3.0
        assert cell_weight(spec) == pytest.approx(1e3 * 2.0 / 1000.0)

    def test_source_mean_rates(self):
        spec = {
            "cell": "c", "kind": "flat", "duration": 1.0,
            "scheduler": {"kind": "flat", "policy": "wf2qplus",
                          "rate": 1e6, "flows": [("a", 1)]},
            "sources": [
                {"type": "onoff", "flow": "a", "length": 1000.0,
                 "peak": 4e5, "on": 1.0, "off": 3.0},
                {"type": "markov", "flow": "a", "length": 1000.0,
                 "peak": 4e5, "mean_on": 1.0, "mean_off": 3.0, "seed": 1},
                {"type": "train", "flow": "a", "length": 1000.0,
                 "train_length": 10, "interval": 0.1, "line_rate": 1e9},
            ],
        }
        # onoff and markov both average peak/4 = 1e5 bps -> 100 pkt each;
        # the train emits 10 packets every 0.1 s -> 100 pkt.
        assert cell_weight(spec) == pytest.approx(300.0)

    def test_unknown_source_type_rejected(self):
        spec = _cbr_cell("c", ["a"])
        spec["sources"][0]["type"] = "fractal"
        with pytest.raises(ConfigurationError):
            cell_weight(spec)


class TestAssignShards:
    def test_plan_is_deterministic(self):
        cells = [_cbr_cell(f"c{i}", [f"f{i}"], per_flow_rate=(i + 1) * 1e5)
                 for i in range(7)]
        plan1 = assign_shards(cells, 3)
        plan2 = assign_shards(list(reversed(cells)), 3)
        assert plan1 == plan2  # input order must not matter

    def test_lpt_balances_loads(self):
        cells = [_cbr_cell(f"c{i}", [f"f{i}"], per_flow_rate=(i + 1) * 1e5)
                 for i in range(8)]
        plan = assign_shards(cells, 4)
        loads = plan["loads"]
        # Weights 100..800: LPT packs each shard to exactly 900 packets.
        assert all(load == pytest.approx(900.0) for load in loads)

    def test_every_cell_assigned_once(self):
        cells = [_cbr_cell(f"c{i}", [f"f{i}"]) for i in range(5)]
        plan = assign_shards(cells, 2)
        assert sorted(plan["assignment"]) == [f"c{i}" for i in range(5)]
        assert set(plan["assignment"].values()) <= {0, 1}

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_shards([_cbr_cell("c", ["a"])], 0)


class TestValidateCells:
    def test_duplicate_cell_id_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate cell id"):
            validate_cells([_cbr_cell("c", ["a"]), _cbr_cell("c", ["b"])])

    def test_overlapping_flows_rejected(self):
        with pytest.raises(ConfigurationError, match="disjoint"):
            validate_cells([_cbr_cell("c0", ["a", "b"]),
                            _cbr_cell("c1", ["b"])])

    def test_hpfq_leaves_count_as_flows(self):
        hier = {
            "cell": "g", "kind": "flat", "duration": 1.0,
            "scheduler": {"kind": "hpfq", "policy": "wf2qplus", "rate": 1e6,
                          "tree": ["g", 1, [["a", 1, []], ["b", 2, []]]]},
            "sources": [],
        }
        with pytest.raises(ConfigurationError, match="disjoint"):
            validate_cells([hier, _cbr_cell("c", ["b"])])

    def test_network_routes_count_as_flows(self):
        net = {
            "cell": "net0", "kind": "network", "duration": 1.0,
            "nodes": [], "routes": [("a", ["n1"], 1, None)], "sources": [],
        }
        with pytest.raises(ConfigurationError, match="disjoint"):
            validate_cells([net, _cbr_cell("c", ["a"])])


class TestConnectedComponents:
    def test_disjoint_chains_split(self):
        routes = [("x", ["a", "b"]), ("y", ["c", "d"]), ("z", ["b"])]
        comps = connected_components(routes)
        assert comps == [(["a", "b"], ["x", "z"]), (["c", "d"], ["y"])]

    def test_shared_node_merges(self):
        comps = connected_components(
            [("x", ["a", "b"]), ("y", ["b", "c"])])
        assert comps == [(["a", "b", "c"], ["x", "y"])]

    def test_unrouted_node_is_own_component(self):
        comps = connected_components([("x", ["a"])], nodes=["a", "lonely"])
        assert (["lonely"], []) in comps

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            connected_components([("x", [])])


class TestSubtreeSlices:
    def test_integer_shares_give_exact_fractions(self):
        spec = HierarchySpec(node("root", 1, [
            node("g0", 1, [leaf("a", 1)]),
            node("g1", 2, [leaf("b", 1)]),
        ]))
        slices = subtree_slices(spec, 10 ** 9)
        rates = {child.name: rate for child, rate in slices}
        assert rates["g0"] == Fraction(10 ** 9, 3)
        assert isinstance(rates["g0"], Fraction)
        assert rates["g1"] == Fraction(2 * 10 ** 9, 3)
        assert sum(rates.values()) == 10 ** 9  # no rounding loss


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
class TestScenarios:
    def test_registry_builds_valid_partitions(self):
        for name in SHARD_SCENARIOS:
            built = build_scenario(name)
            assert built["name"] == name
            validate_cells(built["cells"])  # must not raise

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            build_scenario("nope")

    def test_none_params_dropped(self):
        built = build_scenario("cbr_flat", flows=None, cells=2)
        assert len(built["cells"]) == 2  # cells honoured, flows defaulted

    def test_hier_cells_carry_fraction_rates(self):
        built = build_scenario("hier", flows=6, cells=3)
        rates = [c["scheduler"]["rate"] for c in built["cells"]]
        assert any(isinstance(r, Fraction) for r in rates)
        assert sum(rates) == 10 ** 9

    def test_poisson_seeds_fixed_at_plan_time(self):
        built = build_scenario("poisson_mix", flows=8, cells=2)
        seeds = [src["seed"] for cell in built["cells"]
                 for src in cell["sources"]]
        assert len(set(seeds)) == len(seeds)  # collision-safe per flow
        again = build_scenario("poisson_mix", flows=8, cells=2)
        assert [src["seed"] for cell in again["cells"]
                for src in cell["sources"]] == seeds


# ----------------------------------------------------------------------
# Digest
# ----------------------------------------------------------------------
class TestDigest:
    @pytest.fixture(scope="class")
    def report(self):
        return run_sharded("cbr_flat", shards=1, flows=8, cells=2,
                           duration=0.002)

    def test_volatile_fields_excluded(self, report):
        mutated = dict(report)
        mutated["sim"] = {"events_processed": 0, "events_elided": 10 ** 9}
        mutated["wall_seconds"] = 123.0
        mutated["plan"] = {"shards": 64, "assignment": {}, "loads": []}
        assert canonical_digest(mutated) == report["digest"]

    def test_invariant_fields_included(self, report):
        mutated = json.loads(json.dumps(
            {k: v for k, v in report.items() if k != "digest"},
            default=str))
        cell = next(iter(mutated["cells"].values()))
        cell["links"]["link"]["link"]["packets_sent"] += 1
        assert canonical_digest(mutated) != report["digest"]

    def test_cell_iteration_order_irrelevant(self, report):
        reordered = dict(report)
        reordered["cells"] = dict(
            sorted(report["cells"].items(), reverse=True))
        assert canonical_digest(reordered) == report["digest"]

    def test_busy_time_excluded(self, report):
        mutated = dict(report)
        mutated["cells"] = {
            cid: {**res, "links": {
                name: {**lr, "link": {**lr["link"],
                                      "busy_time": 99.0}}
                for name, lr in res["links"].items()}}
            for cid, res in report["cells"].items()}
        assert canonical_digest(mutated) == report["digest"]


# ----------------------------------------------------------------------
# CLI: repro sim
# ----------------------------------------------------------------------
class TestSimParser:
    def test_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.scenario == "cbr_flat"
        assert args.shards == 1
        assert args.migrate_at is None
        assert not args.verify

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "--scenario", "nope"])

    def test_zero_shards_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "--shards", "0"])


class TestSimCommand:
    def test_single_process_report(self, capsys):
        assert main(["sim", "--flows", "8", "--cells", "2",
                     "--duration", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "digest:" in out
        assert "balanced" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["sim", "--flows", "8", "--cells", "2",
                     "--duration", "0.002", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["scenario"] == "cbr_flat"
        assert data["totals"]["balanced"] is True
        assert data["digest"]

    def test_migrate_cell_without_at_is_usage_error(self, capsys):
        assert main(["sim", "--migrate-cell", "c0"]) == 2

    def test_migrate_outside_window_rejected(self, capsys):
        assert main(["sim", "--flows", "4", "--cells", "1",
                     "--duration", "0.002", "--migrate-at", "5.0"]) == 2

    def test_multihop_migration_rejected(self, capsys):
        assert main(["sim", "--scenario", "multihop", "--cells", "1",
                     "--duration", "0.002", "--migrate-at", "0.001"]) == 2
        out = capsys.readouterr().out
        assert "flat cell" in out


# ----------------------------------------------------------------------
# CLI: repro stats ledger + --pipeline
# ----------------------------------------------------------------------
class TestStatsCommand:
    def test_churn_prints_conservation(self, capsys):
        assert main(["stats", "--flows", "4", "--packets", "200"]) == 0
        out = capsys.readouterr().out
        assert "conservation:" in out
        assert "balanced" in out

    def test_pipeline_prints_elision(self, capsys):
        assert main(["stats", "--pipeline", "--flows", "4",
                     "--packets", "200"]) == 0
        out = capsys.readouterr().out
        assert "pipeline" in out
        assert "conservation:" in out
        assert "events: processed=" in out
        assert "elided=" in out


# ----------------------------------------------------------------------
# Bench family
# ----------------------------------------------------------------------
class TestShardedPipelineBench:
    def test_quick_points(self, monkeypatch):
        # Stub the driver: the real cross-process path is the
        # differential suite's job; here we pin the point layout.
        import repro.shard

        calls = []

        def fake_run(scenario, shards, **kwargs):
            calls.append(shards)
            return {"totals": {"packets_sent": 1000},
                    "wall_seconds": 0.001 * shards}

        monkeypatch.setattr(repro.shard, "run_sharded", fake_run)
        from repro.bench.scenarios import scenario_sharded_pipeline

        points = scenario_sharded_pipeline(quick=True)
        assert [p.params["shards"] for p in points] == [1, 2]
        for p in points:
            assert p.scenario == "sharded_pipeline"
            assert p.scheduler == "WF2Q+"
            assert p.packets == 1000
            assert p.ns_per_packet > 0

    def test_registered(self):
        from repro.bench.scenarios import SCENARIOS

        assert "sharded_pipeline" in SCENARIOS
