"""Randomized-topology differential suite for the H-WF2Q+ hot path.

The flattened-tree rewrite (precomputed leaf->root paths, the fused
``reselect`` fast path, the two-heap node policy without a separate
start-tag heap) must be *packet-for-packet* identical to the naive
RESTART-NODE transliteration on **arbitrary** trees — not just the two
hand-built specs in ``test_equivalence_optimized``.

Each case draws a random hierarchy (depth <= 4, fanout 2-4 per internal
node, mixed integer shares) and a mixed workload: a dense churn window
(every selection exercises the re-key/reselect path) followed by bursty
on/off arrivals (every burst crosses busy-period boundaries, exercising
the epoch reset and the max(F, V) tag floor).  Everything runs under
:class:`fractions.Fraction`, so the transcripts — service order, real
times and virtual tags — are compared **exactly**; any divergence is an
algorithmic bug, never roundoff.
"""

import itertools
import random
from fractions import Fraction as Fr

import pytest

from repro.config import leaf, node
from repro.core.hierarchy import HPFQScheduler

from tests.test_equivalence_optimized import (
    NaiveWF2QPlusNodePolicy,
    bursty_arrivals,
    drive,
)


def random_tree(rng, max_depth=4):
    """A random spec of height <= ``max_depth``; returns (root, leaf ids).

    Internal nodes have fanout 2-4; a subtree stops early with
    probability 0.4, so depths mix within one tree.  Shares are small
    mixed integers — awkward on purpose, since Fraction arithmetic keeps
    every rate exact regardless.
    """
    ids = itertools.count()
    leaves = []

    def build(depth):
        if depth >= max_depth or rng.random() < 0.4:
            name = f"L{next(ids)}"
            leaves.append(name)
            return leaf(name, rng.randint(1, 5))
        children = [build(depth + 1) for _ in range(rng.randint(2, 4))]
        return node(f"N{next(ids)}", rng.randint(1, 5), children)

    # The root always branches, so every tree has at least two subtrees.
    root = node("root", 1,
                [build(2) for _ in range(rng.randint(2, 4))])
    return root, leaves


def churn_window(rng, leaves, count, seq_base):
    """Dense arrivals in [0, 1): the scheduler stays saturated throughout."""
    return [
        (Fr(rng.randrange(4096), 4096), seq_base + i,
         rng.choice(leaves), Fr(rng.choice([1, 2, 3]), 2))
        for i in range(count)
    ]


def mixed_workload(rng, leaves, seed):
    """Churn window + bursty on/off tail, as exact Fractions."""
    arrivals = churn_window(rng, leaves, count=120, seq_base=0)
    tail = bursty_arrivals(leaves, seed=seed, bursts=15)
    arrivals += [
        (Fr(2) + Fr(t).limit_denominator(1 << 12), 1000 + seq, fid, Fr(ln))
        for t, seq, fid, ln in tail
    ]
    return sorted(arrivals)


@pytest.mark.parametrize("seed", [1, 2, 3, 5, 8, 13])
def test_random_topology_matches_naive_reference(seed):
    rng = random.Random(seed)
    spec, leaves = random_tree(rng)
    while len(leaves) < 4:  # bursty_arrivals samples up to 4 active flows
        spec, leaves = random_tree(rng)
    arrivals = mixed_workload(rng, leaves, seed)

    opt = HPFQScheduler(spec, Fr(16), policy="wf2qplus")
    ref = HPFQScheduler(spec, Fr(16), policy=NaiveWF2QPlusNodePolicy)
    got = drive(opt, arrivals)
    want = drive(ref, arrivals)

    assert len(got) == len(arrivals)
    assert got == want  # flow order, real times and virtual tags, exactly


def test_deep_skinny_chain_matches_naive_reference():
    """Depth-4 two-way chains: the longest restart paths the suite allows."""
    spec = node("root", 1, [
        node("n0", 1, [
            node("n00", 2, [leaf("a", 1), leaf("b", 3)]),
            leaf("c", 1),
        ]),
        node("n1", 2, [
            node("n10", 1, [leaf("d", 2), leaf("e", 1)]),
            node("n11", 1, [leaf("f", 1), leaf("g", 1)]),
        ]),
    ])
    rng = random.Random(99)
    arrivals = mixed_workload(
        rng, ["a", "b", "c", "d", "e", "f", "g"], seed=99)
    opt = HPFQScheduler(spec, Fr(9), policy="wf2qplus")
    ref = HPFQScheduler(spec, Fr(9), policy=NaiveWF2QPlusNodePolicy)
    assert drive(opt, arrivals) == drive(ref, arrivals)
