"""Tests for the fairness metrics and the remaining traffic/TCP additions."""

import pytest

from repro.analysis.fairness import (
    jain_index,
    relative_fairness_bound,
    throughput_shares,
)
from repro.core.fifo import FIFOScheduler
from repro.core.scfq import SCFQScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.tcp.reno import Demux, TahoeConnection, TCPConnection
from repro.traffic.source import CBRSource, MarkovOnOffSource


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_total_unfairness_tends_to_1_over_n(self):
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1, 2])

    def test_all_zero_is_fair(self):
        assert jain_index([0, 0]) == 1.0


def run_two_flows(scheduler_cls, duration=10.0):
    sched = scheduler_cls(1000.0)
    sched.add_flow("a", 1)
    sched.add_flow("b", 1)
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    CBRSource("a", rate=600.0, packet_length=100).attach(sim, link).start()
    CBRSource("b", rate=600.0, packet_length=100).attach(sim, link).start()
    sim.run(until=duration)
    return trace


class TestThroughputShares:
    def test_equal_split(self):
        trace = run_two_flows(WF2QPlusScheduler)
        shares = throughput_shares(trace, 1.0, 9.0)
        assert shares["a"] == pytest.approx(0.5, abs=0.05)
        assert shares["b"] == pytest.approx(0.5, abs=0.05)

    def test_empty_window(self):
        trace = run_two_flows(WF2QPlusScheduler)
        assert throughput_shares(trace, 100.0, 101.0) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_shares(ServiceTrace(), 2.0, 1.0)


class TestRFB:
    def test_fair_scheduler_has_small_rfb(self):
        trace = run_two_flows(WF2QPlusScheduler)
        rfb = relative_fairness_bound(trace, "a", "b", 500.0, 500.0)
        # One packet of each flow normalised: 2 * 100/500 = 0.4s.
        assert rfb <= 0.4 + 1e-6

    def test_fifo_rfb_larger_than_fair(self):
        fifo = relative_fairness_bound(
            run_two_flows(FIFOScheduler), "a", "b", 500.0, 500.0)
        fair = relative_fairness_bound(
            run_two_flows(WF2QPlusScheduler), "a", "b", 500.0, 500.0)
        assert fifo >= fair

    def test_no_joint_backlog(self):
        trace = ServiceTrace()
        assert relative_fairness_bound(trace, "a", "b", 1.0, 1.0) == 0.0


class TestMarkovSource:
    def harness(self):
        sim = Simulator()
        sched = FIFOScheduler(10e6)
        sched.add_flow("m", 1)
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace)
        return sim, link, trace

    def test_mean_rate_matches_duty_cycle(self):
        sim, link, trace = self.harness()
        src = MarkovOnOffSource("m", peak_rate=1e6, packet_length=1000,
                                mean_on=0.1, mean_off=0.3, seed=5)
        src.attach(sim, link).start()
        sim.run(until=200.0)
        bits = sum(length for _f, _t, length in trace.arrivals)
        assert bits / 200.0 == pytest.approx(src.average_rate, rel=0.2)

    def test_burstier_than_cbr(self):
        """Inter-arrival gaps have both back-to-back and long-idle modes."""
        sim, link, trace = self.harness()
        MarkovOnOffSource("m", peak_rate=1e6, packet_length=1000,
                          mean_on=0.05, mean_off=0.2, seed=7).attach(
            sim, link).start()
        sim.run(until=50.0)
        times = [t for _f, t, _l in trace.arrivals]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) <= 0.0011
        assert max(gaps) > 0.05

    def test_reproducible(self):
        def run(seed):
            sim, link, trace = self.harness()
            MarkovOnOffSource("m", 1e6, 1000, 0.1, 0.1, seed=seed).attach(
                sim, link).start()
            sim.run(until=5.0)
            return [t for _f, t, _l in trace.arrivals]
        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_validation(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            MarkovOnOffSource("m", 0, 1000, 1, 1)
        with pytest.raises(ConfigurationError):
            MarkovOnOffSource("m", 1, 1000, 0, 1)


class TestTahoe:
    def harness(self, cls, rate=0.5e6, buffers=4):
        sim = Simulator()
        sched = WF2QPlusScheduler(rate)
        sched.add_flow("t", 1)
        sched.set_buffer_limit("t", buffers)
        trace = ServiceTrace()
        demux = Demux()
        link = Link(sim, sched, receiver=demux, trace=trace)
        conn = cls("t", mss=8192, feedback_delay=0.01)
        conn.attach(sim, link, demux).start()
        sim.run(until=15.0)
        return conn, trace

    def test_tahoe_never_enters_recovery(self):
        conn, _trace = self.harness(TahoeConnection)
        assert conn.retransmits > 0
        assert conn.in_recovery is False

    def test_tahoe_restarts_from_cwnd_one(self):
        conn, _trace = self.harness(TahoeConnection)
        # After losses, cwnd collapsed at least once: ssthresh recorded it.
        assert conn.ssthresh < 64.0

    def test_reno_beats_tahoe_goodput(self):
        _reno, trace_r = self.harness(TCPConnection)
        _tahoe, trace_t = self.harness(TahoeConnection)
        assert trace_r.bits_served("t") >= trace_t.bits_served("t")
