"""Tests for the TCP Reno model."""

import pytest

from repro.core.wf2qplus import WF2QPlusScheduler
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.tcp.reno import Demux, TCPConnection


def harness(rate=1_000_000.0, flows=("t",), buffers=None, mss=8192,
            feedback=0.01):
    sim = Simulator()
    sched = WF2QPlusScheduler(rate)
    trace = ServiceTrace()
    demux = Demux()
    link = Link(sim, sched, receiver=demux, trace=trace)
    conns = {}
    for fid in flows:
        sched.add_flow(fid, 1)
        if buffers:
            sched.set_buffer_limit(fid, buffers)
        conns[fid] = TCPConnection(fid, mss=mss, feedback_delay=feedback)
        conns[fid].attach(sim, link, demux).start()
    return sim, sched, link, trace, conns


class TestDemux:
    def test_routes_by_flow(self):
        d = Demux()
        got = []
        d.register("a", lambda p, t: got.append(("a", t)))

        class P:
            flow_id = "a"
        d(P, 1.0)
        assert got == [("a", 1.0)]

    def test_unrouted_counted(self):
        d = Demux()

        class P:
            flow_id = "zzz"
        d(P, 1.0)
        assert d.unrouted == 1


class TestValidation:
    def test_bad_mss(self):
        with pytest.raises(ConfigurationError):
            TCPConnection("t", mss=0, feedback_delay=0.01)

    def test_bad_feedback(self):
        with pytest.raises(ConfigurationError):
            TCPConnection("t", mss=100, feedback_delay=-1)

    def test_start_requires_attach(self):
        with pytest.raises(ConfigurationError):
            TCPConnection("t", mss=100, feedback_delay=0.01).start()


class TestSlowStartAndGrowth:
    def test_cwnd_doubles_per_rtt_initially(self):
        sim, _s, _l, _tr, conns = harness(rate=100e6)
        c = conns["t"]
        assert c.cwnd == 2.0
        sim.run(until=0.05)  # a few RTTs at ~10ms feedback
        assert c.cwnd > 8

    def test_goodput_fills_uncontended_link(self):
        sim, _s, link, trace, conns = harness(rate=1e6, buffers=20)
        sim.run(until=10.0)
        bits = trace.bits_served("t", until=10.0)
        assert bits / 10.0 >= 0.85e6  # >= 85% of the link

    def test_receiver_reassembles_in_order(self):
        sim, _s, _l, _tr, conns = harness(rate=1e6, buffers=10)
        sim.run(until=5.0)
        c = conns["t"]
        # The receiver's contiguous prefix is never behind the sender's
        # acked view (ACKs in flight can make it run ahead).
        assert c.rcv_next >= c.una
        assert c.acked > 100


class TestLossRecovery:
    def test_fast_retransmit_on_drops(self):
        sim, sched, _l, _tr, conns = harness(rate=0.5e6, buffers=4)
        sim.run(until=10.0)
        c = conns["t"]
        assert sched.drops("t") > 0, "tiny buffer must overflow"
        assert c.retransmits > 0
        # Fast recovery (not timeout) should dominate.
        assert c.timeouts <= c.retransmits

    def test_ssthresh_falls_after_loss(self):
        sim, _s, _l, _tr, conns = harness(rate=0.5e6, buffers=4)
        sim.run(until=10.0)
        assert conns["t"].ssthresh < 64.0

    def test_connection_survives_heavy_loss(self):
        sim, sched, _l, trace, conns = harness(rate=0.2e6, buffers=2)
        sim.run(until=20.0)
        c = conns["t"]
        # Despite losses the contiguous prefix keeps advancing.
        assert c.una > 100
        assert sched.drops("t") > 5

    def test_max_cwnd_cap(self):
        sim = Simulator()
        sched = WF2QPlusScheduler(100e6)
        sched.add_flow("t", 1)
        demux = Demux()
        link = Link(sim, sched, receiver=demux)
        c = TCPConnection("t", mss=8192, feedback_delay=0.01, max_cwnd=4)
        c.attach(sim, link, demux).start()
        sim.run(until=1.0)
        assert c.next_seq - c.una <= 4


class TestSharing:
    def test_two_tcps_split_fairly(self):
        sim, _s, _l, trace, conns = harness(
            rate=1e6, flows=("t1", "t2"), buffers=10)
        sim.run(until=20.0)
        b1 = trace.bits_served("t1")
        b2 = trace.bits_served("t2")
        assert b1 / b2 == pytest.approx(1.0, rel=0.2)

    def test_weighted_split(self):
        sim = Simulator()
        sched = WF2QPlusScheduler(1e6)
        trace = ServiceTrace()
        demux = Demux()
        link = Link(sim, sched, receiver=demux, trace=trace)
        for fid, share in (("a", 3), ("b", 1)):
            sched.add_flow(fid, share)
            sched.set_buffer_limit(fid, 10)
            TCPConnection(fid, mss=8192, feedback_delay=0.01).attach(
                sim, link, demux).start()
        sim.run(until=20.0)
        ratio = trace.bits_served("a") / trace.bits_served("b")
        assert ratio == pytest.approx(3.0, rel=0.25)

    def test_rtt_estimation_converges(self):
        sim, _s, _l, _tr, conns = harness(rate=1e6, buffers=10)
        sim.run(until=5.0)
        c = conns["t"]
        assert c.srtt is not None
        assert c.srtt > c.feedback_delay  # includes queueing + transmission
        assert c.rto >= c.min_rto
