"""Differential suite for the batch scheduling core.

Three equivalence claims are pinned here:

* **batch == per-packet** — any mix of ``enqueue_batch`` /
  ``dequeue_batch`` / ``drain_until`` produces exactly the records the
  equivalent per-packet call sequence produces: same service order, same
  times, same virtual tags (exact under ``Fraction``), same drop
  ledgers, and the same observer event stream when a bus is attached.
* **vector == exact** — :class:`VectorWF2QPlus` is bit-identical to the
  exact ``WF2QPlusScheduler`` on float workloads whose guaranteed rates
  are powers of two, with or without numpy, per-packet or batched.
* **the sim layer batch path is invisible** — ``Link.send_batch`` and
  the batch burst drain yield the same services and counters as the
  per-packet stepping path (forced via a non-passive sink), and
  ``Simulator.advance_over`` enforces the same validation rules as
  ``advance_to``.
"""

import random
from fractions import Fraction as Fr

import pytest

from repro.config import leaf, node
from repro.core import (
    FIFOScheduler,
    HPFQScheduler,
    SCFQScheduler,
    SFQScheduler,
    VectorWF2QPlus,
    WF2QPlusScheduler,
)
from repro.core.batch import HAVE_NUMPY, NUMPY_MIN_CHUNK
from repro.core.packet import Packet
from repro.core.scheduler import BATCH_KERNEL_MIN
from repro.errors import SimulationError
from repro.obs import CallbackSink, RingBufferSink
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import CBRSource


def rec_tuple(rec):
    return (rec.flow_id, rec.packet.length, rec.start_time, rec.finish_time,
            rec.virtual_start, rec.virtual_finish)


def flat(cls, rate, flows=6):
    sched = cls(rate)
    for i in range(flows):
        sched.add_flow(str(i), 1 + i % 3)
    return sched


def tree(rate):
    spec = node("root", 1, [
        node("left", 2, [leaf("0", 1), leaf("1", 2), leaf("2", 1)]),
        node("right", 1, [leaf("3", 2), leaf("4", 1), leaf("5", 3)]),
    ])
    return HPFQScheduler(spec, rate, policy="wf2qplus")


#: (name, builder, exact) — exact builders run the Fraction workload.
BUILDERS = [
    ("FIFO", lambda rate: flat(FIFOScheduler, rate), True),
    ("WF2Q+", lambda rate: flat(WF2QPlusScheduler, rate), True),
    ("SFQ", lambda rate: flat(SFQScheduler, rate), True),
    ("SCFQ", lambda rate: flat(SCFQScheduler, rate), True),
    ("H-WF2Q+", tree, True),
    ("VectorWF2Q+", lambda rate: flat(VectorWF2QPlus, rate), False),
]

LENGTHS = (500, 1000, 1500, 8000)


def make_ops(rng, flows=6, steps=60):
    """A deterministic mixed workload: bursts, chunked dequeues, drains.

    Times are relative ``gap`` values (both drivers resolve them against
    their own last finish time, identically while the runs agree), so
    the same op list drives the Fraction and float domains.
    """
    ops = []
    for _ in range(steps):
        r = rng.random()
        if r < 0.5:
            k = rng.choice((1, 2, 3, BATCH_KERNEL_MIN - 1,
                            BATCH_KERNEL_MIN, 12, 20, 40))
            pkts = [(str(rng.randrange(flows)), rng.choice(LENGTHS))
                    for _ in range(k)]
            # Mostly same-instant bursts inside the busy period; the
            # occasional large gap forces an idle boundary (epoch reset).
            gap = rng.choice((0, 0, 0, 0, (1, 1000), (3, 100)))
            ops.append(("enq", gap, pkts))
        elif r < 0.85:
            ops.append(("deq", rng.choice((1, 2, 5, BATCH_KERNEL_MIN,
                                           16, 33))))
        else:
            ops.append(("drain", (rng.randrange(1, 50), 1000)))
    return ops


def _resolve(value, frac):
    if value == 0:
        return Fr(0) if frac else 0.0
    num, den = value
    return Fr(num, den) if frac else num / den


def apply_per_packet(sched, ops, frac):
    """The per-packet reference execution of an op list."""
    records = []
    t_last = Fr(0) if frac else 0.0
    for op in ops:
        if op[0] == "enq":
            _, gap, pkts = op
            base = records[-1].finish_time if records else t_last
            t = base + _resolve(gap, frac)
            if t < t_last:
                t = t_last
            t_last = t
            for fid, length in pkts:
                sched.enqueue(Packet(fid, length), now=t)
        elif op[0] == "deq":
            k = op[1]
            while k and not sched.is_empty:
                records.append(sched.dequeue())
                k -= 1
        else:
            if sched.is_empty:
                continue
            base = records[-1].finish_time if records else t_last
            limit = base + _resolve(op[1], frac)
            rec = sched.dequeue()
            records.append(rec)
            while rec.finish_time < limit and not sched.is_empty:
                rec = sched.dequeue()
                records.append(rec)
    while not sched.is_empty:
        records.append(sched.dequeue())
    return records


def apply_batched(sched, ops, frac):
    """The same op list through the batch APIs."""
    records = []
    t_last = Fr(0) if frac else 0.0
    for op in ops:
        if op[0] == "enq":
            _, gap, pkts = op
            base = records[-1].finish_time if records else t_last
            t = base + _resolve(gap, frac)
            if t < t_last:
                t = t_last
            t_last = t
            sched.enqueue_batch(
                [Packet(fid, length) for fid, length in pkts], now=t)
        elif op[0] == "deq":
            records.extend(sched.dequeue_batch(op[1]))
        else:
            if sched.is_empty:
                continue
            base = records[-1].finish_time if records else t_last
            sched.drain_until(base + _resolve(op[1], frac), into=records)
    sched.drain_until(None, into=records)
    return records


# ----------------------------------------------------------------------
# batch == per-packet
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 23])
@pytest.mark.parametrize("name,build,exact",
                         BUILDERS, ids=[b[0] for b in BUILDERS])
def test_batch_matches_per_packet(name, build, exact, seed):
    frac = exact
    rate = Fr(1_000_000) if frac else 1_000_000.0
    ops = make_ops(random.Random(seed))
    ref = apply_per_packet(build(rate), ops, frac)
    got = apply_batched(build(rate), ops, frac)
    assert [rec_tuple(r) for r in got] == [rec_tuple(r) for r in ref]
    assert len(ref) > 100  # the workload actually moved packets


def test_tags_stay_fraction_exact():
    """The batch kernels must not leak floats into a Fraction run.

    Fraction *shares* keep the guaranteed-rate division exact (int
    shares divide to float), so every tag must come out a Fraction.
    """
    sched = WF2QPlusScheduler(Fr(1_000_000))
    for i in range(6):
        sched.add_flow(str(i), Fr(1 + i % 3))
    sched.enqueue_batch(
        [Packet(str(i % 6), 1000) for i in range(24)], now=Fr(0))
    records = sched.dequeue_batch(24)
    assert len(records) == 24
    for rec in records:
        assert isinstance(rec.finish_time, Fr)
        assert isinstance(rec.virtual_finish, Fr)


def test_dequeue_batch_empty_and_zero():
    sched = flat(WF2QPlusScheduler, 1e6)
    assert sched.dequeue_batch(8) == []
    sched.enqueue(Packet("0", 1000), now=0.0)
    assert sched.dequeue_batch(0) == []
    assert len(sched.dequeue_batch(99)) == 1


def test_drain_until_crossing_semantics():
    sched = flat(WF2QPlusScheduler, 1e6, flows=4)
    sched.enqueue_batch([Packet(str(i % 4), 1000) for i in range(32)],
                        now=0.0)
    # 1000 bits at 1e6 bps = 1 ms per packet; the limit lands mid-burst.
    limit = 0.0105
    records = sched.drain_until(limit)
    assert all(r.finish_time < limit for r in records[:-1])
    assert records[-1].finish_time >= limit  # crossing packet included
    rest = sched.drain_until(None)
    assert len(records) + len(rest) == 32
    # ``into`` appends in place and returns the same list.
    sched.enqueue_batch([Packet("0", 1000) for _ in range(3)])
    out = []
    assert sched.drain_until(None, into=out) is out
    assert len(out) == 3


def test_enqueue_batch_respects_buffer_limits():
    def build():
        sched = flat(WF2QPlusScheduler, 1e6, flows=3)
        sched.set_buffer_limit("0", 2)
        sched.set_buffer_limit("1", 3)
        return sched

    burst = [(str(i % 3), 1000) for i in range(21)]
    ref = build()
    for fid, ln in burst:
        ref.enqueue(Packet(fid, ln), now=0.0)
    got = build()
    accepted = got.enqueue_batch(
        [Packet(fid, ln) for fid, ln in burst], now=0.0)
    assert accepted == ref.conservation()["arrivals"] - \
        ref.conservation()["drops"]
    assert got.conservation() == ref.conservation()
    assert [rec_tuple(r) for r in got.drain()] == \
        [rec_tuple(r) for r in ref.drain()]


def test_enqueue_batch_with_observer_same_event_stream():
    def run(batched):
        sched = flat(WF2QPlusScheduler, 1e6, flows=3)
        ring = RingBufferSink()
        sched.attach_observer(ring)
        pkts = [Packet(str(i % 3), 1000) for i in range(12)]
        if batched:
            sched.enqueue_batch(pkts, now=0.0)
            sched.dequeue_batch(12)
        else:
            for p in pkts:
                sched.enqueue(p, now=0.0)
            for _ in range(12):
                sched.dequeue()
        return [(type(e).__name__, getattr(e, "flow_id", None), e.time)
                for e in ring.events()]

    assert run(batched=True) == run(batched=False)


def test_batch_stats_counters():
    sched = flat(WF2QPlusScheduler, 1e6)
    sched.enqueue_batch([Packet(str(i % 6), 1000) for i in range(64)],
                        now=0.0)
    sched.dequeue_batch(1)
    sched.dequeue_batch(63)
    stats = sched.batch_stats()
    assert stats["batch_calls"] == 3
    assert stats["batch_packets"] == 128
    assert stats["batched_fraction"] == 1.0
    hist = stats["packets_per_batch"]
    assert sum(hist.values()) == stats["batch_calls"]
    assert hist["1"] == 1 and hist["64-511"] == 1 and hist["8-63"] == 1


def test_overridden_on_enqueue_disables_enqueue_kernel():
    hook_calls = []

    class Hooked(WF2QPlusScheduler):
        def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
            hook_calls.append(packet.flow_id)
            super()._on_enqueue(state, packet, now, was_flow_empty, was_idle)

    sched = flat(Hooked, 1e6, flows=2)
    n = 2 * BATCH_KERNEL_MIN
    sched.enqueue_batch([Packet(str(i % 2), 1000) for i in range(n)],
                        now=0.0)
    assert len(hook_calls) == n  # every packet went through the hook


def test_small_chunks_use_per_packet_path():
    """Below BATCH_KERNEL_MIN the batch APIs are the per-packet loop —
    same results (pinned above), and the counters still tick."""
    sched = flat(WF2QPlusScheduler, 1e6)
    sched.enqueue_batch([Packet("0", 1000)], now=0.0)
    assert sched.batch_stats()["batch_calls"] == 1
    assert len(sched.dequeue_batch(1)) == 1
    assert sched.batch_stats()["batch_calls"] == 2


# ----------------------------------------------------------------------
# vector == exact
# ----------------------------------------------------------------------
def pow2_flat(cls, flows=4):
    # rate and equal shares chosen so r_i = rate/flows is a power of two:
    # L / r and L * (1/r) are then both exact in float64.
    sched = cls(float(2 ** 20))
    for i in range(flows):
        sched.add_flow(str(i), 1)
    return sched


@pytest.mark.parametrize("seed", [3, 11])
def test_vector_bit_identical_to_exact_float(seed):
    ops = make_ops(random.Random(seed), flows=4)
    ref = apply_per_packet(pow2_flat(WF2QPlusScheduler), ops, frac=False)
    got = apply_batched(pow2_flat(VectorWF2QPlus), ops, frac=False)
    assert [rec_tuple(r) for r in got] == [rec_tuple(r) for r in ref]


def test_vector_fraction_inputs_are_float_approximate():
    exact = flat(WF2QPlusScheduler, Fr(1_000_000), flows=3)
    vec = flat(VectorWF2QPlus, Fr(1_000_000), flows=3)
    for i in range(30):
        p = Packet(str(i % 3), 1000)
        exact.enqueue(p, now=Fr(0))
        vec.enqueue(Packet(str(i % 3), 1000), now=0.0)
    ref, got = exact.drain(), vec.drain()
    assert len(got) == len(ref)
    for r, g in zip(ref, got):
        assert isinstance(g.finish_time, float)
        assert g.finish_time == pytest.approx(float(r.finish_time))


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
def test_vector_numpy_and_fallback_paths_identical(monkeypatch):
    def run():
        sched = pow2_flat(VectorWF2QPlus, flows=32)
        # Same-instant bursts over >= NUMPY_MIN_CHUNK newly backlogged
        # flows reach the vectorized group-tagging path.
        burst = [Packet(str(i), 1000) for i in range(2 * NUMPY_MIN_CHUNK)]
        sched.enqueue_batch(burst, now=0.0)
        records = sched.dequeue_batch(NUMPY_MIN_CHUNK)
        last = records[-1].finish_time
        sched.enqueue_batch(
            [Packet(str(i), 500) for i in range(NUMPY_MIN_CHUNK)], now=last)
        sched.drain_until(None, into=records)
        return [rec_tuple(r) for r in records]

    with_numpy = run()
    import repro.core.batch as batch_mod
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
    assert run() == with_numpy


def test_vector_snapshot_mid_batch_roundtrip():
    sched = pow2_flat(VectorWF2QPlus, flows=8)
    sched.enqueue_batch([Packet(str(i % 8), 1000) for i in range(40)],
                        now=0.0)
    sched.dequeue_batch(13)  # snapshot lands mid-chunk state
    snap = sched.snapshot()
    first = [rec_tuple(r) for r in sched.drain()]
    fresh = pow2_flat(VectorWF2QPlus, flows=8)
    fresh.restore(snap)
    assert [rec_tuple(r) for r in fresh.drain()] == first


def test_vector_matches_exact_service_order_on_fig2():
    """The paper's Figure-2 example through the float64 backend.  Shares
    are given as integers in the paper's 10:1 ratio rather than 0.5/0.05
    — 0.05 is not representable in binary, and the rounded share flips
    the S == V eligibility knife-edge the SEFF alternation sits on; with
    integer shares every tag is float64-exact and the vector backend
    must reproduce the exact path's service order."""
    from repro.experiments.fig2 import fig2_schedule

    ref = [flow_id for flow_id, _s, _f in fig2_schedule(WF2QPlusScheduler)]

    vec = VectorWF2QPlus(rate=1.0)
    vec.add_flow(1, 10)
    for j in range(2, 12):
        vec.add_flow(j, 1)
    vec.enqueue_batch([Packet(1, 1) for _ in range(11)], now=0.0)
    vec.enqueue_batch([Packet(j, 1) for j in range(2, 12)], now=0.0)
    got = [rec.flow_id for rec in vec.drain()]

    assert got == ref
    assert got[:4] == [1, 2, 1, 3]  # SEFF alternation, paper Section 3.1


@pytest.mark.parametrize("seed", [5, 17])
def test_vector_matches_exact_service_order_on_bursty(seed):
    """Bursty on/off arrivals (idle gaps crossing busy-period boundaries
    exercise the epoch-based tag resets) through both backends."""
    def run(sched):
        rng = random.Random(seed)
        records = []
        clock = 0.0
        for _ in range(40):
            fid = str(rng.randrange(4))
            burst = [Packet(fid, rng.choice((512, 1024)))
                     for _ in range(rng.randrange(1, 12))]
            sched.enqueue_batch(burst, now=clock)
            if rng.random() < 0.6:
                horizon = clock + rng.randrange(1, 64) / 1024.0
                sched.drain_until(horizon, into=records)
            # Occasional long gaps drain the system entirely: the next
            # burst then opens a fresh busy period.
            clock += rng.choice((1, 1, 2, 64)) / 1024.0
            if records:
                clock = max(clock, records[-1].finish_time)
        sched.drain_until(None, into=records)
        return records

    ref = run(pow2_flat(WF2QPlusScheduler))
    got = run(pow2_flat(VectorWF2QPlus))
    assert len(ref) > 150
    assert ([(r.flow_id, r.packet.length) for r in got]
            == [(r.flow_id, r.packet.length) for r in ref])
    # Power-of-two rates make float64 exact, so tags agree bit-for-bit.
    assert [rec_tuple(r) for r in got] == [rec_tuple(r) for r in ref]


# ----------------------------------------------------------------------
# sim layer
# ----------------------------------------------------------------------
def test_send_batch_matches_per_packet_send():
    def run(batched):
        sim = Simulator()
        sched = flat(WF2QPlusScheduler, 1e6, flows=3)
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace)
        pkts = lambda: [Packet(str(i % 3), 1000) for i in range(12)]
        if batched:
            sim.schedule(0.0, lambda: link.send_batch(pkts()))
            sim.schedule(0.005, lambda: link.send_batch(pkts()))
        else:
            sim.schedule(0.0, lambda: [link.send(p) for p in pkts()])
            sim.schedule(0.005, lambda: [link.send(p) for p in pkts()])
        sim.run()
        return ([rec_tuple(r) for r in trace.services],
                link.packets_sent, link.bits_sent,
                [(fid, t, ln) for fid, t, ln in trace.arrivals])

    assert run(batched=True) == run(batched=False)


def test_send_batch_falls_back_under_buffer_limits():
    sim = Simulator()
    sched = flat(WF2QPlusScheduler, 1e6, flows=2)
    sched.set_buffer_limit("0", 1)
    link = Link(sim, sched)
    dropped = []
    link.drop_callback = lambda pkt, now: dropped.append(pkt.flow_id)
    sim.schedule(0.0, lambda: link.send_batch(
        [Packet("0", 1000) for _ in range(4)]))
    sim.run()
    # Per-packet semantics: the first send starts transmitting (leaving
    # the buffer empty), the second queues, the rest hit the cap.
    assert link.packets_sent == 2
    assert dropped == ["0", "0"]


def _pipeline(force_steps):
    sim = Simulator()
    sched = flat(WF2QPlusScheduler, 1e6, flows=4)
    if force_steps:
        # A non-passive sink forces the per-packet stepping drain.
        sched.attach_observer(CallbackSink(lambda event: None))
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    for i in range(4):
        CBRSource(str(i), 2.2e5, 1000,
                  start_time=i * 1e-4).attach(sim, link).start()
    sim.run(until=0.25)
    return trace, link


def test_link_batch_drain_matches_stepping_drain():
    ref_trace, ref_link = _pipeline(force_steps=True)
    got_trace, got_link = _pipeline(force_steps=False)
    assert [rec_tuple(r) for r in got_trace.services] == \
        [rec_tuple(r) for r in ref_trace.services]
    assert (got_link.packets_sent, got_link.bits_sent) == \
        (ref_link.packets_sent, ref_link.bits_sent)
    assert got_link.busy_time == pytest.approx(ref_link.busy_time)
    assert len(got_trace.services) > 200


def test_batch_drain_respects_run_horizon():
    """A drain must not run past ``run(until=...)``: packets finishing
    after the horizon stay queued, exactly as on the stepping path."""
    sim = Simulator()
    sched = flat(WF2QPlusScheduler, 1e6, flows=2)
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    sim.schedule(0.0, lambda: link.send_batch(
        [Packet("0", 1000) for _ in range(10)]))
    sim.run(until=0.0055)
    assert sim.now == 0.0055
    assert all(r.finish_time <= 0.0055 for r in trace.services)
    assert link.packets_sent == 5
    sim.run()
    assert link.packets_sent == 10


def test_advance_over_validates_like_advance_to():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.advance_over(2.0, 3)
    assert sim.now == 2.0
    assert sim.events_elided == 3
    with pytest.raises(SimulationError):
        sim.advance_over(1.0, 1)  # into the past
    with pytest.raises(SimulationError):
        sim.advance_over(6.0, 1)  # past the queue head
