"""Chaos scenarios: zero violations, exact conservation, determinism."""

import pytest

from repro.faults import SCENARIOS, run_all, run_chaos
from repro.obs import RingBufferSink

FAST = dict(duration=0.5, flows=4, rate=1e6)


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("scheduler", ["wf2qplus", "hwf2qplus"])
def test_scenario_passes(scenario, scheduler):
    result = run_chaos(scenario, scheduler=scheduler, seed=2, **FAST)
    assert result.violation is None
    assert result.balanced
    assert result.ok
    assert result.faults_applied > 0
    assert result.backlog == 0          # every scenario drains completely
    assert result.arrivals == result.departures + result.drops


@pytest.mark.parametrize("scheduler", ["drr", "hscfq", "hsfq", "hwfq"])
def test_more_schedulers_survive_link_flap_and_shares(scheduler):
    for scenario in ("link_flap", "share_renegotiation"):
        assert run_chaos(scenario, scheduler=scheduler, seed=5, **FAST).ok


def test_same_seed_identical_outcome():
    a = run_chaos("churn_storm", scheduler="wf2qplus", seed=11, **FAST)
    b = run_chaos("churn_storm", scheduler="wf2qplus", seed=11, **FAST)
    assert a.to_dict() == b.to_dict()


def test_same_seed_identical_event_stream():
    def trace(seed):
        ring = RingBufferSink()
        run_chaos("share_renegotiation", scheduler="hwf2qplus", seed=seed,
                  sinks=(ring,), **FAST)
        events = []
        for e in ring.events():
            d = e.to_dict()
            d.pop("packet_uid", None)  # uids are process-global counters
            events.append(d)
        return events

    assert trace(7) == trace(7)
    assert trace(7) != trace(8)


def test_buffer_pressure_actually_drops():
    result = run_chaos("buffer_pressure", scheduler="wf2qplus", seed=2,
                       duration=0.5, flows=4, rate=1e6, load=2.5)
    assert result.ok and result.drops > 0


def test_unknown_scenario_and_scheduler_rejected():
    with pytest.raises(ValueError):
        run_chaos("meteor_strike", **FAST)
    with pytest.raises(ValueError):
        run_chaos("link_flap", scheduler="wfq", **FAST)


def test_run_all_covers_every_scenario():
    results = run_all(scheduler="wf2qplus", seed=3, **FAST)
    assert [r.scenario for r in results] == list(SCENARIOS)
    assert all(r.ok for r in results)
