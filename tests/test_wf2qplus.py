"""Tests for WF2Q+ — the paper's primary contribution (Section 3.4)."""

from fractions import Fraction as Fr

import pytest

from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler

from tests.conftest import assert_fifo_per_flow, assert_no_overlap


def make(shares, rate=Fr(1)):
    s = WF2QPlusScheduler(rate)
    for fid, share in shares.items():
        s.add_flow(fid, share)
    return s


class TestTags:
    def test_first_packet_tags(self):
        s = make({"a": 1, "b": 1}, rate=Fr(2))
        s.enqueue(Packet("a", Fr(2)), now=Fr(0))
        st = s._flows["a"]
        assert st.start_tag == 0
        assert st.finish_tag == Fr(2)  # L / r_a = 2 / 1

    def test_backlogged_tags_chain(self):
        """Eq. (28) case Q != 0: S = F of the previous packet."""
        s = make({"a": 1}, rate=Fr(1))
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        s.dequeue()
        st = s._flows["a"]
        assert st.start_tag == Fr(1)
        assert st.finish_tag == Fr(2)

    def test_idle_flow_rejoins_at_virtual_time(self):
        """Eq. (28) case Q == 0: S = max(F, V)."""
        s = make({"a": 1, "b": 1}, rate=Fr(2))
        for _ in range(4):
            s.enqueue(Packet("b", Fr(2)), now=Fr(0))
        s.dequeue(); s.dequeue()  # V advances to ~2
        s.enqueue(Packet("a", Fr(2)), now=Fr(2))
        st = s._flows["a"]
        assert st.start_tag == s.virtual_time()
        assert st.start_tag > 0

    def test_virtual_time_resets_each_busy_period(self):
        s = make({"a": 1}, rate=Fr(1))
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        s.dequeue()
        assert s.is_empty
        s.enqueue(Packet("a", Fr(1)), now=Fr(5))
        assert s.virtual_time() == 0
        assert s._flows["a"].start_tag == 0


class TestSEFF:
    def test_ineligible_packet_waits(self):
        """A packet whose virtual start exceeds V must not be served even
        if its finish tag is the smallest (the Figure 2 mechanism)."""
        s = make({1: Fr(1, 2), **{j: Fr(1, 20) for j in range(2, 12)}})
        for _ in range(3):
            s.enqueue(Packet(1, Fr(1)), now=Fr(0))
        for j in range(2, 12):
            s.enqueue(Packet(j, Fr(1)), now=Fr(0))
        assert s.dequeue().flow_id == 1      # F=2, eligible (S=0)
        # Session 1's next packet has S=2 > V=1 -> a 0.05 session is served.
        assert s.dequeue().flow_id == 2

    def test_work_conserving_when_all_ineligible_resolved_by_vfloor(self):
        """The min-S arm of eq. (27) keeps the server busy."""
        s = make({"a": 1, "b": 1}, rate=Fr(2))
        for _ in range(10):
            s.enqueue(Packet("a", Fr(2)), now=Fr(0))
        # Only 'a' backlogged: its queued packets have growing S, but V
        # jumps to min S each time, so service is continuous.
        records = s.drain()
        assert len(records) == 10
        assert_no_overlap(records, Fr(2))
        assert records[-1].finish_time == Fr(10)

    def test_interleaves_fig2(self):
        s = make({1: Fr(1, 2), **{j: Fr(1, 20) for j in range(2, 12)}})
        for _ in range(11):
            s.enqueue(Packet(1, Fr(1)), now=Fr(0))
        for j in range(2, 12):
            s.enqueue(Packet(j, Fr(1)), now=Fr(0))
        order = [r.flow_id for r in s.drain()]
        assert order == [1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 7, 1, 8,
                         1, 9, 1, 10, 1, 11, 1]


class TestGuarantees:
    def test_fifo_per_flow(self):
        s = make({"a": 2, "b": 1}, rate=Fr(3))
        for k in range(5):
            s.enqueue(Packet("a", Fr(1), seqno=k), now=Fr(0))
            s.enqueue(Packet("b", Fr(1), seqno=k), now=Fr(0))
        assert_fifo_per_flow(s.drain())

    def test_long_run_share_split(self):
        s = make({"a": 3, "b": 1}, rate=Fr(4))
        for _ in range(120):
            s.enqueue(Packet("a", Fr(1)), now=Fr(0))
            s.enqueue(Packet("b", Fr(1)), now=Fr(0))
        # Count services in the first 40 time units (160 bit-times / 4).
        records = s.drain()
        counts = {"a": 0, "b": 0}
        for rec in records:
            if rec.finish_time <= Fr(40):
                counts[rec.flow_id] += 1
        # 3:1 split within one packet of slack.
        assert abs(counts["a"] - 3 * counts["b"]) <= 4

    def test_delay_bound_theorem4(self):
        """sigma/r_i + Lmax/r for a (sigma, r_i)-constrained session,
        with the scheduler driven work-conservingly (a real link serves
        while arrivals continue)."""
        from repro.sim.engine import Simulator
        from repro.sim.link import Link
        from repro.sim.monitor import ServiceTrace
        from repro.traffic.source import CBRSource, TraceSource

        s = make({"rt": 1, "x": 1, "y": 2}, rate=4.0)
        sim = Simulator()
        trace = ServiceTrace()
        link = Link(sim, s, trace=trace)
        # rt guaranteed rate = 1. 3-packet instantaneous bursts (sigma = 3)
        # every 3 time units (rho = 1); saturate the other flows.
        times = [3 * b for b in range(10) for _ in range(3)]
        TraceSource("rt", times, 1.0).attach(sim, link).start()
        CBRSource("x", rate=2.0, packet_length=1.0).attach(sim, link).start()
        CBRSource("y", rate=3.0, packet_length=1.0).attach(sim, link).start()
        sim.run(until=40.0)
        worst = max(d for _, d in trace.delays("rt"))
        bound = 3.0 / 1.0 + 1.0 / 4.0  # sigma/r_i + Lmax/r
        assert worst <= bound + 1e-9

    def test_record_carries_virtual_tags(self):
        s = make({"a": 1}, rate=Fr(1))
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        rec = s.dequeue()
        assert rec.virtual_start == 0
        assert rec.virtual_finish == Fr(1)


class TestWFIOptimality:
    def test_bwfi_one_packet_for_uniform_sizes(self):
        """Theorem 4(2): with L_i,max == L_max the B-WFI is L_max.

        Construct the WFQ worst case (Figure 2) and verify WF2Q+ never lets
        session 1 lag more than ~1 packet behind its guaranteed share."""
        s = make({1: Fr(1, 2), **{j: Fr(1, 20) for j in range(2, 12)}})
        for _ in range(11):
            s.enqueue(Packet(1, Fr(1)), now=Fr(0))
        for j in range(2, 12):
            s.enqueue(Packet(j, Fr(1)), now=Fr(0))
        served = Fr(0)
        worst_lag = Fr(0)
        prev_t = Fr(0)
        lag_origin = Fr(0)  # min of (r_i * t - W_i) so far
        for rec in s.drain():
            # At each service completion, session 1 should have received at
            # least r_i * t - alpha since any earlier instant.
            t = rec.finish_time
            if rec.flow_id == 1:
                served += 1
            f_val = Fr(1, 2) * t - served
            lag_origin = min(lag_origin, f_val)
            worst_lag = max(worst_lag, f_val - lag_origin)
            prev_t = t
        assert worst_lag <= Fr(3, 2)  # within 1.5 packets (alpha = Lmax = 1)
