"""Idle-flow eviction: bounded memory with provably unchanged service.

``PacketScheduler.evict_idle_flow`` may drop a long-idle flow's
FlowState only when the algorithm itself proves the revival-on-arrival
state is indistinguishable (WF2Q+: stale tag epoch, or ``F <= V`` so
eq. (28)'s ``S = max(F, V)`` collapses to ``V`` either way).  These
tests pin the exactness claim under Fraction arithmetic — every tag and
service decision byte-identical with and without eviction — plus the
bookkeeping contract (shares retained, indices preserved, registration
visible) and the bounded-live-flows property on a churn workload through
the service runner.
"""

from fractions import Fraction as Fr

import pytest

from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.errors import DuplicateFlowError, UnknownFlowError
from repro.serve import ServiceRunner, build_service_spec


def make(shares, rate=Fr(3)):
    s = WF2QPlusScheduler(rate)
    for fid, share in shares.items():
        s.add_flow(fid, share)
    return s


def churn(sched, evict=False):
    """A deterministic enqueue/dequeue script with an idle window for
    flow ``a``; optionally evicts ``a`` at a provably legal point.  Returns the
    full served sequence with exact tags."""
    served = []

    def drain(n, now=None):
        for _ in range(n):
            rec = sched.dequeue(now)
            served.append((rec.packet.flow_id, rec.packet.seqno,
                           rec.start_time, rec.finish_time,
                           rec.virtual_start, rec.virtual_finish))
            now = None

    for i in range(3):
        sched.enqueue(Packet("a", Fr(3), seqno=i), now=Fr(0))
        sched.enqueue(Packet("b", Fr(3), seqno=i), now=Fr(0))
    for i in range(10):
        sched.enqueue(Packet("b", Fr(3), seqno=100 + i), now=Fr(0))
    # After 10 dequeues a's backlog is long drained and V has overtaken
    # F_a = 12, so its tags can no longer shape eq. (28): evictable.
    drain(10, now=Fr(0))
    if evict:
        assert sched.evict_idle_flow("a", now=sched.clock) is True
    for i in range(4):
        sched.enqueue(Packet("c", Fr(3), seqno=10 + i), now=sched.clock)
    drain(5)
    # a returns mid-busy-period: revival tags must match retained ones.
    sched.enqueue(Packet("a", Fr(3), seqno=99), now=sched.clock)
    drain(6)
    return served


class TestExactness:
    def test_service_identical_with_and_without_eviction(self):
        shares = {"a": Fr(1), "b": Fr(2), "c": Fr(1)}
        control = churn(make(shares), evict=False)
        evicted = churn(make(shares), evict=True)
        assert control == evicted  # tags, order, times: all Fraction-exact

    def test_revived_state_keeps_index_and_share(self):
        s = make({"a": Fr(1), "b": Fr(1)})
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        s.dequeue()
        index = None
        for fid, st in s._flows.items():
            if fid == "a":
                index = st.index
        assert s.evict_idle_flow("a", now=Fr(5))
        total = s._total_share
        s.enqueue(Packet("a", Fr(1)), now=Fr(5))  # revive on arrival
        assert s._flows["a"].index == index
        assert s._flows["a"].config.share == Fr(1)
        assert s._total_share == total  # share never left the pool


class TestContract:
    def test_refuses_backlogged_flow(self):
        s = make({"a": 1, "b": 1})
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        assert s.evict_idle_flow("a") is False

    def test_unknown_flow_raises(self):
        s = make({"a": 1})
        with pytest.raises(UnknownFlowError):
            s.evict_idle_flow("ghost")

    def test_double_evict_returns_false(self):
        s = make({"a": 1, "b": 1})
        assert s.evict_idle_flow("a") is True
        assert s.evict_idle_flow("a") is False

    def test_evicted_flow_stays_registered(self):
        s = make({"a": 1, "b": 1})
        s.evict_idle_flow("a")
        assert "a" in s.flow_ids
        assert s.evicted_flow_ids == ["a"]
        assert s.queue_length("a") == 0
        assert s.guaranteed_rate("a") == s.guaranteed_rate("b")
        with pytest.raises(DuplicateFlowError):
            s.add_flow("a", 1)

    def test_remove_evicted_flow_returns_share(self):
        s = make({"a": Fr(1), "b": Fr(1)})
        s.evict_idle_flow("a")
        s.remove_flow("a")
        assert "a" not in s.flow_ids
        assert s._total_share == Fr(1)

    def test_set_share_revives(self):
        s = make({"a": Fr(1), "b": Fr(1)})
        s.evict_idle_flow("a")
        s.set_share("a", Fr(5))
        assert "a" not in s.evicted_flow_ids
        assert s._flows["a"].config.share == Fr(5)
        assert s._total_share == Fr(6)

    def test_fresh_flow_not_evictable_before_any_service(self):
        """A never-served flow has stale-epoch zero tags — evictable."""
        s = make({"a": 1, "b": 1})
        s.enqueue(Packet("b", Fr(1)), now=Fr(0))
        s.dequeue()
        assert s.evict_idle_flow("a", now=Fr(1)) is True

    def test_snapshot_restore_preserves_evictions(self):
        s = make({"a": Fr(1), "b": Fr(1)})
        s.enqueue(Packet("a", Fr(1)), now=Fr(0))
        s.enqueue(Packet("b", Fr(1)), now=Fr(0))
        s.dequeue(); s.dequeue()
        assert s.evict_idle_flow("a", now=Fr(4))
        snap = s.snapshot()
        t = make({"a": Fr(1), "b": Fr(1)})
        t.restore(snap)
        assert t.evicted_flow_ids == ["a"]
        t.enqueue(Packet("a", Fr(1)), now=Fr(4))
        s.enqueue(Packet("a", Fr(1)), now=Fr(4))
        rs, rt = s.dequeue(), t.dequeue()
        assert (rs.packet.flow_id, rs.virtual_start, rs.virtual_finish) \
            == (rt.packet.flow_id, rt.virtual_start, rt.virtual_finish)


class TestServiceChurn:
    def test_bounded_live_flows_and_unchanged_digest(self):
        """Flow churn through the service runner: with a TTL the peak
        live-flow count stays near one wave while the digest — the full
        served schedule — is byte-identical to the no-eviction run."""
        spec = build_service_spec(flows=96, rate=1e6, duration=1.0,
                                  seed=13, waves=8)
        plain = ServiceRunner(spec)
        plain.run_to(1.0)

        lean = ServiceRunner(spec, idle_ttl=0.1)
        lean.run_to(1.0)

        assert lean.digest == plain.digest
        assert lean.trace.rows == plain.trace.rows > 0
        # 8 waves of 12 flows: idle waves age out, so the lean peak sits
        # far below the registered-flow count (the plain runner keeps
        # every FlowState live forever).
        assert plain.peak_live_flows == 96
        assert lean.peak_live_flows <= 40
        assert len(lean.link.scheduler.evicted_flow_ids) > 0
        assert lean.link.scheduler.conservation()["balanced"]

    def test_eviction_survives_checkpoint_recovery(self, tmp_path):
        spec = build_service_spec(flows=32, rate=1e6, duration=0.6,
                                  seed=13, waves=4)
        plain = ServiceRunner(spec, idle_ttl=0.08)
        plain.run_to(0.6)

        victim = ServiceRunner(spec, idle_ttl=0.08, checkpoint_dir=tmp_path,
                               checkpoint_every=0.05)
        victim.run_to(0.33)
        assert victim.link.scheduler.evicted_flow_ids  # cut mid-churn
        del victim
        survivor = ServiceRunner.recover(tmp_path, idle_ttl=0.08,
                                         checkpoint_every=0.05)
        survivor.run_to(0.6)
        assert survivor.digest == plain.digest
