"""Tests for the H-PFQ framework (Section 4) and its node policies."""

from fractions import Fraction as Fr

import pytest

from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hierarchy import (
    HPFQScheduler,
    POLICIES,
    make_hscfq,
    make_hsfq,
    make_hwf2qplus,
    make_hwfq,
)
from repro.core.packet import Packet
from repro.errors import ConfigurationError, EmptySchedulerError, HierarchyError

from tests.conftest import assert_fifo_per_flow, assert_no_overlap


def two_level():
    return HierarchySpec(node("root", 1, [
        node("A", 8, [leaf("A1", 75), leaf("A2", 5)]),
        leaf("B", 2),
    ]))


def fill(s, per_flow, length=Fr(1), now=Fr(0)):
    for fid, n in per_flow.items():
        for k in range(n):
            s.enqueue(Packet(fid, length, seqno=k), now=now)


class TestConstruction:
    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            HPFQScheduler(two_level(), 1, policy="nope")

    def test_policy_override_unknown_node(self):
        with pytest.raises(HierarchyError):
            HPFQScheduler(two_level(), 1, policy_overrides={"zzz": "wfq"})

    def test_policy_override_applies(self):
        s = HPFQScheduler(two_level(), 1, policy="wf2qplus",
                          policy_overrides={"A": "scfq"})
        assert s._nodes["A"].policy.name == "scfq"
        assert s._nodes["root"].policy.name == "wf2qplus"

    def test_leaves_registered_as_flows(self):
        s = make_hwf2qplus(two_level(), 1)
        assert set(s.flow_ids) == {"A1", "A2", "B"}

    def test_guaranteed_rates_follow_tree(self):
        s = make_hwf2qplus(two_level(), Fr(10))
        assert s.guaranteed_rate("A1") == Fr(10) * Fr(8, 10) * Fr(75, 80)
        assert s.guaranteed_rate("B") == Fr(2)
        assert s.guaranteed_rate("A") == Fr(8)  # interior nodes work too

    def test_all_factories(self):
        for factory in (make_hwf2qplus, make_hwfq, make_hscfq, make_hsfq):
            s = factory(two_level(), 1)
            fill(s, {"A1": 2, "B": 2})
            assert len(s.drain()) == 4

    def test_policies_registry(self):
        assert set(POLICIES) == {"wf2qplus", "wfq", "scfq", "sfq"}


class TestBasicOperation:
    def test_empty_dequeue(self):
        s = make_hwf2qplus(two_level(), 1)
        with pytest.raises(EmptySchedulerError):
            s.dequeue()

    def test_single_packet_roundtrip(self):
        s = make_hwf2qplus(two_level(), Fr(1))
        s.enqueue(Packet("A1", Fr(1)), now=Fr(0))
        rec = s.dequeue()
        assert rec.flow_id == "A1"
        assert rec.finish_time == Fr(1)
        assert s.is_empty

    def test_fifo_per_leaf(self):
        s = make_hwf2qplus(two_level(), Fr(1))
        fill(s, {"A1": 5, "A2": 5, "B": 5})
        records = s.drain()
        assert_fifo_per_flow(records)
        assert_no_overlap(records, Fr(1))
        assert len(records) == 15

    def test_work_conserving_back_to_back(self):
        s = make_hwf2qplus(two_level(), Fr(2))
        fill(s, {"A1": 4, "B": 4})
        records = s.drain()
        assert records[-1].finish_time == Fr(4)  # 8 bits at rate 2, no gaps


class TestBandwidthDistribution:
    """Eq. (8)/(9): sibling service in proportion to shares."""

    @pytest.mark.parametrize("policy", ["wf2qplus", "wfq", "scfq", "sfq"])
    def test_hierarchy_beats_flat_shares(self, policy):
        """A2 (tiny share 0.05 overall) inherits A1's bandwidth through the
        hierarchy: with A1 idle it gets 80%, not 5/7 of nothing."""
        s = HPFQScheduler(two_level(), Fr(1), policy=policy)
        fill(s, {"A2": 40, "B": 40})
        served = {"A2": 0, "B": 0}
        for rec in s.drain():
            if rec.finish_time <= Fr(20):
                served[rec.flow_id] += 1
        # A2:B should be 4:1 (0.8 vs 0.2).
        assert served["A2"] + served["B"] == 20
        assert abs(served["A2"] - 16) <= 1

    @pytest.mark.parametrize("policy", ["wf2qplus", "wfq", "scfq", "sfq"])
    def test_all_active_split(self, policy):
        s = HPFQScheduler(two_level(), Fr(1), policy=policy)
        fill(s, {"A1": 80, "A2": 80, "B": 80})
        served = {"A1": 0, "A2": 0, "B": 0}
        for rec in s.drain():
            if rec.finish_time <= Fr(40):
                served[rec.flow_id] += 1
        # Shares 0.75 / 0.05 / 0.20 over 40 slots -> 30 / 2 / 8.
        assert abs(served["A1"] - 30) <= 1
        assert abs(served["B"] - 8) <= 1
        assert abs(served["A2"] - 2) <= 1

    def test_three_level_distribution(self):
        spec = HierarchySpec(node("r", 1, [
            node("x", 1, [
                node("y", 1, [leaf("d1", 1), leaf("d2", 1)]),
                leaf("m", 1),
            ]),
            leaf("t", 1),
        ]))
        s = make_hwf2qplus(spec, Fr(1))
        fill(s, {"d1": 64, "d2": 64, "m": 64, "t": 64})
        served = {k: 0 for k in ("d1", "d2", "m", "t")}
        for rec in s.drain():
            if rec.finish_time <= Fr(64):
                served[rec.flow_id] += 1
        # Fractions: t 1/2 = 32, m 1/4 = 16, d1 = d2 = 1/8 = 8.
        assert abs(served["t"] - 32) <= 1
        assert abs(served["m"] - 16) <= 1
        assert abs(served["d1"] - 8) <= 1
        assert abs(served["d2"] - 8) <= 1


class TestStateMachine:
    def test_busy_flags_cleared_when_idle(self):
        s = make_hwf2qplus(two_level(), Fr(1))
        fill(s, {"A1": 2})
        s.drain()
        # Trigger the lazy final RESET-PATH with a new arrival.
        s.enqueue(Packet("B", Fr(1)), now=Fr(10))
        for name in ("root", "A"):
            node_obj = s._nodes[name]
            assert node_obj.virtual >= 0
        rec = s.dequeue()
        assert rec.flow_id == "B"

    def test_virtual_times_reset_between_busy_periods(self):
        s = make_hwf2qplus(two_level(), Fr(1))
        fill(s, {"A1": 3})
        s.drain()
        s.enqueue(Packet("A1", Fr(1)), now=Fr(100))
        # V_A restarted at 0 and advanced by L/r_A = 1/(8/10) for the one
        # selection of the new busy period.
        assert s._nodes["A"].virtual == Fr(10, 8)
        leafnode = s._nodes["A1"]
        assert leafnode.start_tag == 0

    def test_reference_time_accumulates_service(self):
        s = make_hwf2qplus(two_level(), Fr(10))
        fill(s, {"B": 4})
        s.drain()
        # B's node served 4 bits at guaranteed rate 2 -> T = 2.
        assert s.node_reference_time("B") == Fr(2)
        assert s.node_service("B") == Fr(4)
        assert s.node_service("root") == Fr(4)

    def test_arrival_during_transmission_waits(self):
        s = make_hwf2qplus(two_level(), Fr(1))
        s.enqueue(Packet("B", Fr(1)), now=Fr(0))
        rec1 = s.dequeue(now=Fr(0))       # transmits during [0, 1)
        s.enqueue(Packet("A1", Fr(1)), now=Fr("0.5"))
        rec2 = s.dequeue()                # naturally at t=1
        assert rec1.flow_id == "B"
        assert rec2.flow_id == "A1"
        assert rec2.start_time == Fr(1)

    def test_backlog_but_no_selection_never_happens(self):
        """Stress the restart/reset cascade with adversarial arrivals."""
        s = make_hwf2qplus(two_level(), Fr(1))
        import random
        rng = random.Random(3)
        t = Fr(0)
        for step in range(200):
            if rng.random() < 0.6 or s.is_empty:
                fid = rng.choice(["A1", "A2", "B"])
                s.enqueue(Packet(fid, Fr(1)), now=t)
            else:
                rec = s.dequeue()
                t = max(t, rec.finish_time)
            if rng.random() < 0.3:
                t += Fr(rng.randint(0, 3))
        while not s.is_empty:
            s.dequeue()


class TestIsolation:
    def test_leaf_guaranteed_rate_lower_bound(self):
        """A continuously backlogged leaf gets at least its guaranteed rate
        minus the WFI slack over any busy window (Theorem 1 consequence)."""
        s = make_hwf2qplus(two_level(), Fr(1))
        fill(s, {"A1": 75, "A2": 50, "B": 50})
        served_bits = Fr(0)
        for rec in s.drain():
            if rec.flow_id == "A1" and rec.finish_time <= Fr(100):
                served_bits += rec.packet.length
        guaranteed = Fr(75, 100)  # phi_A1 = 0.75
        # alpha_H <= 2 packets here; allow 3 for the window edges.
        assert served_bits >= guaranteed * 75 - 3

    def test_buffer_limits_apply_to_leaves(self):
        s = make_hwf2qplus(two_level(), Fr(1))
        s.set_buffer_limit("B", 2)
        assert s.enqueue(Packet("B", Fr(1)), now=Fr(0))
        assert s.enqueue(Packet("B", Fr(1)), now=Fr(0))
        assert not s.enqueue(Packet("B", Fr(1)), now=Fr(0))
        assert s.drops("B") == 1
        assert len(s.drain()) == 2


class TestSingleLevelEquivalence:
    """A one-level hierarchy should distribute service like the standalone
    WF2Q+ scheduler (same SEFF policy, same tags up to virtual-time
    bookkeeping details)."""

    def test_same_service_counts_as_flat(self):
        from repro.core.wf2qplus import WF2QPlusScheduler
        spec = HierarchySpec(node("r", 1, [
            leaf("a", 3), leaf("b", 2), leaf("c", 1),
        ]))
        hier = HPFQScheduler(spec, Fr(6), policy="wf2qplus")
        flat = WF2QPlusScheduler(Fr(6))
        for fid, share in (("a", 3), ("b", 2), ("c", 1)):
            flat.add_flow(fid, share)
        import random
        rng = random.Random(11)
        arrivals = []
        t = Fr(0)
        for k in range(150):
            t += Fr(rng.randint(0, 2), 4)
            arrivals.append((rng.choice("abc"), t))
        for sched in (hier, flat):
            for fid, at in arrivals:
                sched.enqueue(Packet(fid, Fr(1)), now=at)
        rh = hier.drain()
        rf = flat.drain()
        # Same total work and same per-flow windowed service counts.
        assert rh[-1].finish_time == rf[-1].finish_time
        horizon = rh[-1].finish_time
        step = horizon / 10
        for w in range(1, 11):
            cutoff = step * w
            for fid in "abc":
                ch = sum(1 for r in rh if r.flow_id == fid and r.finish_time <= cutoff)
                cf = sum(1 for r in rf if r.flow_id == fid and r.finish_time <= cutoff)
                assert abs(ch - cf) <= 2, (fid, w, ch, cf)
