"""Checkpoint recovery edge cases (satellite of the service-mode PR).

The durable layer (``repro.faults.checkpoint``) must *detect* every way a
file can be wrong — truncation, foreign bytes, version skew, bit rot,
unpicklable payloads — and the service recovery path must degrade to the
newest file that passes verification instead of dying on the damaged
one.  Also covered: checkpoints taken mid-transmission (the in-flight
packet's finish event must re-arm exactly), double recovery (a crash
after a recovery recovers again), and store pruning.
"""

import os
import struct

import pytest

from repro.errors import CheckpointError
from repro.faults.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve import ServiceRunner, build_service_spec

_HEADER = struct.Struct(">4sIQ32s")


def spec():
    return build_service_spec(flows=4, rate=1e6, duration=0.5, seed=11,
                              waves=2)


def newest(directory):
    names = sorted(n for n in os.listdir(directory)
                   if n.startswith("ckpt-") and n.endswith(".bin"))
    assert names, f"no checkpoints in {directory}"
    return os.path.join(directory, names[-1])


# ----------------------------------------------------------------------
# load_checkpoint: every defect is a typed error, never garbage
# ----------------------------------------------------------------------
class TestLoadDefects:
    def write(self, tmp_path, payload=None):
        path = tmp_path / "ckpt-00000001.bin"
        save_checkpoint(path, payload if payload is not None else {"x": 1})
        return path

    def reason(self, path):
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(path)
        return err.value.reason

    def test_roundtrip(self, tmp_path):
        path = self.write(tmp_path, {"clock": 0.25, "rows": [1, 2, 3]})
        assert load_checkpoint(path) == {"clock": 0.25, "rows": [1, 2, 3]}

    def test_truncated_header(self, tmp_path):
        path = self.write(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:_HEADER.size - 5])
        assert self.reason(path) == "truncated"

    def test_truncated_payload(self, tmp_path):
        path = self.write(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        assert self.reason(path) == "truncated"

    def test_foreign_file(self, tmp_path):
        path = self.write(tmp_path)
        path.write_bytes(b"PK\x03\x04 definitely a zip" + b"\x00" * 64)
        assert self.reason(path) == "magic"

    def test_version_mismatch(self, tmp_path):
        path = self.write(tmp_path)
        blob = bytearray(path.read_bytes())
        magic, _v, length, digest = _HEADER.unpack(blob[:_HEADER.size])
        blob[:_HEADER.size] = _HEADER.pack(
            magic, CHECKPOINT_VERSION + 1, length, digest)
        path.write_bytes(bytes(blob))
        assert self.reason(path) == "version"

    def test_bit_rot(self, tmp_path):
        path = self.write(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload bit; header stays intact
        path.write_bytes(bytes(blob))
        assert self.reason(path) == "digest"

    def test_unpicklable_payload_refused_at_save(self, tmp_path):
        with pytest.raises(CheckpointError) as err:
            save_checkpoint(tmp_path / "ckpt-00000001.bin",
                            {"fn": lambda: None})
        assert err.value.reason == "pickle"

    def test_magic_and_version_exported(self):
        assert CHECKPOINT_MAGIC == b"RPCK"
        assert isinstance(CHECKPOINT_VERSION, int)


# ----------------------------------------------------------------------
# CheckpointStore: skip damaged, keep newest good, prune old
# ----------------------------------------------------------------------
class TestStore:
    def test_load_latest_skips_damaged_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=5)
        store.save({"n": 1})
        store.save({"n": 2})
        bad = store.save({"n": 3})
        with open(bad, "r+b") as fh:
            fh.seek(0)
            fh.write(b"XXXX")
        skips = []
        probe = CheckpointStore(
            tmp_path, keep=5,
            on_skip=lambda path, exc: skips.append((path, exc.reason)))
        payload, path = probe.load_latest()
        assert payload == {"n": 2}
        assert skips == [(bad, "magic")]
        assert os.path.exists(bad)  # skipped, never deleted

    def test_load_latest_empty_dir(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() == (None, None)

    def test_prune_respects_keep(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        paths = [store.save({"n": i}) for i in range(6)]
        remaining = sorted(n for n in os.listdir(tmp_path)
                           if n.startswith("ckpt-"))
        assert remaining == [os.path.basename(p) for p in paths[-2:]]

    def test_sequence_resumes_after_reopen(self, tmp_path):
        CheckpointStore(tmp_path).save({"n": 1})
        path = CheckpointStore(tmp_path).save({"n": 2})
        assert path.endswith("ckpt-00000002.bin")


# ----------------------------------------------------------------------
# Service recovery through damaged files
# ----------------------------------------------------------------------
class TestServiceRecovery:
    def test_recover_skips_corrupt_newest_and_stays_exact(self, tmp_path):
        """Corrupting the newest checkpoint degrades recovery to the
        previous good one — and the replay is still digest-exact."""
        baseline = ServiceRunner(spec(), checkpoint_every=0.05)
        baseline.run_to(0.5)

        victim = ServiceRunner(spec(), checkpoint_dir=tmp_path,
                               checkpoint_every=0.05)
        victim.run_to(0.33)
        del victim
        damaged = newest(tmp_path)
        with open(damaged, "r+b") as fh:
            fh.truncate(20)

        survivor = ServiceRunner.recover(tmp_path, checkpoint_every=0.05)
        categories = [e.category for e in survivor.incidents]
        assert categories == ["checkpoint-skipped", "crash-recovered"]
        skipped = survivor.incidents[0]
        assert skipped.target == damaged and "truncated" in skipped.detail
        survivor.run_to(0.5)
        assert survivor.digest == baseline.digest
        assert survivor.trace.rows == baseline.trace.rows

    def test_recover_all_damaged_raises_missing(self, tmp_path):
        victim = ServiceRunner(spec(), checkpoint_dir=tmp_path,
                               checkpoint_every=0.1, keep=2)
        victim.run_to(0.4)
        del victim
        for name in os.listdir(tmp_path):
            if name.startswith("ckpt-"):
                (tmp_path / name).write_bytes(b"garbage")
        with pytest.raises(CheckpointError) as err:
            ServiceRunner.recover(tmp_path)
        assert err.value.reason == "missing"

    def test_mid_transmission_checkpoint_rearms_in_flight(self, tmp_path):
        """A checkpoint boundary landing mid-transmission snapshots the
        in-flight packet; recovery re-arms its finish event exactly."""
        baseline = ServiceRunner(spec(), checkpoint_every=0.05)
        baseline.run_to(0.5)

        victim = ServiceRunner(spec(), checkpoint_dir=tmp_path,
                               checkpoint_every=0.05, keep=10)
        victim.run_to(0.3)
        in_flight = [p["link"]["current"]
                     for p in map(load_checkpoint,
                                  (os.path.join(tmp_path, n)
                                   for n in sorted(os.listdir(tmp_path))
                                   if n.startswith("ckpt-")))]
        # At ~90% offered load some boundary must catch the link busy.
        assert any(cur is not None for cur in in_flight)
        del victim

        survivor = ServiceRunner.recover(tmp_path, checkpoint_every=0.05)
        survivor.run_to(0.5)
        assert survivor.digest == baseline.digest

    def test_double_recovery(self, tmp_path):
        """Crashing again after a recovery recovers again — state carried
        through two generations stays exact."""
        baseline = ServiceRunner(spec(), checkpoint_every=0.05)
        baseline.run_to(0.5)

        first = ServiceRunner(spec(), checkpoint_dir=tmp_path,
                              checkpoint_every=0.05)
        first.run_to(0.18)
        del first
        second = ServiceRunner.recover(tmp_path, checkpoint_every=0.05)
        assert second.recoveries == 1
        second.run_to(0.37)
        del second
        third = ServiceRunner.recover(tmp_path, checkpoint_every=0.05)
        assert third.recoveries == 2
        third.run_to(0.5)
        assert third.digest == baseline.digest
        assert third.trace.rows == baseline.trace.rows

    def test_recovery_continues_checkpoint_cadence(self, tmp_path):
        victim = ServiceRunner(spec(), checkpoint_dir=tmp_path,
                               checkpoint_every=0.1, keep=100)
        victim.run_to(0.25)
        count = len(os.listdir(tmp_path))
        del victim
        survivor = ServiceRunner.recover(tmp_path, checkpoint_every=0.1,
                                         keep=100)
        survivor.run_to(0.5)
        assert len(os.listdir(tmp_path)) > count  # new boundaries fired
