"""Differential validation: the packet H-WF2Q+ against the fluid H-GPS.

Theorem 1 says that for every session the packet system's cumulative
service never falls behind the fluid reference by more than the session's
composite B-WFI.  We drive both systems with identical random arrivals and
compare W_i(0, t) at every service completion — the sharpest whole-system
check the theory offers, and it exercises ARRIVE/RESTART/RESET across
arbitrary interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import hpfq_bwfi
from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hgps import HGPSFluidSystem
from repro.core.hierarchy import HPFQScheduler
from repro.core.packet import Packet

RATE = 100.0
PKT = 10.0


def build_spec():
    return HierarchySpec(node("root", 1, [
        node("A", 3, [
            leaf("a1", 2),
            node("B", 1, [leaf("b1", 1), leaf("b2", 1)]),
        ]),
        leaf("c", 1),
    ]))


LEAVES = ["a1", "b1", "b2", "c"]

arrival_pattern = st.lists(
    st.tuples(
        st.sampled_from(LEAVES),
        st.integers(0, 200),  # arrival slot; converted to seconds / 10
    ),
    min_size=5, max_size=80,
)


def run_packet_system(spec, arrivals):
    """Returns [(time, leaf, cumulative bits served for that leaf)]."""
    sched = HPFQScheduler(spec, RATE, policy="wf2qplus")
    points = []
    served = {name: 0.0 for name in LEAVES}
    pending = sorted(arrivals)
    i = 0
    while i < len(pending) or not sched.is_empty:
        next_arrival = pending[i][0] if i < len(pending) else None
        if sched.is_empty or (
            next_arrival is not None and next_arrival <= sched.busy_until
        ):
            t, fid = pending[i]
            i += 1
            sched.enqueue(Packet(fid, PKT), now=max(t, sched.clock))
        else:
            rec = sched.dequeue()
            served[rec.flow_id] += rec.packet.length
            points.append((rec.finish_time, rec.flow_id, served[rec.flow_id]))
    return points


class TestPacketVsFluid:
    @settings(max_examples=30, deadline=None)
    @given(pattern=arrival_pattern)
    def test_service_never_lags_fluid_beyond_wfi(self, pattern):
        spec = build_spec()
        arrivals = sorted((slot / 10.0, fid) for fid, slot in pattern)
        points = run_packet_system(spec, arrivals)

        fluid = HGPSFluidSystem(spec, RATE)
        slack = {
            name: float(hpfq_bwfi(spec, name, RATE, lambda n: PKT))
            for name in LEAVES
        }
        # Feed the fluid system the same arrivals, advancing in lockstep
        # with the packet system's service completions.
        ai = 0
        for t, fid, served in sorted(points):
            while ai < len(arrivals) and arrivals[ai][0] <= t:
                at, afid = arrivals[ai]
                fluid.arrive(afid, PKT, at)
                ai += 1
            fluid_served = fluid.service_received(fid, t)
            # Packet system is within the composite WFI of the fluid
            # reference (plus one packet of discretisation).
            assert served >= fluid_served - slack[fid] - PKT - 1e-6, (
                fid, t, served, fluid_served, slack[fid]
            )

    @settings(max_examples=20, deadline=None)
    @given(pattern=arrival_pattern)
    def test_total_work_matches_fluid(self, pattern):
        """Both systems are work-conserving: identical total service at
        every packet-system completion instant (within one packet)."""
        spec = build_spec()
        arrivals = sorted((slot / 10.0, fid) for fid, slot in pattern)
        points = run_packet_system(spec, arrivals)
        fluid = HGPSFluidSystem(spec, RATE)
        ai = 0
        total = 0.0
        for t, _fid, _served in sorted(points):
            while ai < len(arrivals) and arrivals[ai][0] <= t:
                at, afid = arrivals[ai]
                fluid.arrive(afid, PKT, at)
                ai += 1
            total += PKT
            fluid_total = sum(
                fluid.service_received(name, t) for name in LEAVES
            )
            assert total == pytest.approx(fluid_total, abs=PKT + 1e-6)
