"""Tests for the analysis toolkit: bounds, WFI measurement, lag, bandwidth."""

import pytest

from repro.analysis.bandwidth import (
    exponential_average,
    ideal_rate_series,
    mean_rate,
    throughput_series,
)
from repro.analysis.bounds import (
    hpfq_bwfi,
    hpfq_delay_bound,
    scfq_delay_bound,
    wf2q_delay_bound,
    wf2q_wfi,
    wfq_wfi_lower_bound,
)
from repro.analysis.lag import max_service_lag, service_lag_series
from repro.analysis.wfi import backlogged_periods, empirical_bwfi, empirical_twfi
from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import CBRSource, TraceSource


def fig3ish_spec():
    return HierarchySpec(node("root", 1, [
        node("N2", 1, [
            node("N1", 5, [leaf("rt", 81), leaf("be", 19)]),
            leaf("cs", 4),
        ]),
        leaf("ps", 1),
    ]))


class TestClosedFormBounds:
    def test_wf2q_wfi_uniform_packets(self):
        """Theorem 3/4: with L_i,max == L_max the WFI is exactly L_max."""
        assert wf2q_wfi(1500, 1500, 100, 1000) == 1500

    def test_wf2q_wfi_small_packets(self):
        # L_i=500, L=1500, r_i/r = 0.1 -> 500 + 1000*0.1 = 600.
        assert wf2q_wfi(500, 1500, 100, 1000) == 600

    def test_wfq_wfi_grows_with_n(self):
        small = wfq_wfi_lower_bound(10, 1500, 500, 1000)
        large = wfq_wfi_lower_bound(100, 1500, 500, 1000)
        assert large == pytest.approx(10 * small)
        # And it dwarfs the WF2Q WFI for large N.
        assert large > 10 * wf2q_wfi(1500, 1500, 500, 1000)

    def test_delay_bounds(self):
        assert wf2q_delay_bound(3000, 100, 1500, 1000) == pytest.approx(31.5)
        assert scfq_delay_bound(0, 100, 1000, [1000] * 9, 1000) == pytest.approx(
            10 + 9.0)

    def test_hpfq_bwfi_theorem1(self):
        """alpha_H = sum_h (phi_i / phi_p^h) alpha_p^h."""
        spec = fig3ish_spec()
        l_max = 1000
        alpha = hpfq_bwfi(spec, "rt", 1.0, lambda n: l_max)
        phi_rt = spec.guaranteed_fraction("rt")
        expected = sum(
            phi_rt / spec.guaranteed_fraction(n) * l_max
            for n in ("rt", "N1", "N2")
        )
        assert alpha == pytest.approx(float(expected))

    def test_hpfq_delay_bound_corollary2(self):
        spec = fig3ish_spec()
        rate = 1e6
        l_max = 1000.0
        sigma = 3000.0
        bound = hpfq_delay_bound(spec, "rt", sigma, rate, lambda n: l_max)
        expected = sigma / float(spec.guaranteed_rate("rt", rate))
        for n in ("rt", "N1", "N2"):
            expected += l_max / float(spec.guaranteed_rate(n, rate))
        assert bound == pytest.approx(expected)

    def test_node_wfi_accepts_mapping(self):
        spec = fig3ish_spec()
        wfis = {"rt": 10.0, "N1": 20.0, "N2": 30.0}
        a_map = hpfq_bwfi(spec, "rt", 1.0, wfis)
        a_fn = hpfq_bwfi(spec, "rt", 1.0, lambda n: wfis[n])
        assert a_map == a_fn


def run_trace(scheduler, arrivals, until):
    """arrivals: list of (flow, [times], length) fed through a link."""
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, scheduler, trace=trace)
    for flow, times, length in arrivals:
        TraceSource(flow, times, length).attach(sim, link).start()
    sim.run(until=until)
    return trace


class TestBackloggedPeriods:
    def test_simple_periods(self):
        s = WF2QPlusScheduler(1000.0)
        s.add_flow("a", 1)
        trace = run_trace(s, [("a", [0.0, 5.0], 100.0)], until=10.0)
        periods = backlogged_periods(trace, "a")
        assert len(periods) == 2
        assert periods[0] == (0.0, pytest.approx(0.1))
        assert periods[1] == (5.0, pytest.approx(5.1))

    def test_merged_backlog(self):
        s = WF2QPlusScheduler(1000.0)
        s.add_flow("a", 1)
        trace = run_trace(s, [("a", [0.0, 0.05], 100.0)], until=10.0)
        periods = backlogged_periods(trace, "a")
        assert len(periods) == 1
        assert periods[0][1] == pytest.approx(0.2)

    def test_service_arrival_mismatch_rejected(self):
        trace = ServiceTrace()

        class Rec:
            finish_time = 1.0
            flow_id = "a"
            packet = Packet("a", 1)
        trace.record_service(Rec)
        with pytest.raises(ValueError):
            backlogged_periods(trace, "a")


class TestEmpiricalWFI:
    def _two_flow_trace(self, scheduler_cls):
        s = scheduler_cls(1000.0)
        s.add_flow("a", 1)
        s.add_flow("b", 1)
        sim = Simulator()
        trace = ServiceTrace()
        link = Link(sim, s, trace=trace)
        CBRSource("a", rate=500.0, packet_length=100).attach(sim, link).start()
        CBRSource("b", rate=500.0, packet_length=100).attach(sim, link).start()
        sim.run(until=20.0)
        return trace

    def test_wf2qplus_bwfi_within_theorem4(self):
        trace = self._two_flow_trace(WF2QPlusScheduler)
        alpha = empirical_bwfi(trace, "a", guaranteed_rate=500.0)
        bound = wf2q_wfi(100, 100, 500, 1000)
        assert alpha <= bound + 1e-6

    def test_twfi_nonnegative_and_bounded(self):
        trace = self._two_flow_trace(WF2QPlusScheduler)
        t_wfi = empirical_twfi(trace, "a", guaranteed_rate=500.0)
        assert 0 <= t_wfi <= 100 / 500.0 + 1e-6  # alpha / r_i

    def test_wfq_bwfi_exceeds_wf2q_on_fig2(self):
        """The Figure 2 workload: WFQ's measured B-WFI must dwarf WF2Q+'s."""
        def fig2_trace(cls):
            s = cls(1.0)
            s.add_flow(1, 0.5)
            for j in range(2, 12):
                s.add_flow(j, 0.05)
            sim = Simulator()
            trace = ServiceTrace()
            link = Link(sim, s, trace=trace)
            TraceSource(1, [0.0] * 11, 1.0).attach(sim, link).start()
            for j in range(2, 12):
                TraceSource(j, [0.0], 1.0).attach(sim, link).start()
            sim.run(until=30.0)
            return trace
        wfq_alpha = empirical_bwfi(fig2_trace(WFQScheduler), 1, 0.5)
        w2q_alpha = empirical_bwfi(fig2_trace(WF2QPlusScheduler), 1, 0.5)
        assert wfq_alpha > 3.0       # ~ N/2 * r_i/r packets
        assert w2q_alpha <= 1.5      # ~ one packet

    def test_empty_flow(self):
        trace = ServiceTrace()
        assert empirical_bwfi(trace, "ghost", 1.0) == 0.0


class TestLag:
    def test_lag_series_tracks_queue(self):
        s = WF2QPlusScheduler(1000.0)
        s.add_flow("a", 1)
        trace = run_trace(s, [("a", [0.0, 0.0, 0.0], 100.0)], until=5.0)
        series = service_lag_series(trace, "a")
        assert max_service_lag(trace, "a") == 3
        assert series[-1][1] == 0  # fully served at the end

    def test_bits_unit(self):
        s = WF2QPlusScheduler(1000.0)
        s.add_flow("a", 1)
        trace = run_trace(s, [("a", [0.0, 0.0], 250.0)], until=5.0)
        assert max_service_lag(trace, "a", unit="bits") == 500

    def test_empty(self):
        assert max_service_lag(ServiceTrace(), "x") == 0


class TestBandwidth:
    def _trace(self):
        s = WF2QPlusScheduler(1000.0)
        s.add_flow("a", 1)
        sim = Simulator()
        trace = ServiceTrace()
        link = Link(sim, s, trace=trace)
        CBRSource("a", rate=400.0, packet_length=100).attach(sim, link).start()
        sim.run(until=10.0)
        return trace

    def test_throughput_series_recovers_rate(self):
        trace = self._trace()
        series = throughput_series(trace, "a", bucket=1.0, until=10.0)
        assert len(series) == 10
        mean = sum(v for _t, v in series) / len(series)
        assert mean == pytest.approx(400.0, rel=0.1)

    def test_ema_smooths(self):
        series = [(t, 0.0 if t % 2 else 100.0) for t in range(20)]
        smooth = exponential_average(series, alpha=0.3)
        raw_var = max(v for _t, v in series) - min(v for _t, v in series)
        sm_vals = [v for _t, v in smooth[5:]]
        assert max(sm_vals) - min(sm_vals) < raw_var

    def test_ema_validates_alpha(self):
        with pytest.raises(ValueError):
            exponential_average([], alpha=0.0)

    def test_mean_rate(self):
        trace = self._trace()
        assert mean_rate(trace, "a", 1.0, 9.0) == pytest.approx(400.0, rel=0.1)
        with pytest.raises(ValueError):
            mean_rate(trace, "a", 5.0, 5.0)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            throughput_series(ServiceTrace(), "a", bucket=0)

    def test_ideal_rate_series(self):
        spec = HierarchySpec(node("r", 1, [leaf("a", 1), leaf("b", 1)]))
        series = ideal_rate_series(
            spec, 10.0,
            [(0, 1, ["a", "b"]), (1, 2, ["a"]), (2, 3, ["a", "b"], {"b": 2.0})],
            "a",
        )
        assert series[0] == (0, 1, pytest.approx(5.0))
        assert series[1] == (1, 2, pytest.approx(10.0))
        assert series[2] == (2, 3, pytest.approx(8.0))
