"""Tests for FlowConfig and the (sigma, rho) leaky bucket."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow import FlowConfig, LeakyBucket
from repro.errors import ConfigurationError


class TestFlowConfig:
    def test_defaults(self):
        c = FlowConfig("web", 2)
        assert c.flow_id == "web"
        assert c.share == 2
        assert c.name == "web"

    def test_custom_name(self):
        c = FlowConfig(7, 1, name="voice")
        assert c.name == "voice"

    @pytest.mark.parametrize("share", [0, -1, -0.5])
    def test_nonpositive_share_rejected(self, share):
        with pytest.raises(ConfigurationError):
            FlowConfig("x", share)

    def test_repr_mentions_id(self):
        assert "web" in repr(FlowConfig("web", 1))


class TestLeakyBucketBasics:
    def test_starts_full(self):
        b = LeakyBucket(sigma=1000, rho=100)
        assert b.tokens_at(0) == 1000
        assert b.conforms(1000, 0)
        assert not b.conforms(1001, 0)

    def test_refill_capped_at_sigma(self):
        b = LeakyBucket(1000, 100)
        b.consume(1000, 0)
        assert b.tokens_at(5) == 500
        assert b.tokens_at(100) == 1000  # capped

    def test_consume_depletes(self):
        b = LeakyBucket(1000, 100)
        b.consume(600, 0)
        assert b.tokens_at(0) == 400

    def test_nonconforming_consume_raises(self):
        b = LeakyBucket(100, 10)
        with pytest.raises(ValueError):
            b.consume(200, 0)

    def test_time_backwards_raises(self):
        b = LeakyBucket(100, 10)
        b.consume(50, 5)
        with pytest.raises(ValueError):
            b.tokens_at(4)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LeakyBucket(-1, 10)
        with pytest.raises(ConfigurationError):
            LeakyBucket(10, 0)

    def test_envelope(self):
        b = LeakyBucket(500, 100)
        assert b.envelope(0) == 500
        assert b.envelope(2) == 700
        with pytest.raises(ValueError):
            b.envelope(-1)


class TestEarliestConformingTime:
    def test_immediate_when_tokens_available(self):
        b = LeakyBucket(1000, 100)
        assert b.earliest_conforming_time(500, 3.0) == 3.0

    def test_waits_for_refill(self):
        b = LeakyBucket(1000, 100)
        b.consume(1000, 0)
        # needs 500 tokens at rate 100/s -> 5 seconds
        assert b.earliest_conforming_time(500, 0) == pytest.approx(5.0)

    def test_oversized_packet_rejected(self):
        b = LeakyBucket(100, 10)
        with pytest.raises(ConfigurationError):
            b.earliest_conforming_time(200, 0)

    def test_exact_arithmetic_with_fractions(self):
        b = LeakyBucket(Fraction(1000), Fraction(100))
        b.consume(Fraction(1000), Fraction(0))
        t = b.earliest_conforming_time(Fraction(1), Fraction(0))
        assert t == Fraction(1, 100)


class TestLeakyBucketProperties:
    @settings(max_examples=150, deadline=None)
    @given(
        sigma=st.integers(100, 10_000),
        rho=st.integers(1, 1_000),
        lengths=st.lists(st.integers(1, 100), min_size=1, max_size=50),
        gaps=st.lists(st.floats(0, 10, allow_nan=False), min_size=50, max_size=50),
    )
    def test_shaped_output_satisfies_envelope(self, sigma, rho, lengths, gaps):
        """Packets released at earliest_conforming_time satisfy eq. (17)."""
        b = LeakyBucket(sigma, rho)
        now = 0.0
        releases = []
        for length, gap in zip(lengths, gaps):
            now = max(now + gap, now)
            t = b.earliest_conforming_time(length, now)
            b.consume(length, t)
            releases.append((t, length))
            now = t
        # Check A(t1, t2) <= sigma + rho (t2 - t1) on all release intervals.
        for i in range(len(releases)):
            total = 0
            t_i = releases[i][0]
            for t_j, length in releases[i:]:
                total += length
                assert total <= sigma + rho * (t_j - t_i) + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(
        sigma=st.integers(1, 1000),
        rho=st.integers(1, 1000),
        t=st.floats(0, 1000, allow_nan=False),
    )
    def test_tokens_never_exceed_sigma(self, sigma, rho, t):
        b = LeakyBucket(sigma, rho)
        assert 0 <= b.tokens_at(t) <= sigma

    @settings(max_examples=100, deadline=None)
    @given(
        sigma=st.integers(10, 1000),
        rho=st.integers(1, 100),
        length=st.integers(1, 10),
    )
    def test_earliest_time_is_tight(self, sigma, rho, length):
        """One tick earlier than the earliest conforming time must fail."""
        b = LeakyBucket(sigma, rho)
        b.consume(sigma, 0)
        t = b.earliest_conforming_time(length, 0)
        # Conforming at t up to float rounding (consume() forgives <=1e-9
        # relative deficits), and clearly non-conforming meaningfully
        # earlier.
        assert b.tokens_at(t) >= length * (1 - 1e-9)
        if t > 0:
            assert not b.conforms(length, t * (1 - 1e-6) - 1e-12)
