"""Checkpoint/restore: packet-for-packet identical continuation.

The acceptance bar is exactness under ``Fraction``: snapshot a busy
scheduler mid-run, keep running, restore, run again — the two
continuations must agree on every (flow, start, finish, virtual tags)
tuple with exact arithmetic, for the flat schedulers, a depth-3 H-WF2Q+
tree, and the joint Simulator+Link checkpoint with a packet in flight.
"""

import random
from fractions import Fraction

import pytest

from repro.config import leaf, node
from repro.core import (
    HPFQScheduler,
    SCFQScheduler,
    SFQScheduler,
    VirtualClockScheduler,
    WF2QPlusScheduler,
)
from repro.core.packet import Packet
from repro.errors import ConfigurationError
from repro.faults import checkpoint, rollback
from repro.sim.engine import Simulator
from repro.sim.link import Link

F = Fraction


def record_tuple(rec):
    return (rec.flow_id, rec.start_time, rec.finish_time,
            rec.virtual_start, rec.virtual_finish)


def churn(sched, rng, flows, steps, now=F(0)):
    """Drive a mixed enqueue/dequeue workload; returns served records."""
    records = []
    clock = now
    for _ in range(steps):
        if sched.is_empty or rng.random() < 0.55:
            fid = str(rng.randrange(flows))
            length = rng.choice((500, 1000, 1500))
            sched.enqueue(Packet(fid, length), now=clock)
        else:
            rec = sched.dequeue()
            records.append(rec)
            clock = max(clock, rec.finish_time)
        clock += F(rng.randrange(0, 5), 1000)
    return records


def drain_tuples(sched):
    return [record_tuple(rec) for rec in sched.drain()]


def build_flat(cls, flows=4, rate=F(1_000_000)):
    sched = cls(rate)
    for i in range(flows):
        sched.add_flow(str(i), i + 1)
    return sched


def build_depth3(rate=F(1_000_000), policy="wf2qplus"):
    """Three interior levels above the leaves (depth-3 tree)."""
    spec = node("root", 1, [
        node("agg-0", 2, [
            node("org-a", 3, [leaf("0", 1), leaf("1", 2)]),
            node("org-b", 1, [leaf("2", 1)]),
        ]),
        node("agg-1", 1, [
            node("org-c", 1, [leaf("3", 2)]),
        ]),
    ])
    return HPFQScheduler(spec, rate, policy=policy)


@pytest.mark.parametrize("cls", [WF2QPlusScheduler, SCFQScheduler,
                                 SFQScheduler, VirtualClockScheduler])
def test_flat_roundtrip_exact(cls):
    sched = build_flat(cls)
    churn(sched, random.Random(5), flows=4, steps=60)
    snap = sched.snapshot()
    first = drain_tuples(sched)
    assert first, "workload must leave a backlog to drain"
    sched.restore(snap)
    assert drain_tuples(sched) == first
    for row in first:
        assert isinstance(row[1], Fraction) and isinstance(row[2], Fraction)


def test_flat_restore_into_fresh_instance():
    a = build_flat(WF2QPlusScheduler)
    churn(a, random.Random(7), flows=4, steps=80)
    snap = a.snapshot()
    b = build_flat(WF2QPlusScheduler)
    b.restore(snap)
    assert drain_tuples(b) == drain_tuples(a)


def test_hpfq_depth3_roundtrip_exact():
    sched = build_depth3()
    churn(sched, random.Random(3), flows=4, steps=120)
    snap = sched.snapshot()
    first = drain_tuples(sched)
    assert first
    sched.restore(snap)
    assert drain_tuples(sched) == first


def test_hpfq_depth3_restore_into_fresh_instance():
    a = build_depth3()
    churn(a, random.Random(9), flows=4, steps=100)
    snap = a.snapshot()
    b = build_depth3()
    b.restore(snap)
    assert drain_tuples(b) == drain_tuples(a)


@pytest.mark.parametrize("policy", ["wfq", "scfq", "sfq"])
def test_hpfq_other_policies_roundtrip(policy):
    sched = build_depth3(policy=policy)
    churn(sched, random.Random(4), flows=4, steps=90)
    snap = sched.snapshot()
    first = drain_tuples(sched)
    sched.restore(snap)
    assert drain_tuples(sched) == first


def test_snapshot_is_plain_data():
    import json

    sched = build_depth3()
    churn(sched, random.Random(2), flows=4, steps=40)
    # Fractions serialise via default=str; nothing else exotic may appear.
    json.dumps(sched.snapshot(), default=str)


def test_restore_rejects_wrong_scheduler():
    snap = build_flat(WF2QPlusScheduler).snapshot()
    with pytest.raises(ConfigurationError):
        build_flat(SCFQScheduler).restore(snap)


def test_restore_rejects_mismatched_flow_set():
    snap = build_flat(WF2QPlusScheduler, flows=4).snapshot()
    with pytest.raises(ConfigurationError):
        build_flat(WF2QPlusScheduler, flows=3).restore(snap)


def test_restore_rejects_mismatched_tree():
    snap = build_depth3().snapshot()
    other = HPFQScheduler(
        node("root", 1, [node("g", 1, [leaf("0", 1)])]), F(1_000_000))
    with pytest.raises(ConfigurationError):
        other.restore(snap)


def test_hpfq_snapshot_covers_in_flight_packet():
    sched = build_depth3()
    sched.enqueue(Packet("0", 1000), now=F(0))
    sched.enqueue(Packet("3", 1000), now=F(0))
    sched.dequeue()  # leaves a pending RESET-PATH (in-flight head)
    snap = sched.snapshot()
    first = drain_tuples(sched)
    sched.restore(snap)
    assert drain_tuples(sched) == first


class TestJointCheckpoint:
    def build(self, out):
        sched = build_flat(WF2QPlusScheduler)
        sim = Simulator()
        link = Link(sim, sched,
                    receiver=lambda p, t: out.append((p.flow_id, t)))
        rng = random.Random(12)
        for i in range(4):
            t = F(0)
            for _ in range(30):
                t += F(rng.randrange(1, 2000), 100_000)
                sim.schedule(t, link.send, Packet(str(i), 8000))
        return sim, link

    def test_rollback_replays_identically(self):
        out = []
        sim, link = self.build(out)
        sim.run(until=F(3, 100))
        assert link.current is not None  # snapshot lands mid-transmission
        snap = checkpoint(sim, link)
        prefix = list(out)
        sim.run()
        first = list(out)
        del out[:]
        rollback(sim, link, snap)
        sim.run()
        assert prefix + out == first
        assert len(first) == 120

    def test_straight_run_unchanged_by_checkpointing(self):
        ref = []
        sim, link = self.build(ref)
        sim.run()
        out = []
        sim, link = self.build(out)
        sim.run(until=F(3, 100))
        snap = checkpoint(sim, link)
        rollback(sim, link, snap)  # immediate rollback, then run to the end
        sim.run()
        assert out == ref

    def test_sim_restore_refused_while_running(self):
        from repro.errors import SimulationError

        sim = Simulator()
        snap = sim.snapshot()
        sim.schedule(0.0, lambda: sim.restore(snap))
        with pytest.raises(SimulationError):
            sim.run()


def test_simulator_snapshot_replays_fifo_ties():
    order = []
    sim = Simulator()
    for tag in "abcd":
        sim.schedule(1.0, order.append, tag)  # identical (time, priority)
    snap = sim.snapshot()
    sim.run()
    first = list(order)
    assert first == list("abcd")
    del order[:]
    sim.restore(snap)
    sim.run()
    assert order == first
