"""Tests for the opt-in hot-path profiler."""

import pytest

from repro.core.fifo import FIFOScheduler
from repro.errors import EmptySchedulerError
from repro.core.packet import Packet
from repro.obs.profile import OpStats, SchedulerProfiler, percentile


def fifo():
    s = FIFOScheduler(rate=1000.0)
    s.add_flow("a", 1)
    return s


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_selection(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.25) == 1.0
        assert percentile(samples, 0.5) == 2.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile([7.0], 0.01) == 7.0


class TestOpStats:
    def test_empty(self):
        stats = OpStats([])
        assert stats.count == 0
        assert stats.mean == stats.p99 == stats.max == 0.0

    def test_summary_fields(self):
        stats = OpStats([3.0, 1.0, 2.0])
        assert stats.count == 3
        assert stats.total == 6.0
        assert stats.mean == 2.0
        assert stats.p50 == 2.0
        assert stats.max == 3.0
        d = stats.to_dict()
        assert d["count"] == 3 and d["p99"] == 3.0


class TestSchedulerProfiler:
    def test_sample_counts_match_operations(self):
        s = fifo()
        prof = SchedulerProfiler(s)
        for _ in range(5):
            s.enqueue(Packet("a", 10.0), now=0.0)
        for _ in range(5):
            s.dequeue()
        with pytest.raises(EmptySchedulerError):
            s.dequeue()  # the failing call is timed too (finally-path)
        prof.detach()
        assert len(prof.enqueue_samples) == 5
        assert len(prof.dequeue_samples) == 6
        assert all(t >= 0 for t in prof.enqueue_samples)

    def test_percentiles_ordered(self):
        s = fifo()
        prof = SchedulerProfiler(s)
        for _ in range(50):
            s.enqueue(Packet("a", 10.0), now=0.0)
        for _ in range(50):
            s.dequeue()
        prof.detach()
        stats = prof.summary()["enqueue"]
        assert stats.count == 50
        assert 0 <= stats.p50 <= stats.p90 <= stats.p99 <= stats.max
        assert "enqueue" in prof.format_report()

    def test_detach_restores_class_methods(self):
        s = fifo()
        prof = SchedulerProfiler(s)
        assert "enqueue" in vars(s)  # wrapper shadows the class method
        prof.detach()
        assert "enqueue" not in vars(s)
        assert "dequeue" not in vars(s)
        assert not prof.attached
        prof.detach()  # idempotent
        s.enqueue(Packet("a", 10.0), now=0.0)  # untimed
        assert len(prof.enqueue_samples) == 0

    def test_scheduler_semantics_unchanged_under_profiling(self):
        s = fifo()
        with SchedulerProfiler(s) as prof:
            s.enqueue(Packet("a", 10.0), now=0.0)
            record = s.dequeue()
        assert record.flow_id == "a"
        assert record.finish_time == pytest.approx(0.01)
        assert prof.enqueue_samples and prof.dequeue_samples
        assert not prof.attached  # context exit detaches

    def test_reset_keeps_attachment(self):
        s = fifo()
        prof = SchedulerProfiler(s)
        s.enqueue(Packet("a", 10.0), now=0.0)
        prof.reset()
        assert prof.attached
        assert len(prof.enqueue_samples) == 0
        s.enqueue(Packet("a", 10.0), now=0.0)
        assert len(prof.enqueue_samples) == 1
        prof.detach()

    def test_injectable_clock(self):
        ticks = iter(range(100))
        s = fifo()
        prof = SchedulerProfiler(s, clock=lambda: next(ticks))
        s.enqueue(Packet("a", 10.0), now=0.0)
        prof.detach()
        assert prof.enqueue_samples == [1]  # t1 - t0 with a unit-step clock
