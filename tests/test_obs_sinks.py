"""Tests for the observability sinks: ring buffer, JSONL, metrics."""

import io

import pytest

from repro.core.fifo import FIFOScheduler
from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.obs.events import EnqueueEvent, VirtualTimeUpdate
from repro.obs.sinks import (
    CallbackSink,
    JSONLSink,
    MetricsSink,
    RingBufferSink,
    read_jsonl,
)


def make_events(n):
    return [EnqueueEvent(float(i), "S", "a", i, 100, i + 1, i + 1)
            for i in range(n)]


class TestCallbackSink:
    def test_forwards(self):
        seen = []
        sink = CallbackSink(seen.append)
        for e in make_events(3):
            sink.accept(e)
        assert len(seen) == 3


class TestRingBuffer:
    def test_keeps_order_below_capacity(self):
        ring = RingBufferSink(capacity=10)
        events = make_events(4)
        for e in events:
            ring.accept(e)
        assert ring.events() == events
        assert len(ring) == 4
        assert ring.total_seen == 4

    def test_eviction_order_oldest_first(self):
        ring = RingBufferSink(capacity=4)
        events = make_events(10)
        for e in events:
            ring.accept(e)
        # Only the 4 newest survive, still oldest-first within the window.
        assert ring.events() == events[-4:]
        assert len(ring) == 4
        assert ring.total_seen == 10

    def test_clear(self):
        ring = RingBufferSink(capacity=4)
        for e in make_events(3):
            ring.accept(e)
        ring.clear()
        assert len(ring) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJSONL:
    def run_workload(self, sink):
        """A small mixed workload: enqueues, dequeues, tag/V updates."""
        s = WF2QPlusScheduler(rate=1.0)
        s.add_flow("a", 1)
        s.add_flow("b", 3)
        ring = RingBufferSink()
        s.attach_observer(ring, sink)
        for _ in range(3):
            s.enqueue(Packet("a", 1.0), now=0.0)
        s.enqueue(Packet("b", 2.0), now=0.0)
        s.drain()
        return ring.events()

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(str(path))
        emitted = self.run_workload(sink)
        sink.close()
        parsed = read_jsonl(str(path))
        assert parsed == emitted
        assert sink.events_written == len(emitted) > 0

    def test_round_trip_file_object(self):
        buf = io.StringIO()
        sink = JSONLSink(buf)
        emitted = self.run_workload(sink)
        sink.close()  # flushes but must not close a borrowed file
        assert not buf.closed
        buf.seek(0)
        parsed = read_jsonl(buf)
        assert parsed == emitted

    def test_drop_events_round_trip(self, tmp_path):
        path = tmp_path / "drops.jsonl"
        s = FIFOScheduler(rate=1000.0)
        s.add_flow("a", 1)
        s.set_buffer_limit("a", 1)
        sink = JSONLSink(str(path))
        ring = RingBufferSink()
        s.attach_observer(ring, sink)
        s.enqueue(Packet("a", 10.0), now=0.0)
        s.enqueue(Packet("a", 10.0), now=0.0)  # dropped
        s.dequeue()
        sink.close()
        assert read_jsonl(str(path)) == ring.events()


class TestMetricsSink:
    def saturate(self, metrics):
        s = WF2QPlusScheduler(rate=1000.0)
        s.add_flow("a", 1)
        s.add_flow("b", 3)
        s.set_buffer_limit("a", 2)
        s.attach_observer(metrics)
        for _ in range(4):
            s.enqueue(Packet("a", 100.0), now=0.0)  # 2 accepted, 2 dropped
        for _ in range(2):
            s.enqueue(Packet("b", 100.0), now=0.0)
        s.drain()
        return s

    def test_counters_and_gauges(self):
        metrics = MetricsSink()
        self.saturate(metrics)
        a = metrics.flow("a")
        b = metrics.flow("b")
        assert a.enqueues == 2 and a.drops == 2 and a.dequeues == 2
        assert b.enqueues == 2 and b.drops == 0 and b.dequeues == 2
        assert a.bits_in == a.bits_out == 200.0
        assert a.max_queue_len == 2
        assert metrics.max_backlog == 4
        assert metrics.backlog == 0
        assert metrics.total("enqueues") == 4
        assert metrics.total("drops") == 2

    def test_delay_statistics(self):
        metrics = MetricsSink()
        self.saturate(metrics)
        a = metrics.flow("a")
        assert a.delay_count == 2
        assert a.delay_max >= a.delay_mean > 0
        # Histogram percentile is a conservative (upper-bound) estimate.
        assert metrics.delay_percentile(0.99) >= a.delay_mean
        assert metrics.delay_percentile(0.5, "b") > 0

    def test_no_delays_percentile_is_zero(self):
        metrics = MetricsSink()
        assert metrics.delay_percentile(0.99) == 0.0
        with pytest.raises(ValueError):
            metrics.delay_percentile(0.0)

    def test_summary_and_report(self):
        metrics = MetricsSink()
        self.saturate(metrics)
        summary = metrics.summary()
        assert summary["flows"]["a"]["drops"] == 2
        assert summary["max_backlog"] == 4
        report = metrics.format_report()
        assert "flow" in report and "total" in report

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsSink(buckets=(1.0, 1.0))

    def test_ignores_virtual_time_events(self):
        metrics = MetricsSink()
        metrics.accept(VirtualTimeUpdate(0.0, "S", None, 1.0))
        assert metrics.flows() == []
        assert metrics.events_seen == 1
