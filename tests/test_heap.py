"""Unit and property tests for the indexed binary heap."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dstruct.heap import IndexedHeap


class TestBasics:
    def test_empty(self):
        h = IndexedHeap()
        assert len(h) == 0
        assert not h
        assert "x" not in h

    def test_push_peek_pop(self):
        h = IndexedHeap()
        h.push("a", 3)
        h.push("b", 1)
        h.push("c", 2)
        assert h.peek() == ("b", 1)
        assert h.min_key() == 1
        assert h.pop() == ("b", 1)
        assert h.pop() == ("c", 2)
        assert h.pop() == ("a", 3)
        assert not h

    def test_peek_does_not_remove(self):
        h = IndexedHeap()
        h.push("a", 1)
        assert h.peek_item() == "a"
        assert len(h) == 1

    def test_duplicate_push_rejected(self):
        h = IndexedHeap()
        h.push("a", 1)
        with pytest.raises(ValueError):
            h.push("a", 2)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().peek()

    def test_contains_and_key_of(self):
        h = IndexedHeap()
        h.push("a", 5)
        assert "a" in h
        assert h.key_of("a") == 5
        with pytest.raises(KeyError):
            h.key_of("zzz")

    def test_iteration_covers_all_items(self):
        h = IndexedHeap()
        for i in range(10):
            h.push(i, 10 - i)
        assert sorted(h) == list(range(10))


class TestUpdate:
    def test_decrease_key(self):
        h = IndexedHeap()
        h.push("a", 10)
        h.push("b", 5)
        h.update("a", 1)
        assert h.pop() == ("a", 1)

    def test_increase_key(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 5)
        h.update("a", 10)
        assert h.pop() == ("b", 5)

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().update("a", 1)

    def test_push_or_update(self):
        h = IndexedHeap()
        h.push_or_update("a", 5)
        h.push_or_update("a", 2)
        assert h.peek() == ("a", 2)
        assert len(h) == 1


class TestRemove:
    def test_remove_returns_key(self):
        h = IndexedHeap()
        h.push("a", 7)
        assert h.remove("a") == 7
        assert not h

    def test_remove_middle(self):
        h = IndexedHeap()
        for i in range(20):
            h.push(i, i)
        h.remove(10)
        popped = [h.pop()[0] for _ in range(len(h))]
        assert popped == [i for i in range(20) if i != 10]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().remove("a")

    def test_discard(self):
        h = IndexedHeap()
        h.push("a", 1)
        assert h.discard("a") is True
        assert h.discard("a") is False

    def test_clear(self):
        h = IndexedHeap()
        for i in range(5):
            h.push(i, i)
        h.clear()
        assert len(h) == 0
        h.push(1, 1)  # reusable after clear
        assert h.peek_item() == 1


class TestTieBreaking:
    def test_fifo_among_equal_keys(self):
        h = IndexedHeap()
        for name in "abcde":
            h.push(name, 1)
        assert [h.pop()[0] for _ in range(5)] == list("abcde")

    def test_update_requeues_behind_ties(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 2)
        h.update("a", 2)  # refreshed: now behind b among key==2
        assert h.pop()[0] == "b"
        assert h.pop()[0] == "a"

    def test_equal_key_update_is_a_noop(self):
        # Re-asserting the current key must NOT refresh the FIFO seq:
        # a flow whose tag is recomputed to the same value keeps its place.
        h = IndexedHeap()
        h.push("a", 2)
        h.push("b", 2)
        h.update("a", 2)  # same key: "a" stays ahead of "b"
        assert h.pop()[0] == "a"
        assert h.pop()[0] == "b"

    def test_equal_tuple_key_update_is_a_noop(self):
        h = IndexedHeap()
        h.push("a", (5, 0))
        h.push("b", (5, 0))
        h.push_or_update("a", (5, 0))
        assert [h.pop()[0], h.pop()[0]] == ["a", "b"]

    def test_tuple_keys(self):
        h = IndexedHeap()
        h.push("a", (5, 1))
        h.push("b", (5, 0))
        assert h.pop()[0] == "b"


class TestReplaceTop:
    def test_replace_top_returns_evicted_min(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 5)
        assert h.replace_top("c", 3) == ("a", 1)
        assert "a" not in h
        assert h.pop() == ("c", 3)
        assert h.pop() == ("b", 5)

    def test_replace_top_same_item_rekeys(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 2)
        assert h.replace_top("a", 10) == ("a", 1)
        assert h.pop()[0] == "b"
        assert h.pop() == ("a", 10)

    def test_replace_top_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().replace_top("a", 1)

    def test_replace_top_duplicate_item_raises_and_preserves_heap(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 5)
        with pytest.raises(ValueError):
            h.replace_top("b", 0)  # "b" is already in the heap (not at top)
        h.check_invariants()
        assert h.pop() == ("a", 1)
        assert h.pop() == ("b", 5)

    def test_replace_top_singleton(self):
        h = IndexedHeap()
        h.push("a", 7)
        assert h.replace_top("b", 3) == ("a", 7)
        assert h.peek() == ("b", 3)

    def test_replace_top_requeues_behind_equal_keys(self):
        # The replacement gets a fresh seq, identical to discard-then-push.
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 2)
        h.replace_top("a", 2)
        assert h.pop()[0] == "b"
        assert h.pop()[0] == "a"

    def test_pop_push_is_replace_top(self):
        h = IndexedHeap()
        h.push("a", 1)
        assert h.pop_push("b", 4) == ("a", 1)
        assert h.peek() == ("b", 4)


class TestRandomized:
    def test_heap_sort_matches_sorted(self):
        rng = random.Random(42)
        keys = [rng.randint(0, 1000) for _ in range(500)]
        h = IndexedHeap()
        for i, k in enumerate(keys):
            h.push(i, k)
        out = [h.pop()[1] for _ in range(len(keys))]
        assert out == sorted(keys)

    def test_invariants_after_mixed_ops(self):
        rng = random.Random(7)
        h = IndexedHeap()
        live = set()
        for step in range(2000):
            op = rng.random()
            if op < 0.5 or not live:
                item = step
                h.push(item, rng.randint(0, 100))
                live.add(item)
            elif op < 0.75:
                item = rng.choice(sorted(live))
                h.update(item, rng.randint(0, 100))
            elif op < 0.9:
                item = rng.choice(sorted(live))
                h.remove(item)
                live.discard(item)
            else:
                item, _k = h.pop()
                live.discard(item)
            if step % 100 == 0:
                h.check_invariants()
        h.check_invariants()

    def test_differential_vs_sorted_reference(self):
        """Every op (incl. replace_top/pop_push) against a brute-force
        model, with structural invariants checked after each one."""
        rng = random.Random(1996)
        h = IndexedHeap()
        model = {}  # item -> (key, seq); min of values == heap top
        seq = 0
        next_item = 0
        for _step in range(3000):
            op = rng.random()
            if op < 0.35 or not model:
                item, key = next_item, rng.randint(0, 60)
                next_item += 1
                h.push(item, key)
                model[item] = (key, seq)
                seq += 1
            elif op < 0.5:
                item = rng.choice(sorted(model))
                key = rng.randint(0, 60)
                h.update(item, key)
                if key != model[item][0]:
                    model[item] = (key, seq)
                    seq += 1
            elif op < 0.6:
                item = rng.choice(sorted(model))
                assert h.remove(item) == model.pop(item)[0]
            elif op < 0.75:
                expected = min(model.items(), key=lambda kv: kv[1])
                assert h.pop() == (expected[0], expected[1][0])
                del model[expected[0]]
            elif op < 0.9:
                # replace_top: evict the min, insert a fresh item.
                expected = min(model.items(), key=lambda kv: kv[1])
                item, key = next_item, rng.randint(0, 60)
                next_item += 1
                assert h.replace_top(item, key) == (
                    expected[0], expected[1][0])
                del model[expected[0]]
                model[item] = (key, seq)
                seq += 1
            else:
                # pop_push re-keying the current top item (the WF2Q+
                # dequeue hot path: served flow re-enters with a new tag).
                expected = min(model.items(), key=lambda kv: kv[1])
                item = expected[0]
                key = rng.randint(0, 60)
                assert h.pop_push(item, key) == (item, expected[1][0])
                model[item] = (key, seq)
                seq += 1
            h.check_invariants()
            if model:
                expected = min(model.items(), key=lambda kv: kv[1])
                assert h.peek() == (expected[0], expected[1][0])
                assert h.min_key() == expected[1][0]
            assert len(h) == len(model)
        # Drain and confirm full ordering agreement.
        while model:
            expected = min(model.items(), key=lambda kv: kv[1])
            assert h.pop() == (expected[0], expected[1][0])
            del model[expected[0]]
        assert not h


@st.composite
def heap_ops(draw):
    """A sequence of (op, item, key) heap operations."""
    n = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for i in range(n):
        op = draw(st.sampled_from(
            ["push", "pop", "update", "remove", "replace"]))
        key = draw(st.integers(min_value=-50, max_value=50))
        ops.append((op, i, key))
    return ops


class TestHypothesis:
    @settings(max_examples=200, deadline=None)
    @given(heap_ops())
    def test_matches_reference_model(self, ops):
        """The heap agrees with a brute-force sorted-list model."""
        h = IndexedHeap()
        model = {}  # item -> (key, seq)
        seq = 0
        for op, item, key in ops:
            if op == "push":
                if item in model:
                    continue
                h.push(item, key)
                model[item] = (key, seq)
                seq += 1
            elif op == "pop":
                if not model:
                    continue
                expected = min(model.items(), key=lambda kv: kv[1])
                got_item, got_key = h.pop()
                assert got_item == expected[0]
                assert got_key == expected[1][0]
                del model[got_item]
            elif op == "update":
                if item not in model:
                    continue
                h.update(item, key)
                if key != model[item][0]:
                    # equal-key update is a no-op: the FIFO seq survives
                    model[item] = (key, seq)
                    seq += 1
            elif op == "remove":
                if item not in model:
                    continue
                assert h.remove(item) == model[item][0]
                del model[item]
            elif op == "replace":
                if not model:
                    continue
                expected = min(model.items(), key=lambda kv: kv[1])
                new_item = ("r", item)
                if new_item in model and new_item != expected[0]:
                    continue  # replace_top rejects duplicates elsewhere
                assert h.replace_top(new_item, key) == (
                    expected[0], expected[1][0])
                del model[expected[0]]
                model[new_item] = (key, seq)
                seq += 1
            h.check_invariants()
        assert len(h) == len(model)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, keys):
        h = IndexedHeap()
        for i, k in enumerate(keys):
            h.push(i, k)
        out = [h.pop()[1] for _ in range(len(keys))]
        assert out == sorted(keys)
