"""Tests for the observability event stream and its scheduler wiring."""

import pytest

from repro.core.fifo import FIFOScheduler
from repro.core.hierarchy import make_hwf2qplus
from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.config import leaf, node
from repro.obs.events import (
    DequeueEvent,
    DropEvent,
    EnqueueEvent,
    EventBus,
    NodeRestart,
    VirtualTimeUpdate,
    event_from_dict,
)
from repro.obs.sinks import RingBufferSink
from repro.sim.engine import Simulator
from repro.sim.link import Link


def wf2qplus_two_flows():
    s = WF2QPlusScheduler(rate=1.0)
    s.add_flow("a", 1)
    s.add_flow("b", 1)
    return s


class TestEventTypes:
    def test_equality_is_fieldwise(self):
        e1 = EnqueueEvent(0.0, "S", "a", 1, 100, 1, 1)
        e2 = EnqueueEvent(0.0, "S", "a", 1, 100, 1, 1)
        e3 = EnqueueEvent(0.0, "S", "a", 1, 100, 2, 1)
        assert e1 == e2
        assert e1 != e3
        assert e1 != VirtualTimeUpdate(0.0, "S", None, 0)

    def test_dict_round_trip(self):
        events = [
            EnqueueEvent(0.5, "S", "a", 7, 8000, 3, 2),
            DequeueEvent(1.0, "S", "a", 7, 8000, 0.5, 1.0, 2.0,
                         0.25, 0.75, 0.5, True, 2),
            DropEvent(1.5, "S", "b", 8, 8000, 4),
            VirtualTimeUpdate(2.0, "S", None, 1.25, True),
            NodeRestart(2.5, "H", "n", "c", 1.0, 2.0, 1.5, 100, 100.0),
        ]
        for event in events:
            clone = event_from_dict(event.to_dict())
            assert clone == event
            assert clone.to_dict() == event.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "nope"})

    def test_dequeue_delay(self):
        e = DequeueEvent(1.0, "S", "a", 7, 100, 0.25, 1.0, 2.0,
                         None, None, None, False, 0)
        assert e.delay == pytest.approx(1.75)
        e2 = DequeueEvent(1.0, "S", "a", 7, 100, None, 1.0, 2.0,
                          None, None, None, False, 0)
        assert e2.delay is None


class TestEventBus:
    def test_subscribe_unsubscribe(self):
        bus = EventBus()
        ring = RingBufferSink()
        bus.subscribe(ring)
        bus.subscribe(ring)  # idempotent
        assert len(bus) == 1
        bus.emit(VirtualTimeUpdate(0.0, "S", None, 0))
        assert len(ring) == 1
        assert bus.unsubscribe(ring)
        assert not bus.unsubscribe(ring)
        bus.emit(VirtualTimeUpdate(1.0, "S", None, 1))
        assert len(ring) == 1  # no longer subscribed


class TestSchedulerWiring:
    def test_no_observer_by_default(self):
        assert wf2qplus_two_flows().observer is None

    def test_attach_detach_lifecycle(self):
        s = wf2qplus_two_flows()
        ring = RingBufferSink()
        bus = s.attach_observer(ring)
        assert s.observer is bus
        assert s.detach_observer(ring)
        assert s.observer is None  # bus dropped once empty
        s.attach_observer(ring)
        s.detach_observer()
        assert s.observer is None

    def test_enqueue_dequeue_events(self):
        s = wf2qplus_two_flows()
        ring = RingBufferSink()
        s.attach_observer(ring)
        p = Packet("a", 1.0)
        s.enqueue(p, now=0.0)
        record = s.dequeue()
        enq = [e for e in ring if e.kind == "enqueue"]
        deq = [e for e in ring if e.kind == "dequeue"]
        assert len(enq) == 1 and len(deq) == 1
        assert enq[0].flow_id == "a"
        assert enq[0].packet_uid == p.uid
        assert enq[0].backlog == 1
        assert enq[0].flow_backlog == 1
        assert deq[0].packet_uid == p.uid
        assert deq[0].start_time == record.start_time
        assert deq[0].finish_time == record.finish_time
        assert deq[0].virtual_start == record.virtual_start
        assert deq[0].virtual_finish == record.virtual_finish
        assert deq[0].seff is True
        assert deq[0].backlog == 0

    def test_detached_scheduler_emits_nothing(self):
        s = wf2qplus_two_flows()
        ring = RingBufferSink()
        s.attach_observer(ring)
        s.detach_observer()
        s.enqueue(Packet("a", 1.0), now=0.0)
        s.dequeue()
        assert len(ring) == 0

    def test_drop_event(self):
        s = FIFOScheduler(rate=1000)
        s.add_flow("a", 1)
        s.set_buffer_limit("a", 1)
        ring = RingBufferSink()
        s.attach_observer(ring)
        assert s.enqueue(Packet("a", 10), now=0)
        assert not s.enqueue(Packet("a", 10), now=0)
        drops = [e for e in ring if e.kind == "drop"]
        assert len(drops) == 1
        assert drops[0].flow_id == "a"
        assert drops[0].drops == 1

    def test_virtual_time_updates_monotone(self):
        s = wf2qplus_two_flows()
        ring = RingBufferSink()
        s.attach_observer(ring)
        for _ in range(3):
            s.enqueue(Packet("a", 1.0), now=0.0)
        s.enqueue(Packet("b", 1.0), now=0.0)
        s.drain()
        updates = [e for e in ring if e.kind == "virtual-time"]
        assert updates, "WF2Q+ must emit virtual-time events"
        values = [e.virtual for e in updates if not e.reset]
        assert values == sorted(values)

    def test_tagless_scheduler_dequeue_fields(self):
        s = FIFOScheduler(rate=1000)
        s.add_flow("a", 1)
        ring = RingBufferSink()
        s.attach_observer(ring)
        s.enqueue(Packet("a", 10), now=0)
        s.dequeue()
        (deq,) = [e for e in ring if e.kind == "dequeue"]
        assert deq.virtual_start is None
        assert deq.virtual_time is None
        assert deq.seff is False


class TestHierarchyWiring:
    def spec(self):
        return node("root", 1, [
            node("L", 3, [leaf("x", 2), leaf("y", 1)]),
            leaf("z", 1),
        ])

    def test_node_restart_and_virtual_events(self):
        h = make_hwf2qplus(self.spec(), rate=1.0)
        ring = RingBufferSink()
        h.attach_observer(ring)
        for _ in range(2):
            h.enqueue(Packet("x", 1.0), now=0.0)
        h.enqueue(Packet("y", 1.0), now=0.0)
        h.enqueue(Packet("z", 1.0), now=0.0)
        h.drain()
        restarts = [e for e in ring if e.kind == "node-restart"]
        updates = [e for e in ring if e.kind == "virtual-time"]
        assert {e.node for e in restarts} >= {"x", "y", "z", "L"}
        assert {e.node for e in updates} >= {"root", "L"}
        # Interior restarts name the selected child and carry consistent tags.
        for e in restarts:
            if e.node == "L":
                assert e.child in ("x", "y")
                assert e.finish_tag == pytest.approx(
                    e.start_tag + e.head_length / e.rate)

    def test_root_restart_has_no_tags(self):
        h = make_hwf2qplus(self.spec(), rate=1.0)
        ring = RingBufferSink()
        h.attach_observer(ring)
        h.enqueue(Packet("z", 1.0), now=0.0)
        h.drain()
        roots = [e for e in ring
                 if e.kind == "node-restart" and e.node == "root"]
        assert roots
        assert all(e.start_tag is None for e in roots)


class TestSimWiring:
    def test_link_forwards_observer_to_scheduler(self):
        sim = Simulator()
        sched = wf2qplus_two_flows()
        link = Link(sim, sched)
        ring = RingBufferSink()
        bus = link.attach_observer(ring)
        assert link.observer is bus is sched.observer
        link.send(Packet("a", 1.0, arrival_time=0.0))
        sim.run()
        kinds = [e.kind for e in ring]
        assert "enqueue" in kinds and "dequeue" in kinds
        assert link.detach_observer(ring)
        assert link.observer is None

    def test_simulator_event_hook(self):
        sim = Simulator()
        fired = []
        sim.event_hook = fired.append
        sim.schedule(0.5, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(fired) == 2
        assert [e.time for e in fired] == [0.5, 1.0]
