"""Differential guarantees for repro.shard.

The subsystem's contract: how a scenario is *executed* — one simulator,
N fork/spawn workers, or a mid-run checkpoint migration — must not change
what it *computes*.  These tests pin that down three ways:

* per-cell results are identical whether a cell shares a simulator with
  every other cell (the shards=1 union run) or runs alone — exact
  equality of service rows, Fraction virtual tags included;
* the merged report digest is byte-identical across shard counts, with
  real worker processes (``fork`` context for start-up speed; the
  production ``spawn`` default is exercised by the CI shard-smoke job);
* checkpointing a cell mid-busy-period and resuming it — in-process or
  in a genuinely fresh worker process — leaves the digest unchanged.

Plus the layer the migration guarantee rests on: traffic-source
snapshot/restore reproduces the uninterrupted emission stream exactly
(timetables, seqnos, and RNG state for the stochastic sources).
"""

import multiprocessing
from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.shard import (
    build_scenario,
    canonical_digest,
    checkpoint_cell,
    resume_cell,
    run_cells,
    run_sharded,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="differential suite forks its worker pools")

FORK = "fork"

#: Small but non-trivial workloads; every partitioning rule represented.
SCEN_PARAMS = {
    "cbr_flat": dict(flows=12, cells=4, duration=0.003),
    "poisson_mix": dict(flows=12, cells=4, duration=0.003),
    "hier": dict(flows=12, cells=4, duration=0.003),
    "multihop": dict(cells=3, duration=0.004),
}


def _cell_digest(result, duration):
    """Digest of a single cell's result (grouping-invariant fields only)."""
    return canonical_digest({
        "scenario": "cell", "duration": duration,
        "cells": {result["cell"]: result}, "totals": {},
    })


# ----------------------------------------------------------------------
# Grouping invariance: union simulator vs isolated cells
# ----------------------------------------------------------------------
class TestGroupingInvariance:
    @pytest.mark.parametrize("name", sorted(SCEN_PARAMS))
    def test_union_equals_isolated_cells(self, name):
        built = build_scenario(name, **SCEN_PARAMS[name])
        duration = built["duration"]
        union, _ = run_cells(built["cells"], duration)
        assert len(union) == len(built["cells"])
        for spec in built["cells"]:
            alone, _ = run_cells([spec], duration)
            assert (_cell_digest(alone[spec["cell"]], duration)
                    == _cell_digest(union[spec["cell"]], duration)), (
                f"cell {spec['cell']!r} of {name} changed with grouping")

    def test_service_rows_exact_packet_for_packet(self):
        built = build_scenario("cbr_flat", flows=8, cells=2, duration=0.003)
        union, _ = run_cells(built["cells"], built["duration"])
        spec = built["cells"][0]
        alone, _ = run_cells([spec], built["duration"])
        rows_union = union[spec["cell"]]["links"]["link"]["services"]
        rows_alone = alone[spec["cell"]]["links"]["link"]["services"]
        assert rows_union == rows_alone  # list equality: every field exact
        assert len(rows_union) > 50

    def test_hier_virtual_tags_are_exact_fractions(self):
        built = build_scenario("hier", flows=8, cells=2, duration=0.002)
        union, _ = run_cells(built["cells"], built["duration"])
        spec = built["cells"][0]
        alone, _ = run_cells([spec], built["duration"])
        rows_union = union[spec["cell"]]["links"]["link"]["services"]
        rows_alone = alone[spec["cell"]]["links"]["link"]["services"]
        assert rows_union == rows_alone
        # The slice rates are Fractions, so the virtual finish tags must
        # still be exact rationals by the time they reach the trace.
        assert any(isinstance(row[-1], Fraction) for row in rows_union)

    def test_multihop_drop_ledger_has_content(self):
        built = build_scenario("multihop", **SCEN_PARAMS["multihop"])
        results, _ = run_cells(built["cells"], built["duration"])
        drops = sum(sum(lr["drops_by_flow"].values())
                    for r in results.values()
                    for lr in r["links"].values())
        assert drops > 0  # the capped single-hop flow must actually drop


# ----------------------------------------------------------------------
# Shard-count invariance: real worker processes
# ----------------------------------------------------------------------
class TestShardInvariance:
    @pytest.mark.parametrize("name", sorted(SCEN_PARAMS))
    def test_digest_independent_of_shard_count(self, name):
        params = SCEN_PARAMS[name]
        base = run_sharded(name, shards=1, **params)
        assert base["totals"]["balanced"]
        for shards in (2, 4):
            report = run_sharded(name, shards=shards, mp_context=FORK,
                                 **params)
            assert report["digest"] == base["digest"], (
                f"{name}: shards={shards} diverged from single-process")

    def test_report_carries_plan_and_throughput(self):
        report = run_sharded("cbr_flat", shards=2, mp_context=FORK,
                             **SCEN_PARAMS["cbr_flat"])
        assert report["plan"]["shards"] == 2
        assert set(report["plan"]["assignment"].values()) <= {0, 1}
        assert report["packets_per_second"] > 0
        assert report["totals"]["packets_sent"] > 0


# ----------------------------------------------------------------------
# Checkpoint-based migration
# ----------------------------------------------------------------------
class TestMigration:
    def test_in_process_migration_digest_unchanged(self):
        params = dict(flows=8, cells=2, duration=0.004)
        base = run_sharded("cbr_flat", shards=1, **params)
        migrated = run_sharded("cbr_flat", shards=1,
                               migrate={"cell": None, "at": 0.002},
                               **params)
        assert migrated["migrated"]["cell"] == "c0"  # first flat cell
        assert migrated["digest"] == base["digest"]

    def test_cross_process_migration_digest_unchanged(self):
        # Poisson sources: the resumed worker must also restore RNG
        # state exactly, not just the emission timetable.
        params = dict(flows=8, cells=2, duration=0.004)
        base = run_sharded("poisson_mix", shards=1, **params)
        migrated = run_sharded("poisson_mix", shards=2, mp_context=FORK,
                               migrate={"cell": "p1", "at": 0.002},
                               **params)
        assert migrated["migrated"] == {"cell": "p1", "at": 0.002}
        assert migrated["digest"] == base["digest"]

    def test_migration_cut_mid_busy_period(self):
        # The 92 % load keeps queues non-empty around the cut, so the
        # checkpoint must carry a backlogged scheduler and an in-flight
        # transmission — the hard case, not an idle link.
        params = dict(flows=6, cells=1, duration=0.003)
        built = build_scenario("cbr_flat", **params)
        spec = built["cells"][0]
        ckpt = checkpoint_cell(spec, 0.0015)
        backlog = ckpt["partial"]["links"]["link"]["ledger"]["backlog"]
        assert backlog > 0
        resumed = resume_cell(spec, ckpt, built["duration"])
        base = run_sharded("cbr_flat", shards=1, **params)
        dur = built["duration"]
        assert (_cell_digest(resumed["result"], dur)
                == _cell_digest(base["cells"][spec["cell"]], dur))

    def test_network_cell_checkpoint_refused(self):
        built = build_scenario("multihop", cells=1)
        with pytest.raises(ConfigurationError, match="flat cells only"):
            checkpoint_cell(built["cells"][0], 0.001)

    def test_checkpoint_cell_mismatch_rejected(self):
        built = build_scenario("cbr_flat", flows=4, cells=2, duration=0.004)
        first, second = built["cells"]
        ckpt = checkpoint_cell(first, 0.001)
        with pytest.raises(ConfigurationError, match="checkpoint is for"):
            resume_cell(second, ckpt, built["duration"])

    def test_migration_time_outside_run_rejected(self):
        with pytest.raises(ConfigurationError, match="must fall inside"):
            run_sharded("cbr_flat", shards=1, flows=4, cells=1,
                        duration=0.002, migrate={"cell": None, "at": 0.5})


# ----------------------------------------------------------------------
# Source snapshot/restore: the layer migration rests on
# ----------------------------------------------------------------------
class _Collector:
    """Minimal receiver: records (time, seqno, length) per emission."""

    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def send(self, packet):
        self.packets.append((self.sim.now, packet.seqno, packet.length))


def _roundtrip(make_source, cut, end):
    from repro.sim.engine import Simulator

    reference_sim = Simulator()
    reference = _Collector(reference_sim)
    make_source().attach(reference_sim, reference).start()
    reference_sim.run(until=end)

    first_sim = Simulator()
    first = _Collector(first_sim)
    original = make_source().attach(first_sim, first).start()
    first_sim.run(until=cut)
    snap = original.snapshot()

    second_sim = Simulator()
    second = _Collector(second_sim)
    make_source().attach(second_sim, second).restore(snap)
    second_sim.run(until=end)

    assert first.packets == [p for p in reference.packets if p[0] <= cut]
    assert first.packets + second.packets == reference.packets
    assert len(reference.packets) > 4


class TestSourceSnapshotRestore:
    def test_cbr(self):
        from repro.traffic.source import CBRSource

        _roundtrip(lambda: CBRSource("f", 1e6, 1000.0),
                   cut=0.0103, end=0.02)

    def test_poisson(self):
        from repro.traffic.source import PoissonSource

        _roundtrip(lambda: PoissonSource("f", 1e6, 1000.0, seed=7),
                   cut=0.0103, end=0.03)

    def test_packet_train(self):
        from repro.traffic.source import PacketTrainSource

        _roundtrip(lambda: PacketTrainSource("f", 1000.0, train_length=4,
                                             train_interval=0.005,
                                             line_rate=1e7),
                   cut=0.0112, end=0.03)

    def test_markov_onoff(self):
        from repro.traffic.source import MarkovOnOffSource

        _roundtrip(lambda: MarkovOnOffSource("f", 2e6, 1000.0,
                                             mean_on=0.004, mean_off=0.003,
                                             seed=3),
                   cut=0.0153, end=0.04)

    def test_restore_rejects_wrong_flow(self):
        from repro.sim.engine import Simulator
        from repro.traffic.source import CBRSource

        sim = Simulator()
        src = CBRSource("f", 1e6, 1000.0).attach(sim, _Collector(sim))
        src.start()
        sim.run(until=0.005)
        snap = src.snapshot()
        other = CBRSource("g", 1e6, 1000.0).attach(Simulator(),
                                                   _Collector(sim))
        with pytest.raises(ConfigurationError):
            other.restore(snap)

    def test_trace_source_roundtrips(self):
        times = [0.001 * k for k in range(20)]
        from repro.traffic.source import TraceSource

        _roundtrip(lambda: TraceSource("f", times, 1000.0),
                   cut=0.0085, end=0.03)

    def test_unsnapshottable_sources_refuse(self):
        from repro.traffic.source import CBRSource, ShapedSource

        with pytest.raises(NotImplementedError):
            ShapedSource(CBRSource("f", 1e6, 1000.0),
                         sigma=8000.0, rho=1e6).snapshot()
