"""Tests for the unit helpers."""

from fractions import Fraction

import pytest

from repro import units


def test_rate_helpers():
    assert units.kbps(5) == 5_000
    assert units.mbps(10) == 10_000_000
    assert units.gbps(1) == 1_000_000_000


def test_size_helpers():
    assert units.bytes_(100) == 800
    assert units.kilobytes(8) == 8 * 1024 * 8


def test_time_helpers():
    assert units.ms(250) == 0.25
    assert units.us(1500) == pytest.approx(0.0015)


def test_transmission_time():
    assert units.transmission_time(1_000_000, units.mbps(1)) == 1.0
    with pytest.raises(ValueError):
        units.transmission_time(1000, 0)


def test_composes_with_fractions():
    t = units.transmission_time(Fraction(1), Fraction(3))
    assert t == Fraction(1, 3)
    assert units.mbps(Fraction(1, 2)) == 500_000
