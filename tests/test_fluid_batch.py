"""Differential suite for the batched GPS fluid reference.

Pins the :mod:`repro.analysis.fluid` numerics contract: the whole-trace
batched computation is **bit-equivalent** (``repr``-level, so int-vs-
float zero tags would also be caught) to driving the online
:class:`~repro.core.gps.GPSFluidSystem` packet by packet — on both the
numpy lane (same-instant bursts >= NUMPY_MIN_CHUNK) and the plain-loop
lane, across busy-period resets and interleaved same-instant arrivals.
"""

import random
from fractions import Fraction as Fr

import pytest

import repro.analysis as analysis
from repro.analysis.fluid import fluid_finish_times
from repro.errors import (
    ConfigurationError,
    DuplicateFlowError,
    UnknownFlowError,
)


def random_trace(rng, n_flows, n_pkts):
    flows = [(f"f{i}", rng.choice([1, 2, 3, 5])) for i in range(n_flows)]
    arrivals, t = [], 0.0
    for _ in range(n_pkts):
        if rng.random() < 0.4:
            # Mix of same-instant packets, short steps and long gaps
            # (the long gaps drain the system -> new busy periods).
            t += rng.choice([0.0, 0.01, 0.3, 2.5])
        arrivals.append((f"f{rng.randrange(n_flows)}",
                         rng.choice([1, 2, 5, 10]) * 100.0, t))
    return flows, arrivals


def assert_bit_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        for attr in ("flow_id", "length", "arrival_time", "virtual_start",
                     "virtual_finish", "finish_time"):
            va, vb = getattr(a, attr), getattr(b, attr)
            assert repr(va) == repr(vb), (
                f"uid {a.uid} {attr}: batched={va!r} exact={vb!r}")


class TestBatchedVsExact:
    @pytest.mark.parametrize("seed", [1, 2, 3, 5, 8, 13])
    def test_random_traces_bit_identical(self, seed):
        rng = random.Random(seed)
        flows, arrivals = random_trace(
            rng, rng.randrange(1, 6), rng.randrange(1, 250))
        rate = rng.choice([7.0, 100.0, 1000.0])
        got = fluid_finish_times(flows, arrivals, rate)
        want = fluid_finish_times(flows, arrivals, rate, exact=True)
        assert_bit_identical(got, want)

    def test_large_bursts_numpy_lane(self):
        # Same-instant bursts well past NUMPY_MIN_CHUNK: the cumsum and
        # searchsorted lanes must reproduce the online chain exactly.
        flows = [("a", 1), ("b", 3), ("c", 2)]
        arrivals = ([("a", 100.0, 0.0)] * 120 + [("b", 50.0, 0.0)] * 120
                    + [("c", 75.0, 0.0)] * 40
                    # second busy period after the first drains
                    + [("a", 100.0, 9000.0)] * 64)
        got = fluid_finish_times(flows, arrivals, 10.0)
        want = fluid_finish_times(flows, arrivals, 10.0, exact=True)
        assert_bit_identical(got, want)

    def test_interleaved_same_instant_arrivals(self):
        # Per-flow chaining is interleaving-independent: a-b-a-b at one
        # instant tags exactly like the online per-packet order.
        flows = [("a", 1), ("b", 1)]
        arrivals = [("a", 10.0, 0.0), ("b", 20.0, 0.0),
                    ("a", 10.0, 0.0), ("b", 20.0, 0.0),
                    ("a", 30.0, 0.0)]
        got = fluid_finish_times(flows, arrivals, 5.0)
        want = fluid_finish_times(flows, arrivals, 5.0, exact=True)
        assert_bit_identical(got, want)

    def test_input_order_and_uids(self):
        flows = [("a", 1), ("b", 1)]
        arrivals = [("b", 10.0, 0.0), ("a", 20.0, 0.0), ("b", 5.0, 1.0)]
        pkts = fluid_finish_times(flows, arrivals, 1.0)
        assert [p.flow_id for p in pkts] == ["b", "a", "b"]
        assert [p.uid for p in pkts] == [0, 1, 2]
        assert [p.length for p in pkts] == [10.0, 20.0, 5.0]

    def test_busy_period_resets_virtual_time(self):
        flows = [("a", 1), ("b", 1)]
        # Burst drains fully (20 bits at rate 10 -> idle by t=2), so the
        # packet at t=100 restarts V at zero: same tags as the first.
        arrivals = [("a", 10.0, 0.0), ("b", 10.0, 0.0)]
        again = arrivals + [("a", 10.0, 100.0)]
        pkts = fluid_finish_times(flows, again, 10.0)
        assert pkts[2].virtual_start == pkts[0].virtual_start
        assert pkts[2].virtual_finish == pkts[0].virtual_finish
        assert pkts[2].finish_time == pytest.approx(100.0 + 1.0)

    def test_exact_mode_accepts_fractions(self):
        flows = [("a", Fr(1, 3)), ("b", Fr(2, 3))]
        arrivals = [("a", Fr(1), Fr(0)), ("b", Fr(1), Fr(0))]
        pkts = fluid_finish_times(flows, arrivals, Fr(1), exact=True)
        assert pkts[0].virtual_finish == Fr(3)
        assert isinstance(pkts[0].finish_time, Fr)


class TestValidation:
    def test_rejects_bad_rate_and_shares(self):
        with pytest.raises(ConfigurationError):
            fluid_finish_times([("a", 1)], [], 0.0)
        with pytest.raises(ConfigurationError):
            fluid_finish_times([("a", 0)], [], 1.0)
        with pytest.raises(DuplicateFlowError):
            fluid_finish_times([("a", 1), ("a", 2)], [], 1.0)

    def test_rejects_unknown_flow_and_bad_lengths(self):
        with pytest.raises(UnknownFlowError):
            fluid_finish_times([("a", 1)], [("zz", 1.0, 0.0)], 1.0)
        with pytest.raises(ValueError):
            fluid_finish_times([("a", 1)], [("a", 0.0, 0.0)], 1.0)

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            fluid_finish_times(
                [("a", 1)], [("a", 1.0, 1.0), ("a", 1.0, 0.5)], 1.0)

    def test_empty_trace(self):
        assert fluid_finish_times([("a", 1)], [], 1.0) == []

    def test_exported_from_analysis_package(self):
        assert analysis.fluid_finish_times is fluid_finish_times
