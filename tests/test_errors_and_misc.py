"""Coverage for the error hierarchy and miscellaneous package surface."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    DuplicateFlowError,
    EmptySchedulerError,
    HierarchyError,
    ReproError,
    SchedulerError,
    SimulationError,
    UnknownFlowError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, SchedulerError, UnknownFlowError,
                    DuplicateFlowError, EmptySchedulerError, HierarchyError,
                    SimulationError):
            assert issubclass(exc, ReproError)

    def test_unknown_flow_is_key_error(self):
        assert issubclass(UnknownFlowError, KeyError)
        err = UnknownFlowError("ghost")
        assert err.flow_id == "ghost"
        assert "ghost" in str(err)

    def test_duplicate_flow_message(self):
        err = DuplicateFlowError("dup")
        assert err.flow_id == "dup"
        assert "dup" in str(err)

    def test_catchable_as_base(self):
        from repro import WF2QPlusScheduler
        s = WF2QPlusScheduler(1.0)
        with pytest.raises(ReproError):
            s.dequeue()


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_scheduler_names_unique(self):
        from repro import (
            DRRScheduler,
            FFQScheduler,
            FIFOScheduler,
            SCFQScheduler,
            SFQScheduler,
            VirtualClockScheduler,
            WF2QPlusScheduler,
            WF2QScheduler,
            WFQScheduler,
            WRRScheduler,
        )
        names = [cls.name for cls in (
            DRRScheduler, FFQScheduler, FIFOScheduler, SCFQScheduler,
            SFQScheduler, VirtualClockScheduler, WF2QPlusScheduler,
            WF2QScheduler, WFQScheduler, WRRScheduler)]
        assert len(names) == len(set(names))

    def test_repr_smoke(self):
        """Every public object with custom __repr__ renders."""
        from fractions import Fraction as Fr
        from repro import (
            HierarchySpec, LeakyBucket, Packet, WF2QPlusScheduler,
            leaf, node,
        )
        from repro.sim import DeliveryLog, Network, Simulator

        sim = Simulator()
        net = Network(sim)
        objs = [
            Packet("f", 10),
            LeakyBucket(10, 1),
            WF2QPlusScheduler(Fr(1)),
            HierarchySpec(node("r", 1, [leaf("x", 1)])),
            sim,
            net,
            DeliveryLog(),
        ]
        for obj in objs:
            assert repr(obj)
