"""Tests for the runtime invariant checker.

Two directions: every scheduler in the zoo must survive a Figure-2-style
workload under full checking, and a deliberately broken scheduler (largest
finish tag first — the anti-SEFF policy) must be caught at the offending
dequeue with a structured violation.
"""

import pytest

from repro.config import leaf, node
from repro.core.drr import DRRScheduler
from repro.core.ffq import FFQScheduler
from repro.core.fifo import FIFOScheduler
from repro.core.hierarchy import HPFQScheduler
from repro.core.packet import Packet
from repro.core.scfq import SCFQScheduler
from repro.core.sfq import SFQScheduler
from repro.core.virtual_clock import VirtualClockScheduler
from repro.core.wf2q import WF2QScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler
from repro.core.wrr import WRRScheduler
from repro.errors import InvariantViolation
from repro.obs.events import (
    DequeueEvent,
    DropEvent,
    EnqueueEvent,
    NodeRestart,
    VirtualTimeUpdate,
)
from repro.obs.invariants import InvariantChecker

ZOO = [FIFOScheduler, WRRScheduler, DRRScheduler, SCFQScheduler,
       SFQScheduler, VirtualClockScheduler, FFQScheduler, WFQScheduler,
       WF2QScheduler, WF2QPlusScheduler]

HPFQ_POLICIES = ["wf2qplus", "wfq", "scfq", "sfq"]


def fig2_style_drive(sched, sessions=11, burst=11):
    """The paper's Figure 2 shape: one heavy session vs many light ones,
    drained over a continuously busy link, then a second busy period."""
    for _ in range(burst):
        sched.enqueue(Packet(1, 1.0), now=0.0)
    for j in range(2, sessions + 1):
        sched.enqueue(Packet(j, 1.0), now=0.0)
    records = sched.drain()
    assert len(records) == burst + sessions - 1
    # Second busy period: clocks legitimately reset; must not false-alarm.
    t = records[-1].finish_time + 5.0
    sched.enqueue(Packet(2, 1.0), now=t)
    sched.enqueue(Packet(3, 1.0), now=t)
    sched.drain()


@pytest.mark.parametrize("cls", ZOO, ids=lambda c: c.name)
def test_zoo_passes_full_checking(cls):
    sched = cls(rate=1.0)
    sched.add_flow(1, 10)
    for j in range(2, 12):
        sched.add_flow(j, 1)
    checker = InvariantChecker()
    sched.attach_observer(checker)
    fig2_style_drive(sched)
    assert checker.events_checked > 0
    assert checker.schedulers() == [sched.name]


@pytest.mark.parametrize("policy", HPFQ_POLICIES)
def test_hpfq_passes_full_checking(policy):
    spec = node("root", 1, [
        node("heavy", 10, [leaf(1, 1)]),
        node("light", 10, [leaf(j, 1) for j in range(2, 12)]),
    ])
    sched = HPFQScheduler(spec, rate=1.0, policy=policy)
    checker = InvariantChecker()
    sched.attach_observer(checker)
    fig2_style_drive(sched)
    assert checker.events_checked > 0


class LargestFinishFirst(WF2QPlusScheduler):
    """Anti-SEFF fixture: serves the *largest* finish tag, eligibility
    ignored — exactly the behaviour the checker exists to catch."""

    name = "broken-LFF"

    def _select_flow(self, now):
        self._advance_virtual(now)
        self._promote_eligible()
        backlogged = [st for st in self._flows.values() if st.queue]
        return max(backlogged, key=lambda st: (st.finish_tag, -st.index))


class TestBrokenScheduler:
    def drive(self, sched):
        for _ in range(4):
            sched.enqueue(Packet("a", 1.0), now=0.0)
        sched.enqueue(Packet("b", 1.0), now=0.0)
        sched.drain()

    def test_violation_raised_with_offending_event(self):
        sched = LargestFinishFirst(rate=1.0)
        sched.add_flow("a", 1)
        sched.add_flow("b", 1)
        sched.attach_observer(InvariantChecker())
        with pytest.raises(InvariantViolation) as exc_info:
            self.drive(sched)
        violation = exc_info.value
        assert violation.invariant == InvariantChecker.SEFF
        assert isinstance(violation.event, DequeueEvent)
        assert violation.event.flow_id == "a"
        assert violation.event.virtual_start > violation.event.virtual_time
        assert "ineligible" in str(violation)

    def test_seff_check_can_be_disabled(self):
        sched = LargestFinishFirst(rate=1.0)
        sched.add_flow("a", 1)
        sched.add_flow("b", 1)
        sched.attach_observer(InvariantChecker(check_seff=False))
        self.drive(sched)  # only the SEFF property is broken


class TestFabricatedStreams:
    """Feed the checker synthetic event sequences to pin each invariant."""

    def test_backlog_conservation_enqueue(self):
        checker = InvariantChecker()
        checker.accept(EnqueueEvent(0.0, "S", "a", 1, 100, 1, 1))
        with pytest.raises(InvariantViolation) as exc_info:
            # Claims backlog 5 after a single further enqueue.
            checker.accept(EnqueueEvent(1.0, "S", "a", 2, 100, 5, 2))
        assert exc_info.value.invariant == InvariantChecker.BACKLOG

    def test_backlog_conservation_dequeue(self):
        checker = InvariantChecker()
        checker.accept(EnqueueEvent(0.0, "S", "a", 1, 100, 1, 1))
        with pytest.raises(InvariantViolation):
            checker.accept(DequeueEvent(1.0, "S", "a", 1, 100, 0.0, 1.0,
                                        2.0, None, None, None, False, 3))

    def test_drop_counter_must_advance_by_one(self):
        checker = InvariantChecker()
        checker.accept(DropEvent(0.0, "S", "a", 1, 100, 1))
        with pytest.raises(InvariantViolation):
            checker.accept(DropEvent(1.0, "S", "a", 2, 100, 5))

    def test_virtual_time_must_not_regress(self):
        checker = InvariantChecker()
        checker.accept(VirtualTimeUpdate(0.0, "S", None, 2.0))
        with pytest.raises(InvariantViolation) as exc_info:
            checker.accept(VirtualTimeUpdate(1.0, "S", None, 1.0))
        assert exc_info.value.invariant == InvariantChecker.VIRTUAL_MONOTONIC

    def test_virtual_time_reset_is_sanctioned(self):
        checker = InvariantChecker()
        checker.accept(VirtualTimeUpdate(0.0, "S", None, 2.0))
        checker.accept(VirtualTimeUpdate(1.0, "S", None, 0.0, reset=True))
        checker.accept(VirtualTimeUpdate(2.0, "S", None, 0.5))

    def test_node_clocks_are_independent(self):
        checker = InvariantChecker()
        checker.accept(VirtualTimeUpdate(0.0, "H", "n1", 5.0))
        checker.accept(VirtualTimeUpdate(1.0, "H", "n2", 1.0))  # fine

    def test_tag_consistency_finish_equals_start_plus_service(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as exc_info:
            # finish != start + L/r  (should be 1.0 + 100/100 = 2.0)
            checker.accept(NodeRestart(0.0, "H", "n", "c", 1.0, 9.0,
                                       0.0, 100, 100.0))
        assert exc_info.value.invariant == InvariantChecker.TAGS

    def test_tag_start_regression_detected(self):
        checker = InvariantChecker()
        checker.accept(NodeRestart(0.0, "H", "n", "c", 4.0, 5.0,
                                   0.0, 100, 100.0))
        with pytest.raises(InvariantViolation):
            checker.accept(NodeRestart(1.0, "H", "n", "c", 2.0, 3.0,
                                       0.0, 100, 100.0))

    def test_root_restart_without_tags_is_skipped(self):
        checker = InvariantChecker()
        checker.accept(NodeRestart(0.0, "H", "root", "c", None, None,
                                   1.0, 100, None))

    def test_dequeue_tag_order(self):
        checker = InvariantChecker()
        checker.accept(EnqueueEvent(0.0, "S", "a", 1, 100, 1, 1))
        with pytest.raises(InvariantViolation) as exc_info:
            checker.accept(DequeueEvent(1.0, "S", "a", 1, 100, 0.0, 1.0,
                                        2.0, 3.0, 1.0, None, False, 0))
        assert exc_info.value.invariant == InvariantChecker.TAGS

    def test_mid_stream_attachment_adopts_counts(self):
        checker = InvariantChecker()
        # First observed event claims backlog 7 — adopted, not flagged.
        checker.accept(EnqueueEvent(0.0, "S", "a", 1, 100, 7, 3))
        checker.accept(EnqueueEvent(1.0, "S", "a", 2, 100, 8, 4))

    def test_buffer_drops_preserve_conservation(self):
        """End-to-end: enqueues - dequeues - drops == backlog with drops."""
        sched = FIFOScheduler(rate=1000.0)
        sched.add_flow("a", 1)
        sched.set_buffer_limit("a", 2)
        checker = InvariantChecker()
        sched.attach_observer(checker)
        for _ in range(5):
            sched.enqueue(Packet("a", 100.0), now=0.0)
        sched.drain()
        assert checker.events_checked == 5 + 2  # 2 enq + 3 drops + 2 deq
