"""Tests for the Packet model."""

import pytest

from repro.core.packet import Packet


def test_fields():
    p = Packet("f", 1500, arrival_time=2.5, seqno=3, payload={"k": 1})
    assert p.flow_id == "f"
    assert p.length == 1500
    assert p.arrival_time == 2.5
    assert p.seqno == 3
    assert p.payload == {"k": 1}


def test_uids_unique():
    uids = {Packet("f", 1).uid for _ in range(100)}
    assert len(uids) == 100


@pytest.mark.parametrize("length", [0, -5])
def test_nonpositive_length_rejected(length):
    with pytest.raises(ValueError):
        Packet("f", length)


def test_identity_equality():
    a = Packet("f", 10)
    b = Packet("f", 10)
    assert a == a
    assert a != b
    assert hash(a) != hash(b)


def test_usable_in_sets_and_dicts():
    a, b = Packet("f", 10), Packet("f", 10)
    s = {a, b}
    assert len(s) == 2
    d = {a: 1, b: 2}
    assert d[a] == 1 and d[b] == 2


def test_repr_is_informative():
    p = Packet("voice", 512, arrival_time=1.0, seqno=7)
    r = repr(p)
    assert "voice" in r and "512" in r and "seq=7" in r
