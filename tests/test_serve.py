"""Tests for repro.serve: the crash-tolerant long-lived service mode.

Covers the ServiceRunner's streaming loop, the chained service digest,
mid-run reconfiguration commands, the supervisor's bounded
restart/backoff schedule, the stall watchdog, invariant-violation
quarantine with crash escalation, and the kill/recover soak harness's
digest-identity verdict.  Checkpoint *file* defects (truncation,
corruption, version skew) live in ``test_serve_recovery.py``.
"""

import pytest

from repro.core.packet import Packet
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    InvariantViolation,
    ServiceCrash,
    ServiceStall,
)
from repro.obs import CallbackSink, DequeueEvent
from repro.serve import (
    DigestTrace,
    ServiceRunner,
    Supervisor,
    build_service_spec,
    run_soak,
    supervise,
)
from repro.serve.soak import InjectedKill


def small_spec(flows=4, rate=1e6, duration=0.5, seed=7):
    return build_service_spec(flows=flows, rate=rate, duration=duration,
                              seed=seed, waves=2)


# ----------------------------------------------------------------------
# DigestTrace
# ----------------------------------------------------------------------
class TestDigestTrace:
    def test_seeded_and_deterministic(self):
        a, b = DigestTrace(), DigestTrace()
        assert a.digest == b.digest
        assert a.rows == 0

    def test_snapshot_restore_resumes_chain(self):
        spec = small_spec()
        full = ServiceRunner(spec)
        full.run_to(0.5)
        assert full.trace.rows > 0

        head = ServiceRunner(spec)
        head.run_to(0.2)
        snap = head.trace.snapshot()
        resumed = DigestTrace()
        resumed.restore(snap)
        assert resumed.digest == head.trace.digest
        assert resumed.rows == head.trace.rows

    def test_last_active_tracks_flows(self):
        runner = ServiceRunner(small_spec())
        runner.run_to(0.3)
        active = runner.trace.last_active
        assert active and all(t <= runner.now for t in active.values())


# ----------------------------------------------------------------------
# Streaming loop determinism
# ----------------------------------------------------------------------
class TestStreamingLoop:
    def test_slice_boundaries_do_not_change_digest(self):
        """Serving in many small advances == one run_to: the digest is a
        property of the served schedule, not of how the loop was driven."""
        spec = small_spec()
        one = ServiceRunner(spec)
        one.run_to(0.5)

        many = ServiceRunner(spec)
        while many.now < 0.5:
            many.advance(0.01)
        assert many.digest == one.digest
        assert many.trace.rows == one.trace.rows

    def test_checkpoint_cadence_does_not_change_digest(self):
        spec = small_spec()
        plain = ServiceRunner(spec)
        plain.run_to(0.5)

        chatty = ServiceRunner(spec, checkpoint_every=0.03)
        chatty.run_to(0.5)
        assert chatty.digest == plain.digest
        assert chatty.checkpoints_written > 5

    def test_advance_negative_rejected(self):
        runner = ServiceRunner(small_spec())
        with pytest.raises(ConfigurationError):
            runner.advance(-0.1)

    def test_network_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceRunner({"kind": "network", "cell": "n"})

    def test_status_snapshot_is_live(self):
        runner = ServiceRunner(small_spec(), checkpoint_every=0.1)
        runner.run_to(0.4)
        status = runner.status()
        assert status["clock"] == runner.now
        assert status["rows"] == runner.trace.rows
        assert status["conservation_balanced"]
        assert status["checkpoints_written"] == runner.checkpoints_written
        assert "WF2Q+" in runner.metrics_report() or runner.metrics_report()

    def test_inject_external_packet(self):
        runner = ServiceRunner(small_spec())
        runner.run_to(0.1)
        assert runner.inject(Packet("f0000", 8000.0)) is True


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
class TestCommands:
    def test_set_share_mutates_live_and_spec(self):
        runner = ServiceRunner(small_spec())
        runner.run_to(0.1)
        runner.submit("set_share", flow="f0000", share=9)
        runner.run_to(0.2)
        assert dict(runner.spec["scheduler"]["flows"])["f0000"] == 9
        assert runner.link.scheduler._flows["f0000"].config.share == 9
        assert runner.commands_applied == 1

    def test_set_link_rate(self):
        runner = ServiceRunner(small_spec())
        runner.submit("set_link_rate", rate=2e6)
        runner.run_to(0.2)
        assert runner.spec["scheduler"]["rate"] == 2e6
        assert runner.link.rate == 2e6

    def test_attach_flow_and_source(self):
        runner = ServiceRunner(small_spec())
        runner.run_to(0.1)
        runner.submit("attach", flow="late", share=2)
        runner.submit("add_source", source={
            "type": "cbr", "flow": "late", "length": 8000.0,
            "rate": 1e5, "start": 0.0, "stop": 0.4})
        runner.run_to(0.5)
        assert "late" in runner.link.scheduler.flow_ids
        assert any(s["flow"] == "late" for s in runner.spec["sources"])
        # The past start time was clamped to the apply boundary.
        late = [s for s in runner.spec["sources"] if s["flow"] == "late"]
        assert late[0]["start"] >= 0.1
        assert runner.trace.last_active.get("late") is not None

    def test_detach_drains_then_removes(self):
        runner = ServiceRunner(small_spec())
        runner.run_to(0.1)
        runner.submit("detach", flow="f0000")
        runner.run_to(0.5)
        assert "f0000" not in runner.link.scheduler.flow_ids
        assert "f0000" in runner.spec["scheduler"]["detached"]
        assert not any(s["flow"] == "f0000" for s in runner.spec["sources"])
        assert "f0000" in runner.quarantined  # detach completion ledger
        # The id is retired: re-attaching (or feeding) it is refused.
        runner.submit("attach", flow="f0000", share=1)
        with pytest.raises(ConfigurationError):
            runner.apply_pending()
        runner.submit("add_source", source={
            "type": "cbr", "flow": "f0000", "length": 1000.0, "rate": 1e4})
        with pytest.raises(ConfigurationError):
            runner.apply_pending()

    def test_fault_command_must_be_future(self):
        runner = ServiceRunner(small_spec())
        runner.run_to(0.2)
        runner.submit("fault", time=0.1, fault_kind="link_rate", value=1e5)
        with pytest.raises(ConfigurationError):
            runner.apply_pending()

    def test_fault_command_applies_and_persists(self):
        runner = ServiceRunner(small_spec())
        runner.submit("fault", time=0.2, fault_kind="link_rate", value=5e5)
        runner.run_to(0.4)
        assert runner.link.rate == 5e5
        assert (0.2, "link_rate", None, 5e5) in runner.spec["faults"]

    def test_unknown_command_rejected(self):
        runner = ServiceRunner(small_spec())
        runner.submit("frobnicate")
        with pytest.raises(ConfigurationError):
            runner.apply_pending()

    def test_commands_survive_recovery(self, tmp_path):
        """Applied commands live in the effective spec, so a recovery
        rebuilds the post-command world without a command log."""
        spec = small_spec()
        runner = ServiceRunner(spec, checkpoint_dir=tmp_path,
                               checkpoint_every=0.05)
        runner.run_to(0.1)
        runner.submit("set_share", flow="f0001", share=7)
        runner.submit("set_link_rate", rate=3e6)
        runner.run_to(0.3)

        revived = ServiceRunner.recover(tmp_path, checkpoint_every=0.05)
        assert dict(revived.spec["scheduler"]["flows"])["f0001"] == 7
        assert revived.spec["scheduler"]["rate"] == 3e6
        assert revived.link.rate == 3e6
        revived.run_to(0.5)
        runner.run_to(0.5)
        assert revived.digest == runner.digest


# ----------------------------------------------------------------------
# Kill + recover == uninterrupted
# ----------------------------------------------------------------------
class TestRecoveryDigest:
    def test_recovered_digest_matches_uninterrupted(self, tmp_path):
        spec = small_spec()
        baseline = ServiceRunner(spec, checkpoint_every=0.05)
        baseline.run_to(0.5)

        victim = ServiceRunner(spec, checkpoint_dir=tmp_path,
                               checkpoint_every=0.05)
        victim.run_to(0.27)  # dies between checkpoint boundaries
        del victim

        survivor = ServiceRunner.recover(tmp_path, checkpoint_every=0.05)
        assert survivor.now < 0.27  # resumed from the last boundary
        assert survivor.recoveries == 1
        assert [e.category for e in survivor.incidents] == ["crash-recovered"]
        survivor.run_to(0.5)
        assert survivor.digest == baseline.digest
        assert survivor.trace.rows == baseline.trace.rows
        assert survivor.link.scheduler.conservation()["balanced"]

    def test_recover_empty_dir_raises_missing(self, tmp_path):
        with pytest.raises(CheckpointError) as err:
            ServiceRunner.recover(tmp_path / "nothing-here")
        assert err.value.reason == "missing"


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_restarts_with_exponential_backoff(self, tmp_path):
        spec = small_spec()
        sleeps = []
        kills = iter([0.18, 0.31])

        def work(runner):
            cut = next(kills, None)
            if cut is not None and runner.now < cut:
                runner.run_to(cut)
                raise InjectedKill(f"t={cut}")
            runner.run_to(0.5)
            return runner

        result, sup = supervise(
            spec, work, tmp_path, max_restarts=3, backoff=0.2,
            sleep=sleeps.append, checkpoint_every=0.05)
        assert sup.restarts == 2
        assert sleeps == [0.2, 0.4]  # backoff * 2**(restart-1)
        assert len(sup.failures) == 2
        assert result.now == 0.5

        uninterrupted = ServiceRunner(spec, checkpoint_every=0.05)
        uninterrupted.run_to(0.5)
        assert result.digest == uninterrupted.digest

    def test_exhausted_budget_wraps_in_service_crash(self):
        boom = RuntimeError("always dies")

        def work(_runner):
            raise boom

        sup = Supervisor(lambda: object(), lambda: object(),
                         max_restarts=2, backoff=0.1, sleep=lambda _s: None)
        with pytest.raises(ServiceCrash) as err:
            sup.run(work)
        assert err.value.__cause__ is boom
        assert sup.restarts == 2
        assert len(sup.failures) == 3  # initial + two retries

    def test_base_exceptions_pass_through(self):
        def work(_runner):
            raise KeyboardInterrupt

        sup = Supervisor(lambda: object(), lambda: object(),
                         sleep=lambda _s: None)
        with pytest.raises(KeyboardInterrupt):
            sup.run(work)
        assert sup.restarts == 0


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
class FakeWall:
    """A wall clock that leaps 1s per reading: every budget check after
    the first concludes the wall budget is spent."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestWatchdog:
    def _poisoned(self, stall_at, **opts):
        runner = ServiceRunner(small_spec(), stall_wall=0.5,
                               wall_clock=FakeWall(), **opts)

        def poison():
            runner.sim.schedule(stall_at, poison)

        runner.sim.schedule(stall_at, poison)
        return runner

    def test_stall_raises_after_wall_budget(self):
        runner = self._poisoned(0.2)
        with pytest.raises(ServiceStall):
            runner.run_to(0.5)
        assert runner.now == 0.2  # true progress point, not the horizon
        stalls = [e for e in runner.incidents if e.category == "stall"]
        assert len(stalls) == 1 and "0.2" in stalls[0].detail

    def test_progress_renews_the_budget(self):
        """A slow-but-progressing run exhausts many wall budgets yet never
        stalls: the watchdog only fires when simulated time is stuck."""
        runner = ServiceRunner(small_spec(), stall_wall=0.5,
                               wall_clock=FakeWall())
        runner.run_to(0.5)
        assert runner.now == 0.5
        assert not [e for e in runner.incidents if e.category == "stall"]


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
def tripwire(flow, after):
    """A sink raising an InvariantViolation naming ``flow`` once the
    service clock passes ``after`` — a stand-in for a real checker trip."""

    def fn(event):
        if (isinstance(event, DequeueEvent) and event.flow_id == flow
                and event.time >= after):
            raise InvariantViolation(
                "tripwire", f"injected violation on {flow}", event=event)

    return CallbackSink(fn)


class TestQuarantine:
    def test_offending_flow_quarantined_service_continues(self):
        incidents = []
        runner = ServiceRunner(small_spec(), checkpoint_every=0.05,
                               on_incident=incidents.append)
        runner.link.attach_observer(tripwire("f0001", 0.18))
        runner.run_to(0.5)

        categories = [e.category for e in incidents]
        assert categories.count("quarantine") == 1
        quarantine = next(e for e in incidents if e.category == "quarantine")
        assert quarantine.target == "f0001"
        assert "tripwire" in quarantine.detail
        # Blocklisted at ingress, sources dropped, eventually detached.
        assert runner.inject(Packet("f0001", 1000.0)) is False
        assert runner.status()["ingress_dropped"] == 1
        assert not any(s["flow"] == "f0001" for s in runner.spec["sources"])
        assert "f0001" in runner.quarantined
        assert "f0001" not in runner.link.scheduler.flow_ids
        # Everyone else kept being served past the violation point.
        assert runner.now == 0.5
        assert runner.trace.rows > 0
        assert runner.link.scheduler.conservation()["balanced"]

    def test_quarantined_run_equals_world_without_the_flow(self):
        """Rollback-and-replay-minus-flow: after the quarantine point the
        service behaves as a checkpoint-rebuilt world without the flow."""
        runner = ServiceRunner(small_spec(), checkpoint_every=0.05)
        runner.link.attach_observer(tripwire("f0001", 0.18))
        runner.run_to(0.5)
        assert "f0001" in runner.status()["ingress_blocked"]
        # The effective spec no longer feeds the flow; a recovery-shaped
        # rebuild from the live payload must agree with the survivor.
        resumed = ServiceRunner(runner._last_payload["spec"],
                                checkpoint_every=0.05,
                                _restore=runner._last_payload)
        resumed.run_to(0.5)
        assert resumed.digest == runner.digest

    def test_anonymous_violation_escalates_to_crash(self):
        def fn(event):
            if isinstance(event, DequeueEvent) and event.time >= 0.15:
                raise InvariantViolation("tripwire", "no flow named")

        runner = ServiceRunner(small_spec(), checkpoint_every=0.05)
        runner.link.attach_observer(CallbackSink(fn))
        with pytest.raises(ServiceCrash):
            runner.run_to(0.5)
        assert [e.category for e in runner.incidents] == ["crash"]

    def test_repeat_offender_escalates_to_crash(self):
        """A violation re-naming an already-blocked flow means the replay
        deterministically re-trips: crash, don't loop."""
        runner = ServiceRunner(small_spec(), checkpoint_every=0.05)
        runner.run_to(0.1)
        runner._blocked.add("f0000")
        event = DequeueEvent(0.1, "wf2q+", "f0000", 1, 1000.0, 0.0, 0.1,
                             0.101, 0.0, 0.001, 0.0, True, 0)
        with pytest.raises(ServiceCrash):
            runner._quarantine(
                InvariantViolation("tripwire", "again", event=event))


# ----------------------------------------------------------------------
# Soak harness
# ----------------------------------------------------------------------
class TestSoak:
    def test_soak_verdict_ok_and_digest_identical(self, tmp_path):
        result = run_soak(flows=8, duration=0.5, kills=3, seed=3,
                          idle_ttl=0.2, directory=tmp_path)
        assert result["ok"], result
        assert result["digest_baseline"] == result["digest_recovered"]
        assert result["rows_baseline"] == result["rows_recovered"] > 0
        assert result["restarts"] == 3
        assert len(result["kills"]) == 3
        # recoveries is checkpoint-persisted state: kills landing inside
        # one checkpoint interval collapse in the surviving lineage.
        assert 1 <= result["recoveries"] <= 3
        assert result["bad_incidents"] == []
        assert result["conservation_ok"]
        assert 0 < result["peak_live_flows"] <= result["flows"]

    def test_soak_rejects_unworkable_cadence(self):
        with pytest.raises(ValueError):
            run_soak(flows=4, duration=0.1, kills=1, checkpoint_every=0.06)
        with pytest.raises(ValueError):
            run_soak(flows=4, duration=0.5, kills=0)

    def test_build_service_spec_deterministic(self):
        assert build_service_spec(seed=5) == build_service_spec(seed=5)
        assert build_service_spec(seed=5) != build_service_spec(seed=6)
