"""Figure 6 — overloaded Poisson cross-traffic (scenario 2).

CS-n sources are off; PS-n sources send Poisson at 1.5x their guaranteed
rate, so they all become persistently backlogged.  Even with purely random
arrivals the maximum delay under H-WFQ remains larger than under H-WF2Q+,
and H-WF2Q+ keeps honouring its bound (guarantees are independent of other
sessions' behaviour — the whole point of worst-case fairness).
"""

from repro.analysis.bounds import hpfq_delay_bound
from repro.experiments import delay as exp

from benchmarks.conftest import run_once

DURATION = 10.0


def _run_both():
    return {
        policy: exp.run_delay_experiment(policy, scenario=2,
                                         duration=DURATION, seed=3)
        for policy in ("wf2qplus", "wfq")
    }


def test_fig6_delay_scenario2(benchmark, results_writer):
    traces = run_once(benchmark, _run_both)

    lines = ["# Figure 6: RT-1 delay vs time, scenario 2 (PS-n at 1.5x)",
             "# columns: arrival_time_s  delay_ms"]
    stats = {}
    for policy, trace in traces.items():
        series = trace.delays("RT-1")
        lines.append(f"## H-{policy}")
        lines.extend(f"{t:.4f} {1000 * d:.3f}" for t, d in series)
        delays = [d for _t, d in series]
        stats[policy] = (max(delays), sum(delays) / len(delays))
    for policy, (mx, mean) in stats.items():
        lines.append(f"H-{policy}: max={1000 * mx:.2f} mean={1000 * mean:.2f}")
    results_writer("fig6_delay_scenario2.txt", lines)

    spec = exp.build_fig3_spec()
    bound = float(hpfq_delay_bound(
        spec, "RT-1", exp.RT1_SIGMA, exp.FIG3_LINK_RATE,
        lambda n: exp.FIG3_PACKET_LENGTH))
    assert stats["wf2qplus"][0] <= bound + 1e-9
    assert stats["wfq"][0] >= stats["wf2qplus"][0]
