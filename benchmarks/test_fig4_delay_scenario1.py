"""Figure 4 — RT-1's absolute delay under H-WFQ vs H-WF2Q+ (scenario 1).

All sources send at their guaranteed average rates; only BE-1 is
persistently backlogged.  The paper's claims, asserted here:

* H-WFQ shows large periodic delay spikes (driven by the ~3 s beat between
  RT-1's 100 ms duty cycle and the CS trains' 193 ms period);
* H-WF2Q+'s delay stays below its Corollary 2 bound;
* H-WFQ's worst-case delay is substantially larger than H-WF2Q+'s.
"""

from repro.analysis.bounds import hpfq_delay_bound
from repro.experiments import delay as exp

from benchmarks.conftest import run_once

DURATION = 10.0


def _run_both():
    return {
        policy: exp.run_delay_experiment(policy, scenario=1,
                                         duration=DURATION)
        for policy in ("wf2qplus", "wfq")
    }


def test_fig4_delay_scenario1(benchmark, results_writer):
    traces = run_once(benchmark, _run_both)

    lines = ["# Figure 4: RT-1 delay vs time, scenario 1",
             "# columns: arrival_time_s  delay_ms"]
    stats = {}
    for policy, trace in traces.items():
        series = trace.delays("RT-1")
        lines.append(f"## H-{policy}")
        lines.extend(f"{t:.4f} {1000 * d:.3f}" for t, d in series)
        delays = [d for _t, d in series]
        stats[policy] = (max(delays), sum(delays) / len(delays))
    lines.append("# summary (max_ms, mean_ms)")
    for policy, (mx, mean) in stats.items():
        lines.append(f"H-{policy}: max={1000 * mx:.2f} mean={1000 * mean:.2f}")
    results_writer("fig4_delay_scenario1.txt", lines)

    spec = exp.build_fig3_spec()
    bound = float(hpfq_delay_bound(
        spec, "RT-1", exp.RT1_SIGMA, exp.FIG3_LINK_RATE,
        lambda n: exp.FIG3_PACKET_LENGTH))
    assert stats["wf2qplus"][0] <= bound + 1e-9, (
        f"H-WF2Q+ max delay {stats['wf2qplus'][0]} exceeds bound {bound}")
    assert stats["wfq"][0] > 1.3 * stats["wf2qplus"][0], (
        "H-WFQ's worst-case delay should dwarf H-WF2Q+'s")
