"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures: it runs the
experiment once under ``benchmark.pedantic`` (the simulations are seconds
long — repeating them hundreds of times would be pointless), asserts the
figure's qualitative shape, and writes the series it would plot to
``benchmarks/results/<name>.txt`` so the numbers are inspectable.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def results_writer():
    """Returns write(name, lines): dump a result series to results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(name, lines):
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "w") as fh:
            for line in lines:
                fh.write(str(line).rstrip() + "\n")
        return path

    return write


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
