"""Fault-injection machinery must be free when no plan is active.

The robustness layer added three things near the hot path: inline packet
validation in ``enqueue``, the drop-policy branches behind the buffer
caps, and the ``sync()`` hook.  None of them may tax a scheduler that has
no fault plan armed: this benchmark drives the saturated-churn workload
through the *current* WF2Q+ — with a :class:`FaultInjector` armed on an
empty :class:`FaultPlan` — and holds it within 5% of the seed-equivalent
control (the pre-instrumentation hot path from ``test_obs_overhead``).
"""

import time

from benchmarks.test_obs_overhead import (
    N_FLOWS,
    REPS,
    ROUNDS,
    SeedEquivalentWF2QPlus,
    make,
    saturated_churn,
)
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.faults import FaultInjector, FaultPlan
from repro.sim.engine import Simulator
from repro.sim.link import Link


def timed_run_with_armed_injector():
    sched = make(WF2QPlusScheduler)
    link = Link(Simulator(), sched)
    injector = FaultInjector(FaultPlan(), link).arm()  # zero actions
    t0 = time.perf_counter()
    saturated_churn(sched, N_FLOWS, ROUNDS)
    elapsed = time.perf_counter() - t0
    assert injector.applied == 0
    return elapsed


def timed_run_control():
    sched = make(SeedEquivalentWF2QPlus)
    t0 = time.perf_counter()
    saturated_churn(sched, N_FLOWS, ROUNDS)
    return time.perf_counter() - t0


def test_no_plan_fault_machinery_within_5_percent_of_seed(results_writer):
    # Same measurement discipline as the obs overhead gate: 5% relative
    # budget with a 100ns/packet absolute floor, interleaved best-of-REPS,
    # up to 3 rounds keeping running minima to ride out CI noise bursts.
    budget = lambda ctrl: 1.05 * ctrl + 100e-9 * ROUNDS
    timed_run_control()            # warm up both code paths
    timed_run_with_armed_injector()
    t_ctrl = t_fault = float("inf")
    for _attempt in range(3):
        for _ in range(REPS):
            t_ctrl = min(t_ctrl, timed_run_control())
            t_fault = min(t_fault, timed_run_with_armed_injector())
        if t_fault <= budget(t_ctrl):
            break
    results_writer("faults_overhead.txt", [
        "# fault machinery (no plan) vs seed-equivalent control",
        f"control   {t_ctrl:.6f} s  ({1e6 * t_ctrl / ROUNDS:.3f} us/pkt)",
        f"faults    {t_fault:.6f} s  ({1e6 * t_fault / ROUNDS:.3f} us/pkt)",
        f"ratio     {t_fault / t_ctrl:.4f}",
    ])
    assert t_fault <= budget(t_ctrl), (
        f"fault machinery with no plan costs {t_fault / t_ctrl:.3f}x the "
        f"seed control — validation/drop-policy branches are no longer free"
    )
