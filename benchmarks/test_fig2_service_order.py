"""Figure 2 — the GPS / WFQ / WF2Q(+) service-order timelines.

Regenerates the paper's canonical example exactly (unit packets, link rate
1, shares 0.5 + 10 x 0.05) and records every timeline.  Checks:

* WFQ transmits session 1's first ten packets back to back and punishes
  p_1^11 to the very end (inaccuracy ~ N/2 packets);
* WF2Q and WF2Q+ interleave session 1 with the other sessions and never
  deviate from the fluid GPS service by a full packet;
* the GPS reference finishes p_1^k at t = 2k and every p_j^1 at t = 20.
"""

from fractions import Fraction as Fr

from repro.core.wf2q import WF2QScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler
from repro.experiments.fig2 import (
    run_fig2,
    service_discrepancy_vs_gps,
)

from benchmarks.conftest import run_once


def test_fig2_timelines(benchmark, results_writer):
    out = run_once(benchmark, run_fig2,
                   [WFQScheduler, WF2QScheduler, WF2QPlusScheduler])

    lines = ["# Figure 2: service timelines (flow id per unit time slot)"]
    for name in ("WFQ", "WF2Q", "WF2Q+"):
        order = [fid for fid, _s, _f in out[name]]
        lines.append(f"{name:7s} {order}")
    lines.append("# GPS packet finish times")
    lines.append(f"GPS     {[(fid, str(t)) for fid, t in out['GPS']]}")

    wfq_err = service_discrepancy_vs_gps(out["WFQ"])
    wf2q_err = service_discrepancy_vs_gps(out["WF2Q"])
    wf2qp_err = service_discrepancy_vs_gps(out["WF2Q+"])
    lines.append("# max |W_packet - W_GPS| for session 1 (packets)")
    lines.append(f"WFQ={wfq_err} WF2Q={wf2q_err} WF2Q+={wf2qp_err}")
    results_writer("fig2_service_order.txt", lines)

    # Shape assertions (the paper's claims).
    wfq_order = [fid for fid, _s, _f in out["WFQ"]]
    assert wfq_order[:10] == [1] * 10
    assert wfq_order[20] == 1
    w2q_order = [fid for fid, _s, _f in out["WF2Q"]]
    assert w2q_order[0::2] == [1] * 11
    assert [fid for fid, _s, _f in out["WF2Q+"]] == w2q_order
    assert wfq_err >= Fr(4)            # ~N/2 packets of run-ahead
    assert wf2q_err <= Fr(1)           # within one packet of GPS
    assert wf2qp_err <= Fr(1)
