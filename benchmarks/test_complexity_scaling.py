"""The O(log N) complexity claim (paper contribution (c)).

Measures per-packet scheduling cost (enqueue + dequeue through a saturated
server) as the number of sessions N grows, via the :mod:`repro.bench`
harness (best-of-repeats wall-clock timing):

* WF2Q+'s cost grows ~logarithmically (heap operations only) — asserted
  as a *ratio* between the largest and smallest N, with a CI-safe margin:
  64x more flows must cost far less than 64x per packet;
* a busy-period boundary must cost O(1), not O(N): the bursty on/off
  workload's per-packet cost may not grow materially across a 64x sweep
  of the registered population;
* WFQ's *worst-case* cost is O(N): a single GPS advance can process O(N)
  session-empty events (surfaced with the all-sessions-drain-at-once
  workload; recorded, sanity-checked only).

The measured points are written both as plot series
(``benchmarks/results/complexity_*.txt``) and as a bench JSON document
(``benchmarks/results/BENCH_core.json``, same schema as the committed
repo-root baseline) so local runs can be diffed against it with
``python -m repro bench --compare``.

pytest-benchmark times the WF2Q+ steady-state path directly (the one
true micro-benchmark in the suite).
"""

import os
import time

from repro.bench import BenchPoint, format_table, save
from repro.bench.harness import best_of
from repro.bench.scenarios import bursty_cost, churn_cost
from repro.core.packet import Packet
from repro.core.scfq import SCFQScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SIZES = (16, 64, 256, 1024)


def make(cls, n_flows):
    sched = cls(rate=1e9)
    for f in range(n_flows):
        sched.add_flow(f, 1 + (f % 3))
    return sched


def _measure_sweep(cost_fn, label, **kwargs):
    """One BenchPoint per N in SIZES using the repro.bench drivers."""
    points = []
    for n in SIZES:
        cost = best_of(
            lambda: cost_fn(lambda: make(WF2QPlusScheduler, n), **kwargs),
            repeats=3)
        points.append(BenchPoint(label, "WF2Q+", {"flows": n},
                                 kwargs.get("packets", 0), cost))
    return points


def test_wf2qplus_scaling_is_sublinear(benchmark, results_writer):
    points = benchmark.pedantic(
        _measure_sweep, args=(churn_cost, "saturated_churn"),
        kwargs={"packets": 3000}, rounds=1, iterations=1, warmup_rounds=0)
    results_writer("complexity_wf2qplus.txt", [
        "# WF2Q+ per-packet cost vs N (nanoseconds)",
        *(f"{p.params['flows']:5d} {p.ns_per_packet:.3e}" for p in points),
    ])
    save(points, os.path.join(RESULTS_DIR, "BENCH_core.json"))
    print(format_table(points))
    # Ratio-based, CI-safe: 64x more flows must cost far less than 64x
    # per packet (log-ish growth; 8x leaves room for timer noise while
    # still failing hard on accidental O(N) behaviour).
    ratio = points[-1].ns_per_packet / points[0].ns_per_packet
    assert ratio < 8, (ratio, points)


def test_wf2qplus_busy_period_boundary_is_constant(benchmark,
                                                   results_writer):
    """Epoch-based lazy tag reset: boundaries cost O(1), not O(N).

    Each burst backlogs 8 of N registered flows and then drains, so every
    burst crosses a busy-period boundary.  With the old eager O(N) tag
    sweep the per-packet cost grew linearly in the *registered*
    population; with the epoch counter it must stay flat.
    """
    points = benchmark.pedantic(
        _measure_sweep, args=(bursty_cost, "bursty_onoff"),
        kwargs={"bursts": 150}, rounds=1, iterations=1, warmup_rounds=0)
    results_writer("complexity_bursty.txt", [
        "# WF2Q+ bursty on/off per-packet cost vs registered N (ns)",
        *(f"{p.params['flows']:5d} {p.ns_per_packet:.3e}" for p in points),
    ])
    # 64x more registered flows, same burst size: cost must not grow
    # materially (2.5x margin absorbs CI noise; O(N) would blow far past).
    ratio = points[-1].ns_per_packet / points[0].ns_per_packet
    assert ratio < 2.5, (ratio, points)


def test_wfq_busy_period_boundary_is_linear_in_n(benchmark, results_writer):
    """WFQ's GPS tracking pays O(N) at simultaneous session drains."""
    sizes = [16, 64, 256]
    rows = []

    def sweep():
        for n in sizes:
            sched = make(WFQScheduler, n)
            # All sessions get one packet; the GPS system then drains them
            # all at the same virtual instant -> one advance touches N
            # session-empty events.
            t0 = time.perf_counter()
            for f in range(n):
                sched.enqueue(Packet(f, 100.0), now=0.0)
            while not sched.is_empty:
                sched.dequeue()
            rows.append((n, time.perf_counter() - t0))

    benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    results_writer("complexity_wfq.txt", [
        "# WFQ whole-burst cost vs N (seconds)",
        *(f"{n:5d} {c:.3e}" for n, c in rows),
    ])
    # Just a sanity check that it completes and grows with N.
    assert rows[-1][1] > 0


def test_wf2qplus_steady_state_throughput(benchmark):
    """The headline micro-benchmark: WF2Q+ enqueue+dequeue at N=256."""
    sched = make(WF2QPlusScheduler, 256)
    for f in range(256):
        sched.enqueue(Packet(f, 100.0), now=0.0)

    def churn():
        rec = sched.dequeue()
        sched.enqueue(Packet(rec.flow_id, 100.0), now=rec.finish_time)

    benchmark(churn)


def test_scfq_steady_state_throughput(benchmark):
    """SCFQ is the O(1)-virtual-time baseline to compare against."""
    sched = make(SCFQScheduler, 256)
    for f in range(256):
        sched.enqueue(Packet(f, 100.0), now=0.0)

    def churn():
        rec = sched.dequeue()
        sched.enqueue(Packet(rec.flow_id, 100.0), now=rec.finish_time)

    benchmark(churn)
