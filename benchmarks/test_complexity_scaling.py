"""The O(log N) complexity claim (paper contribution (c)).

Measures per-packet scheduling cost (enqueue + dequeue through a saturated
server) as the number of sessions N grows:

* WF2Q+'s cost grows ~logarithmically (heap operations only);
* WFQ's *worst-case* cost is O(N): a single GPS advance can process O(N)
  session-empty events.  We surface that with the all-sessions-drain-at-
  once workload, where each busy-period boundary touches every session.

pytest-benchmark times the WF2Q+ steady-state path directly (this is the
one true micro-benchmark in the suite).
"""

import time

from repro.core.packet import Packet
from repro.core.scfq import SCFQScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler


def saturated_churn(sched, n_flows, rounds):
    """Keep every flow backlogged; one enqueue+dequeue per slot."""
    for f in range(n_flows):
        sched.enqueue(Packet(f, 100.0), now=0.0)
        sched.enqueue(Packet(f, 100.0), now=0.0)
    for k in range(rounds):
        rec = sched.dequeue()
        sched.enqueue(Packet(rec.flow_id, 100.0), now=rec.finish_time)
    while not sched.is_empty:
        sched.dequeue()


def make(cls, n_flows):
    sched = cls(rate=1e9)
    for f in range(n_flows):
        sched.add_flow(f, 1 + (f % 3))
    return sched


def measure_per_packet_cost(cls, sizes, rounds=3000):
    out = []
    for n in sizes:
        sched = make(cls, n)
        t0 = time.perf_counter()
        saturated_churn(sched, n, rounds)
        out.append((n, (time.perf_counter() - t0) / rounds))
    return out


def test_wf2qplus_scaling_is_sublinear(benchmark, results_writer):
    sizes = [16, 64, 256, 1024]
    costs = benchmark.pedantic(
        measure_per_packet_cost, args=(WF2QPlusScheduler, sizes),
        rounds=1, iterations=1, warmup_rounds=0)
    lines = ["# WF2Q+ per-packet cost vs N (seconds)",
             *(f"{n:5d} {c:.3e}" for n, c in costs)]
    results_writer("complexity_wf2qplus.txt", lines)
    # 64x more flows must cost far less than 64x per packet (log-ish).
    assert costs[-1][1] < 8 * costs[0][1], costs


def test_wfq_busy_period_boundary_is_linear_in_n(benchmark, results_writer):
    """WFQ's GPS tracking pays O(N) at simultaneous session drains."""
    sizes = [16, 64, 256]
    rows = []

    def sweep():
        for n in sizes:
            sched = make(WFQScheduler, n)
            # All sessions get one packet; the GPS system then drains them
            # all at the same virtual instant -> one advance touches N
            # session-empty events.
            t0 = time.perf_counter()
            for f in range(n):
                sched.enqueue(Packet(f, 100.0), now=0.0)
            while not sched.is_empty:
                sched.dequeue()
            rows.append((n, time.perf_counter() - t0))

    benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    results_writer("complexity_wfq.txt", [
        "# WFQ whole-burst cost vs N (seconds)",
        *(f"{n:5d} {c:.3e}" for n, c in rows),
    ])
    # Just a sanity check that it completes and grows with N.
    assert rows[-1][1] > 0


def test_wf2qplus_steady_state_throughput(benchmark):
    """The headline micro-benchmark: WF2Q+ enqueue+dequeue at N=256."""
    sched = make(WF2QPlusScheduler, 256)
    for f in range(256):
        sched.enqueue(Packet(f, 100.0), now=0.0)

    def churn():
        rec = sched.dequeue()
        sched.enqueue(Packet(rec.flow_id, 100.0), now=rec.finish_time)

    benchmark(churn)


def test_scfq_steady_state_throughput(benchmark):
    """SCFQ is the O(1)-virtual-time baseline to compare against."""
    sched = make(SCFQScheduler, 256)
    for f in range(256):
        sched.enqueue(Packet(f, 100.0), now=0.0)

    def churn():
        rec = sched.dequeue()
        sched.enqueue(Packet(rec.flow_id, 100.0), now=rec.finish_time)

    benchmark(churn)
