"""Figure 7 — overload plus constant-rate trains (scenario 3).

PS-n overloaded (Poisson at 1.5x) *and* CS-n trains on: the paper observes
that the effects of correlated sources are magnified under overload for
H-WFQ, while H-WF2Q+'s worst case "remains almost the same" across all
three scenarios thanks to worst-case fairness.
"""

from repro.analysis.bounds import hpfq_delay_bound
from repro.experiments import delay as exp

from benchmarks.conftest import run_once

DURATION = 10.0


def _run_all():
    out = {}
    for scenario in (1, 3):
        for policy in ("wf2qplus", "wfq"):
            out[(policy, scenario)] = exp.run_delay_experiment(
                policy, scenario=scenario, duration=DURATION, seed=3)
    return out


def test_fig7_delay_scenario3(benchmark, results_writer):
    traces = run_once(benchmark, _run_all)

    lines = ["# Figure 7: RT-1 delay vs time, scenario 3 (overload + CS)",
             "# columns: arrival_time_s  delay_ms"]
    stats = {}
    for (policy, scenario), trace in traces.items():
        delays = [d for _t, d in trace.delays("RT-1")]
        stats[(policy, scenario)] = max(delays)
        if scenario == 3:
            lines.append(f"## H-{policy}")
            lines.extend(
                f"{t:.4f} {1000 * d:.3f}" for t, d in trace.delays("RT-1"))
    lines.append("# max delay (ms) per (policy, scenario)")
    for key, mx in stats.items():
        lines.append(f"{key}: {1000 * mx:.2f}")
    results_writer("fig7_delay_scenario3.txt", lines)

    spec = exp.build_fig3_spec()
    bound = float(hpfq_delay_bound(
        spec, "RT-1", exp.RT1_SIGMA, exp.FIG3_LINK_RATE,
        lambda n: exp.FIG3_PACKET_LENGTH))
    # H-WF2Q+ honours its bound in every scenario and stays stable.
    assert stats[("wf2qplus", 3)] <= bound + 1e-9
    assert stats[("wf2qplus", 3)] <= 1.5 * stats[("wf2qplus", 1)]
    # H-WFQ is worse than H-WF2Q+ under combined overload + correlation.
    assert stats[("wfq", 3)] > stats[("wf2qplus", 3)]
