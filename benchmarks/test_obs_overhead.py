"""Observability must be free when unused: the hot-path overhead guard.

The event hooks added to ``PacketScheduler``/``WF2QPlusScheduler`` are a
single ``self._obs is not None`` test per emission site.  This benchmark
pins that contract: a WF2Q+ run with *no sink attached* must stay within
5% of a seed-equivalent control — the same algorithm with the emission
sites deleted outright.

The control subclass below carries verbatim pre-instrumentation bodies of
the three methods that gained emission sites (``enqueue``, ``dequeue``,
``_advance_virtual`` / busy-period reset in ``_on_enqueue``); everything
else is shared, so any measured gap is exactly the cost of the guards.
"""

import time

from repro.core.packet import Packet
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.errors import EmptySchedulerError


def saturated_churn(sched, n_flows, rounds):
    """Keep every flow backlogged; one enqueue+dequeue per slot (the
    complexity benchmark's steady-state workload)."""
    for f in range(n_flows):
        sched.enqueue(Packet(f, 100.0), now=0.0)
        sched.enqueue(Packet(f, 100.0), now=0.0)
    for _ in range(rounds):
        rec = sched.dequeue()
        sched.enqueue(Packet(rec.flow_id, 100.0), now=rec.finish_time)
    while not sched.is_empty:
        sched.dequeue()


N_FLOWS = 64
ROUNDS = 20000
REPS = 5  # interleaved best-of-REPS; min absorbs scheduler jitter


class SeedEquivalentWF2QPlus(WF2QPlusScheduler):
    """WF2Q+ exactly as it was before instrumentation: no ``_obs`` tests."""

    name = "WF2Q+-seed"

    def enqueue(self, packet, now=None):
        if now is None:
            now = packet.arrival_time
        if now is None:
            now = self._clock
        if now < self._clock:
            raise ValueError(
                f"enqueue time {now!r} precedes scheduler clock {self._clock!r}"
            )
        if packet.arrival_time is None:
            packet.arrival_time = now
        state = self._flow(packet.flow_id)
        self._clock = now
        limit = self._buffer_limits.get(packet.flow_id)
        if limit is not None and len(state.queue) >= limit:
            self._drops[packet.flow_id] = self._drops.get(packet.flow_id, 0) + 1
            return False
        was_idle = self.is_empty
        was_flow_empty = not state.queue
        state.queue.append(packet)
        state.bits_queued += packet.length
        self._backlog_packets += 1
        self._backlog_bits += packet.length
        self._enqueues += 1
        if was_idle:
            self._free_at = max(self._free_at, now)
        self._on_enqueue(state, packet, now, was_flow_empty, was_idle)
        return True

    def dequeue(self, now=None):
        if self.is_empty:
            raise EmptySchedulerError(f"{self.name}: dequeue on empty scheduler")
        if now is None:
            now = max(self._clock, self._free_at)
        if now < self._clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {self._clock!r}"
            )
        self._clock = now
        state = self._select_flow(now)
        packet = state.queue.popleft()
        state.bits_queued -= packet.length
        self._backlog_packets -= 1
        self._backlog_bits -= packet.length
        self._dequeues += 1
        finish = now + packet.length / self.rate
        self._free_at = finish
        record = self._make_record(state, packet, now, finish)
        self._on_dequeued(state, packet, now)
        if self.is_empty:
            self._on_system_empty(now)
        return record

    def _advance_virtual(self, now, floor=True):
        tau = now - self._virtual_stamp
        v = self._virtual + tau
        if floor and self._starts:
            min_start = self._starts.min_key()
            if min_start > v:
                v = min_start
        self._virtual = v
        self._virtual_stamp = now

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        if was_idle and now >= self._free_at:
            self._virtual = 0
            self._virtual_stamp = now
            for st in self._flows.values():
                st.start_tag = 0
                st.finish_tag = 0
        if was_flow_empty:
            self._advance_virtual(now, floor=False)
            self._set_head_tags(state, True, now)


def make(cls):
    sched = cls(rate=1e9)
    for f in range(N_FLOWS):
        sched.add_flow(f, 1 + (f % 3))
    return sched


def timed_run(cls):
    sched = make(cls)
    t0 = time.perf_counter()
    saturated_churn(sched, N_FLOWS, ROUNDS)
    return time.perf_counter() - t0


def test_unobserved_hot_path_within_5_percent_of_seed(results_writer):
    # 5% relative budget with a 100ns/packet absolute floor.  Interleaved
    # best-of-REPS runs absorb per-run jitter; up to 3 measurement rounds
    # (keeping the running minima) absorb machine-level noise bursts, so a
    # loaded CI runner cannot fail a hot path that is genuinely free.
    budget = lambda ctrl: 1.05 * ctrl + 100e-9 * ROUNDS
    timed_run(WF2QPlusScheduler)  # warm-up both code paths
    timed_run(SeedEquivalentWF2QPlus)
    t_ctrl = t_obs = float("inf")
    for _attempt in range(3):
        for _ in range(REPS):
            t_ctrl = min(t_ctrl, timed_run(SeedEquivalentWF2QPlus))
            t_obs = min(t_obs, timed_run(WF2QPlusScheduler))
        if t_obs <= budget(t_ctrl):
            break
    per_packet = t_obs / ROUNDS
    results_writer("obs_overhead.txt", [
        "# unobserved hot-path overhead vs seed-equivalent control",
        f"control      {t_ctrl:.6f} s  ({1e6 * t_ctrl / ROUNDS:.3f} us/pkt)",
        f"instrumented {t_obs:.6f} s  ({1e6 * per_packet:.3f} us/pkt)",
        f"ratio        {t_obs / t_ctrl:.4f}",
    ])
    assert t_obs <= budget(t_ctrl), (
        f"unobserved hot path is {t_obs / t_ctrl:.3f}x the seed-equivalent "
        f"control ({1e6 * per_packet:.3f} us/pkt) — emission guards are no "
        f"longer free"
    )


def test_events_flow_once_a_sink_attaches():
    """Sanity: the same workload with a sink attached does emit events."""
    from repro.obs.sinks import MetricsSink

    sched = make(WF2QPlusScheduler)
    metrics = MetricsSink()
    sched.attach_observer(metrics)
    saturated_churn(sched, N_FLOWS, 500)
    assert metrics.total("dequeues") == 500 + 2 * N_FLOWS
