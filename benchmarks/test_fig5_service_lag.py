"""Figure 5 — RT-1's cumulative arrival vs service curves (service lag).

A close-up of the Figure 4 spikes: under H-WF2Q+ the service curve hugs
the arrival curve; under H-WFQ they separate by several packets while other
traffic that ran ahead is caught up with.
"""

from repro.analysis.lag import max_service_lag, service_lag_series
from repro.experiments import delay as exp

from benchmarks.conftest import run_once

DURATION = 10.0


def _run_both():
    return {
        policy: exp.run_delay_experiment(policy, scenario=1,
                                         duration=DURATION)
        for policy in ("wf2qplus", "wfq")
    }


def test_fig5_service_lag(benchmark, results_writer):
    traces = run_once(benchmark, _run_both)

    lines = ["# Figure 5: RT-1 service lag (arrived - served, packets)",
             "# columns: time_s  lag_packets"]
    lags = {}
    for policy, trace in traces.items():
        series = service_lag_series(trace, "RT-1")
        lines.append(f"## H-{policy}")
        lines.extend(f"{t:.4f} {lag}" for t, lag in series)
        lags[policy] = max_service_lag(trace, "RT-1")
    lines.append(f"# max lag: wf2qplus={lags['wf2qplus']} wfq={lags['wfq']}")
    results_writer("fig5_service_lag.txt", lines)

    # Both are bounded by the burst size; H-WFQ's lag is at least as bad
    # and the arrival/service curves close (lag returns to 0) every cycle.
    assert lags["wfq"] >= lags["wf2qplus"]
    series = service_lag_series(traces["wf2qplus"], "RT-1")
    assert any(lag == 0 for _t, lag in series[-20:])
