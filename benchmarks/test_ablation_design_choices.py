"""Ablations of WF2Q+'s two design elements (DESIGN.md's 'key decisions').

Runs the Figure 2 worst-case workload under the full algorithm and the two
ablated variants and records the measured B-WFI:

* removing the **eligibility test** (SEFF -> SFF) reintroduces the Figure 2
  run-ahead burst: B-WFI jumps from ~1 packet to ~N/2 packets;
* removing the **min-S virtual-time floor** leaves worst-case fairness in
  this workload but distorts the tag a newly backlogged session receives
  (and requires a work-conservation fallback in the scheduler), which shows
  up as a larger measured B-WFI on the idle/return workload.
"""

from repro.analysis.wfi import empirical_bwfi
from repro.core.ablation import NoEligibilityWF2QPlus, NoFloorWF2QPlus
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import TraceSource

from benchmarks.conftest import run_once

VARIANTS = [WF2QPlusScheduler, NoEligibilityWF2QPlus, NoFloorWF2QPlus]
N = 21


def fig2_bwfi(cls):
    sched = cls(1.0)
    sched.add_flow(1, 0.5)
    for j in range(2, N + 1):
        sched.add_flow(j, 0.5 / (N - 1))
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    TraceSource(1, [0.0] * N, 1.0).attach(sim, link).start()
    for j in range(2, N + 1):
        TraceSource(j, [0.0], 1.0).attach(sim, link).start()
    sim.run(until=20.0 * N)
    return empirical_bwfi(trace, 1, 0.5)


def idle_return_bwfi(cls):
    """A session idles while another runs, then returns with a burst."""
    sched = cls(1.0)
    sched.add_flow("r", 0.5)
    sched.add_flow("bg", 0.5)
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    TraceSource("bg", [0.0] * 60, 1.0).attach(sim, link).start()
    TraceSource("r", [0.0] * 4 + [30.0] * 8, 1.0).attach(sim, link).start()
    sim.run(until=200.0)
    return empirical_bwfi(trace, "bg", 0.5)


def run_all():
    return {
        cls.name: (fig2_bwfi(cls), idle_return_bwfi(cls))
        for cls in VARIANTS
    }


def test_ablation_design_choices(benchmark, results_writer):
    results = run_once(benchmark, run_all)
    lines = ["# B-WFI (packets) per variant",
             "# variant            fig2-burst  idle-return"]
    for name, (burst, ret) in results.items():
        lines.append(f"{name:20s} {burst:10.3f} {ret:12.3f}")
    results_writer("ablation_design_choices.txt", lines)

    full_burst, full_ret = results["WF2Q+"]
    noseff_burst, _ = results["WF2Q+[no-SEFF]"]
    _, nofloor_ret = results["WF2Q+[no-floor]"]
    # The full algorithm is worst-case fair (~1 packet).
    assert full_burst <= 1.0 + 1e-6
    # Removing eligibility reintroduces the ~N/2 run-ahead.
    assert noseff_burst >= 4 * full_burst
    # Removing the floor harms the session that stayed (bg must wait while
    # the returner catches up from an understated start tag).
    assert nofloor_ret >= full_ret - 1e-9
