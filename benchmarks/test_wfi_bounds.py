"""Theorems 1-4 — measured WFI and delay against the closed forms.

Not a figure in the paper but the analytical backbone of Section 3: for
each one-level scheduler we measure the empirical B-WFI on the Figure 2
worst-case workload and on random backlog, and check

* WF2Q / WF2Q+ stay within the Theorem 3/4 value (independent of N),
* WFQ's and SCFQ's measured B-WFI grows ~linearly with N,
* the H-WF2Q+ session B-WFI stays within Theorem 1's weighted sum,
* every WFQ/WF2Q/WF2Q+ packet finishes within L_max/r of its GPS fluid
  finish (the Parekh-Gallager bound), with the GPS side computed by the
  batched :func:`~repro.analysis.fluid.fluid_finish_times` reference.
"""

from repro.analysis.bounds import hpfq_bwfi, wf2q_wfi
from repro.analysis.fluid import fluid_finish_times
from repro.analysis.wfi import empirical_bwfi
from repro.core.scfq import SCFQScheduler
from repro.core.wf2q import WF2QScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler
from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hierarchy import HPFQScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import TraceSource

from benchmarks.conftest import run_once


def fig2_like_trace(make_sched, n_sessions):
    """Session 1 (share 1/2) bursts n_sessions packets; the other
    n_sessions-1 sessions (sharing the other 1/2) send one packet each."""
    sched = make_sched()
    sched.add_flow(1, 0.5)
    small = 0.5 / (n_sessions - 1)
    for j in range(2, n_sessions + 1):
        sched.add_flow(j, small)
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    TraceSource(1, [0.0] * n_sessions, 1.0).attach(sim, link).start()
    for j in range(2, n_sessions + 1):
        TraceSource(j, [0.0], 1.0).attach(sim, link).start()
    sim.run(until=10.0 * n_sessions)
    return trace


def measure_all(sizes):
    out = {}
    for cls in (WFQScheduler, SCFQScheduler, WF2QScheduler,
                WF2QPlusScheduler):
        series = []
        for n in sizes:
            trace = fig2_like_trace(lambda: cls(1.0), n)
            series.append((n, empirical_bwfi(trace, 1, 0.5)))
        out[cls.name] = series
    return out


def test_wfi_vs_n(benchmark, results_writer):
    sizes = [6, 11, 21, 41]
    measured = run_once(benchmark, measure_all, sizes)

    lines = ["# Empirical B-WFI of session 1 (bits == packets) vs N",
             "# N " + " ".join(f"{name:>8s}" for name in measured)]
    for i, n in enumerate(sizes):
        row = f"{n:3d} " + " ".join(
            f"{measured[name][i][1]:8.3f}" for name in measured)
        lines.append(row)
    theory = wf2q_wfi(1.0, 1.0, 0.5, 1.0)
    lines.append(f"# Theorem 3/4 value for WF2Q/WF2Q+: {theory}")
    results_writer("wfi_vs_n.txt", lines)

    # WF2Q/WF2Q+ flat in N and within the theorem (plus epsilon).
    for name in ("WF2Q", "WF2Q+"):
        for _n, alpha in measured[name]:
            assert alpha <= theory + 1e-6
    # WFQ grows ~linearly: quadrupling N must at least triple the WFI.
    wfq = dict(measured["WFQ"])
    assert wfq[41] >= 3 * wfq[11]
    # And WFQ at N=41 dwarfs WF2Q+ at N=41.
    w2qp = dict(measured["WF2Q+"])
    assert wfq[41] > 5 * max(w2qp[41], theory)


def test_gps_relative_delay_bound(benchmark, results_writer):
    """Packet finishes stay within L_max/r of the GPS fluid finishes.

    The Parekh-Gallager property (eq. (1): d_p <= d_p^GPS + L_max/r)
    holds for WFQ, WF2Q and WF2Q+ packet by packet.  The GPS side is the
    batched fluid reference — two busy periods, a 120-packet burst each —
    which would previously have meant driving ``GPSFluidSystem`` through
    every one of the ~360 packets per scheduler; the whole-trace path
    computes the same (bit-identical) tags from three cumsum groups, and
    the exact online system cross-checks it inside the test.
    """
    n_small = 30
    rate = 1.0
    flows = [(1, 0.5)] + [(j, 0.5 / n_small) for j in range(2, n_small + 2)]
    # Mixed packet sizes keep the packet/fluid quantisation gap nonzero
    # (uniform sizes make every excess land at exactly zero).
    lengths = {fid: 1.0 if fid == 1 else 2.5 for fid, _share in flows}
    l_max = max(lengths.values())
    bursts = [(0.0, 120), (400.0, 60)]  # (instant, session-1 packets)
    arrivals = []
    for when, n_big in bursts:
        arrivals.extend([(1, lengths[1], when)] * n_big)
        arrivals.extend((j, lengths[j], when) for j in range(2, n_small + 2))

    def run():
        out = {}
        for cls in (WFQScheduler, WF2QScheduler, WF2QPlusScheduler):
            sched = cls(rate)
            for flow_id, share in flows:
                sched.add_flow(flow_id, share)
            sim = Simulator()
            trace = ServiceTrace()
            link = Link(sim, sched, trace=trace)
            times = {}
            for flow_id, _share in flows:
                times[flow_id] = [when for when, n_big in bursts
                                  for _ in range(n_big if flow_id == 1
                                                 else 1)]
            for flow_id, schedule in times.items():
                TraceSource(flow_id, schedule, lengths[flow_id]).attach(
                    sim, link).start()
            sim.run(until=1200.0)
            out[cls.name] = trace
        return out

    traces = run_once(benchmark, run)
    gps = fluid_finish_times(flows, arrivals, rate)
    check = fluid_finish_times(flows, arrivals, rate, exact=True)
    assert [p.finish_time for p in gps] == [p.finish_time for p in check]
    gps_by_flow = {}
    for pkt in gps:
        gps_by_flow.setdefault(pkt.flow_id, []).append(pkt.finish_time)

    lines = ["# max (packet finish - GPS fluid finish), bound = L_max/r"
             f" = {l_max / rate}"]
    for name, trace in traces.items():
        worst = -float("inf")
        for flow_id, fluid_finishes in gps_by_flow.items():
            served = trace.services_of(flow_id)
            assert len(served) == len(fluid_finishes)
            # Both systems serve each flow FIFO, so k-th record pairs
            # with k-th fluid packet.
            for record, fluid_finish in zip(served, fluid_finishes):
                worst = max(worst, record.finish_time - fluid_finish)
        lines.append(f"{name:8s} max_excess={worst:.6f}")
        assert worst <= l_max / rate + 1e-9
        assert worst > 0.0  # the workload genuinely exercises the bound
    results_writer("gps_relative_delay.txt", lines)


def test_hierarchical_wfi_theorem1(benchmark, results_writer):
    """Measured session B-WFI in a 3-level H-WF2Q+ stays within the
    Theorem 1 weighted sum of per-node WFIs."""
    spec = HierarchySpec(node("root", 1, [
        node("n2", 1, [
            node("n1", 3, [leaf("i", 1), leaf("s1", 1)]),
            leaf("s2", 1),
        ]),
        leaf("s3", 1),
    ]))

    def run():
        sched = HPFQScheduler(spec, 1.0, policy="wf2qplus")
        sim = Simulator()
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace)
        for name in ("i", "s1", "s2", "s3"):
            TraceSource(name, [0.0] * 120, 1.0).attach(sim, link).start()
        sim.run(until=600.0)
        return trace

    trace = run_once(benchmark, run)
    r_i = float(spec.guaranteed_rate("i", 1.0))
    alpha = empirical_bwfi(trace, "i", r_i)
    bound = float(hpfq_bwfi(spec, "i", 1.0, lambda n: 1.0))
    results_writer("wfi_hierarchical.txt", [
        "# 3-level H-WF2Q+ B-WFI for leaf 'i'",
        f"measured={alpha:.4f} theorem1_bound={bound:.4f} r_i={r_i:.4f}",
    ])
    assert alpha <= bound + 1e-6
