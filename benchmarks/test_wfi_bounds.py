"""Theorems 1-4 — measured WFI and delay against the closed forms.

Not a figure in the paper but the analytical backbone of Section 3: for
each one-level scheduler we measure the empirical B-WFI on the Figure 2
worst-case workload and on random backlog, and check

* WF2Q / WF2Q+ stay within the Theorem 3/4 value (independent of N),
* WFQ's and SCFQ's measured B-WFI grows ~linearly with N,
* the H-WF2Q+ session B-WFI stays within Theorem 1's weighted sum.
"""

from repro.analysis.bounds import hpfq_bwfi, wf2q_wfi
from repro.analysis.wfi import empirical_bwfi
from repro.core.scfq import SCFQScheduler
from repro.core.wf2q import WF2QScheduler
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.core.wfq import WFQScheduler
from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hierarchy import HPFQScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import TraceSource

from benchmarks.conftest import run_once


def fig2_like_trace(make_sched, n_sessions):
    """Session 1 (share 1/2) bursts n_sessions packets; the other
    n_sessions-1 sessions (sharing the other 1/2) send one packet each."""
    sched = make_sched()
    sched.add_flow(1, 0.5)
    small = 0.5 / (n_sessions - 1)
    for j in range(2, n_sessions + 1):
        sched.add_flow(j, small)
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    TraceSource(1, [0.0] * n_sessions, 1.0).attach(sim, link).start()
    for j in range(2, n_sessions + 1):
        TraceSource(j, [0.0], 1.0).attach(sim, link).start()
    sim.run(until=10.0 * n_sessions)
    return trace


def measure_all(sizes):
    out = {}
    for cls in (WFQScheduler, SCFQScheduler, WF2QScheduler,
                WF2QPlusScheduler):
        series = []
        for n in sizes:
            trace = fig2_like_trace(lambda: cls(1.0), n)
            series.append((n, empirical_bwfi(trace, 1, 0.5)))
        out[cls.name] = series
    return out


def test_wfi_vs_n(benchmark, results_writer):
    sizes = [6, 11, 21, 41]
    measured = run_once(benchmark, measure_all, sizes)

    lines = ["# Empirical B-WFI of session 1 (bits == packets) vs N",
             "# N " + " ".join(f"{name:>8s}" for name in measured)]
    for i, n in enumerate(sizes):
        row = f"{n:3d} " + " ".join(
            f"{measured[name][i][1]:8.3f}" for name in measured)
        lines.append(row)
    theory = wf2q_wfi(1.0, 1.0, 0.5, 1.0)
    lines.append(f"# Theorem 3/4 value for WF2Q/WF2Q+: {theory}")
    results_writer("wfi_vs_n.txt", lines)

    # WF2Q/WF2Q+ flat in N and within the theorem (plus epsilon).
    for name in ("WF2Q", "WF2Q+"):
        for _n, alpha in measured[name]:
            assert alpha <= theory + 1e-6
    # WFQ grows ~linearly: quadrupling N must at least triple the WFI.
    wfq = dict(measured["WFQ"])
    assert wfq[41] >= 3 * wfq[11]
    # And WFQ at N=41 dwarfs WF2Q+ at N=41.
    w2qp = dict(measured["WF2Q+"])
    assert wfq[41] > 5 * max(w2qp[41], theory)


def test_hierarchical_wfi_theorem1(benchmark, results_writer):
    """Measured session B-WFI in a 3-level H-WF2Q+ stays within the
    Theorem 1 weighted sum of per-node WFIs."""
    spec = HierarchySpec(node("root", 1, [
        node("n2", 1, [
            node("n1", 3, [leaf("i", 1), leaf("s1", 1)]),
            leaf("s2", 1),
        ]),
        leaf("s3", 1),
    ]))

    def run():
        sched = HPFQScheduler(spec, 1.0, policy="wf2qplus")
        sim = Simulator()
        trace = ServiceTrace()
        link = Link(sim, sched, trace=trace)
        for name in ("i", "s1", "s2", "s3"):
            TraceSource(name, [0.0] * 120, 1.0).attach(sim, link).start()
        sim.run(until=600.0)
        return trace

    trace = run_once(benchmark, run)
    r_i = float(spec.guaranteed_rate("i", 1.0))
    alpha = empirical_bwfi(trace, "i", r_i)
    bound = float(hpfq_bwfi(spec, "i", 1.0, lambda n: 1.0))
    results_writer("wfi_hierarchical.txt", [
        "# 3-level H-WF2Q+ B-WFI for leaf 'i'",
        f"measured={alpha:.4f} theorem1_bound={bound:.4f} r_i={r_i:.4f}",
    ])
    assert alpha <= bound + 1e-6
