"""Figure 9 — hierarchical link sharing: measured vs ideal H-GPS bandwidth.

The Figure 8 hierarchy runs 11 TCP sessions plus one scripted on/off source
per level.  For each interval between on/off transitions the measured
bandwidth of TCP-{1,5,8,10,11} must track the ideal H-GPS allocation
(hierarchical waterfilling with the on/off sources capped at their peak),
and the step *directions* at the narrative's transitions must match
Section 5.2.
"""

import pytest

from repro.analysis.bandwidth import (
    exponential_average,
    mean_rate,
    throughput_series,
)
from repro.core.hgps import hierarchical_fair_rates
from repro.experiments import linksharing as exp

from benchmarks.conftest import run_once

DURATION = 10.0
WATCHED = ["TCP-1", "TCP-5", "TCP-8", "TCP-10", "TCP-11"]


def test_fig9_link_sharing(benchmark, results_writer):
    trace = run_once(benchmark, exp.run_linksharing, "wf2qplus",
                     duration=DURATION)
    spec = exp.build_fig8_spec()

    lines = ["# Figure 9: measured vs ideal bandwidth (Mbps)",
             "# interval  flow  measured  ideal"]
    errs = []
    for t1, t2, active, demands in exp.ideal_intervals(DURATION):
        ideal = hierarchical_fair_rates(spec, active, exp.FIG8_LINK_RATE,
                                        demands)
        m1 = t1 + 0.3 * (t2 - t1)  # skip the TCP adaptation transient
        for fid in WATCHED:
            measured = mean_rate(trace, fid, m1, t2)
            target = float(ideal[fid])
            errs.append(abs(measured - target) / target)
            lines.append(
                f"[{t1:5.2f},{t2:5.2f})  {fid:7s}  "
                f"{measured / 1e6:6.3f}  {target / 1e6:6.3f}"
            )
    mean_err = sum(errs) / len(errs)
    lines.append(f"# mean relative error {mean_err:.4f}  max {max(errs):.4f}")

    # The paper's Figure 9(a): 50 ms-window exponentially averaged curves.
    lines.append("# 50ms EMA bandwidth series (time_s rate_mbps)")
    for fid in WATCHED:
        series = exponential_average(
            throughput_series(trace, fid, bucket=0.05, until=DURATION))
        lines.append(f"## {fid}")
        lines.extend(f"{t:.3f} {v / 1e6:.4f}" for t, v in series)
    results_writer("fig9_link_sharing.txt", lines)

    # Shape assertions.
    assert mean_err < 0.10, f"measured curves diverge from ideal: {mean_err}"
    # Narrative step directions at t = 5 s (before 5.25 s).
    for fid, direction in (("TCP-5", +1), ("TCP-8", +1),
                           ("TCP-10", -1), ("TCP-11", -1)):
        before = mean_rate(trace, fid, 4.0, 5.0)
        after = mean_rate(trace, fid, 5.02, 5.24)
        assert (after - before) * direction > 0, (fid, before, after)
    # TCP-1 (level 1) is insulated from the t = 5 s reshuffle below N1.
    assert mean_rate(trace, "TCP-1", 5.02, 5.24) == pytest.approx(
        mean_rate(trace, "TCP-1", 4.0, 5.0), rel=0.1)
