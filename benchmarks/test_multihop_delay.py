"""End-to-end delay across H hops of WF2Q+ servers vs the network bound.

Extends the paper's per-hop guarantees with the classic Parekh-Gallager
network result: sweep the hop count, congest every hop with cross traffic,
and check the measured worst-case end-to-end delay of a shaped session
against ``sigma/r_i + (H-1) L/r_i + sum_h L/r_h``.
"""

from repro.analysis.bounds import end_to_end_delay_bound
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.traffic.source import CBRSource, TraceSource

from benchmarks.conftest import run_once

RATE = 10_000.0
PKT = 100.0
SIGMA = 3 * PKT          # 3-packet bursts
RHO = 1_000.0            # < r_i = 2500


def run_chain(hops):
    sim = Simulator()
    net = Network(sim)
    for h in range(hops):
        net.add_node(f"s{h}", WF2QPlusScheduler(RATE))
    path = [f"s{h}" for h in range(hops)]
    net.add_route("rt", path, share=1)           # r_i = RATE / 4
    for h in range(hops):
        cross = f"x{h}"
        net.add_route(cross, [f"s{h}"], share=3)
        CBRSource(cross, rate=0.95 * RATE, packet_length=PKT).attach(
            sim, net.entry(cross)).start()
    times = [0.3 * b for b in range(60) for _ in range(3)]
    TraceSource("rt", times, PKT).attach(sim, net.entry("rt")).start()
    sim.run(until=40.0)
    assert net.log.count("rt") == 180
    return net.log.max_delay("rt")


def sweep():
    out = []
    for hops in (1, 2, 4, 6):
        measured = run_chain(hops)
        bound = end_to_end_delay_bound(
            SIGMA, RATE / 4, PKT, [(PKT, RATE)] * hops)
        out.append((hops, measured, bound))
    return out


def test_multihop_delay_bound(benchmark, results_writer):
    rows = run_once(benchmark, sweep)
    lines = ["# hops  measured_max_ms  bound_ms"]
    for hops, measured, bound in rows:
        lines.append(f"{hops:4d} {1000 * measured:12.2f} {1000 * bound:10.2f}")
    results_writer("multihop_delay.txt", lines)
    for hops, measured, bound in rows:
        assert measured <= bound + 1e-9, (hops, measured, bound)
    # Delay grows with hops but stays bounded: the 6-hop worst case is
    # below the 6-hop bound yet above the 1-hop measurement.
    assert rows[-1][1] > rows[0][1]
