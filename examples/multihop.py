#!/usr/bin/env python
"""End-to-end guarantees across a chain of WF2Q+ switches.

Builds a 4-hop path where every hop is congested by local cross-traffic,
sends a leaky-bucket-shaped real-time flow end to end, and compares the
measured worst-case delay with the Parekh-Gallager network bound

    D <= sigma/r_i + (H-1) L/r_i + sum_h L/r_h.

Run:  python examples/multihop.py [hops]
"""

import sys

from repro.analysis.bounds import end_to_end_delay_bound
from repro.core.wf2qplus import WF2QPlusScheduler
from repro.sim import Network, Simulator
from repro.traffic import CBRSource, TraceSource
from repro.units import kilobytes, mbps


def main(hops=4):
    rate = mbps(10)
    pkt = kilobytes(1)
    sim = Simulator()
    net = Network(sim)
    for h in range(hops):
        net.add_node(f"switch{h}", WF2QPlusScheduler(rate),
                     propagation_delay=0.001)

    # The session under test: share 1 of 4 at every hop -> r_i = 2.5 Mbps.
    path = [f"switch{h}" for h in range(hops)]
    net.add_route("rt", path, share=1)
    # Each hop carries its own greedy cross-traffic (share 3 of 4).
    for h in range(hops):
        cross = f"cross{h}"
        net.add_route(cross, [f"switch{h}"], share=3)
        CBRSource(cross, rate=0.95 * rate,
                  packet_length=pkt).attach(sim, net.entry(cross)).start()

    # rt sends 3-packet bursts every 20 ms: sigma = 3 pkts, rho = 1.2 Mbps.
    times = [0.02 * b for b in range(200) for _ in range(3)]
    TraceSource("rt", times, pkt).attach(sim, net.entry("rt")).start()
    sim.run(until=6.0)

    r_i = rate / 4
    bound = end_to_end_delay_bound(
        sigma=3 * pkt, rate_i=r_i, l_i_max=pkt,
        hops=[(pkt, rate)] * hops, propagation=0.001 * hops)

    print(f"{hops}-hop chain, every hop congested by local cross traffic")
    print(f"  delivered        : {net.log.count('rt')} rt packets")
    print(f"  mean e2e delay   : {1000 * net.log.mean_delay('rt'):7.3f} ms")
    print(f"  worst e2e delay  : {1000 * net.log.max_delay('rt'):7.3f} ms")
    print(f"  network bound    : {1000 * bound:7.3f} ms")
    ok = net.log.max_delay("rt") <= bound
    print(f"  bound holds      : {ok}")
    print()
    print("Per-hop utilisation:")
    for h in range(hops):
        link = net.node(f"switch{h}")
        print(f"  switch{h}: {100 * link.utilization:.1f}%")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
