#!/usr/bin/env python
"""Hierarchical link sharing with TCP — the Figure 8/9 experiment.

Eleven TCP connections and four scripted on/off sources share a 10 Mbps
link through a four-level H-WF2Q+ hierarchy.  The script prints, for each
interval between on/off transitions, the bandwidth each examined TCP
session measured against the ideal H-GPS allocation (hierarchical
waterfilling), plus the step directions at the paper's narrative moments.

Run:  python examples/link_sharing.py [duration_seconds]
"""

import sys

from repro.analysis.bandwidth import mean_rate
from repro.core.hgps import hierarchical_fair_rates
from repro.experiments import linksharing as exp

WATCHED = ["TCP-1", "TCP-5", "TCP-8", "TCP-10", "TCP-11"]


def main(duration=10.0):
    print(f"Figure 8 hierarchy, H-WF2Q+, link "
          f"{exp.FIG8_LINK_RATE / 1e6:.0f} Mbps, duration {duration:.0f}s")
    print("on/off schedule:")
    for name, intervals in sorted(exp.ONOFF_SCHEDULE.items()):
        desc = ", ".join(
            f"[{a:g}s, {'...' if b is None else f'{b:g}s'})"
            for a, b in intervals)
        print(f"  {name}: on during {desc}")
    print()

    trace = exp.run_linksharing("wf2qplus", duration=duration)
    spec = exp.build_fig8_spec()

    print(f"{'interval':16s} " + " ".join(f"{f:>13s}" for f in WATCHED))
    errs = []
    for t1, t2, active, demands in exp.ideal_intervals(duration):
        ideal = hierarchical_fair_rates(spec, active, exp.FIG8_LINK_RATE,
                                        demands)
        m1 = t1 + 0.3 * (t2 - t1)
        cells = []
        for fid in WATCHED:
            measured = mean_rate(trace, fid, m1, t2)
            target = float(ideal[fid])
            errs.append(abs(measured - target) / target)
            cells.append(f"{measured / 1e6:5.2f}/{target / 1e6:5.2f}")
        print(f"[{t1:5.2f},{t2:5.2f})  " + " ".join(f"{c:>13s}" for c in cells))
    print(f"\ncells are measured/ideal Mbps; "
          f"mean relative error {sum(errs) / len(errs):.1%}")

    if duration > 5.3:
        print("\nstep directions at t=5s (paper Section 5.2):")
        for fid, expected in (("TCP-5", "up"), ("TCP-8", "up"),
                              ("TCP-10", "down"), ("TCP-11", "down")):
            before = mean_rate(trace, fid, 4.0, 5.0)
            after = mean_rate(trace, fid, 5.02, 5.24)
            got = "up" if after > before else "down"
            status = "ok" if got == expected else "MISMATCH"
            print(f"  {fid:7s} {before / 1e6:.2f} -> {after / 1e6:.2f} Mbps "
                  f"({got}, expected {expected}: {status})")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 10.0)
