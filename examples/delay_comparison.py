#!/usr/bin/env python
"""Delay comparison across H-PFQ policies — the Figures 4-7 experiment.

Runs the paper's Figure 3 hierarchy (a real-time on/off session RT-1 with a
9 Mbps guarantee, a backlogged best-effort sibling, ten constant/Poisson
sessions and ten packet-train sessions) under each hierarchical policy and
prints RT-1's delay statistics against the Corollary 2 bound.

Run:  python examples/delay_comparison.py [duration_seconds]
"""

import sys

from repro.analysis.bounds import hpfq_delay_bound
from repro.analysis.lag import max_service_lag
from repro.experiments import delay as exp


def main(duration=6.0):
    spec = exp.build_fig3_spec()
    bound = float(hpfq_delay_bound(
        spec, "RT-1", exp.RT1_SIGMA, exp.FIG3_LINK_RATE,
        lambda n: exp.FIG3_PACKET_LENGTH))

    print("Figure 3 hierarchy, scenario 1 "
          f"(duration {duration:.0f}s, link {exp.FIG3_LINK_RATE / 1e6:.0f} Mbps)")
    print(f"RT-1 guaranteed rate : {exp.RT1_GUARANTEED_RATE / 1e6:.1f} Mbps")
    print(f"Corollary 2 bound    : {1000 * bound:.2f} ms")
    print()
    header = f"{'policy':12s} {'max delay':>12s} {'mean delay':>12s} {'max lag':>9s}"
    print(header)
    print("-" * len(header))

    for policy in ("wf2qplus", "wfq", "scfq", "sfq"):
        trace = exp.run_delay_experiment(policy, scenario=1,
                                         duration=duration)
        delays = [d for _t, d in trace.delays("RT-1")]
        lag = max_service_lag(trace, "RT-1")
        marker = ""
        if policy == "wf2qplus":
            marker = "  <= bound" if max(delays) <= bound else "  BOUND VIOLATED"
        print(f"H-{policy:10s} {1000 * max(delays):9.2f} ms "
              f"{1000 * sum(delays) / len(delays):9.2f} ms "
              f"{lag:6d} pkt{marker}")

    print()
    print("Only H-WF2Q+ both honours the worst-case bound and keeps the")
    print("service lag at burst size; the SFF policies (H-WFQ, H-SCFQ,")
    print("H-SFQ) let other classes run ahead and pay it back in spikes.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 6.0)
