#!/usr/bin/env python
"""The scheduler zoo: one workload, every algorithm, side by side.

Replays the paper's Figure 2 workload (one 0.5-share session bursting
eleven packets against ten 0.05-share sessions) through every one-level
scheduler in the library, printing each service timeline, the measured
worst-case fairness (B-WFI), and the per-packet algorithmic cost — the
three axes of the paper's Section 3 comparison table.

Run:  python examples/scheduler_zoo.py
"""

import time

from repro import (
    DRRScheduler,
    FIFOScheduler,
    Packet,
    SCFQScheduler,
    SFQScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
)
from repro.analysis.wfi import empirical_bwfi
from repro.sim import Link, ServiceTrace, Simulator
from repro.traffic import TraceSource

SCHEDULERS = [
    FIFOScheduler,
    DRRScheduler,
    SCFQScheduler,
    SFQScheduler,
    WFQScheduler,
    WF2QScheduler,
    WF2QPlusScheduler,
]


def fig2_workload(cls):
    sched = cls(1.0) if cls is not DRRScheduler else cls(1.0, mtu=1.0)
    sched.add_flow(1, 0.5)
    for j in range(2, 12):
        sched.add_flow(j, 0.05)
    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    TraceSource(1, [0.0] * 11, 1.0).attach(sim, link).start()
    for j in range(2, 12):
        TraceSource(j, [0.0], 1.0).attach(sim, link).start()
    sim.run(until=50.0)
    return trace


def per_packet_cost(cls, n_flows=256, rounds=2000):
    sched = cls(1e9) if cls is not DRRScheduler else cls(1e9, mtu=100.0)
    for f in range(n_flows):
        sched.add_flow(f, 1 + f % 3)
    for f in range(n_flows):
        sched.enqueue(Packet(f, 100.0), now=0.0)
        sched.enqueue(Packet(f, 100.0), now=0.0)
    t0 = time.perf_counter()
    for _ in range(rounds):
        rec = sched.dequeue()
        sched.enqueue(Packet(rec.flow_id, 100.0), now=rec.finish_time)
    return (time.perf_counter() - t0) / rounds


def main():
    print("Figure 2 workload: session 1 (share .5) bursts 11 packets;")
    print("sessions 2-11 (share .05 each) send one packet each at t=0.\n")
    rows = []
    for cls in SCHEDULERS:
        trace = fig2_workload(cls)
        order = "".join(
            "#" if r.flow_id == 1 else "." for r in trace.services)
        bwfi = empirical_bwfi(trace, 1, guaranteed_rate=0.5)
        cost = per_packet_cost(cls)
        rows.append((cls.name, order, bwfi, cost))

    print(f"{'scheduler':9s} timeline (#=session 1, .=others)       "
          f"{'B-WFI':>7s} {'cost/pkt':>10s}")
    print("-" * 75)
    for name, order, bwfi, cost in rows:
        print(f"{name:9s} {order:38s} {bwfi:7.2f} {1e6 * cost:8.2f}us")

    print()
    print("Reading the table (the paper's Section 3 in one screen):")
    print(" * FIFO/DRR ignore or frame-round the shares;")
    print(" * WFQ serves session 1's burst back-to-back -> B-WFI ~ N/2;")
    print(" * SCFQ/SFQ are cheap but not worst-case fair either;")
    print(" * WF2Q and WF2Q+ interleave perfectly (B-WFI = 1 packet),")
    print("   and WF2Q+ achieves it without tracking the fluid GPS.")


if __name__ == "__main__":
    main()
