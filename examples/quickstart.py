#!/usr/bin/env python
"""Quickstart: schedule packets with WF2Q+ and build a small hierarchy.

Run:  python examples/quickstart.py
"""

from repro import (
    HierarchySpec,
    HPFQScheduler,
    Packet,
    WF2QPlusScheduler,
    leaf,
    node,
)
from repro.units import kilobytes, mbps


def one_level_demo():
    """A flat WF2Q+ server: voice gets 3x the share of bulk."""
    print("=== One-level WF2Q+ ===")
    sched = WF2QPlusScheduler(rate=mbps(10))
    sched.add_flow("voice", share=3)
    sched.add_flow("bulk", share=1)

    # Both flows burst 8 packets at t=0.
    for k in range(8):
        sched.enqueue(Packet("voice", kilobytes(1), seqno=k), now=0.0)
        sched.enqueue(Packet("bulk", kilobytes(1), seqno=k), now=0.0)

    print("service order:", " ".join(
        rec.flow_id for rec in sched.drain()))
    print("voice guaranteed rate: %.1f Mbps"
          % (sched.guaranteed_rate("voice") / 1e6))
    print()


def hierarchy_demo():
    """The paper's Figure 1 example: two agencies share a link; agency A
    splits its half between real-time and best-effort traffic."""
    print("=== H-WF2Q+ link sharing (Figure 1) ===")
    spec = HierarchySpec(node("link", 1, [
        node("agency-A", 50, [
            leaf("A-realtime", 30),
            leaf("A-besteffort", 20),
        ]),
        leaf("agency-B", 50),
    ]))
    sched = HPFQScheduler(spec, rate=mbps(10), policy="wf2qplus")

    for name in spec.leaf_names():
        rate = spec.guaranteed_rate(name, mbps(10))
        print(f"  {name:14s} guaranteed {float(rate) / 1e6:.1f} Mbps")

    # A-realtime is idle: its bandwidth stays inside agency A.
    for k in range(12):
        sched.enqueue(Packet("A-besteffort", kilobytes(1), seqno=k), now=0.0)
        sched.enqueue(Packet("agency-B", kilobytes(1), seqno=k), now=0.0)
    served = {"A-besteffort": 0, "agency-B": 0}
    for rec in sched.drain():
        if rec.finish_time <= 0.01:  # first 10 ms
            served[rec.flow_id] += 1
    print("with A-realtime idle, first 10 ms of service:", served)
    print("(A-besteffort inherits all of agency A's 50%, "
          "so the split is ~1:1, not 2:5)")
    print()


def delay_bound_demo():
    """Theorem 4: a leaky-bucket-constrained flow's delay is bounded by
    sigma/r_i + Lmax/r, no matter what the other flows do."""
    print("=== Delay bound (Theorem 4) ===")
    from repro.analysis.bounds import wf2q_delay_bound
    from repro.sim import Link, ServiceTrace, Simulator
    from repro.traffic import CBRSource, TraceSource

    rate = mbps(10)
    sched = WF2QPlusScheduler(rate)
    sched.add_flow("rt", share=1)    # guaranteed 2.5 Mbps
    sched.add_flow("hog1", share=2)
    sched.add_flow("hog2", share=1)

    sim = Simulator()
    trace = ServiceTrace()
    link = Link(sim, sched, trace=trace)
    # rt: bursts of 3 x 1KB packets every 10 ms (sigma = 3 packets,
    # rho = 2.4 Mbps < its 2.5 Mbps guarantee).
    burst = [0.01 * b for b in range(50) for _ in range(3)]
    TraceSource("rt", burst, kilobytes(1)).attach(sim, link).start()
    # The hogs flood far beyond their shares.
    CBRSource("hog1", rate=mbps(9), packet_length=kilobytes(1)).attach(sim, link).start()
    CBRSource("hog2", rate=mbps(9), packet_length=kilobytes(1)).attach(sim, link).start()
    sim.run(until=0.6)

    sigma = 3 * kilobytes(1)
    bound = wf2q_delay_bound(sigma, sched.guaranteed_rate("rt"),
                             kilobytes(1), rate)
    print(f"  worst rt delay : {1000 * trace.max_delay('rt'):.3f} ms")
    print(f"  Theorem 4 bound: {1000 * bound:.3f} ms")
    assert trace.max_delay("rt") <= bound
    print("  bound holds despite both hogs flooding the link")


if __name__ == "__main__":
    one_level_demo()
    hierarchy_demo()
    delay_bound_demo()
