"""A compact TCP Reno model for the link-sharing experiments (Section 5.2).

The paper drives its Figure 8/9 hierarchy with TCP sources: greedy,
ack-clocked senders that expand into whatever bandwidth link-sharing gives
their class and back off on loss.  :class:`TCPConnection` implements slow
start, congestion avoidance, fast retransmit / fast recovery (with NewReno
partial-ACK retransmission to avoid timeout storms) and a coarse
retransmission timer — enough fidelity for bandwidth-sharing dynamics, which
is what the experiment measures.

Loss happens at the bottleneck's per-flow drop-tail buffers
(:meth:`~repro.core.scheduler.PacketScheduler.set_buffer_limit`), never in
the model itself; the reverse (ACK) path is uncongested with a fixed delay,
as in the paper's single-bottleneck topology.
"""

from repro.tcp.reno import Demux, TahoeConnection, TCPConnection

__all__ = ["TCPConnection", "TahoeConnection", "Demux"]
