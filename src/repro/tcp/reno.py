"""TCP Reno sender/receiver over a single simulated bottleneck.

Topology per connection (the paper's Section 5.2 setup)::

    sender --(0 delay)--> [bottleneck Link / H-PFQ leaf] --+
       ^                                                   | delivery
       +-------------- ACK, feedback_delay <---- receiver -+

Segments are unit :class:`~repro.core.packet.Packet`\\ s whose ``payload``
is the segment index; cumulative ACKs flow back after ``feedback_delay``
seconds.  Congestion control:

* slow start (cwnd += 1 MSS per new ACK) below ``ssthresh``;
* congestion avoidance (cwnd += 1/cwnd) above it;
* fast retransmit on 3 duplicate ACKs, fast recovery with window inflation;
* NewReno partial-ACK handling (retransmit next hole, stay in recovery);
* a coarse exponential-backoff retransmission timer (SRTT/RTTVAR per RFC
  6298 with a configurable floor).

The connection deliberately omits byte sequencing, SACK, delayed ACKs and
Nagle: the experiments only need correct *bandwidth response* to the
scheduler's allocation.
"""

from repro.core.packet import Packet
from repro.errors import ConfigurationError

__all__ = ["TCPConnection", "Demux"]


class Demux:
    """Routes delivered packets to per-flow receivers.

    Install as a link's ``receiver``; register each TCP connection (or any
    callable) per flow id.  Packets of unregistered flows are counted and
    discarded (CBR/on-off traffic needs no receiver).
    """

    def __init__(self):
        self._sinks = {}
        self.unrouted = 0

    def register(self, flow_id, callback):
        self._sinks[flow_id] = callback

    def __call__(self, packet, now):
        sink = self._sinks.get(packet.flow_id)
        if sink is None:
            self.unrouted += 1
        else:
            sink(packet, now)


class TCPConnection:
    """One Reno sender + receiver pair across a bottleneck link.

    Parameters
    ----------
    flow_id:
        Leaf / flow id at the bottleneck scheduler.
    mss:
        Segment length in bits.
    feedback_delay:
        Seconds from the end of a segment's transmission at the bottleneck
        to the ACK's arrival back at the sender (propagation + receiver
        processing + reverse path).
    start_time:
        When the first segment is offered.
    initial_cwnd / initial_ssthresh:
        Segments; defaults 2 and 64.
    max_cwnd:
        Receiver-window cap in segments (None = uncapped).
    min_rto:
        Floor of the retransmission timer, seconds.
    """

    def __init__(self, flow_id, mss, feedback_delay, start_time=0.0,
                 initial_cwnd=2.0, initial_ssthresh=64.0, max_cwnd=None,
                 min_rto=0.2):
        if mss <= 0:
            raise ConfigurationError(f"mss must be positive, got {mss!r}")
        if feedback_delay < 0:
            raise ConfigurationError("feedback_delay must be >= 0")
        self.flow_id = flow_id
        self.mss = mss
        self.feedback_delay = feedback_delay
        self.start_time = start_time
        self.min_rto = min_rto
        self.max_cwnd = max_cwnd
        # -- sender state
        self.cwnd = initial_cwnd
        self.ssthresh = initial_ssthresh
        self.una = 0            # first unacknowledged segment
        self.next_seq = 0       # next new segment index
        self.dup_acks = 0
        self.in_recovery = False
        self.recover = 0        # NewReno recovery point
        self.srtt = None
        self.rttvar = None
        self.rto = 1.0
        self._rto_event = None
        self._backoff = 1
        self._send_times = {}   # seq -> first-send time (for RTT samples)
        # -- receiver state
        self.rcv_next = 0
        self._ooo = set()
        # -- stats
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.acked = 0
        # -- wiring
        self.sim = None
        self.link = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim, link, demux):
        """Bind to the simulator, bottleneck link, and delivery demux."""
        self.sim = sim
        self.link = link
        demux.register(self.flow_id, self._segment_delivered)
        return self

    def start(self):
        if self.sim is None:
            raise ConfigurationError("attach(sim, link, demux) before start()")
        self.sim.schedule(self.start_time, self._try_send)
        return self

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    @property
    def effective_window(self):
        window = self.cwnd
        if self.max_cwnd is not None:
            window = min(window, self.max_cwnd)
        return window

    def _try_send(self):
        """Emit new segments while the window allows."""
        while self.next_seq < self.una + int(self.effective_window):
            self._transmit(self.next_seq, new=True)
            self.next_seq += 1

    def _transmit(self, seq, new):
        now = self.sim.now
        packet = Packet(self.flow_id, self.mss, arrival_time=now,
                        seqno=self.segments_sent, payload=seq)
        self.segments_sent += 1
        if new:
            self._send_times[seq] = now
        else:
            self.retransmits += 1
            self._send_times.pop(seq, None)  # Karn: no sample on rexmit
        self.link.send(packet)  # drops are fine: loss is the feedback
        if self._rto_event is None:
            self._arm_rto()

    # ------------------------------------------------------------------
    # Receiver (runs at the far end; delivery time = bottleneck finish)
    # ------------------------------------------------------------------
    def _segment_delivered(self, packet, now):
        seq = packet.payload
        if seq == self.rcv_next:
            self.rcv_next += 1
            while self.rcv_next in self._ooo:
                self._ooo.discard(self.rcv_next)
                self.rcv_next += 1
        elif seq > self.rcv_next:
            self._ooo.add(seq)
        # Cumulative ACK for every received segment (no delayed ACKs).
        self.sim.schedule(now + self.feedback_delay, self._ack_arrived,
                          self.rcv_next)

    # ------------------------------------------------------------------
    # ACK processing (back at the sender)
    # ------------------------------------------------------------------
    def _ack_arrived(self, ackno):
        if ackno > self.una:
            self._new_ack(ackno)
        elif ackno == self.una and self.next_seq > self.una:
            self._duplicate_ack()
        self._try_send()

    def _new_ack(self, ackno):
        newly = ackno - self.una
        self.acked += newly
        # RTT sample from the oldest newly acked, first-transmission segment.
        for seq in range(self.una, ackno):
            sent = self._send_times.pop(seq, None)
            if sent is not None:
                self._rtt_sample(self.sim.now - sent)
        self.una = ackno
        self.dup_acks = 0
        self._backoff = 1
        if self.in_recovery:
            if ackno > self.recover:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.in_recovery = False
                self.cwnd = self.ssthresh
            else:
                # NewReno partial ACK: retransmit the next hole, stay in.
                self.cwnd = max(self.cwnd - newly + 1, 1.0)
                self._transmit(self.una, new=False)
        else:
            if self.cwnd < self.ssthresh:
                self.cwnd += newly            # slow start
            else:
                self.cwnd += newly / self.cwnd  # congestion avoidance
        if self.una == self.next_seq:
            self._cancel_rto()
        else:
            self._arm_rto()

    def _duplicate_ack(self):
        self.dup_acks += 1
        if self.in_recovery:
            self.cwnd += 1  # window inflation keeps the pipe full
        elif self.dup_acks == 3:
            # Fast retransmit.
            flight = self.next_seq - self.una
            self.ssthresh = max(flight / 2.0, 2.0)
            self.cwnd = self.ssthresh + 3
            self.in_recovery = True
            self.recover = self.next_seq
            self._transmit(self.una, new=False)
            self._arm_rto()

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------
    def _rtt_sample(self, rtt):
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = max(self.min_rto, self.srtt + 4.0 * self.rttvar)

    def _arm_rto(self):
        self._cancel_rto()
        self._rto_event = self.sim.schedule_in(
            self.rto * self._backoff, self._on_timeout
        )

    def _cancel_rto(self):
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_timeout(self):
        self._rto_event = None
        if self.una == self.next_seq:
            return  # everything acked meanwhile
        self.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_recovery = False
        self._backoff = min(self._backoff * 2, 64)
        self._transmit(self.una, new=False)
        self._arm_rto()

    # ------------------------------------------------------------------
    def __repr__(self):
        return (
            f"{type(self).__name__}({self.flow_id!r}, cwnd={self.cwnd:.2f}, "
            f"una={self.una}, sent={self.segments_sent})"
        )


class TahoeConnection(TCPConnection):
    """TCP Tahoe: fast retransmit without fast recovery.

    On the third duplicate ACK Tahoe retransmits, halves ssthresh, and
    drops straight back into slow start (cwnd = 1) — no window inflation,
    no NewReno partial-ACK logic.  Included as the older baseline: under
    identical link-sharing it underutilises its allocation relative to
    Reno after every loss episode.
    """

    def _duplicate_ack(self):
        self.dup_acks += 1
        if self.dup_acks == 3:
            self.ssthresh = max((self.next_seq - self.una) / 2.0, 2.0)
            self.cwnd = 1.0
            self.in_recovery = False
            self._transmit(self.una, new=False)
            self._arm_rto()
