"""An output link: the component that drives a scheduler in simulated time.

The :class:`Link` owns one :class:`~repro.core.scheduler.PacketScheduler`.
Sources push packets in with :meth:`Link.send`; whenever the transmitter is
idle and the scheduler backlogged, the link dequeues the scheduler's choice,
"transmits" it for ``length / rate`` seconds, then delivers it to the
``receiver`` callback (optionally after a fixed propagation delay) and asks
the scheduler for the next packet — i.e. the link is work-conserving.

Every completed transmission is appended to the attached
:class:`~repro.sim.monitor.ServiceTrace` (if any), which the analysis
modules consume.
"""

from repro.errors import SimulationError

__all__ = ["Link"]


class Link:
    """A transmitter paced at the scheduler's configured rate.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.engine.Simulator`.
    scheduler:
        Any :class:`~repro.core.scheduler.PacketScheduler`; its ``rate`` is
        the link speed.
    receiver:
        Optional callable ``receiver(packet, time)`` invoked when a packet
        has fully arrived at the far end.
    propagation_delay:
        Seconds added between transmission completion and delivery.
    trace:
        Optional :class:`~repro.sim.monitor.ServiceTrace` recording every
        transmission.
    """

    def __init__(self, sim, scheduler, receiver=None, propagation_delay=0.0,
                 trace=None):
        if propagation_delay < 0:
            raise SimulationError(
                f"propagation delay must be >= 0, got {propagation_delay!r}"
            )
        self.sim = sim
        self.scheduler = scheduler
        self.receiver = receiver
        self.propagation_delay = propagation_delay
        self.trace = trace
        self._transmitting = False
        self._bits_sent = 0
        self._packets_sent = 0
        self._packets_dropped = 0
        #: Optional callable ``drop_callback(packet, time)`` for tail drops.
        self.drop_callback = None

    @property
    def rate(self):
        return self.scheduler.rate

    # ------------------------------------------------------------------
    # Observability: a link's event stream is its scheduler's — arrivals,
    # drops, and transmissions all pass through enqueue/dequeue, so the
    # link simply forwards sink management to the scheduler.
    # ------------------------------------------------------------------
    def attach_observer(self, *sinks):
        """Subscribe sinks to this link's scheduler event stream."""
        return self.scheduler.attach_observer(*sinks)

    def detach_observer(self, sink=None):
        return self.scheduler.detach_observer(sink)

    @property
    def observer(self):
        return self.scheduler.observer

    @property
    def bits_sent(self):
        return self._bits_sent

    @property
    def packets_sent(self):
        return self._packets_sent

    @property
    def packets_dropped(self):
        return self._packets_dropped

    @property
    def utilization(self):
        """Fraction of elapsed simulation time spent transmitting."""
        if self.sim.now <= 0:
            return 0.0
        return self._bits_sent / (self.rate * self.sim.now)

    # ------------------------------------------------------------------
    def send(self, packet):
        """A packet arrives at the link's queueing point *now*.

        Returns False when a per-flow buffer cap drops the packet.
        """
        now = self.sim.now
        accepted = self.scheduler.enqueue(packet, now=now)
        if not accepted:
            self._packets_dropped += 1
            if self.drop_callback is not None:
                self.drop_callback(packet, now)
            return False
        if self.trace is not None:
            self.trace.record_arrival(packet, now)
        if not self._transmitting:
            self._start_next(now)
        return True

    def _start_next(self, now):
        record = self.scheduler.dequeue(now=now)
        self._transmitting = True
        self.sim.schedule(record.finish_time, self._finish, record, priority=-1)

    def _finish(self, record):
        now = self.sim.now
        self._bits_sent += record.packet.length
        self._packets_sent += 1
        if self.trace is not None:
            self.trace.record_service(record)
        self._transmitting = False
        if not self.scheduler.is_empty:
            self._start_next(now)
        if self.receiver is not None:
            if self.propagation_delay > 0:
                self.sim.schedule(now + self.propagation_delay,
                                  self.receiver, record.packet, now + self.propagation_delay)
            else:
                self.receiver(record.packet, now)

    def __repr__(self):
        return (
            f"Link(rate={self.rate!r}, sent={self._packets_sent}, "
            f"busy={self._transmitting})"
        )
