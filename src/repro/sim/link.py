"""An output link: the component that drives a scheduler in simulated time.

The :class:`Link` owns one :class:`~repro.core.scheduler.PacketScheduler`.
Sources push packets in with :meth:`Link.send`; whenever the transmitter is
idle and the scheduler backlogged, the link dequeues the scheduler's choice,
"transmits" it for ``length / rate`` seconds, then delivers it to the
``receiver`` callback (optionally after a fixed propagation delay) and asks
the scheduler for the next packet — i.e. the link is work-conserving.

Every completed transmission is appended to the attached
:class:`~repro.sim.monitor.ServiceTrace` (if any), which the analysis
modules consume.

Burst-drain fast path
---------------------
During a busy period the per-packet event round-trip (one
:class:`~repro.sim.engine.Event` allocation, one heap push, one heap pop,
one bound-method callback) is pure overhead: the link itself knows exactly
when each transmission ends.  When a transmission completes and the
scheduler is still backlogged, the link therefore *drains* consecutive
transmissions inline — advancing the clock with the simulator's bounded
:meth:`~repro.sim.engine.Simulator.advance_to` — for as long as each
computed finish time strictly precedes the earliest pending event (and the
run horizon).  The drain is unobservable by construction: no callback can
run inside the drained window, every dequeue happens at exactly the same
clock value as in the event-per-packet path, and the moment any consumer
needs event granularity (a receiver, an ``event_hook``, a simultaneous
event, a ``max_events`` budget, pause, or checkpointing's in-flight finish
handle) the link falls back to scheduling a real finish event.
``tests/test_sim_fastpath.py`` proves packet-for-packet equivalence.
"""

from repro.errors import SimulationError

__all__ = ["Link"]


class Link:
    """A transmitter paced at the scheduler's configured rate.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.engine.Simulator`.
    scheduler:
        Any :class:`~repro.core.scheduler.PacketScheduler`; its ``rate`` is
        the link speed.
    receiver:
        Optional callable ``receiver(packet, time)`` invoked when a packet
        has fully arrived at the far end.
    propagation_delay:
        Seconds added between transmission completion and delivery.
    trace:
        Optional :class:`~repro.sim.monitor.ServiceTrace` recording every
        transmission.
    burst_drain:
        Enable the event-eliding fast path (default True).  Disabling it
        forces the event-per-packet loop; the results are identical either
        way (the differential suite enforces this), so False is only
        useful for A/B timing and the equivalence tests themselves.
    packet_pool:
        Optional :class:`~repro.core.packet.PacketPool` shared with the
        traffic sources.  The link recycles each transmitted packet the
        moment nothing downstream can retain it — which requires no
        ``receiver``, and a ``trace`` that does not keep packet
        references (``trace.retains_packets`` false, e.g. the serve
        DigestTrace, or no trace at all).  When those conditions do not
        hold the pool is still used for tail drops with no
        ``drop_callback`` attached, and sources simply allocate fresh
        packets once the free list runs dry — pooling degrades to
        exactly today's behaviour, never to a dangling reference.
    """

    def __init__(self, sim, scheduler, receiver=None, propagation_delay=0.0,
                 trace=None, burst_drain=True, packet_pool=None):
        if propagation_delay < 0:
            raise SimulationError(
                f"propagation delay must be >= 0, got {propagation_delay!r}"
            )
        self.sim = sim
        self.scheduler = scheduler
        self.receiver = receiver
        self.propagation_delay = propagation_delay
        self.trace = trace
        self.burst_drain = burst_drain
        self.packet_pool = packet_pool
        #: The pool, when transmitted packets are provably unreferenced
        #: after their trace record is folded; None disables recycling.
        self._recycle = None
        if (packet_pool is not None and receiver is None
                and (trace is None
                     or not getattr(trace, "retains_packets", True))):
            self._recycle = packet_pool
        self._transmitting = False
        #: (ScheduledPacket, finish Event) while transmitting, else None.
        self._current = None
        #: True while administratively down (fault injection): the packet
        #: in flight completes, but no new transmission starts until
        #: :meth:`resume`.
        self._paused = False
        self._bits_sent = 0
        self._packets_sent = 0
        self._packets_dropped = 0
        #: Transmission time integrated per completed packet, immune to
        #: mid-run rate changes (unlike ``bits_sent / rate``).
        self._busy_time = 0.0
        #: Optional callable ``drop_callback(packet, time)`` for tail drops.
        self.drop_callback = None

    @property
    def rate(self):
        return self.scheduler.rate

    # ------------------------------------------------------------------
    # Observability: a link's event stream is its scheduler's — arrivals,
    # drops, and transmissions all pass through enqueue/dequeue, so the
    # link simply forwards sink management to the scheduler.
    # ------------------------------------------------------------------
    def attach_observer(self, *sinks):
        """Subscribe sinks to this link's scheduler event stream."""
        return self.scheduler.attach_observer(*sinks)

    def detach_observer(self, sink=None):
        return self.scheduler.detach_observer(sink)

    @property
    def observer(self):
        return self.scheduler.observer

    @property
    def bits_sent(self):
        return self._bits_sent

    @property
    def packets_sent(self):
        return self._packets_sent

    @property
    def packets_dropped(self):
        return self._packets_dropped

    @property
    def busy_time(self):
        """Seconds spent transmitting (completed packets only)."""
        return self._busy_time

    @property
    def utilization(self):
        """Fraction of elapsed simulation time spent transmitting.

        Busy time is integrated per transmission (each packet contributes
        its own ``finish - start``, at whatever rate it was sent), so the
        figure stays correct across mid-run :meth:`set_rate` changes —
        dividing lifetime ``bits_sent`` by the *current* rate would not.
        The packet in flight contributes its elapsed portion.
        """
        now = self.sim.now
        if now <= 0:
            return 0.0
        busy = self._busy_time
        if self._current is not None:
            record = self._current[0]
            if now > record.start_time:
                busy += min(now, record.finish_time) - record.start_time
        return busy / now

    # ------------------------------------------------------------------
    def send(self, packet):
        """A packet arrives at the link's queueing point *now*.

        Returns False when a per-flow buffer cap drops the packet.
        """
        now = self.sim.now
        accepted = self.scheduler.enqueue(packet, now=now)
        if not accepted:
            self._packets_dropped += 1
            if self.drop_callback is not None:
                self.drop_callback(packet, now)
            elif self.packet_pool is not None:
                # Tail-dropped and nothing retains it (obs drop events
                # carry the uid, not the object): straight back to the
                # free list.
                self.packet_pool.release(packet)
            return False
        if self.trace is not None:
            self.trace.record_arrival(packet, now)
        if not self._transmitting and not self._paused:
            # Always via a scheduled event here: send() runs inside some
            # other callback (a source emission), whose caller may read
            # the clock afterwards — the drain may only move the clock
            # from a callback that owns the rest of its event (_finish).
            self._start_next(now)
        return True

    def send_batch(self, packets):
        """A chunk of packets arrives at the queueing point *now*.

        Semantically identical to calling :meth:`send` per packet, but the
        chunk is handed to the scheduler's amortized
        :meth:`~repro.core.scheduler.PacketScheduler.enqueue_batch` and
        the arrival trace is appended in bulk.  Falls back to the
        per-packet loop whenever a packet could be rejected (buffer caps,
        a drop callback): batching only pays when every packet is
        accepted, and the drop bookkeeping is per-packet by nature.
        Returns the number of packets accepted.
        """
        scheduler = self.scheduler
        if self.drop_callback is not None or not scheduler.lossless:
            accepted = 0
            for packet in packets:
                if self.send(packet):
                    accepted += 1
            return accepted
        if not packets:
            return 0
        now = self.sim.now
        trace = self.trace
        if not self._transmitting and not self._paused:
            # Per-packet ``send`` semantics: the burst's first packet
            # starts transmitting *before* the rest is enqueued, so its
            # selection must not see the later arrivals.
            head, rest = packets[:1], packets[1:]
            accepted = scheduler.enqueue_batch(head, now=now)
            if trace is not None:
                trace.record_arrivals(head, now)
            self._start_next(now)
            if rest:
                accepted += scheduler.enqueue_batch(rest, now=now)
                if trace is not None:
                    trace.record_arrivals(rest, now)
            return accepted
        accepted = scheduler.enqueue_batch(packets, now=now)
        if trace is not None:
            trace.record_arrivals(packets, now)
        return accepted

    def _start_next(self, now):
        record = self.scheduler.dequeue(now=now)
        self._transmitting = True
        # pooled: the handle lives in _current, which _finish clears
        # before any other code can run — nothing survives the callback.
        event = self.sim.schedule(record.finish_time, self._finish, record,
                                  priority=-1, pooled=True)
        self._current = (record, event)

    def _finish(self, record):
        sim = self.sim
        now = sim.now
        self._current = None
        self._bits_sent += record.packet.length
        self._packets_sent += 1
        self._busy_time += now - record.start_time
        if self.trace is not None:
            self.trace.record_service(record)
        if self._recycle is not None:
            self._recycle.release(record.packet)
        self._transmitting = False
        if not self._paused and not self.scheduler.is_empty:
            if (self.burst_drain and self.receiver is None
                    and sim._inline_ok and sim.event_hook is None):
                self._drain(sim, now)
            else:
                self._start_next(now)
        if self.receiver is not None:
            if self.propagation_delay > 0:
                sim.schedule(now + self.propagation_delay,
                             self.receiver, record.packet,
                             now + self.propagation_delay, pooled=True)
            else:
                self.receiver(record.packet, now)

    def _drain(self, sim, now):
        """Transmit consecutive packets inline while no event intervenes.

        Runs inside the finish callback, so nothing else can execute in
        the drained window: the drain is bounded *strictly* below the
        earliest pending event (equal-time events keep their heap-ordered
        semantics by falling back to a real finish event) and weakly by
        the run horizon (an event at exactly ``until`` still fires).
        Every dequeue happens at exactly the same clock value as in the
        event-per-packet path, so tags, traces, and obs events are
        bit-identical.

        With no observer — or only *passive* sinks (see
        :class:`~repro.obs.sinks.Sink`) — the whole burst is handed to
        the scheduler's amortized
        :meth:`~repro.core.scheduler.PacketScheduler.drain_until` and the
        clock is advanced once over the chunk.  A non-passive sink is
        arbitrary user code that may touch the simulator mid-burst, so it
        keeps the packet-at-a-time loop with a validated
        :meth:`~repro.sim.engine.Simulator.advance_to` per packet.

        A scheduler with
        :attr:`~repro.core.scheduler.PacketScheduler.drain_chunk` set
        (directly, via a cell spec's ``chunk``, or by the
        :class:`~repro.obs.profile.ChunkAutotuner`) returns from
        ``drain_until`` every ``drain_chunk`` packets; the ``while True``
        here simply re-enters it from the last finish time, so the
        records accumulate and the billing below is unchanged.  Chunking
        therefore bounds kernel latency without affecting what is
        scheduled — the vector backends exploit this to keep their
        columnar batches cache-sized.
        """
        scheduler = self.scheduler
        obs = scheduler.observer
        if obs is not None and not obs.passive:
            self._drain_steps(sim, now, scheduler)
            return
        bound = sim.peek_time()
        horizon = sim._run_until
        # The drain stops *strictly* before the next event but only
        # *weakly* before the horizon, while drain_until's single limit
        # keeps the first packet whose finish merely reaches it.  Map the
        # tighter of the two onto that: when the event bound governs, its
        # crossing packet is exact; when the horizon governs, a packet
        # finishing exactly on it is in fact complete — handled below by
        # re-entering the drain (the outer while).
        if bound is None:
            limit = horizon
        elif horizon is None or bound <= horizon:
            limit = bound
        else:
            limit = horizon
        records = []
        try:
            while True:
                scheduler.drain_until(limit, now=now, into=records)
                last = records[-1]
                finish = last.finish_time
                if ((bound is not None and finish >= bound)
                        or (horizon is not None and finish > horizon)):
                    # Event granularity needed: the crossing packet goes
                    # back in flight with a real finish event.
                    records.pop()
                    self._transmitting = True
                    event = sim.schedule(finish, self._finish, last,
                                         priority=-1, pooled=True)
                    self._current = (last, event)
                    return
                if scheduler.is_empty:
                    return
                # Only reachable when the horizon cut the chunk at an
                # exactly-coincident finish: resume draining (the next
                # packet necessarily crosses).
                now = finish
        finally:
            # Everything left in `records` completed its transmission
            # inside the drained window — including a partially drained
            # chunk when a sink aborts mid-burst.
            if records:
                packets = len(records)
                bits = 0
                busy = 0.0
                for record in records:
                    bits += record.packet.length
                    busy += record.finish_time - record.start_time
                sim.advance_over(records[-1].finish_time, packets)
                self._bits_sent += bits
                self._packets_sent += packets
                self._busy_time += busy
                if self.trace is not None:
                    self.trace.record_services(records)
                recycle = self._recycle
                if recycle is not None:
                    for record in records:
                        recycle.release(record.packet)

    def _drain_steps(self, sim, now, scheduler):
        """Packet-at-a-time drain under a non-passive observer."""
        dequeue = scheduler.dequeue
        trace = self.trace
        recycle = self._recycle
        bound = sim.peek_time()
        horizon = sim._run_until
        # Obs sinks on this path are arbitrary user code (one could
        # schedule an event below the bound read above); advance_to
        # re-validates against the live heap and raises rather than
        # overtake it.
        advance = sim.advance_to
        packets = 0
        bits = 0
        busy = 0.0
        try:
            while True:
                record = dequeue(now=now)
                finish = record.finish_time
                if ((bound is not None and finish >= bound)
                        or (horizon is not None and finish > horizon)):
                    # Event granularity needed: back to the event loop.
                    self._transmitting = True
                    event = sim.schedule(finish, self._finish, record,
                                         priority=-1, pooled=True)
                    self._current = (record, event)
                    return
                advance(finish)
                now = finish
                bits += record.packet.length
                packets += 1
                busy += finish - record.start_time
                if trace is not None:
                    trace.record_service(record)
                if recycle is not None:
                    recycle.release(record.packet)
                if scheduler.is_empty:
                    return
        finally:
            self._bits_sent += bits
            self._packets_sent += packets
            self._busy_time += busy

    # ------------------------------------------------------------------
    # Fault injection: outage windows and live rate changes
    # ------------------------------------------------------------------
    @property
    def paused(self):
        return self._paused

    @property
    def current(self):
        """The :class:`ScheduledPacket` in flight, or None."""
        return self._current[0] if self._current is not None else None

    def pause(self):
        """Take the link down at packet granularity.

        The packet in flight (if any) finishes its transmission — its
        finish time was a contract with the scheduler's tag arithmetic —
        but no new transmission starts until :meth:`resume`.  Arrivals
        keep queueing (and the buffer caps keep dropping), so outage
        windows exercise exactly the backlog/conservation paths.
        """
        self._paused = True

    def resume(self):
        """Bring the link back up; restarts transmission if backlogged."""
        if not self._paused:
            return
        self._paused = False
        if not self._transmitting and not self.scheduler.is_empty:
            self._start_next(self.sim.now)

    def set_rate(self, rate):
        """Change the link rate mid-run (degradation / recovery).

        Delegates to the scheduler's :meth:`set_link_rate`, which rebases
        its tag state; the packet in flight completes at the old rate (its
        finish event is already scheduled), subsequent packets transmit at
        the new one.
        """
        self.scheduler.set_link_rate(rate)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Checkpoint the link (including its scheduler) as plain data.

        For a joint checkpoint with the simulator, capture the simulator
        with ``sim.snapshot(keep=lambda e: e.callback != link._finish)``
        — the in-flight finish event is re-armed by :meth:`restore`, so
        excluding it there keeps it from firing twice.  (Equality, not
        identity: every ``link._finish`` access builds a fresh bound
        method.)  :func:`repro.faults.checkpoint` packages this recipe.
        """
        current = None
        if self._current is not None:
            record, _event = self._current
            current = {
                "packet": record.packet.to_dict(),
                "start_time": record.start_time,
                "finish_time": record.finish_time,
                "virtual_start": record.virtual_start,
                "virtual_finish": record.virtual_finish,
            }
        return {
            "transmitting": self._transmitting,
            "paused": self._paused,
            "bits_sent": self._bits_sent,
            "packets_sent": self._packets_sent,
            "packets_dropped": self._packets_dropped,
            "busy_time": self._busy_time,
            "current": current,
            "scheduler": self.scheduler.snapshot(),
        }

    def restore(self, snap, rearm=True):
        """Roll back to a :meth:`snapshot`; returns the packet uid map.

        Restore the simulator *first* (so the clock precedes the in-flight
        finish time), then the link.  ``rearm`` re-schedules the finish
        event for the in-flight packet; pass False only when the simulator
        snapshot deliberately retained the original finish event.
        """
        from repro.core.packet import Packet
        from repro.core.scheduler import ScheduledPacket

        if self.packet_pool is not None:
            # The free list may hold pre-rollback objects; restored
            # packets are rebuilt fresh, so flush rather than reason
            # about which timeline each pooled allocation came from.
            self.packet_pool.flush()
        uid_map = self.scheduler.restore(snap["scheduler"])
        if self._current is not None:
            # Drop the stale finish event of the abandoned timeline.  The
            # handle itself tells us in O(1) whether it is still queued:
            # a fired event detached from its simulator (sim is None), and
            # a simulator restore bumped the epoch past the handle's.  In
            # either of those cases cancel() would corrupt the tombstone
            # counter — neutralise the handle instead.
            stale = self._current[1]
            if stale.sim is self.sim and stale.epoch == self.sim.epoch:
                stale.cancel()
            else:
                stale.cancelled = True
                stale.sim = None
            self._current = None
        self._transmitting = snap["transmitting"]
        self._paused = snap["paused"]
        self._bits_sent = snap["bits_sent"]
        self._packets_sent = snap["packets_sent"]
        self._packets_dropped = snap["packets_dropped"]
        self._busy_time = snap.get("busy_time", 0.0)
        if snap["current"] is not None:
            cur = snap["current"]
            uid = cur["packet"]["uid"]
            packet = uid_map.get(uid)
            if packet is None:
                packet = Packet.from_dict(cur["packet"])
                uid_map[uid] = packet
            record = ScheduledPacket(
                packet, cur["start_time"], cur["finish_time"],
                virtual_start=cur["virtual_start"],
                virtual_finish=cur["virtual_finish"],
            )
            if rearm:
                event = self.sim.schedule(record.finish_time, self._finish,
                                          record, priority=-1, pooled=True)
                self._current = (record, event)
        return uid_map

    def __repr__(self):
        return (
            f"Link(rate={self.rate!r}, sent={self._packets_sent}, "
            f"busy={self._transmitting})"
        )
