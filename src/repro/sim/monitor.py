"""Measurement probes: service traces and delay monitors.

:class:`ServiceTrace` is the primary artifact of every simulation — a list
of per-packet arrival and service records that the analysis modules turn
into the paper's figures:

* delay-vs-time series (Figures 4, 6, 7) via :meth:`ServiceTrace.delays`;
* arrival/service step curves (Figure 5) via :meth:`ServiceTrace.arrival_curve`
  and :meth:`ServiceTrace.service_curve`;
* bandwidth-vs-time (Figure 9) via
  :func:`repro.analysis.bandwidth.exponential_average`;
* empirical B-WFI / T-WFI via :mod:`repro.analysis.wfi`.
"""

from collections import defaultdict

__all__ = ["ServiceTrace", "DelayMonitor"]


class ServiceTrace:
    """Records every arrival and every completed transmission at a link."""

    def __init__(self):
        #: list of (flow_id, time, length) in arrival order
        self.arrivals = []
        #: list of ScheduledPacket in service order
        self.services = []
        self._arrivals_by_flow = defaultdict(list)
        self._services_by_flow = defaultdict(list)

    def record_arrival(self, packet, now):
        entry = (packet.flow_id, now, packet.length)
        self.arrivals.append(entry)
        self._arrivals_by_flow[packet.flow_id].append(entry)

    def record_arrivals(self, packets, now):
        """Record a same-instant chunk of arrivals (the batch send path)."""
        arrivals = self.arrivals
        by_flow = self._arrivals_by_flow
        for packet in packets:
            entry = (packet.flow_id, now, packet.length)
            arrivals.append(entry)
            by_flow[packet.flow_id].append(entry)

    def record_service(self, record):
        self.services.append(record)
        self._services_by_flow[record.flow_id].append(record)

    def record_services(self, records):
        """Record a chunk of service records (the batch drain path)."""
        self.services.extend(records)
        by_flow = self._services_by_flow
        for record in records:
            by_flow[record.flow_id].append(record)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def flows(self):
        seen = set(self._arrivals_by_flow) | set(self._services_by_flow)
        return sorted(seen, key=str)

    def services_of(self, flow_id):
        return list(self._services_by_flow.get(flow_id, []))

    def arrivals_of(self, flow_id):
        return list(self._arrivals_by_flow.get(flow_id, []))

    def packets_served(self, flow_id=None):
        if flow_id is None:
            return len(self.services)
        return len(self._services_by_flow.get(flow_id, []))

    def bits_served(self, flow_id=None, until=None):
        records = self.services if flow_id is None else self._services_by_flow.get(flow_id, [])
        if until is None:
            return sum(r.packet.length for r in records)
        return sum(r.packet.length for r in records if r.finish_time <= until)

    def delays(self, flow_id):
        """[(arrival_time, delay)] for each served packet of a flow.

        Delay is measured from arrival at the link to the end of
        transmission, the quantity plotted in Figures 4, 6, and 7.
        """
        out = []
        for record in self._services_by_flow.get(flow_id, []):
            arrival = record.packet.arrival_time
            if arrival is not None:
                out.append((arrival, record.finish_time - arrival))
        return out

    def max_delay(self, flow_id):
        d = self.delays(flow_id)
        return max(v for _, v in d) if d else 0.0

    def mean_delay(self, flow_id):
        d = self.delays(flow_id)
        return sum(v for _, v in d) / len(d) if d else 0.0

    # ------------------------------------------------------------------
    # Cumulative curves (Figure 5)
    # ------------------------------------------------------------------
    def arrival_curve(self, flow_id, unit="packets"):
        """Step curve [(time, cumulative)] of arrivals for a flow."""
        total = 0
        curve = []
        for _fid, t, length in self._arrivals_by_flow.get(flow_id, []):
            total += 1 if unit == "packets" else length
            curve.append((t, total))
        return curve

    def service_curve(self, flow_id, unit="packets"):
        """Step curve [(time, cumulative)] of completed service for a flow."""
        total = 0
        curve = []
        for record in self._services_by_flow.get(flow_id, []):
            total += 1 if unit == "packets" else record.packet.length
            curve.append((record.finish_time, total))
        return curve

    def __repr__(self):
        return (
            f"ServiceTrace(arrivals={len(self.arrivals)}, "
            f"services={len(self.services)})"
        )


class DelayMonitor:
    """Streaming per-flow delay statistics (no per-packet storage).

    Useful for long simulations where a full :class:`ServiceTrace` would be
    memory-heavy.  Register it as a link receiver, or feed it records.
    """

    def __init__(self):
        self._count = defaultdict(int)
        self._sum = defaultdict(float)
        self._max = defaultdict(float)

    def observe(self, record):
        arrival = record.packet.arrival_time
        if arrival is None:
            return
        delay = record.finish_time - arrival
        fid = record.flow_id
        self._count[fid] += 1
        self._sum[fid] += delay
        if delay > self._max[fid]:
            self._max[fid] = delay

    def count(self, flow_id):
        return self._count[flow_id]

    def mean(self, flow_id):
        if not self._count[flow_id]:
            return 0.0
        return self._sum[flow_id] / self._count[flow_id]

    def maximum(self, flow_id):
        return self._max[flow_id]

    def flows(self):
        return sorted(self._count, key=str)
