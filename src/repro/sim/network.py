"""Multi-hop networks: chains of scheduled links with per-flow routes.

The paper's delay bounds are per-hop; the classic end-to-end result for
rate-based servers (Parekh & Gallager part II, and [10] in the paper) is
that a (sigma, rho)-constrained session crossing H WFQ-class hops with
guaranteed rate ``r_i`` satisfies

    D_e2e  <=  sigma / r_i  +  (H - 1) L_i,max / r_i  +  sum_h L_max / r_h
               (+ propagation)

:class:`Network` wires that scenario up: every node owns one output link
(any :class:`~repro.core.scheduler.PacketScheduler`), flows follow static
routes, and a :class:`DeliveryLog` records ingress-to-egress latency.
``benchmarks/test_multihop_delay.py`` sweeps H and checks the bound.
"""

from collections import defaultdict

from repro.errors import ConfigurationError, SimulationError
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace

__all__ = ["Network", "DeliveryLog"]


class DeliveryLog:
    """End-to-end packet deliveries: (flow, ingress time, egress time)."""

    def __init__(self):
        self.deliveries = []
        self._by_flow = defaultdict(list)

    def record(self, packet, ingress_time, egress_time):
        entry = (packet.flow_id, ingress_time, egress_time)
        self.deliveries.append(entry)
        self._by_flow[packet.flow_id].append(entry)

    def delays(self, flow_id):
        """[(ingress_time, end-to-end delay)] for one flow."""
        return [(t_in, t_out - t_in)
                for _f, t_in, t_out in self._by_flow.get(flow_id, [])]

    def max_delay(self, flow_id):
        d = self.delays(flow_id)
        return max(v for _t, v in d) if d else 0.0

    def mean_delay(self, flow_id):
        d = self.delays(flow_id)
        return sum(v for _t, v in d) / len(d) if d else 0.0

    def count(self, flow_id=None):
        if flow_id is None:
            return len(self.deliveries)
        return len(self._by_flow.get(flow_id, []))


class _Ingress:
    """Link-compatible entry point: stamps ingress time and forwards."""

    def __init__(self, network, first_hop):
        self._network = network
        self._first_hop = first_hop

    def send(self, packet):
        self._network._ingress_times[packet.uid] = self._network.sim.now
        return self._first_hop.send(packet)


class Network:
    """A set of named output links plus static per-flow routes.

    Usage::

        net = Network(sim)
        net.add_node("s1", WF2QPlusScheduler(mbps(10)))
        net.add_node("s2", WF2QPlusScheduler(mbps(10)), propagation_delay=0.001)
        net.add_route("voice", ["s1", "s2"], share=3, buffer=None)
        source.attach(sim, net.entry("voice")).start()

    Flows are registered automatically at every node on their route with
    the given share (per-node override via a dict ``{node: share}``).
    """

    def __init__(self, sim, log=None):
        self.sim = sim
        self.log = log if log is not None else DeliveryLog()
        self._nodes = {}       # name -> Link
        self._traces = {}      # name -> ServiceTrace
        self._routes = {}      # flow_id -> [node names]
        self._hop_index = {}   # packet uid -> next hop position
        self._ingress_times = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, name, scheduler, propagation_delay=0.0):
        """Create an output link named ``name`` around ``scheduler``."""
        if name in self._nodes:
            raise ConfigurationError(f"duplicate node name: {name!r}")
        trace = ServiceTrace()
        link = Link(self.sim, scheduler, receiver=self._forward,
                    propagation_delay=propagation_delay, trace=trace)
        link.node_name = name
        self._nodes[name] = link
        self._traces[name] = trace
        return link

    def node(self, name):
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node: {name!r}") from None

    def trace_of(self, name):
        """The per-node ServiceTrace."""
        self.node(name)
        return self._traces[name]

    def add_route(self, flow_id, path, share=1, buffer=None):
        """Register ``flow_id`` along ``path`` (a list of node names)."""
        if not path:
            raise ConfigurationError("route needs at least one hop")
        if flow_id in self._routes:
            raise ConfigurationError(f"flow {flow_id!r} already routed")
        links = [self.node(name) for name in path]
        for name, link in zip(path, links):
            node_share = share[name] if isinstance(share, dict) else share
            link.scheduler.add_flow(flow_id, node_share)
            if buffer is not None:
                link.scheduler.set_buffer_limit(flow_id, buffer)
        self._routes[flow_id] = list(path)

    def entry(self, flow_id):
        """Link-compatible ingress object for sources of ``flow_id``."""
        path = self._route(flow_id)
        return _Ingress(self, self.node(path[0]))

    def _route(self, flow_id):
        try:
            return self._routes[flow_id]
        except KeyError:
            raise ConfigurationError(f"flow {flow_id!r} has no route") from None

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _forward(self, packet, now):
        path = self._route(packet.flow_id)
        position = self._hop_index.get(packet.uid, 0) + 1
        if position >= len(path):
            self._hop_index.pop(packet.uid, None)
            ingress = self._ingress_times.pop(packet.uid, None)
            if ingress is None:
                raise SimulationError(
                    f"packet {packet!r} delivered without an ingress stamp"
                )
            self.log.record(packet, ingress, now)
            return
        self._hop_index[packet.uid] = position
        next_link = self._nodes[path[position]]
        # Per-hop arrival time restamps so each scheduler sees local delay.
        packet.arrival_time = now
        next_link.send(packet)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_names(self):
        return list(self._nodes)

    def route_of(self, flow_id):
        return list(self._route(flow_id))

    def __repr__(self):
        return (
            f"Network(nodes={len(self._nodes)}, routes={len(self._routes)}, "
            f"delivered={self.log.count()})"
        )
