"""The event loop: a deterministic discrete-event simulator.

Events are (time, priority, sequence) ordered; equal-time events run in
(priority, scheduling order), which makes every simulation reproducible —
an essential property when comparing two schedulers on the *same* arrival
pattern, as the paper's Figures 4-7 do.

Usage::

    sim = Simulator()
    sim.schedule(0.5, lambda: print("hello at", sim.now))
    sim.run(until=10.0)

Callbacks may schedule further events.  ``schedule`` returns an
:class:`Event` handle with ``cancel()``.

Event elision
-------------
Components that can compute their own next state change (the
:class:`~repro.sim.link.Link` during a busy period) may skip the
schedule/pop round-trip entirely and move the clock themselves with
:meth:`Simulator.advance_to` — a *bounded* advance that refuses to
overtake the earliest pending event or the ``until`` horizon of the
running loop, which is exactly the condition under which eliding an
event is unobservable.  :attr:`Simulator.events_elided` counts these
inline advances.
"""

import heapq
from heapq import heappop, heappush

from repro.errors import SimulationError

__all__ = ["Simulator", "Event"]


class Event:
    """A scheduled callback; ``cancel()`` before it fires to skip it.

    The simulator's heap holds ``(time, priority, seq, event)`` tuples,
    not the events themselves: ``seq`` is unique, so heap comparisons
    resolve at the tuple level in C and never invoke a Python method —
    the dominant cost of a pure-Python event loop.  The :class:`Event` is
    the *handle* riding along in the entry.

    A cancelled event's entry stays in the heap (removal from the middle
    of a binary heap is O(n)); the simulator counts tombstones and
    compacts the heap once they dominate, so workloads that cancel in bulk
    (e.g. timers rescheduled every packet) stay O(live events).

    ``epoch`` stamps which simulator timeline the event belongs to: a
    :meth:`Simulator.restore` abandons every previously issued handle and
    bumps the simulator's epoch, so holders can tell a still-queued event
    from an abandoned one in O(1) (``event.sim is sim and event.epoch ==
    sim.epoch``) instead of scanning the queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "sim", "epoch")

    def __init__(self, time, priority, seq, callback, args, sim=None,
                 epoch=0):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim
        self.epoch = epoch

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            # Detach first: a second cancel() (or one after the event has
            # fired) must not count the tombstone twice.
            self.sim = None
            sim._note_cancelled()

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, prio={self.priority}{state})"


class Simulator:
    """A single-threaded discrete-event simulator with a monotonic clock."""

    #: Compaction floor: below this many tombstones the heap is left alone
    #: (filtering a tiny queue costs more than the pops it would save).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        self._queue = []
        #: Monotone event sequence number.  A plain int (not
        #: itertools.count) so :meth:`snapshot` can capture and
        #: :meth:`restore` reinstate it — FIFO tie-breaking must replay
        #: identically after a checkpoint rollback.
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._cancelled = 0
        self._elided = 0
        #: Timeline generation, bumped by :meth:`restore`; see
        #: :class:`Event`.
        self._epoch = 0
        #: ``until`` horizon of the currently running loop (None outside
        #: run() or when running unbounded) — :meth:`advance_to` must not
        #: overtake it.
        self._run_until = None
        #: True while a run() without ``max_events`` is in progress: the
        #: condition under which inline event elision (burst-drain) keeps
        #: exact event-per-event semantics.  ``max_events`` counts fired
        #: callbacks, which elision would skew.
        self._inline_ok = False
        #: Optional callable ``hook(event)`` invoked after each processed
        #: event — the observability/profiling tap into the event loop
        #: (e.g. counting callbacks per simulated second).  ``None`` keeps
        #: the loop on the fast path.
        self.event_hook = None

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self):
        return self._processed

    @property
    def events_elided(self):
        """Clock advances performed inline via :meth:`advance_to` — each
        one is a heap round-trip + callback the fast path avoided."""
        return self._elided

    @property
    def epoch(self):
        """Timeline generation; bumped by :meth:`restore`."""
        return self._epoch

    @property
    def pending(self):
        """Number of live (not-yet-fired, not-cancelled) events."""
        return len(self._queue) - self._cancelled

    def _note_cancelled(self):
        """A queued event was cancelled; compact once tombstones dominate.

        Lazy compaction keeps ``cancel()`` O(1) amortised: the heap is
        rebuilt from its live events only when more than half of it is
        tombstones (and at least :data:`COMPACT_MIN_CANCELLED` of them),
        so the rebuild cost is covered by the cancellations it reclaims.
        The rebuild mutates the list in place: the run loop holds a local
        alias of the queue, and rebinding would strand it.
        """
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._queue)):
            self._queue[:] = [e for e in self._queue if not e[3].cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def schedule(self, time, callback, *args, priority=0):
        """Run ``callback(*args)`` at absolute ``time``.

        ``priority`` orders simultaneous events (lower runs first).
        Scheduling in the past raises :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}: clock is already {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self, self._epoch)
        heappush(self._queue, (time, priority, seq, event))
        return event

    def schedule_in(self, delay, callback, *args, priority=0):
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        # Inlined schedule(): a non-negative delay from `now` can never
        # land in the past, so the past-check is skipped on this path.
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        event = Event(time, priority, seq, callback, args, self, self._epoch)
        heappush(self._queue, (time, priority, seq, event))
        return event

    def peek_time(self):
        """Time of the earliest live pending event, or None when idle.

        Pops any cancelled tombstones sitting at the top of the heap as a
        side effect (they are dead weight either way).
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heappop(queue)
                self._cancelled -= 1
                continue
            return head[0]
        return None

    def advance_to(self, time):
        """Move the clock to ``time`` without processing an event.

        Bounded: refuses to overtake the earliest pending event or the
        ``until`` horizon of the currently running loop, so an inline
        advance can never reorder itself past work the event loop still
        owes.  This is the primitive behind the link's burst-drain fast
        path — eliding a finish event is only legal while its time
        precedes everything else the simulator would run.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance to {time!r}: clock is already {self._now!r}"
            )
        head = self.peek_time()
        if head is not None and time > head:
            raise SimulationError(
                f"advance_to({time!r}) would overtake the pending event "
                f"at {head!r}"
            )
        until = self._run_until
        if until is not None and time > until:
            raise SimulationError(
                f"advance_to({time!r}) would overtake the run horizon "
                f"{until!r}"
            )
        self._now = time
        self._elided += 1

    def advance_over(self, time, count):
        """Move the clock to ``time``, accounting ``count`` elided events.

        The bulk form of :meth:`advance_to` for the link's batch drain: a
        whole chunk of transmissions was computed ahead of time, so one
        validated advance covers all of them.  The same bounds apply —
        ``time`` may not overtake the earliest pending event or the run
        horizon — but they are checked once per chunk instead of once per
        packet.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance to {time!r}: clock is already {self._now!r}"
            )
        head = self.peek_time()
        if head is not None and time > head:
            raise SimulationError(
                f"advance_over({time!r}) would overtake the pending event "
                f"at {head!r}"
            )
        until = self._run_until
        if until is not None and time > until:
            raise SimulationError(
                f"advance_over({time!r}) would overtake the run horizon "
                f"{until!r}"
            )
        self._now = time
        self._elided += count

    def run(self, until=None, max_events=None):
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.  Returns the final clock value.

        With ``until``, the clock is advanced to exactly ``until`` even if
        the last event fires earlier (convenient for measurement windows).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._run_until = until
        queue = self._queue
        processed = 0
        try:
            if max_events is None:
                # Hot variant: attribute lookups hoisted, no budget check,
                # and inline elision (Link burst-drain) enabled.  The
                # event hook is still honoured — re-read each iteration so
                # a hook attached mid-run takes effect immediately.
                self._inline_ok = True
                pop = heappop
                while queue:
                    entry = queue[0]
                    time = entry[0]
                    if until is not None and time > until:
                        break
                    pop(queue)
                    event = entry[3]
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    event.sim = None  # fired: a late cancel() is a no-op
                    self._now = time
                    event.callback(*event.args)
                    processed += 1
                    hook = self.event_hook
                    if hook is not None:
                        hook(event)
            else:
                while queue:
                    if processed >= max_events:
                        break
                    entry = queue[0]
                    if until is not None and entry[0] > until:
                        break
                    heappop(queue)
                    event = entry[3]
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    event.sim = None  # fired: a late cancel() is a no-op
                    self._now = entry[0]
                    event.callback(*event.args)
                    processed += 1
                    if self.event_hook is not None:
                        self.event_hook(event)
        finally:
            self._running = False
            self._inline_ok = False
            self._run_until = None
            self._processed += processed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_guarded(self, until, max_wall=None, check_every=1024,
                    wall_clock=None):
        """Like :meth:`run(until=...)`, but with a wall-clock stall guard.

        Every ``check_every`` processed events the guard compares wall
        time against ``max_wall`` seconds; if the budget is exhausted the
        loop aborts and returns ``False`` *without* snapping the clock to
        ``until`` (unlike :meth:`run`, which advances to the horizon even
        when it exits early) — the caller needs the true progress point to
        decide whether simulated time is advancing at all.  Returns
        ``True`` when the horizon was reached (queue drained or overtaken,
        clock snapped to ``until``).

        ``wall_clock`` is injectable (defaults to ``time.monotonic``) so
        stall detection is testable without real waiting.  The guarded
        loop never enables inline elision: a stalled component could
        otherwise hide arbitrarily many advances between budget checks.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if wall_clock is None:
            import time as _time

            wall_clock = _time.monotonic
        deadline = None if max_wall is None else wall_clock() + max_wall
        self._running = True
        self._run_until = until
        queue = self._queue
        processed = 0
        completed = True
        try:
            while queue:
                entry = queue[0]
                if until is not None and entry[0] > until:
                    break
                heappop(queue)
                event = entry[3]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event.sim = None  # fired: a late cancel() is a no-op
                self._now = entry[0]
                event.callback(*event.args)
                processed += 1
                if self.event_hook is not None:
                    self.event_hook(event)
                if (deadline is not None and processed % check_every == 0
                        and wall_clock() > deadline):
                    completed = False
                    break
        finally:
            self._running = False
            self._run_until = None
            self._processed += processed
        if completed and until is not None and self._now < until:
            self._now = until
        return completed

    def step(self):
        """Process exactly one (non-cancelled) event; returns it or None."""
        while self._queue:
            event = heappop(self._queue)[3]
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.sim = None  # fired: a late cancel() is a no-op
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            if self.event_hook is not None:
                self.event_hook(event)
            return event
        return None

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot(self, keep=None):
        """Checkpoint the clock, sequence counter and live event queue.

        Callbacks and their argument tuples are captured *by reference*,
        so the snapshot supports in-process rollback (re-running a fault
        scenario from a checkpoint), not cross-process persistence.
        ``keep`` optionally filters events (``keep(event) -> bool``); a
        joint Link+Simulator checkpoint excludes the link's in-flight
        finish event here and re-arms it from the link's own snapshot, so
        it is neither lost nor doubled.
        """
        events = [
            (e.time, e.priority, e.seq, e.callback, e.args)
            for _t, _p, _s, e in self._queue
            if not e.cancelled and (keep is None or keep(e))
        ]
        return {
            "now": self._now,
            "seq": self._seq,
            "processed": self._processed,
            "events": events,
        }

    def restore(self, snap):
        """Roll back to a :meth:`snapshot`.

        Must not be called from inside a running event loop.  Event
        handles issued before the snapshot refer to the abandoned
        timeline (their ``epoch`` no longer matches): do not ``cancel()``
        them after restoring.
        """
        if self._running:
            raise SimulationError("cannot restore while the loop is running")
        self._epoch += 1
        epoch = self._epoch
        self._queue = [
            (time, priority, seq,
             Event(time, priority, seq, callback, args, self, epoch))
            for time, priority, seq, callback, args in snap["events"]
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._now = snap["now"]
        self._seq = snap["seq"]
        self._processed = snap["processed"]

    def __repr__(self):
        return f"Simulator(now={self._now!r}, pending={self.pending})"
