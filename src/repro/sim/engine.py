"""The event loop: a deterministic discrete-event simulator.

Events are (time, priority, sequence) ordered; equal-time events run in
(priority, scheduling order), which makes every simulation reproducible —
an essential property when comparing two schedulers on the *same* arrival
pattern, as the paper's Figures 4-7 do.

Usage::

    sim = Simulator()
    sim.schedule(0.5, lambda: print("hello at", sim.now))
    sim.run(until=10.0)

Callbacks may schedule further events.  ``schedule`` returns an
:class:`Event` handle with ``cancel()``.

Event engines
-------------
Two interchangeable priority structures back the pending-event set,
selected by ``Simulator(engine=...)`` (or the ``REPRO_ENGINE``
environment variable):

``"heap"`` (default)
    A binary heap of raw ``(time, priority, seq, event)`` tuples via
    :mod:`heapq` — O(log n) per operation with C-level constants.
``"calendar"``
    A :class:`~repro.dstruct.calendar.CalendarQueue` — O(1) amortized
    bucket operations, which overtake the heap once the pending
    population is large (thousands of concurrent timers/flows).  Pop
    order is byte-identical to the heap on the same schedule calls (the
    differential suite pins service traces, obs streams and digests),
    and a population the calendar cannot hash apart (zero timestamp
    spread at scale) automatically migrates back to the heap —
    heapifying the same entries preserves the total order, so the
    fallback is seamless and exact.

Appending ``"+pool"`` to either engine name enables the zero-allocation
free lists: fired :class:`Event` records are recycled into subsequent
``schedule`` calls instead of being garbage.  Only events scheduled with
``pooled=True`` are recycled — the contract is that no holder retains the
handle past its callback (the Link and the traffic sources are audited
call sites) — so arbitrary user events keep today's allocate-per-schedule
semantics and a retained handle can never alias a recycled one.

Event elision
-------------
Components that can compute their own next state change (the
:class:`~repro.sim.link.Link` during a busy period) may skip the
schedule/pop round-trip entirely and move the clock themselves with
:meth:`Simulator.advance_to` — a *bounded* advance that refuses to
overtake the earliest pending event or the ``until`` horizon of the
running loop, which is exactly the condition under which eliding an
event is unobservable.  :attr:`Simulator.events_elided` counts these
inline advances.
"""

import heapq
import os
from heapq import heappop, heappush

from repro.dstruct.calendar import CalendarQueue
from repro.errors import SimulationError

__all__ = ["Simulator", "Event"]

#: Recognised engine selectors.
ENGINES = ("heap", "calendar", "heap+pool", "calendar+pool")


def resolve_engine(engine=None):
    """Normalise an engine selector; None falls back to ``REPRO_ENGINE``.

    Raises :class:`SimulationError` on an unknown name so a typo in the
    environment fails loudly instead of silently running the default.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or "heap"
    engine = engine.strip().lower()
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown event engine {engine!r}: expected one of {ENGINES}")
    return engine


class Event:
    """A scheduled callback; ``cancel()`` before it fires to skip it.

    The simulator's queue holds ``(time, priority, seq, event)`` tuples,
    not the events themselves: ``seq`` is unique, so ordering comparisons
    resolve at the tuple level in C and never invoke a Python method —
    the dominant cost of a pure-Python event loop.  The :class:`Event` is
    the *handle* riding along in the entry.

    A cancelled event's entry stays queued (removal from the middle of a
    priority structure is O(n)); the simulator counts tombstones and
    compacts the queue once they dominate, so workloads that cancel in
    bulk (e.g. timers rescheduled every packet) stay O(live events).

    ``epoch`` stamps which simulator timeline the event belongs to: a
    :meth:`Simulator.restore` abandons every previously issued handle and
    bumps the simulator's epoch, so holders can tell a still-queued event
    from an abandoned one in O(1) (``event.sim is sim and event.epoch ==
    sim.epoch``) instead of scanning the queue.

    ``pooled`` marks the event recyclable under a ``+pool`` engine: the
    scheduling call site guarantees no reference to the handle survives
    the callback, so the loop may return the object to the free list the
    moment the callback (and hook) finish.  Cancelled tombstones are
    never recycled — a holder that cancelled may still inspect the
    handle, and must keep seeing ``cancelled=True``.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "sim", "epoch", "pooled")

    def __init__(self, time, priority, seq, callback, args, sim=None,
                 epoch=0):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim
        self.epoch = epoch
        self.pooled = False

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            # Detach first: a second cancel() (or one after the event has
            # fired) must not count the tombstone twice.
            self.sim = None
            sim._note_cancelled()

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, prio={self.priority}{state})"


def _is_cancelled(event):
    return event.cancelled


class Simulator:
    """A single-threaded discrete-event simulator with a monotonic clock.

    ``engine`` selects the pending-event structure (see the module
    docstring); ``None`` reads ``REPRO_ENGINE`` and defaults to
    ``"heap"``.  All engines are observably identical — same callback
    order, same clock values, same snapshots — differing only in speed.
    """

    #: Compaction floor: below this many tombstones the queue is left
    #: alone (filtering a tiny queue costs more than the pops it saves).
    COMPACT_MIN_CANCELLED = 64

    #: Free-list ceiling for recycled Event records: bounds worst-case
    #: retention after a population spike.
    EVENT_POOL_CAP = 4096

    def __init__(self, engine=None):
        engine = resolve_engine(engine)
        self.engine = engine
        base, _, pool = engine.partition("+")
        #: True under a ``+pool`` engine: fired pooled events go back to
        #: the free list instead of the garbage collector.
        self._pool_on = pool == "pool"
        #: The calendar structure, or None when the heap engine backs the
        #: queue (either selected, or after a degenerate-spread fallback).
        self._cal = CalendarQueue() if base == "calendar" else None
        self._queue = []
        #: Event free list (``+pool`` engines); acquire restamps every
        #: field, so a recycled record is indistinguishable from a fresh
        #: allocation.
        self._event_pool = []
        self._pool_hits = 0
        self._pool_misses = 0
        #: Calendar resizes accumulated across fallbacks (the live
        #: structure's own counter resets when it is replaced).
        self._resizes_base = 0
        self._engine_fallbacks = 0
        #: Monotone event sequence number.  A plain int (not
        #: itertools.count) so :meth:`snapshot` can capture and
        #: :meth:`restore` reinstate it — FIFO tie-breaking must replay
        #: identically after a checkpoint rollback.
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._cancelled = 0
        self._elided = 0
        #: Timeline generation, bumped by :meth:`restore`; see
        #: :class:`Event`.
        self._epoch = 0
        #: ``until`` horizon of the currently running loop (None outside
        #: run() or when running unbounded) — :meth:`advance_to` must not
        #: overtake it.
        self._run_until = None
        #: True while a run() without ``max_events`` is in progress: the
        #: condition under which inline event elision (burst-drain) keeps
        #: exact event-per-event semantics.  ``max_events`` counts fired
        #: callbacks, which elision would skew.
        self._inline_ok = False
        #: Optional callable ``hook(event)`` invoked after each processed
        #: event — the observability/profiling tap into the event loop
        #: (e.g. counting callbacks per simulated second).  ``None`` keeps
        #: the loop on the fast path.
        self.event_hook = None

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self):
        return self._processed

    @property
    def events_elided(self):
        """Clock advances performed inline via :meth:`advance_to` — each
        one is a heap round-trip + callback the fast path avoided."""
        return self._elided

    @property
    def epoch(self):
        """Timeline generation; bumped by :meth:`restore`."""
        return self._epoch

    @property
    def engine_active(self):
        """The structure currently backing the queue: the selected engine,
        or its heap downgrade after a degenerate-spread fallback."""
        if self._cal is None and self.engine.startswith("calendar"):
            return "heap+pool" if self._pool_on else "heap"
        return self.engine

    @property
    def engine_fallbacks(self):
        """Calendar-to-heap migrations forced by a pathological (zero
        timestamp spread) population."""
        return self._engine_fallbacks

    @property
    def calendar_resizes(self):
        """Bucket-array rebuilds performed by the calendar engine."""
        cal = self._cal
        return self._resizes_base + (cal.resizes if cal is not None else 0)

    @property
    def pool_hits(self):
        """Schedule calls served from the event free list."""
        return self._pool_hits

    @property
    def pool_misses(self):
        """Schedule calls that allocated a fresh Event under ``+pool``."""
        return self._pool_misses

    @property
    def pool_hit_rate(self):
        """Fraction of schedules served from the free list (0.0 when the
        pool is disabled or nothing was scheduled)."""
        total = self._pool_hits + self._pool_misses
        return self._pool_hits / total if total else 0.0

    @property
    def pending(self):
        """Number of live (not-yet-fired, not-cancelled) events."""
        cal = self._cal
        queued = len(self._queue) if cal is None else len(cal)
        return queued - self._cancelled

    def _note_cancelled(self):
        """A queued event was cancelled; compact once tombstones dominate.

        Lazy compaction keeps ``cancel()`` O(1) amortised: the queue is
        rebuilt from its live events only when more than half of it is
        tombstones (and at least :data:`COMPACT_MIN_CANCELLED` of them),
        so the rebuild cost is covered by the cancellations it reclaims.
        The heap rebuild mutates the list in place: the run loop holds a
        local alias of the queue, and rebinding would strand it.  The
        calendar filters its buckets in place for the same reason.
        """
        self._cancelled += 1
        if self._cancelled < self.COMPACT_MIN_CANCELLED:
            return
        cal = self._cal
        if cal is None:
            if self._cancelled * 2 > len(self._queue):
                self._queue[:] = [e for e in self._queue if not e[3].cancelled]
                heapq.heapify(self._queue)
                self._cancelled = 0
        elif self._cancelled * 2 > len(cal):
            self._cancelled -= cal.compact(_is_cancelled)

    def _fallback_to_heap(self):
        """Migrate the calendar's entries onto the heap engine.

        Triggered by the calendar flagging itself degenerate (a large
        population with zero timestamp spread hashes into one eternally
        re-sorted bucket).  Heapifying the same ``(time, priority, seq,
        event)`` tuples preserves the total order exactly, so the switch
        is invisible to callbacks, traces and digests.
        """
        cal = self._cal
        self._queue = list(cal.entries())
        heapq.heapify(self._queue)
        self._resizes_base += cal.resizes
        self._cal = None
        self._engine_fallbacks += 1

    def schedule(self, time, callback, *args, priority=0, pooled=False):
        """Run ``callback(*args)`` at absolute ``time``.

        ``priority`` orders simultaneous events (lower runs first).
        Scheduling in the past raises :class:`SimulationError`.
        ``pooled=True`` is a call-site promise that no reference to the
        returned handle outlives the callback, allowing a ``+pool``
        engine to recycle the Event record the moment it fires.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}: clock is already {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        # Inlined _acquire(): this is the hot allocation site.
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.sim = self
            event.epoch = self._epoch
            event.pooled = pooled
            self._pool_hits += 1
        else:
            event = Event(time, priority, seq, callback, args, self,
                          self._epoch)
            if pooled:
                event.pooled = True
            if self._pool_on:
                self._pool_misses += 1
        cal = self._cal
        if cal is None:
            heappush(self._queue, (time, priority, seq, event))
        else:
            # Inlined CalendarQueue.push(): the insert side is as hot as
            # the drain loop, and a C heappush sets the bar — an
            # interpreted method call per event would forfeit the
            # calendar's O(1) advantage to frame overhead.  Kept
            # body-identical to push(); degenerate can only flip inside
            # _calibrate, so it is checked only on that branch.
            s = int(time / cal._width)
            if s < cal._slot:
                cal._slot = s
            idx = s & cal._mask
            bucket = cal._buckets[idx]
            bucket.append((time, priority, seq, event))
            if len(bucket) > 1:
                cal._dirty[idx] = True
            cal._size += 1
            pushes = cal._pushes + 1
            cal._pushes = pushes
            if pushes >= cal._check_at:
                cal._calibrate()
                if cal.degenerate:
                    self._fallback_to_heap()
        return event

    def schedule_in(self, delay, callback, *args, priority=0, pooled=False):
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        # Inlined schedule(): a non-negative delay from `now` can never
        # land in the past, so the past-check is skipped on this path.
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        # Inlined _acquire(), as in schedule().
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.sim = self
            event.epoch = self._epoch
            event.pooled = pooled
            self._pool_hits += 1
        else:
            event = Event(time, priority, seq, callback, args, self,
                          self._epoch)
            if pooled:
                event.pooled = True
            if self._pool_on:
                self._pool_misses += 1
        cal = self._cal
        if cal is None:
            heappush(self._queue, (time, priority, seq, event))
        else:
            # Inlined CalendarQueue.push(), as in schedule().
            s = int(time / cal._width)
            if s < cal._slot:
                cal._slot = s
            idx = s & cal._mask
            bucket = cal._buckets[idx]
            bucket.append((time, priority, seq, event))
            if len(bucket) > 1:
                cal._dirty[idx] = True
            cal._size += 1
            pushes = cal._pushes + 1
            cal._pushes = pushes
            if pushes >= cal._check_at:
                cal._calibrate()
                if cal.degenerate:
                    self._fallback_to_heap()
        return event

    def peek_time(self):
        """Time of the earliest live pending event, or None when idle.

        Pops any cancelled tombstones sitting at the head as a side
        effect (they are dead weight either way).
        """
        cal = self._cal
        if cal is None:
            queue = self._queue
            while queue:
                head = queue[0]
                if head[3].cancelled:
                    heappop(queue)
                    self._cancelled -= 1
                    continue
                return head[0]
            return None
        # Fast path: the cursor bucket already holds the minimum (clean,
        # non-empty, tail in the current year).  advance_to() peeks per
        # elided event, so this path is as hot as the drain loop.
        slot = cal._slot
        idx = slot & cal._mask
        bucket = cal._buckets[idx]
        if bucket and not cal._dirty[idx]:
            entry = bucket[-1]
            if not entry[3].cancelled and int(entry[0] / cal._width) <= slot:
                return entry[0]
        while True:
            bucket = cal._locate()
            if bucket is None:
                return None
            entry = bucket[-1]
            if entry[3].cancelled:
                cal.pop_located(bucket)
                self._cancelled -= 1
                continue
            return entry[0]

    def advance_to(self, time):
        """Move the clock to ``time`` without processing an event.

        Bounded: refuses to overtake the earliest pending event or the
        ``until`` horizon of the currently running loop, so an inline
        advance can never reorder itself past work the event loop still
        owes.  This is the primitive behind the link's burst-drain fast
        path — eliding a finish event is only legal while its time
        precedes everything else the simulator would run.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance to {time!r}: clock is already {self._now!r}"
            )
        head = self.peek_time()
        if head is not None and time > head:
            raise SimulationError(
                f"advance_to({time!r}) would overtake the pending event "
                f"at {head!r}"
            )
        until = self._run_until
        if until is not None and time > until:
            raise SimulationError(
                f"advance_to({time!r}) would overtake the run horizon "
                f"{until!r}"
            )
        self._now = time
        self._elided += 1

    def advance_over(self, time, count):
        """Move the clock to ``time``, accounting ``count`` elided events.

        The bulk form of :meth:`advance_to` for the link's batch drain: a
        whole chunk of transmissions was computed ahead of time, so one
        validated advance covers all of them.  The same bounds apply —
        ``time`` may not overtake the earliest pending event or the run
        horizon — but they are checked once per chunk instead of once per
        packet.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance to {time!r}: clock is already {self._now!r}"
            )
        head = self.peek_time()
        if head is not None and time > head:
            raise SimulationError(
                f"advance_over({time!r}) would overtake the pending event "
                f"at {head!r}"
            )
        until = self._run_until
        if until is not None and time > until:
            raise SimulationError(
                f"advance_over({time!r}) would overtake the run horizon "
                f"{until!r}"
            )
        self._now = time
        self._elided += count

    def _drain_calendar(self, until, deadline=None, check_every=0,
                        wall_clock=None):
        """The calendar engine's hot loop: fire events up to ``until``.

        Calendar internals (bucket array, mask, width) are hoisted into
        locals and re-synced whenever the structure's generation moves —
        a callback's ``schedule`` can recalibrate the calendar, and a
        degenerate population can replace the engine entirely (checked
        via ``self._cal``).  The scan cursor is written back before every
        callback so a push that rewinds it stays authoritative.

        Returns ``(processed, state)`` with state one of ``"drained"``
        (queue empty), ``"horizon"`` (next event beyond ``until``),
        ``"switched"`` (fell back to the heap engine mid-loop; the caller
        resumes on the heap path), or ``"stalled"`` (wall-clock budget
        exhausted, run_guarded only).
        """
        cal = self._cal
        pool = self._event_pool if self._pool_on else None
        cap = self.EVENT_POOL_CAP
        processed = 0
        gen = cal._gen
        buckets = cal._buckets
        dirty = cal._dirty
        mask = cal._mask
        width = cal._width
        nbuckets = cal._nbuckets
        while cal._size:
            if cal._scan_debt > (nbuckets << 2):
                # Sustained empty-bucket scanning (a drain-only phase
                # never pushes): re-fit width/bucket-count here.
                cal._calibrate()
                gen = cal._gen
                buckets = cal._buckets
                dirty = cal._dirty
                mask = cal._mask
                width = cal._width
                nbuckets = cal._nbuckets
            # -- locate (inlined CalendarQueue._locate) ----------------
            slot = cal._slot
            scanned = 0
            entry = None
            while True:
                idx = slot & mask
                bucket = buckets[idx]
                if bucket:
                    if dirty[idx]:
                        bucket.sort(reverse=True)
                        dirty[idx] = False
                    entry = bucket[-1]
                    if int(entry[0] / width) <= slot:
                        cal._slot = slot
                        break
                    entry = None
                slot += 1
                scanned += 1
                if scanned > nbuckets:
                    break
            if scanned:
                cal._scan_debt += scanned
            if entry is None:
                # Full fruitless lap: sparse far-future population; the
                # method's direct search bounds this dequeue at O(n).
                bucket = cal._locate()
                entry = bucket[-1]
                slot = cal._slot
            idx = slot & mask
            # -- inner drain: consecutive ready entries in this bucket --
            # With LOAD entries per bucket-year, runs of events fire from
            # the same (sorted) bucket; serving them here skips the
            # cursor re-scan per event.  Each callback may perturb the
            # structure, so the guards below detect: an engine fallback
            # (self._cal moved), a recalibration (gen moved — the bucket
            # alias is stale), a cursor rewind (an earlier push landed
            # elsewhere), and a push into this bucket (dirty — re-sort
            # and keep draining).
            while True:
                time = entry[0]
                if until is not None and time > until:
                    return processed, "horizon"
                bucket.pop()
                cal._size -= 1
                event = entry[3]
                if event.cancelled:
                    self._cancelled -= 1
                else:
                    event.sim = None  # fired: a late cancel() is a no-op
                    self._now = time
                    event.callback(*event.args)
                    processed += 1
                    hook = self.event_hook
                    if hook is not None:
                        hook(event)
                    if (pool is not None and event.pooled
                            and len(pool) < cap):
                        event.callback = None
                        event.args = None
                        pool.append(event)
                    if self._cal is not cal:
                        return processed, "switched"
                    if gen != cal._gen:
                        gen = cal._gen
                        buckets = cal._buckets
                        dirty = cal._dirty
                        mask = cal._mask
                        width = cal._width
                        nbuckets = cal._nbuckets
                        break
                    if cal._slot != slot:
                        break
                    if (deadline is not None
                            and processed % check_every == 0
                            and wall_clock() > deadline):
                        return processed, "stalled"
                    if dirty[idx]:
                        bucket.sort(reverse=True)
                        dirty[idx] = False
                if not bucket:
                    break
                entry = bucket[-1]
                if int(entry[0] / width) > slot:
                    break
        return processed, "drained"

    def run(self, until=None, max_events=None):
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.  Returns the final clock value.

        With ``until``, the clock is advanced to exactly ``until`` even if
        the last event fires earlier (convenient for measurement windows).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._run_until = until
        processed = 0
        try:
            if max_events is None:
                # Hot variant: attribute lookups hoisted, no budget check,
                # and inline elision (Link burst-drain) enabled.  The
                # event hook is still honoured — re-read each iteration so
                # a hook attached mid-run takes effect immediately.
                self._inline_ok = True
                while self._cal is not None:
                    count, state = self._drain_calendar(until)
                    processed += count
                    if state != "switched":
                        break
                if self._cal is None:
                    queue = self._queue
                    pool = self._event_pool if self._pool_on else None
                    cap = self.EVENT_POOL_CAP
                    pop = heappop
                    while queue:
                        entry = queue[0]
                        time = entry[0]
                        if until is not None and time > until:
                            break
                        pop(queue)
                        event = entry[3]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event.sim = None  # fired: late cancel() is a no-op
                        self._now = time
                        event.callback(*event.args)
                        processed += 1
                        hook = self.event_hook
                        if hook is not None:
                            hook(event)
                        if (pool is not None and event.pooled
                                and len(pool) < cap):
                            event.callback = None
                            event.args = None
                            pool.append(event)
            else:
                while True:
                    if processed >= max_events:
                        break
                    event = self._pop_next(until)
                    if event is None:
                        break
                    event.sim = None  # fired: a late cancel() is a no-op
                    self._now = event.time
                    event.callback(*event.args)
                    processed += 1
                    if self.event_hook is not None:
                        self.event_hook(event)
        finally:
            self._running = False
            self._inline_ok = False
            self._run_until = None
            self._processed += processed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _pop_next(self, until=None):
        """Pop the earliest live event at or before ``until``, or None.

        The engine-agnostic slow-path pop used by the budgeted run
        variant and :meth:`step` — correctness over speed.
        """
        cal = self._cal
        if cal is None:
            queue = self._queue
            while queue:
                entry = queue[0]
                if until is not None and entry[0] > until:
                    return None
                heappop(queue)
                event = entry[3]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                return event
            return None
        while True:
            bucket = cal._locate()
            if bucket is None:
                return None
            entry = bucket[-1]
            if until is not None and entry[0] > until:
                return None
            cal.pop_located(bucket)
            event = entry[3]
            if event.cancelled:
                self._cancelled -= 1
                continue
            return event

    def run_guarded(self, until, max_wall=None, check_every=1024,
                    wall_clock=None):
        """Like :meth:`run(until=...)`, but with a wall-clock stall guard.

        Every ``check_every`` processed events the guard compares wall
        time against ``max_wall`` seconds; if the budget is exhausted the
        loop aborts and returns ``False`` *without* snapping the clock to
        ``until`` (unlike :meth:`run`, which advances to the horizon even
        when it exits early) — the caller needs the true progress point to
        decide whether simulated time is advancing at all.  Returns
        ``True`` when the horizon was reached (queue drained or overtaken,
        clock snapped to ``until``).

        ``wall_clock`` is injectable (defaults to ``time.monotonic``) so
        stall detection is testable without real waiting.  The guarded
        loop never enables inline elision: a stalled component could
        otherwise hide arbitrarily many advances between budget checks.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if wall_clock is None:
            import time as _time

            wall_clock = _time.monotonic
        deadline = None if max_wall is None else wall_clock() + max_wall
        self._running = True
        self._run_until = until
        processed = 0
        completed = True
        try:
            while self._cal is not None:
                count, state = self._drain_calendar(
                    until, deadline=deadline, check_every=check_every,
                    wall_clock=wall_clock)
                processed += count
                if state == "stalled":
                    completed = False
                if state != "switched":
                    break
            if self._cal is None and completed:
                queue = self._queue
                pool = self._event_pool if self._pool_on else None
                cap = self.EVENT_POOL_CAP
                while queue:
                    entry = queue[0]
                    if until is not None and entry[0] > until:
                        break
                    heappop(queue)
                    event = entry[3]
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    event.sim = None  # fired: a late cancel() is a no-op
                    self._now = entry[0]
                    event.callback(*event.args)
                    processed += 1
                    if self.event_hook is not None:
                        self.event_hook(event)
                    if pool is not None and event.pooled and len(pool) < cap:
                        event.callback = None
                        event.args = None
                        pool.append(event)
                    if (deadline is not None
                            and processed % check_every == 0
                            and wall_clock() > deadline):
                        completed = False
                        break
        finally:
            self._running = False
            self._run_until = None
            self._processed += processed
        if completed and until is not None and self._now < until:
            self._now = until
        return completed

    def step(self):
        """Process exactly one (non-cancelled) event; returns it or None.

        The returned handle stays with the caller, so it is never
        recycled into the event pool.
        """
        event = self._pop_next()
        if event is None:
            return None
        event.sim = None  # fired: a late cancel() is a no-op
        self._now = event.time
        event.callback(*event.args)
        self._processed += 1
        if self.event_hook is not None:
            self.event_hook(event)
        return event

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot(self, keep=None):
        """Checkpoint the clock, sequence counter and live event queue.

        Callbacks and their argument tuples are captured *by reference*,
        so the snapshot supports in-process rollback (re-running a fault
        scenario from a checkpoint), not cross-process persistence.
        ``keep`` optionally filters events (``keep(event) -> bool``); a
        joint Link+Simulator checkpoint excludes the link's in-flight
        finish event here and re-arms it from the link's own snapshot, so
        it is neither lost nor doubled.

        The event list is sorted into ``(time, priority, seq)`` order, so
        the same simulation state snapshots to byte-identical payloads
        under every engine (the heap's array layout and the calendar's
        bucket layout are storage details).
        """
        cal = self._cal
        source = self._queue if cal is None else cal.entries()
        events = [
            (e.time, e.priority, e.seq, e.callback, e.args)
            for _t, _p, _s, e in source
            if not e.cancelled and (keep is None or keep(e))
        ]
        events.sort(key=lambda item: (item[0], item[1], item[2]))
        return {
            "now": self._now,
            "seq": self._seq,
            "processed": self._processed,
            "events": events,
        }

    def restore(self, snap):
        """Roll back to a :meth:`snapshot`.

        Must not be called from inside a running event loop.  Event
        handles issued before the snapshot refer to the abandoned
        timeline (their ``epoch`` no longer matches): do not ``cancel()``
        them after restoring.  The active engine is rebuilt in place; a
        calendar that had fallen back to the heap stays on the heap (the
        population that forced the fallback is part of the restored
        state's history, not its future — the calendar re-engages on the
        next explicit construction).
        """
        if self._running:
            raise SimulationError("cannot restore while the loop is running")
        self._epoch += 1
        epoch = self._epoch
        entries = [
            (time, priority, seq,
             Event(time, priority, seq, callback, args, self, epoch))
            for time, priority, seq, callback, args in snap["events"]
        ]
        if self._cal is None:
            self._queue = entries
            heapq.heapify(self._queue)
        else:
            self._resizes_base += self._cal.resizes
            cal = CalendarQueue()
            for entry in entries:
                cal.push(entry)
            self._cal = cal
            self._queue = []
        self._cancelled = 0
        self._now = snap["now"]
        self._seq = snap["seq"]
        self._processed = snap["processed"]

    def __repr__(self):
        return (f"Simulator(now={self._now!r}, pending={self.pending}, "
                f"engine={self.engine!r})")
