"""The event loop: a deterministic discrete-event simulator.

Events are (time, priority, sequence) ordered; equal-time events run in
(priority, scheduling order), which makes every simulation reproducible —
an essential property when comparing two schedulers on the *same* arrival
pattern, as the paper's Figures 4-7 do.

Usage::

    sim = Simulator()
    sim.schedule(0.5, lambda: print("hello at", sim.now))
    sim.run(until=10.0)

Callbacks may schedule further events.  ``schedule`` returns an
:class:`Event` handle with ``cancel()``.
"""

import heapq

from repro.errors import SimulationError

__all__ = ["Simulator", "Event"]


class Event:
    """A scheduled callback; ``cancel()`` before it fires to skip it.

    A cancelled event stays in the simulator's heap (removal from the
    middle of a binary heap is O(n)); the simulator counts tombstones and
    compacts the heap once they dominate, so workloads that cancel in bulk
    (e.g. timers rescheduled every packet) stay O(live events).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "sim")

    def __init__(self, time, priority, seq, callback, args, sim=None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            # Detach first: a second cancel() (or one after the event has
            # fired) must not count the tombstone twice.
            self.sim = None
            sim._note_cancelled()

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, prio={self.priority}{state})"


class Simulator:
    """A single-threaded discrete-event simulator with a monotonic clock."""

    #: Compaction floor: below this many tombstones the heap is left alone
    #: (filtering a tiny queue costs more than the pops it would save).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        self._queue = []
        #: Monotone event sequence number.  A plain int (not
        #: itertools.count) so :meth:`snapshot` can capture and
        #: :meth:`restore` reinstate it — FIFO tie-breaking must replay
        #: identically after a checkpoint rollback.
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._cancelled = 0
        #: Optional callable ``hook(event)`` invoked after each processed
        #: event — the observability/profiling tap into the event loop
        #: (e.g. counting callbacks per simulated second).  ``None`` keeps
        #: the loop on the fast path.
        self.event_hook = None

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self):
        return self._processed

    @property
    def pending(self):
        """Number of live (not-yet-fired, not-cancelled) events."""
        return len(self._queue) - self._cancelled

    def _note_cancelled(self):
        """A queued event was cancelled; compact once tombstones dominate.

        Lazy compaction keeps ``cancel()`` O(1) amortised: the heap is
        rebuilt from its live events only when more than half of it is
        tombstones (and at least :data:`COMPACT_MIN_CANCELLED` of them),
        so the rebuild cost is covered by the cancellations it reclaims.
        """
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._queue)):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def schedule(self, time, callback, *args, priority=0):
        """Run ``callback(*args)`` at absolute ``time``.

        ``priority`` orders simultaneous events (lower runs first).
        Scheduling in the past raises :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}: clock is already {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay, callback, *args, priority=0):
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule(self._now + delay, callback, *args, priority=priority)

    def run(self, until=None, max_events=None):
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.  Returns the final clock value.

        With ``until``, the clock is advanced to exactly ``until`` even if
        the last event fires earlier (convenient for measurement windows).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            count = 0
            while self._queue:
                if max_events is not None and count >= max_events:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event.sim = None  # fired: a late cancel() is a no-op
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
                count += 1
                if self.event_hook is not None:
                    self.event_hook(event)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self):
        """Process exactly one (non-cancelled) event; returns it or None."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.sim = None  # fired: a late cancel() is a no-op
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            if self.event_hook is not None:
                self.event_hook(event)
            return event
        return None

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot(self, keep=None):
        """Checkpoint the clock, sequence counter and live event queue.

        Callbacks and their argument tuples are captured *by reference*,
        so the snapshot supports in-process rollback (re-running a fault
        scenario from a checkpoint), not cross-process persistence.
        ``keep`` optionally filters events (``keep(event) -> bool``); a
        joint Link+Simulator checkpoint excludes the link's in-flight
        finish event here and re-arms it from the link's own snapshot, so
        it is neither lost nor doubled.
        """
        events = [
            (e.time, e.priority, e.seq, e.callback, e.args)
            for e in self._queue
            if not e.cancelled and (keep is None or keep(e))
        ]
        return {
            "now": self._now,
            "seq": self._seq,
            "processed": self._processed,
            "events": events,
        }

    def restore(self, snap):
        """Roll back to a :meth:`snapshot`.

        Must not be called from inside a running event loop.  Event
        handles issued before the snapshot refer to the abandoned
        timeline: do not ``cancel()`` them after restoring.
        """
        if self._running:
            raise SimulationError("cannot restore while the loop is running")
        self._queue = [
            Event(time, priority, seq, callback, args, self)
            for time, priority, seq, callback, args in snap["events"]
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._now = snap["now"]
        self._seq = snap["seq"]
        self._processed = snap["processed"]

    def __repr__(self):
        return f"Simulator(now={self._now!r}, pending={self.pending})"
