"""Discrete-event simulation substrate.

The paper's experiments ran on MIT's NETSIM simulator; this package is the
from-scratch equivalent: a deterministic event loop (:class:`Simulator`), an
output link that drives any :class:`~repro.core.scheduler.PacketScheduler`
(:class:`Link`), and measurement probes (:class:`ServiceTrace`,
:class:`DelayMonitor`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.link import Link
from repro.sim.monitor import DelayMonitor, ServiceTrace
from repro.sim.network import DeliveryLog, Network

__all__ = ["Simulator", "Event", "Link", "ServiceTrace", "DelayMonitor",
           "Network", "DeliveryLog"]
