"""Traffic sources for the simulator.

Every source model used by the paper's evaluation (Section 5):

* :class:`CBRSource` — constant bit rate (the PS-n "peak = guaranteed rate"
  sessions of Figure 3, and overloaded variants at 1.5x).
* :class:`OnOffSource` — deterministic on/off (the RT-1 25ms/75ms source and
  the Figure 8 on/off sources).
* :class:`PoissonSource` — Poisson packet arrivals (the overloaded-Poisson
  scenarios of Figures 6-7).
* :class:`PacketTrainSource` — the CS-n sessions: bursts of back-to-back
  packets, modelling users behind an upstream multiplexer.
* :class:`TraceSource` — explicit arrival times, for tests.
* :class:`ShapedSource` — any source passed through a (sigma, rho) leaky
  bucket shaper, producing the constrained traffic the delay bounds assume.
"""

from repro.traffic.source import (
    CBRSource,
    IntervalSource,
    MarkovOnOffSource,
    OnOffSource,
    PacketTrainSource,
    PoissonSource,
    ShapedSource,
    Source,
    TraceSource,
)

__all__ = [
    "Source",
    "CBRSource",
    "OnOffSource",
    "IntervalSource",
    "MarkovOnOffSource",
    "PoissonSource",
    "PacketTrainSource",
    "TraceSource",
    "ShapedSource",
]
