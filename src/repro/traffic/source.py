"""Traffic source models.

A :class:`Source` generates :class:`~repro.core.packet.Packet` objects into
a :class:`~repro.sim.link.Link` according to its arrival process.  Sources
are attached once and started; they self-schedule on the simulator.

All sources share the conventions:

* ``packet_length`` is in bits (the paper uses 8 KB = 65536-bit packets);
* ``start_time`` / ``stop_time`` bound the emission window;
* randomness comes from a per-source ``random.Random(seed)`` so that two
  simulations of *different schedulers* see byte-identical arrivals — the
  property the paper's paired comparisons (H-WFQ vs H-WF2Q+) rely on.
"""

import random

from repro.core.flow import LeakyBucket
from repro.core.packet import Packet
from repro.errors import ConfigurationError

__all__ = [
    "Source",
    "CBRSource",
    "OnOffSource",
    "PoissonSource",
    "PacketTrainSource",
    "TraceSource",
    "ShapedSource",
]


class Source:
    """Base class: owns flow id, packet size, emission window, counters.

    Emission runs on one of two equivalent paths:

    * the classic path — every emission event calls :meth:`next_gap` to
      compute the next one (virtual dispatch + RNG machinery per packet);
    * the *timetable* path — arrival offsets are precomputed in chunks of
      :attr:`TIMETABLE_CHUNK` (see :meth:`_next_times`) and each emission
      event just reads the next absolute time from the array.

    The timetable replicates the classic path's arithmetic operation for
    operation (same floating-point chaining, same RNG draw order), so the
    two produce bit-identical arrival streams; subclasses opt in by
    setting ``TIMETABLE_CHUNK > 0``, which is only valid when the arrival
    process does not depend on simulation state other than the previous
    emission time.
    """

    #: Chunk size of the precomputed-arrival fast path; 0 selects the
    #: classic per-packet ``next_gap()`` path.
    TIMETABLE_CHUNK = 0

    #: Optional :class:`~repro.core.packet.PacketPool` the source draws
    #: packets from (set by pipeline builders that also hand the pool to
    #: the Link for recycling).  Acquired packets get a fresh uid exactly
    #: as construction would, so the uid stream — and every digest built
    #: on it — is identical with or without the pool.
    packet_pool = None

    def __init__(self, flow_id, packet_length, start_time=0.0, stop_time=None):
        if packet_length <= 0:
            raise ConfigurationError(
                f"packet_length must be positive, got {packet_length!r}"
            )
        if stop_time is not None and stop_time < start_time:
            raise ConfigurationError("stop_time precedes start_time")
        self.flow_id = flow_id
        self.packet_length = packet_length
        self.start_time = start_time
        self.stop_time = stop_time
        self.sim = None
        self.link = None
        self.packets_sent = 0
        self.bits_sent = 0
        #: Handle of the next scheduled emission event (None before start
        #: or after the source ran dry); lets :meth:`snapshot` capture the
        #: exact time of the pending emission without scanning the queue.
        self._pending = None
        self._timetable = ()
        self._timetable_idx = 0

    def attach(self, sim, link):
        """Bind to a simulator and a link; call before :meth:`start`."""
        self.sim = sim
        self.link = link
        return self

    def start(self):
        """Schedule the first emission."""
        if self.sim is None:
            raise ConfigurationError("attach(sim, link) before start()")
        if self.TIMETABLE_CHUNK > 0:
            self._timetable = ()
            self._timetable_idx = 0
            self._pending = self.sim.schedule(self.start_time,
                                              self._emit_timetable,
                                              pooled=True)
        else:
            self._pending = self.sim.schedule(self.start_time, self._emit,
                                              pooled=True)
        return self

    # -- subclass API ----------------------------------------------------
    def _emit(self):
        """Emit one packet now and schedule the next one.

        Every exit either re-arms ``_pending`` or clears it: emission
        events are scheduled ``pooled=True``, so no reference to a fired
        handle may survive this callback (the engine recycles it).
        """
        now = self.sim.now
        if self.stop_time is not None and now >= self.stop_time:
            self._pending = None
            return
        self._send_packet(now)
        gap = self.next_gap()
        if gap is not None:
            self._pending = self.sim.schedule(now + gap, self._emit,
                                              pooled=True)
        else:
            self._pending = None

    def _emit_timetable(self):
        """Emit one packet now; the next time comes from the chunk buffer.

        Same ``_pending`` discipline as :meth:`_emit` — the handle is
        re-armed or cleared on every exit.
        """
        now = self.sim.now
        if self.stop_time is not None and now >= self.stop_time:
            self._pending = None
            return
        self._send_packet(now)
        i = self._timetable_idx
        times = self._timetable
        if i >= len(times):
            times = self._timetable = self._next_times(
                now, self.TIMETABLE_CHUNK)
            i = 0
            if not times:
                self._pending = None
                return
        self._timetable_idx = i + 1
        self._pending = self.sim.schedule(times[i], self._emit_timetable,
                                          pooled=True)

    def _next_times(self, now, n):
        """Up to ``n`` upcoming absolute emission times after ``now``.

        The generic version chains :meth:`next_gap` calls, which is valid
        whenever the gap process never reads the simulator clock (CBR,
        Poisson, packet trains); clock-dependent processes must override
        (see :class:`OnOffSource`) or stay on the classic path.
        """
        out = []
        append = out.append
        next_gap = self.next_gap
        t = now
        for _ in range(n):
            gap = next_gap()
            if gap is None:
                break
            t = t + gap
            append(t)
        return out

    def _send_packet(self, now, length=None):
        length = length if length is not None else self.packet_length
        pool = self.packet_pool
        if pool is not None:
            packet = pool.acquire(self.flow_id, length, arrival_time=now,
                                  seqno=self.packets_sent)
        else:
            packet = Packet(self.flow_id, length, arrival_time=now,
                            seqno=self.packets_sent)
        self.packets_sent += 1
        self.bits_sent += length
        self.link.send(packet)
        return packet

    def next_gap(self):
        """Seconds until the next emission, or None to stop."""
        raise NotImplementedError

    # -- checkpoint / migration ------------------------------------------
    def snapshot(self):
        """Plain-data checkpoint of the emission state (picklable).

        Captures the counters, the remaining precomputed timetable, the
        RNG state (sources that draw randomness), and the absolute time of
        the pending emission event — everything a fresh process needs to
        resume the arrival stream bit-identically.  Restore into a source
        built from the *same* constructor arguments (the configuration is
        not captured), attached to a simulator whose clock has not passed
        the pending emission: :meth:`restore` re-schedules it there.
        Used by :mod:`repro.shard` for checkpoint-based shard migration.
        """
        pending = self._pending
        pending_time = None
        if (pending is not None and not pending.cancelled
                and pending.sim is self.sim
                and pending.epoch == self.sim.epoch):
            pending_time = pending.time
        snap = {
            "flow_id": self.flow_id,
            "packets_sent": self.packets_sent,
            "bits_sent": self.bits_sent,
            "pending_time": pending_time,
            "timetable": list(self._timetable),
            "timetable_idx": self._timetable_idx,
            "extra": self._snapshot_extra(),
        }
        rng = getattr(self, "_rng", None)
        if rng is not None:
            snap["rng"] = rng.getstate()
        return snap

    def restore(self, snap):
        """Resume from a :meth:`snapshot`; re-schedules the pending emission.

        Call after :meth:`attach` *instead of* :meth:`start`.
        """
        if snap["flow_id"] != self.flow_id:
            raise ConfigurationError(
                f"snapshot is for flow {snap['flow_id']!r}, cannot restore "
                f"into source of flow {self.flow_id!r}"
            )
        if self.sim is None:
            raise ConfigurationError("attach(sim, link) before restore()")
        self.packets_sent = snap["packets_sent"]
        self.bits_sent = snap["bits_sent"]
        self._timetable = list(snap["timetable"])
        self._timetable_idx = snap["timetable_idx"]
        rng_state = snap.get("rng")
        if rng_state is not None:
            self._rng.setstate(rng_state)
        self._restore_extra(snap["extra"])
        pending_time = snap["pending_time"]
        if pending_time is not None:
            callback = (self._emit_timetable if self.TIMETABLE_CHUNK > 0
                        else self._emit)
            self._pending = self.sim.schedule(pending_time, callback,
                                              pooled=True)
        return self

    def _snapshot_extra(self):
        """Hook: subclass emission state beyond the base fields."""
        return None

    def _restore_extra(self, extra):
        """Hook: restore the state captured by :meth:`_snapshot_extra`."""


class CBRSource(Source):
    """Constant bit rate: one packet every ``packet_length / rate`` seconds."""

    TIMETABLE_CHUNK = 512

    def __init__(self, flow_id, rate, packet_length, start_time=0.0,
                 stop_time=None):
        super().__init__(flow_id, packet_length, start_time, stop_time)
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate!r}")
        self.rate = rate

    def next_gap(self):
        return self.packet_length / self.rate

    def _next_times(self, now, n):
        # Chained addition (t + gap, not now + k*gap): identical floating
        # point to the classic event-per-event accumulation.
        gap = self.packet_length / self.rate
        out = []
        append = out.append
        t = now
        for _ in range(n):
            t = t + gap
            append(t)
        return out


class PoissonSource(Source):
    """Poisson arrivals with mean rate ``rate`` (bits/second)."""

    TIMETABLE_CHUNK = 256

    def __init__(self, flow_id, rate, packet_length, seed=0, start_time=0.0,
                 stop_time=None):
        super().__init__(flow_id, packet_length, start_time, stop_time)
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate!r}")
        self.rate = rate
        self._rng = random.Random(seed)

    def next_gap(self):
        mean_gap = self.packet_length / self.rate
        return self._rng.expovariate(1.0 / mean_gap)

    def _next_times(self, now, n):
        # One draw per packet in the same order as next_gap(), with the
        # per-call recomputation of the rate parameter hoisted (it is the
        # same float every time).
        mean_gap = self.packet_length / self.rate
        lambd = 1.0 / mean_gap
        expovariate = self._rng.expovariate
        out = []
        append = out.append
        t = now
        for _ in range(n):
            t = t + expovariate(lambd)
            append(t)
        return out


class OnOffSource(Source):
    """Deterministic on/off: CBR at ``peak_rate`` during on periods.

    The duty cycle begins with an on period at ``start_time``.  RT-1 in
    Figure 3 is ``OnOffSource(..., on_duration=0.025, off_duration=0.075)``;
    the Figure 8 on/off sources toggle with second-scale periods.
    """

    TIMETABLE_CHUNK = 256

    def __init__(self, flow_id, peak_rate, packet_length, on_duration,
                 off_duration, start_time=0.0, stop_time=None):
        super().__init__(flow_id, packet_length, start_time, stop_time)
        if peak_rate <= 0:
            raise ConfigurationError(f"peak_rate must be positive, got {peak_rate!r}")
        if on_duration <= 0 or off_duration < 0:
            raise ConfigurationError("invalid on/off durations")
        self.peak_rate = peak_rate
        self.on_duration = on_duration
        self.off_duration = off_duration

    def is_on(self, now):
        """True if ``now`` falls in an on period of the duty cycle."""
        if now < self.start_time:
            return False
        phase = (now - self.start_time) % (self.on_duration + self.off_duration)
        return phase < self.on_duration

    def next_gap(self):
        gap = self.packet_length / self.peak_rate
        now = self.sim.now
        cycle = self.on_duration + self.off_duration
        phase = (now - self.start_time) % cycle
        # Floating-point modulo can land infinitesimally *below* the cycle
        # boundary (e.g. 0.3 % 0.1 == 0.09999...), which would make the
        # deferral gap ~1e-17 and stall the clock; snap such phases to 0.
        if cycle - phase < 1e-9 * cycle:
            phase = 0.0
        if phase + gap >= self.on_duration:
            # The next emission would fall in (or beyond) the off period:
            # defer it to the start of the next on period.
            return cycle - phase
        return gap

    def _next_times(self, now, n):
        # The gap depends on the emission time (duty-cycle phase), so the
        # generic gap-chaining precompute does not apply; this replays
        # next_gap()'s arithmetic with the running timetable time in place
        # of the simulator clock — operation for operation, including the
        # boundary snap, so the times are bit-identical.
        gap = self.packet_length / self.peak_rate
        cycle = self.on_duration + self.off_duration
        on = self.on_duration
        start = self.start_time
        snap = 1e-9 * cycle
        out = []
        append = out.append
        t = now
        for _ in range(n):
            phase = (t - start) % cycle
            if cycle - phase < snap:
                phase = 0.0
            if phase + gap >= on:
                t = t + (cycle - phase)
            else:
                t = t + gap
            append(t)
        return out


class IntervalSource(Source):
    """CBR at ``peak_rate`` during explicit [start, end) intervals.

    The Figure 8 on/off sources toggle at irregular, scripted times; this
    source takes that schedule directly: ``intervals`` is an iterable of
    (start, end) pairs (non-overlapping; end may be None for "until
    stop_time/forever" on the last interval).
    """

    def __init__(self, flow_id, peak_rate, packet_length, intervals,
                 stop_time=None):
        ivals = []
        for start, end in intervals:
            if end is not None and end <= start:
                raise ConfigurationError(f"bad interval ({start!r}, {end!r})")
            ivals.append((start, end))
        ivals.sort(key=lambda iv: iv[0])
        for (s1, e1), (s2, _e2) in zip(ivals, ivals[1:]):
            if e1 is None or e1 > s2:
                raise ConfigurationError("intervals overlap or are unordered")
        if not ivals:
            raise ConfigurationError("need at least one interval")
        super().__init__(flow_id, packet_length, start_time=ivals[0][0],
                         stop_time=stop_time)
        if peak_rate <= 0:
            raise ConfigurationError(f"peak_rate must be positive, got {peak_rate!r}")
        self.peak_rate = peak_rate
        self.intervals = ivals

    def is_on(self, now):
        for start, end in self.intervals:
            if start <= now and (end is None or now < end):
                return True
        return False

    def next_gap(self):
        gap = self.packet_length / self.peak_rate
        now = self.sim.now
        target = now + gap
        for start, end in self.intervals:
            if end is None or target < end:
                if target >= start:
                    return target - now      # stays inside this interval
                return start - now           # jump to the interval's start
        return None                          # no more intervals


class PacketTrainSource(Source):
    """Bursts ("trains") of back-to-back packets with idle gaps between.

    Models the CS-n sessions of Figure 3: traffic from several users merged
    by an upstream multiplexer arrives as trains of ``train_length`` packets
    spaced at the upstream line rate (``line_rate``), one train every
    ``train_interval`` seconds.  With ``jitter_seed`` set, intervals are
    uniformly jittered by +-``jitter`` to avoid perfect phase lock.
    """

    #: The gap process reads only internal state (train position, jitter
    #: RNG), never the simulator clock, so the generic gap-chaining
    #: timetable applies as-is.
    TIMETABLE_CHUNK = 256

    def __init__(self, flow_id, packet_length, train_length, train_interval,
                 line_rate, start_time=0.0, stop_time=None, jitter=0.0,
                 jitter_seed=None):
        super().__init__(flow_id, packet_length, start_time, stop_time)
        if train_length < 1:
            raise ConfigurationError("train_length must be >= 1")
        if train_interval <= 0 or line_rate <= 0:
            raise ConfigurationError("invalid train interval or line rate")
        self.train_length = train_length
        self.train_interval = train_interval
        self.line_rate = line_rate
        self.jitter = jitter
        self._rng = random.Random(jitter_seed) if jitter_seed is not None else None
        self._position = 0  # index within the current train

    def next_gap(self):
        self._position += 1
        if self._position < self.train_length:
            return self.packet_length / self.line_rate
        self._position = 0
        gap = self.train_interval - (self.train_length - 1) * self.packet_length / self.line_rate
        if gap <= 0:
            raise ConfigurationError(
                "train_interval shorter than the train itself"
            )
        if self._rng is not None and self.jitter > 0:
            gap += self._rng.uniform(-self.jitter, self.jitter)
            gap = max(gap, 0.0)
        return gap

    @property
    def average_rate(self):
        return self.train_length * self.packet_length / self.train_interval

    def _snapshot_extra(self):
        return {"position": self._position}

    def _restore_extra(self, extra):
        self._position = extra["position"]


class MarkovOnOffSource(Source):
    """Two-state Markov (exponential on/off) source — bursty cross-traffic.

    On and off period lengths are exponentially distributed with the given
    means; during on periods packets leave at ``peak_rate``.  The classic
    voice/VBR model: mean rate ``peak * on / (on + off)`` with geometric
    burst lengths, i.e. far burstier than Poisson at the same mean.
    """

    def __init__(self, flow_id, peak_rate, packet_length, mean_on, mean_off,
                 seed=0, start_time=0.0, stop_time=None):
        super().__init__(flow_id, packet_length, start_time, stop_time)
        if peak_rate <= 0:
            raise ConfigurationError(f"peak_rate must be positive, got {peak_rate!r}")
        if mean_on <= 0 or mean_off <= 0:
            raise ConfigurationError("mean_on and mean_off must be positive")
        self.peak_rate = peak_rate
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = random.Random(seed)
        self._on_until = None  # set when the first emission fires

    @property
    def average_rate(self):
        return self.peak_rate * self.mean_on / (self.mean_on + self.mean_off)

    def next_gap(self):
        now = self.sim.now
        if self._on_until is None:
            self._on_until = now + self._rng.expovariate(1.0 / self.mean_on)
        gap = self.packet_length / self.peak_rate
        if now + gap < self._on_until:
            return gap
        # Burst over: draw an off period, then a fresh on period.
        off = self._rng.expovariate(1.0 / self.mean_off)
        resume = self._on_until + off
        self._on_until = resume + self._rng.expovariate(1.0 / self.mean_on)
        return resume - now

    def _snapshot_extra(self):
        return {"on_until": self._on_until}

    def _restore_extra(self, extra):
        self._on_until = extra["on_until"]


class TraceSource(Source):
    """Emits packets at explicit times (optionally with per-packet lengths).

    ``schedule`` is an iterable of times, or of (time, length) pairs.
    """

    def __init__(self, flow_id, schedule, packet_length):
        entries = []
        for item in schedule:
            if isinstance(item, tuple):
                entries.append(item)
            else:
                entries.append((item, packet_length))
        entries.sort(key=lambda e: e[0])
        start = entries[0][0] if entries else 0.0
        super().__init__(flow_id, packet_length, start_time=start)
        self._entries = entries
        self._next = 0

    def _emit(self):
        now = self.sim.now
        entries = self._entries
        i = self._next
        n = len(entries)
        batch = []
        while i < n and entries[i][0] <= now:
            length = entries[i][1]
            batch.append(Packet(self.flow_id, length, arrival_time=now,
                                seqno=self.packets_sent))
            self.packets_sent += 1
            self.bits_sent += length
            i += 1
        self._next = i
        if batch:
            # Same-instant packets go through the link's batch enqueue in
            # one call; shapers and other link impersonators that only
            # offer send() get the per-packet loop.
            send_batch = getattr(self.link, "send_batch", None)
            if send_batch is not None and len(batch) > 1:
                send_batch(batch)
            else:
                for packet in batch:
                    self.link.send(packet)
        if i < n:
            # Keep the handle: snapshot() needs the pending emission time
            # to make the trace stream resumable after a checkpoint.
            self._pending = self.sim.schedule(entries[i][0], self._emit,
                                              pooled=True)
        else:
            self._pending = None

    def next_gap(self):  # pragma: no cover - _emit is overridden
        return None

    def _snapshot_extra(self):
        # The trace itself is configuration (rebuilt by the constructor);
        # only the cursor is emission state.
        return {"next": self._next}

    def _restore_extra(self, extra):
        self._next = extra["next"]


class ShapedSource(Source):
    """Wrap any source with a (sigma, rho) leaky-bucket shaper.

    Packets produced by the inner source are delayed until they conform;
    the output is guaranteed leaky-bucket constrained, which is the
    hypothesis of the paper's delay-bound corollaries.  Implemented by
    interposing on the inner source's link: construct the shaper, then
    attach/start the *shaper* (it attaches the inner source to itself).
    """

    def __init__(self, inner, sigma, rho):
        super().__init__(inner.flow_id, inner.packet_length,
                         inner.start_time, inner.stop_time)
        self.inner = inner
        self.bucket = LeakyBucket(sigma, rho)
        self._release_at = 0.0  # shaper output must stay FIFO

    def attach(self, sim, link):
        super().attach(sim, link)
        self.inner.attach(sim, self)  # we impersonate the inner's link
        return self

    def start(self):
        if self.sim is None:
            raise ConfigurationError("attach(sim, link) before start()")
        self.inner.start()
        return self

    # The inner source calls .send() on us as if we were the link.
    def send(self, packet):
        now = self.sim.now
        # Keep the bucket's clock monotonic: packets leave the shaper FIFO,
        # so conformance is evaluated no earlier than the previous release.
        earliest = max(now, self._release_at)
        release = self.bucket.earliest_conforming_time(packet.length, earliest)
        self.bucket.consume(packet.length, release)
        self._release_at = release
        if release <= now:
            self._forward(packet)
        else:
            # Handle discarded immediately: safe to recycle once fired.
            self.sim.schedule(release, self._forward, packet, pooled=True)

    def _forward(self, packet):
        packet.arrival_time = self.sim.now
        self.packets_sent += 1
        self.bits_sent += packet.length
        self.link.send(packet)

    def next_gap(self):  # pragma: no cover - emission is delegated
        return None

    def snapshot(self):
        raise NotImplementedError(
            "ShapedSource does not support checkpointing (in-flight shaped "
            "packets live in closure-scheduled events); checkpoint before "
            "starting shaped traffic or leave its cell unmigrated")
