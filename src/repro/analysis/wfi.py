"""Empirical Worst-case Fair Index measurement from a service trace.

Definitions 1-2 of the paper, evaluated on simulation output:

* **B-WFI** (bits): the smallest alpha such that
  ``W_i(t1, t2) >= r_i (t2 - t1) - alpha`` for every interval inside a
  session-i backlogged period.  Computed in O(events) by scanning
  ``f(t) = r_i * t - W_i(0, t)`` (piecewise linear: slope ``r_i`` while the
  flow waits, ``r_i - r`` while it transmits) and tracking, within each
  backlogged period, the maximum of ``f(t2) - min_{t1 <= t2} f(t1)``.

* **T-WFI** (seconds): the smallest A such that every packet's delay is at
  most ``Q_i(a)/r_i + A``, where ``Q_i(a)`` counts the bits in the session
  queue on arrival (including the arriving packet; a packet still being
  transmitted counts in full).

The measurement assumes the trace contains no buffer drops for the measured
flow (arrivals and services must pair up); a mismatch raises ValueError.
"""

__all__ = ["empirical_bwfi", "empirical_twfi", "backlogged_periods"]


def backlogged_periods(trace, flow_id):
    """[(start, end)] intervals during which the flow's queue is non-empty.

    Reconstructed by merging the flow's arrivals (+1) with its service
    completions (-1).  The final period is closed at the last event even if
    the flow is still backlogged when the trace ends.
    """
    arrivals = [t for _fid, t, _len in trace.arrivals_of(flow_id)]
    finishes = [r.finish_time for r in trace.services_of(flow_id)]
    if len(finishes) > len(arrivals):
        raise ValueError(
            f"flow {flow_id!r}: more services than arrivals in trace"
        )
    events = [(t, +1) for t in arrivals] + [(t, -1) for t in finishes]
    # At equal times, departures before arrivals: a packet finishing as
    # another arrives separates two backlogged periods, matching the
    # busy-period convention of the schedulers.
    events.sort(key=lambda e: (e[0], e[1]))
    periods = []
    depth = 0
    start = None
    last_time = None
    for t, delta in events:
        prev = depth
        depth += delta
        if prev == 0 and depth > 0:
            start = t
        elif prev > 0 and depth == 0:
            periods.append((start, t))
            start = None
        last_time = t
    if start is not None:
        periods.append((start, last_time))
    return periods


def empirical_bwfi(trace, flow_id, guaranteed_rate):
    """Measured B-WFI (bits) of a flow against its guaranteed rate.

    ``guaranteed_rate`` is r_i = phi_i * r (for H-PFQ, the product of
    normalised shares down the tree times the link rate, i.e.
    ``spec.guaranteed_rate(leaf, link_rate)``).
    """
    services = trace.services_of(flow_id)
    periods = backlogged_periods(trace, flow_id)
    if not periods:
        return 0.0

    # Breakpoints of f(t) = r_i * t - W_i(0, t): service start/finish times.
    # We walk each backlogged period, tracking min f so far and max gap.
    def f_slope_segments():
        """Yield (t_start, t_end, serving) covering all service activity."""
        cursor = None
        for rec in services:
            if cursor is not None and rec.start_time > cursor:
                yield (cursor, rec.start_time, False)
            yield (rec.start_time, rec.finish_time, True)
            cursor = rec.finish_time

    worst = 0.0
    seg_iter = iter(f_slope_segments())
    segment = next(seg_iter, None)
    for p_start, p_end in periods:
        f_val = 0.0            # f relative to the period start
        f_min = 0.0
        t = p_start
        # Skip segments that ended before this period.
        while segment is not None and segment[1] <= p_start:
            segment = next(seg_iter, None)
        while t < p_end:
            if segment is None or segment[0] >= p_end:
                nxt, serving = p_end, False
            elif segment[0] > t:
                nxt, serving = segment[0], False
            else:
                nxt, serving = min(segment[1], p_end), segment[2]
            dt = nxt - t
            if serving:
                f_val += (guaranteed_rate - trace_link_rate(trace)) * dt
            else:
                f_val += guaranteed_rate * dt
            t = nxt
            if segment is not None and t >= segment[1]:
                segment = next(seg_iter, None)
            if f_val < f_min:
                f_min = f_val
            elif f_val - f_min > worst:
                worst = f_val - f_min
    return worst


def trace_link_rate(trace):
    """Infer the link rate from any service record (length / duration)."""
    if not trace.services:
        raise ValueError("empty trace: cannot infer link rate")
    rec = trace.services[0]
    return rec.packet.length / (rec.finish_time - rec.start_time)


def empirical_twfi(trace, flow_id, guaranteed_rate):
    """Measured T-WFI (seconds): max over packets of
    ``delay - Q_i(arrival) / r_i`` (Definition 1, rearranged)."""
    arrivals = trace.arrivals_of(flow_id)
    services = trace.services_of(flow_id)
    if len(services) > len(arrivals):
        raise ValueError(
            f"flow {flow_id!r}: more services than arrivals in trace"
        )
    finish_times = sorted(r.finish_time for r in services)
    finish_by_uid = {r.packet.uid: r.finish_time for r in services}
    # Cumulative arrived bits at each arrival; cumulative served bits by
    # scanning finish events.
    worst = 0.0
    arrived_bits = 0.0
    served_idx = 0
    served_bits = 0.0
    lengths = {r.packet.uid: r.packet.length for r in services}
    uid_order = [r.packet.uid for r in services]
    finish_events = sorted(
        ((finish_by_uid[uid], lengths[uid]) for uid in uid_order)
    )
    for idx, (_fid, a_time, length) in enumerate(arrivals):
        # Bits fully served strictly before (or at) the arrival instant.
        while served_idx < len(finish_events) and finish_events[served_idx][0] <= a_time:
            served_bits += finish_events[served_idx][1]
            served_idx += 1
        arrived_bits += length
        queue_bits = arrived_bits - served_bits  # includes this packet
        # Find this packet's departure (same order as arrivals: FIFO flow).
        if idx < len(finish_times):
            depart = finish_times[idx]
            slack = (depart - a_time) - queue_bits / guaranteed_rate
            if slack > worst:
                worst = slack
    return worst
