"""Service lag: how far a flow's service trails (or leads) its arrivals.

Figure 5 of the paper plots, for the real-time session, the cumulative
arrival curve against the cumulative service curve; the vertical gap is the
number of packets queued, and the horizontal gap at a given packet count is
how long that packet waited.  Under H-WF2Q+ the two curves hug each other;
under H-WFQ they separate by many packets during the delay spikes.

:func:`service_lag_series` merges the two step curves into a single series
of (time, arrived - served); :func:`max_service_lag` is the worst vertical
gap, the quantity the figure makes visible.
"""

__all__ = ["service_lag_series", "max_service_lag"]


def service_lag_series(trace, flow_id, unit="packets"):
    """[(time, lag)] where lag = cumulative arrivals - cumulative service.

    The series contains one point per arrival or service-completion event,
    in time order (ties: service first, so the lag is conservative).
    """
    arrival_curve = trace.arrival_curve(flow_id, unit=unit)
    service_curve = trace.service_curve(flow_id, unit=unit)
    events = [(t, 0, total) for t, total in service_curve]
    events += [(t, 1, total) for t, total in arrival_curve]
    events.sort(key=lambda e: (e[0], e[1]))
    arrived = 0
    served = 0
    out = []
    for t, kind, total in events:
        if kind == 1:
            arrived = total
        else:
            served = total
        out.append((t, arrived - served))
    return out


def max_service_lag(trace, flow_id, unit="packets"):
    """The worst arrival-vs-service gap, in packets or bits."""
    series = service_lag_series(trace, flow_id, unit=unit)
    if not series:
        return 0
    return max(lag for _t, lag in series)
