"""Batched GPS fluid reference: whole-trace tag and finish computation.

:class:`~repro.core.gps.GPSFluidSystem` is an *online* fluid server — one
``arrive`` per packet, a heap push per tag, a heap-ordered session-empty
scan per ``advance``.  That is the right shape for the packet schedulers
that embed it, but the analysis suites use GPS differently: the whole
arrival trace is known up front and only the virtual tags and real fluid
finish times are wanted.  Driving the event loop packet-by-packet there
is pure overhead — it dominates the bound-validation tests, whose GPS
reference is recomputed for every (scheduler, N) cell.

:func:`fluid_finish_times` computes the same quantities trace-at-a-time:

1. **Tag pass** (sequential over *arrival instants*, vectorized within):
   packets of one flow arriving at one instant chain as
   ``F_k = F_{k-1} + L_k / (phi_i * r)`` from
   ``base = max(F_prev, V(t))`` — a cumulative sum, computed with numpy
   for large bursts and a plain loop otherwise.  Between instants the
   fluid state advances exactly like the online system (session-empty
   events from a lazily-invalidated heap), but there is one such event
   per *(flow, instant)* group rather than per packet.
2. **Polyline pass**: every continuous advance appends one segment
   ``(v_start, t_start, sum_phi)`` of the piecewise-linear ``V``; the
   trace's busy periods each own an ascending segment array.
3. **Finish pass** (vectorized): each packet's real fluid finish is its
   virtual finish mapped through its busy period's polyline —
   ``t_seg + (F - v_seg) * sum_phi_seg``, the very expression
   ``GPSFluidSystem._emit_departures`` evaluates, located with one
   ``searchsorted`` per busy period.

Numerics contract (pinned by ``tests/test_fluid_batch.py``): for float
inputs the batched path is **bit-equivalent** to driving
:class:`~repro.core.gps.GPSFluidSystem` — same IEEE-754 expression
sequence on the same operands in the same order (``numpy.cumsum``
accumulates left-to-right, matching the online chain).  ``exact=True``
bypasses the batching entirely and drives the online system, which is
also the path to use for ``Fraction`` inputs: the batched lanes coerce
nothing, but ``searchsorted``/``cumsum`` only see floats on the numpy
lane, so exact arithmetic stays a first-class citizen only through the
online system.  Assertions that need Fraction-faithful GPS (checkpoint
digests, exact-tie service order) should pass ``exact=True``.

numpy is optional: without it the same expressions run in plain loops
(both lanes pinned identical by the differential suite).
"""

import heapq
import itertools
from bisect import bisect_left

from repro.core.batch import HAVE_NUMPY, NUMPY_MIN_CHUNK
from repro.core.gps import GPSFluidSystem, GPSPacket
from repro.errors import (
    ConfigurationError,
    DuplicateFlowError,
    UnknownFlowError,
)

if HAVE_NUMPY:
    import numpy as _np

__all__ = ["fluid_finish_times"]


class _Flow:
    __slots__ = ("flow_id", "phi", "last_finish", "final_finish",
                 "backlogged")

    def __init__(self, flow_id):
        self.flow_id = flow_id
        self.phi = 0.0
        self.last_finish = 0
        self.final_finish = 0
        self.backlogged = False


class _Fluid:
    """The sequential fluid state of the tag pass (one per trace)."""

    __slots__ = ("rate", "flows", "t", "v", "sum_phi", "backlogged",
                 "events", "seq", "period", "v_starts", "t_starts", "phis")

    def __init__(self, rate, flows):
        self.rate = rate
        self.flows = flows
        self.t = 0
        self.v = 0
        self.sum_phi = 0
        self.backlogged = set()
        self.events = []            # (final_finish, seq, _Flow), lazy
        self.seq = itertools.count()
        self.period = -1            # current busy-period index
        # Per busy period: ascending polyline segment columns.
        self.v_starts = []
        self.t_starts = []
        self.phis = []

    # -- polyline ------------------------------------------------------
    def _segment(self):
        """Open a new polyline segment at the current (v, t, slope)."""
        self.v_starts[self.period].append(self.v)
        self.t_starts[self.period].append(self.t)
        self.phis[self.period].append(self.sum_phi)

    # -- event processing (mirrors GPSFluidSystem.advance) -------------
    def _peek(self):
        events = self.events
        while events:
            tag, _seq, flow = events[0]
            if flow.backlogged and tag == flow.final_finish:
                return tag, flow
            heapq.heappop(events)
        return None

    def advance(self, now):
        while self.backlogged:
            event = self._peek()
            if event is None:
                break
            tag, flow = event
            dt = (tag - self.v) * self.sum_phi
            t_reach = self.t + dt
            if t_reach <= now:
                if tag > self.v:
                    self._segment()
                    self.v = tag
                    self.t = t_reach
                flow.backlogged = False
                self.backlogged.discard(flow.flow_id)
                self.sum_phi -= flow.phi
                if not self.backlogged:
                    self.sum_phi = 0  # kill numeric residue
                heapq.heappop(self.events)
            else:
                break
        if self.backlogged and now > self.t:
            self._segment()
            self.v = self.v + (now - self.t) / self.sum_phi
        self.t = max(self.t, now)

    def drain(self):
        """Advance until the system empties (all tags crossed)."""
        while self.backlogged:
            event = self._peek()
            if event is None:
                break
            tag, _flow = event
            self.advance(self.t + (tag - self.v) * self.sum_phi)


def _group_tags(fluid, flow, lengths, rate):
    """Virtual tags of one (flow, instant) burst; returns (starts, finishes).

    The chain ``F_k = F_{k-1} + L_k / (phi * r)`` from
    ``base = max(F_prev, V)`` is exactly the online system's per-packet
    recurrence; numpy's left-to-right ``cumsum`` reproduces its rounding
    bit-for-bit, so the lanes differ only in speed.
    """
    base = flow.last_finish
    if fluid.v > base:
        base = fluid.v
    denom = flow.phi * rate
    n = len(lengths)
    if HAVE_NUMPY and n >= NUMPY_MIN_CHUNK:
        deltas = _np.empty(n + 1)
        deltas[0] = base
        _np.divide(_np.asarray(lengths, dtype=_np.float64), denom,
                   out=deltas[1:])
        finishes = _np.cumsum(deltas)[1:]
        starts = [base] + [float(f) for f in finishes[:-1]]
        finishes = [float(f) for f in finishes]
        return starts, finishes
    starts = []
    finishes = []
    acc = base
    for length in lengths:
        starts.append(acc)
        acc = acc + length / denom
        finishes.append(acc)
    return starts, finishes


def _map_finishes(fluid, packets, periods):
    """Fill ``finish_time`` by inverting F through each period's polyline."""
    by_period = {}
    for pkt, period in zip(packets, periods):
        by_period.setdefault(period, []).append(pkt)
    for period, members in by_period.items():
        v_starts = fluid.v_starts[period]
        t_starts = fluid.t_starts[period]
        phis = fluid.phis[period]
        if HAVE_NUMPY and len(members) >= NUMPY_MIN_CHUNK:
            v_arr = _np.asarray(v_starts)
            finishes = _np.asarray([p.virtual_finish for p in members],
                                   dtype=_np.float64)
            idx = _np.searchsorted(v_arr, finishes, side="left") - 1
            _np.clip(idx, 0, len(v_starts) - 1, out=idx)
            for pkt, i in zip(members, idx):
                i = int(i)
                pkt.finish_time = (t_starts[i]
                                   + (pkt.virtual_finish - v_starts[i])
                                   * phis[i])
        else:
            for pkt in members:
                i = bisect_left(v_starts, pkt.virtual_finish) - 1
                if i < 0:
                    i = 0
                pkt.finish_time = (t_starts[i]
                                   + (pkt.virtual_finish - v_starts[i])
                                   * phis[i])


def _exact(flows, arrivals, rate):
    system = GPSFluidSystem(rate)
    for flow_id, share in flows:
        system.add_flow(flow_id, share)
    packets = [system.arrive(flow_id, length, when)
               for flow_id, length, when in arrivals]
    system.finish_order()  # drain: fills every finish_time in place
    return packets


def fluid_finish_times(flows, arrivals, rate, exact=False):
    """GPS virtual tags and real fluid finish times for a whole trace.

    ``flows`` is ``[(flow_id, share), ...]``; ``arrivals`` is
    ``[(flow_id, length, arrival_time), ...]`` with non-decreasing
    arrival times.  Returns one :class:`~repro.core.gps.GPSPacket` per
    arrival **in input order**, with ``virtual_start`` /
    ``virtual_finish`` / ``finish_time`` filled — the quantities the
    WFI/delay analyses compare packet systems against.

    ``exact=True`` drives the online
    :class:`~repro.core.gps.GPSFluidSystem` instead (required for
    ``Fraction``-faithful results; bit-identical for floats — see the
    module docstring).
    """
    arrivals = list(arrivals)
    if exact:
        return _exact(flows, arrivals, rate)
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate!r}")
    registry = {}
    total = 0
    for flow_id, share in flows:
        if share <= 0:
            raise ConfigurationError(
                f"flow {flow_id!r}: share must be positive, got {share!r}")
        if flow_id in registry:
            raise DuplicateFlowError(flow_id)
        registry[flow_id] = _Flow(flow_id)
        total += share
    for flow_id, share in flows:
        registry[flow_id].phi = share / total
    fluid = _Fluid(rate, registry)

    packets = []
    periods = []
    uids = itertools.count()
    index = 0
    n = len(arrivals)
    last_t = None
    while index < n:
        when = arrivals[index][2]
        if last_t is not None and when < last_t:
            raise ValueError(
                f"arrival times must be non-decreasing: {when!r} after "
                f"{last_t!r}")
        last_t = when
        # One instant: every arrival sharing this timestamp.
        stop = index
        while stop < n and arrivals[stop][2] == when:
            stop += 1
        fluid.advance(when)
        if not fluid.backlogged:
            # New system busy period: V restarts at zero and every stale
            # finish tag is irrelevant (all packets served).
            fluid.v = 0
            for flow in registry.values():
                flow.last_finish = 0
            fluid.period += 1
            fluid.v_starts.append([])
            fluid.t_starts.append([])
            fluid.phis.append([])
        # Group the instant's packets by flow (per-flow chaining is
        # interleaving-independent: V is frozen within the instant).
        groups = {}
        for k in range(index, stop):
            flow_id, length, _t = arrivals[k]
            if length <= 0:
                raise ValueError(
                    f"length must be positive, got {length!r}")
            if flow_id not in registry:
                raise UnknownFlowError(flow_id)
            groups.setdefault(flow_id, ([], []))
            groups[flow_id][0].append(length)
            groups[flow_id][1].append(k)
        slots = [None] * (stop - index)
        for flow_id, (lengths, where) in groups.items():
            flow = registry[flow_id]
            starts, finishes = _group_tags(fluid, flow, lengths, rate)
            for length, k, s, f in zip(lengths, where, starts, finishes):
                slots[k - index] = GPSPacket(
                    next(uids), flow_id, length, when, s, f)
            flow.last_finish = finishes[-1]
            flow.final_finish = finishes[-1]
            heapq.heappush(fluid.events,
                           (finishes[-1], next(fluid.seq), flow))
            if not flow.backlogged:
                flow.backlogged = True
                fluid.backlogged.add(flow_id)
                fluid.sum_phi += flow.phi
        packets.extend(slots)
        periods.extend([fluid.period] * (stop - index))
        index = stop
    fluid.drain()
    _map_finishes(fluid, packets, periods)
    return packets
