"""Closed-form worst-case fairness and delay bounds from the paper.

All quantities are in bits (WFI) and seconds (delay); rates in bits/second.

One-level servers
-----------------
* :func:`wf2q_wfi` — Theorems 3(2)/4(2): the B-WFI of WF2Q and WF2Q+,
  ``L_i,max + (L_max - L_i,max) * r_i / r`` — independent of N.
* :func:`wfq_wfi_lower_bound` — the Section 3.1 construction: WFQ can run a
  session ~N/2 packets ahead, so its B-WFI grows linearly with N.
* :func:`wf2q_delay_bound` / :func:`wfq_delay_bound` — the GPS-tight bound
  ``sigma/r_i + L_max/r`` for a (sigma, r_i)-constrained session
  (Theorem 3(3)/4(3); WFQ shares it, Section 3.1).
* :func:`scfq_delay_bound` — Golestani's bound, looser by one maximum
  packet time per *competing session*: ``sigma/r_i + L_i/r_i +
  sum_{j != i} L_j,max / r``.

Hierarchical servers
--------------------
* :func:`hpfq_bwfi` — Theorem 1: the session B-WFI of an H-PFQ server is
  the share-weighted sum of per-node B-WFIs along the leaf-to-root path,
  ``sum_h (phi_i / phi_p^h(i)) * alpha_p^h(i)``.
* :func:`hpfq_delay_bound` — Corollaries 1-2: for a leaky-bucket session,
  ``sigma/r_i + sum_h alpha_p^h(i) / r_p^h(i)``; with uniform packets and
  WF2Q+ nodes this is ``sigma/r_i + sum_h L_max / r_p^h(i)``.
"""

__all__ = [
    "wf2q_wfi",
    "wfq_wfi_lower_bound",
    "wf2q_delay_bound",
    "wfq_delay_bound",
    "scfq_delay_bound",
    "hpfq_bwfi",
    "hpfq_delay_bound",
    "end_to_end_delay_bound",
    "sbi_from_delay_bound",
]


def wf2q_wfi(l_i_max, l_max, rate_i, rate):
    """B-WFI (bits) of WF2Q/WF2Q+ for session i — eq. (26)/(30)."""
    return l_i_max + (l_max - l_i_max) * rate_i / rate


def wfq_wfi_lower_bound(n_sessions, l_max, rate_i, rate):
    """A lower bound on WFQ's B-WFI from the Figure 2 construction.

    A session with share 1/2 among N sessions can be served N/2 packets
    before GPS would have; afterwards it receives no service while the
    other sessions catch up (about N/2 packet times), during which its
    guaranteed share amounts to ``(N/2) * L_max * (rate_i / rate)`` bits —
    so the B-WFI grows linearly in N, in contrast to eq. (26).
    """
    return (n_sessions / 2.0) * l_max * rate_i / rate


def wf2q_delay_bound(sigma, rate_i, l_max, rate):
    """Delay bound of WF2Q/WF2Q+ for a (sigma, r_i)-constrained session."""
    return sigma / rate_i + l_max / rate


def wfq_delay_bound(sigma, rate_i, l_max, rate):
    """WFQ's delay bound — identical to WF2Q's (Section 3.1)."""
    return sigma / rate_i + l_max / rate


def scfq_delay_bound(sigma, rate_i, l_i_max, other_l_max, rate):
    """SCFQ's delay bound for a (sigma, r_i)-constrained session.

    ``other_l_max`` is an iterable of the maximum packet lengths of the
    competing sessions; each contributes one packet transmission time.
    """
    return sigma / rate_i + l_i_max / rate_i + sum(other_l_max) / rate


def end_to_end_delay_bound(sigma, rate_i, l_i_max, hops, propagation=0.0):
    """Multi-hop delay bound for WFQ-class (delay-optimal PFQ) servers.

    Parekh & Gallager's network result (the paper's reference [14], part
    II; see also [10]): a (sigma, r_i)-constrained session crossing H hops,
    each guaranteeing rate r_i, satisfies

        D <= sigma/r_i + (H-1) * L_i,max / r_i + sum_h L_max,h / r_h + prop

    ``hops`` is an iterable of (l_max, link_rate) pairs, one per hop.
    """
    hops = list(hops)
    if not hops:
        raise ValueError("need at least one hop")
    total = sigma / rate_i + (len(hops) - 1) * l_i_max / rate_i + propagation
    for l_max, link_rate in hops:
        total += l_max / link_rate
    return total


def sbi_from_delay_bound(delay_bound, rate_i, sigma):
    """Definition 3 / Section 3.2: a rate-based server guaranteeing delay
    D to a (sigma, r_i) session guarantees an SBI of ``r_i * D - sigma``."""
    return rate_i * delay_bound - sigma


def _path_nodes(spec, leaf_name):
    """[leaf, p(leaf), ..., child-of-root] — the nodes whose logical queues
    contribute a per-node WFI term (p^h(i) for h = 0 .. H-1)."""
    names = [leaf_name]
    parent = spec.parent(leaf_name)
    while parent is not None and spec.parent(parent.name) is not None:
        names.append(parent.name)
        parent = spec.parent(parent.name)
    return names


def hpfq_bwfi(spec, leaf_name, link_rate, node_wfi):
    """Theorem 1: session B-WFI of an H-PFQ server, in bits.

    ``node_wfi`` maps a path node name to the B-WFI (bits) that its *parent
    server* guarantees to its logical queue; pass a dict or a callable.
    For uniform packets and WF2Q+ nodes, ``node_wfi = lambda n: l_max``.
    """
    getter = node_wfi if callable(node_wfi) else node_wfi.__getitem__
    phi_i = spec.guaranteed_fraction(leaf_name)
    total = 0
    for name in _path_nodes(spec, leaf_name):
        phi_h = spec.guaranteed_fraction(name)
        total += (phi_i / phi_h) * getter(name)
    return total


def hpfq_delay_bound(spec, leaf_name, sigma, link_rate, node_wfi):
    """Corollary 1 (and Corollary 2 when nodes are WF2Q+): delay bound in
    seconds for a (sigma, r_i)-constrained session of an H-PFQ server.

    ``sigma/r_i + sum_h alpha_p^h(i) / r_p^h(i)`` — with
    ``node_wfi = lambda n: l_max`` this reduces to Corollary 2's
    ``sigma/r_i + sum_h L_max / r_p^h(i)``.
    """
    getter = node_wfi if callable(node_wfi) else node_wfi.__getitem__
    rate_i = spec.guaranteed_rate(leaf_name, link_rate)
    total = sigma / rate_i
    for name in _path_nodes(spec, leaf_name):
        rate_h = spec.guaranteed_rate(name, link_rate)
        total += getter(name) / rate_h
    return total
