"""Fairness metrics beyond the WFI.

* :func:`jain_index` — Jain's fairness index over normalised throughputs
  (1.0 = perfectly proportional to shares).
* :func:`relative_fairness_bound` — Golestani's RFB: the worst
  ``|W_i/r_i - W_j/r_j|`` over any interval where both flows are
  backlogged.  GPS has RFB 0; SCFQ was designed to bound exactly this
  quantity (while leaving the WFI unbounded — the distinction Section 3 of
  the paper builds on).
* :func:`throughput_shares` — measured share of each flow over a window.
"""

from repro.analysis.wfi import backlogged_periods

__all__ = ["jain_index", "relative_fairness_bound", "throughput_shares"]


def jain_index(values):
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]."""
    values = [v for v in values]
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def throughput_shares(trace, t1, t2):
    """Fraction of the served bits each flow received over (t1, t2]."""
    if t2 <= t1:
        raise ValueError("t2 must exceed t1")
    bits = {}
    for rec in trace.services:
        if t1 < rec.finish_time <= t2:
            bits[rec.flow_id] = bits.get(rec.flow_id, 0) + rec.packet.length
    total = sum(bits.values())
    if total == 0:
        return {}
    return {fid: b / total for fid, b in bits.items()}


def _normalized_service_curve(trace, flow_id, rate_i):
    """Breakpoints of W_i(0,t)/r_i: [(time, normalized_service)]."""
    points = [(0.0, 0.0)]
    total = 0.0
    for rec in trace.services_of(flow_id):
        points.append((rec.start_time, total / rate_i))
        total += rec.packet.length
        points.append((rec.finish_time, total / rate_i))
    return points


def _value_at(points, t):
    """Piecewise-linear interpolation of a breakpoint curve at time t."""
    prev_t, prev_v = points[0]
    if t <= prev_t:
        return prev_v
    for pt, pv in points[1:]:
        if t <= pt:
            if pt == prev_t:
                return pv
            frac = (t - prev_t) / (pt - prev_t)
            return prev_v + frac * (pv - prev_v)
        prev_t, prev_v = pt, pv
    return prev_v


def relative_fairness_bound(trace, flow_a, flow_b, rate_a, rate_b,
                            samples=400):
    """Measured RFB: max over jointly backlogged intervals of
    ``|(W_a(t1,t2)/r_a) - (W_b(t1,t2)/r_b)|``.

    Computed by sampling ``g(t) = W_a/r_a - W_b/r_b`` on a uniform grid
    inside each maximal joint-backlog interval and taking ``max g - min g``
    there; breakpoint-exact at packet boundaries because the sample grid is
    augmented with all service-event times.
    """
    periods_a = backlogged_periods(trace, flow_a)
    periods_b = backlogged_periods(trace, flow_b)
    joint = []
    for a1, a2 in periods_a:
        for b1, b2 in periods_b:
            lo, hi = max(a1, b1), min(a2, b2)
            if hi > lo:
                joint.append((lo, hi))
    if not joint:
        return 0.0
    curve_a = _normalized_service_curve(trace, flow_a, rate_a)
    curve_b = _normalized_service_curve(trace, flow_b, rate_b)
    event_times = sorted(
        {t for t, _v in curve_a} | {t for t, _v in curve_b}
    )
    worst = 0.0
    for lo, hi in joint:
        ts = [t for t in event_times if lo <= t <= hi]
        ts += [lo + (hi - lo) * k / samples for k in range(samples + 1)]
        values = [
            _value_at(curve_a, t) - _value_at(curve_b, t) for t in sorted(ts)
        ]
        spread = max(values) - min(values)
        if spread > worst:
            worst = spread
    return worst
