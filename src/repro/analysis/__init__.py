"""Analysis toolkit: the paper's theory, made executable.

* :mod:`repro.analysis.bounds` — closed-form B-WFI and delay bounds
  (Theorems 1-4, Corollaries 1-2).
* :mod:`repro.analysis.wfi` — empirical B-WFI / T-WFI measured from a
  :class:`~repro.sim.monitor.ServiceTrace`.
* :mod:`repro.analysis.lag` — service-lag curves (Figure 5).
* :mod:`repro.analysis.bandwidth` — throughput series with exponential
  averaging (Figure 9).
* :mod:`repro.analysis.fluid` — batched GPS fluid reference (whole-trace
  tags and finish times; numpy-accelerated with an exact online fallback).
"""

from repro.analysis.bandwidth import exponential_average, throughput_series
from repro.analysis.bounds import (
    end_to_end_delay_bound,
    hpfq_bwfi,
    hpfq_delay_bound,
    sbi_from_delay_bound,
    scfq_delay_bound,
    wf2q_delay_bound,
    wf2q_wfi,
    wfq_delay_bound,
    wfq_wfi_lower_bound,
)
from repro.analysis.fairness import (
    jain_index,
    relative_fairness_bound,
    throughput_shares,
)
from repro.analysis.fluid import fluid_finish_times
from repro.analysis.lag import max_service_lag, service_lag_series
from repro.analysis.wfi import backlogged_periods, empirical_bwfi, empirical_twfi

__all__ = [
    "wf2q_wfi",
    "wfq_wfi_lower_bound",
    "wf2q_delay_bound",
    "wfq_delay_bound",
    "scfq_delay_bound",
    "hpfq_bwfi",
    "hpfq_delay_bound",
    "end_to_end_delay_bound",
    "sbi_from_delay_bound",
    "jain_index",
    "relative_fairness_bound",
    "throughput_shares",
    "empirical_bwfi",
    "empirical_twfi",
    "backlogged_periods",
    "service_lag_series",
    "max_service_lag",
    "throughput_series",
    "exponential_average",
    "fluid_finish_times",
]
