"""Bandwidth-versus-time measurement (Figure 9).

The paper measures per-session bandwidth "by exponentially averaging over
50ms windows".  :func:`throughput_series` buckets a flow's served bits into
fixed windows; :func:`exponential_average` applies the EMA smoothing.  The
combination is what ``benchmarks/test_fig9_link_sharing.py`` compares
against the ideal H-GPS rates from
:func:`repro.analysis.bandwidth.ideal_rate_series` /
:func:`repro.core.hgps.hierarchical_fair_rates`.
"""

from repro.core.hgps import hierarchical_fair_rates

__all__ = [
    "throughput_series",
    "exponential_average",
    "mean_rate",
    "ideal_rate_series",
]


def throughput_series(trace, flow_id, bucket, until=None, start=0.0):
    """[(window_end_time, rate_bps)] with fixed ``bucket``-second windows.

    Bits are attributed to the window containing the packet's transmission
    *finish*.  Windows with no traffic yield rate 0, so the series is
    uniformly spaced — required before exponential averaging.
    """
    if bucket <= 0:
        raise ValueError(f"bucket must be positive, got {bucket!r}")
    records = trace.services_of(flow_id)
    if until is None:
        until = max((r.finish_time for r in records), default=start)
    n_windows = int((until - start) / bucket + 0.5)
    bits = [0.0] * max(n_windows, 0)
    for rec in records:
        if rec.finish_time < start or rec.finish_time > until:
            continue
        idx = int((rec.finish_time - start) / bucket)
        if idx >= len(bits):
            idx = len(bits) - 1
        if idx >= 0:
            bits[idx] += rec.packet.length
    return [
        (start + (i + 1) * bucket, b / bucket) for i, b in enumerate(bits)
    ]


def exponential_average(series, alpha=0.3):
    """EMA-smooth a [(time, value)] series; alpha is the new-sample weight."""
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
    out = []
    ema = None
    for t, v in series:
        ema = v if ema is None else alpha * v + (1 - alpha) * ema
        out.append((t, ema))
    return out


def mean_rate(trace, flow_id, t1, t2):
    """Average service rate of a flow over [t1, t2] in bits/second."""
    if t2 <= t1:
        raise ValueError("t2 must exceed t1")
    bits = sum(
        r.packet.length for r in trace.services_of(flow_id)
        if t1 < r.finish_time <= t2
    )
    return bits / (t2 - t1)


def ideal_rate_series(spec, link_rate, intervals, flow_id):
    """Piecewise-constant ideal H-GPS rate for one leaf.

    ``intervals`` is a list of ``(t_start, t_end, active_leaves)`` (or
    ``(t_start, t_end, active_leaves, demands)``) describing which leaves
    compete in each interval; returns [(t_start, t_end, rate)] for the
    requested leaf — the Figure 9(b) "ideal" staircase.
    """
    out = []
    for entry in intervals:
        if len(entry) == 3:
            t1, t2, active = entry
            demands = None
        else:
            t1, t2, active, demands = entry
        rates = hierarchical_fair_rates(spec, active, link_rate, demands)
        out.append((t1, t2, rates[flow_id]))
    return out
