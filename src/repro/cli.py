"""Command-line interface: run the paper's experiments from a shell.

Usage (also via ``python -m repro``)::

    python -m repro fig2
    python -m repro delay --scenario 1 --policy wfq --duration 6
    python -m repro linksharing --duration 10
    python -m repro bounds
    python -m repro stats --scheduler wf2qplus --flows 64 \
        --trace out.jsonl --check
    python -m repro stats --pipeline --packets 50000
    python -m repro sim --scenario cbr_flat --shards 4 --verify
    python -m repro sim --scenario hier --shards 2 --migrate-at 0.005
    python -m repro bench -o BENCH_core.json
    python -m repro bench --quick --compare BENCH_core.json \
        --report regressions.json
    python -m repro chaos
    python -m repro chaos --scenario link_flap --scheduler hwf2qplus

Each subcommand prints a compact text report; the benchmarks in
``benchmarks/`` remain the canonical figure-regeneration path (they also
persist the raw series).  ``stats`` is the observability entry point: it
drives a saturated churn workload through any scheduler in the zoo with
wall-clock profiling and per-flow metrics attached, optionally writing a
JSONL event trace (``--trace``) and/or running the full invariant checker
(``--check``); ``--pipeline`` drives the same workload through the
simulator+link stack instead, surfacing the event-elision and
drop-ledger counters.  ``sim`` is the sharded scale-out driver
(:mod:`repro.shard`): it fans a partition-closed scenario across
``--shards`` worker processes and prints the merged report's digest,
which ``--verify`` checks against the single-process run.  ``chaos`` is
the robustness gate: it runs the fault
scenarios from :mod:`repro.faults.chaos` under the invariant checker and
exits 1 unless every run ends violation-free with a balanced conservation
ledger.
"""

import argparse

__all__ = ["main", "build_parser"]


def _stats_registry():
    """name -> scheduler factory for the ``stats`` subcommand."""
    from repro.config import leaf, node
    from repro.core import (
        DRRScheduler,
        FFQScheduler,
        FIFOScheduler,
        HPFQScheduler,
        SCFQScheduler,
        SFQScheduler,
        VectorHWF2QPlus,
        VectorWF2QPlus,
        VirtualClockScheduler,
        WF2QPlusScheduler,
        WF2QScheduler,
        WFQScheduler,
        WRRScheduler,
    )

    def make_hier(policy, cls=HPFQScheduler):
        def build(rate, n_flows):
            # Balanced two-level tree: groups of up to 8 leaves.
            groups, chunk = [], 8
            for g in range(0, n_flows, chunk):
                leaves = [leaf(str(i), 1 + (i % 3))
                          for i in range(g, min(g + chunk, n_flows))]
                groups.append(node(f"g{g // chunk}", len(leaves), leaves))
            return cls(node("root", 1, groups), rate, policy=policy)
        return build

    def make_flat(cls):
        def build(rate, n_flows):
            sched = cls(rate)
            for i in range(n_flows):
                sched.add_flow(str(i), 1 + (i % 3))
            return sched
        return build

    registry = {
        "fifo": make_flat(FIFOScheduler),
        "wrr": make_flat(WRRScheduler),
        "drr": make_flat(DRRScheduler),
        "scfq": make_flat(SCFQScheduler),
        "sfq": make_flat(SFQScheduler),
        "vclock": make_flat(VirtualClockScheduler),
        "ffq": make_flat(FFQScheduler),
        "wfq": make_flat(WFQScheduler),
        "wf2q": make_flat(WF2QScheduler),
        "wf2qplus": make_flat(WF2QPlusScheduler),
        "vwf2qplus": make_flat(VectorWF2QPlus),
        "hwf2qplus": make_hier("wf2qplus"),
        "vhwf2qplus": make_hier("wf2qplus", cls=VectorHWF2QPlus),
        "hwfq": make_hier("wfq"),
    }
    return registry


STATS_SCHEDULERS = ("fifo", "wrr", "drr", "scfq", "sfq", "vclock", "ffq",
                    "wfq", "wf2q", "wf2qplus", "vwf2qplus", "hwf2qplus",
                    "vhwf2qplus", "hwfq")


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _chunk_arg(text):
    """``--chunk`` value: a positive integer or the literal ``auto``."""
    if text == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except (ValueError, argparse.ArgumentTypeError):
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}")


def _cmd_stats(args):
    from repro.core.packet import Packet
    from repro.obs import (
        InvariantChecker,
        JSONLSink,
        MetricsSink,
        SchedulerProfiler,
    )

    sched = _stats_registry()[args.scheduler](args.rate, args.flows)
    # The columnar vector backends engage their batch kernels only when
    # no observer is attached, so for them the (event-driven) metrics
    # sink stays off by default and the engagement counters below tell
    # the story instead.  --trace/--check still work but force the exact
    # per-packet path for the whole run.
    vector = hasattr(sched, "vector_stats")
    metrics = None
    sinks = []
    if not vector or args.trace or args.check:
        metrics = MetricsSink()
        sinks.append(metrics)
    jsonl = None
    if args.trace:
        try:
            jsonl = JSONLSink(args.trace)
        except OSError as exc:
            print(f"repro stats: cannot open trace file: {exc}")
            return 2
        sinks.append(jsonl)
    checker = None
    if args.check:
        checker = InvariantChecker()
        sinks.append(checker)
    if sinks:
        sched.attach_observer(*sinks)
    # The autotuner and the profiler shadow the same batch methods, so
    # --chunk auto trades the wall-clock percentile report for the tuned
    # chunk (both cannot wrap one scheduler at once).
    tuner = None
    profiler = None
    if args.chunk == "auto":
        from repro.obs import ChunkAutotuner

        tuner = ChunkAutotuner(sched)
    else:
        if args.chunk is not None:
            sched.drain_chunk = args.chunk
        profiler = SchedulerProfiler(sched)

    sim = None
    packet_pool = None
    if args.pipeline:
        # The same packet budget, but end to end: CBR sources scheduling
        # themselves on the simulator, the link draining the scheduler —
        # the path where the burst-drain fast path elides events.
        from repro.core.packet import PacketPool
        from repro.sim.engine import Simulator, resolve_engine
        from repro.sim.link import Link
        from repro.traffic.source import CBRSource

        engine = resolve_engine(args.engine)
        sim = Simulator(engine=engine)
        if profiler is not None:
            profiler.sim = sim
        if engine.endswith("+pool"):
            packet_pool = PacketPool()
        link = Link(sim, sched, packet_pool=packet_pool)
        aggregate = 0.98 * args.rate
        stagger = args.length / args.rate / args.flows
        for i in range(args.flows):
            source = CBRSource(str(i), aggregate / args.flows, args.length,
                               start_time=i * stagger).attach(sim, link)
            source.packet_pool = packet_pool
            source.start()
        sim.run(until=args.packets * args.length / aggregate)
    else:
        # Saturated churn: every flow stays backlogged; one enqueue + one
        # dequeue per transmitted packet (the complexity benchmark's
        # workload).
        for i in range(args.flows):
            sched.enqueue(Packet(str(i), args.length), now=0.0)
            sched.enqueue(Packet(str(i), args.length), now=0.0)
        for _ in range(args.packets):
            rec = sched.dequeue()
            sched.enqueue(Packet(rec.flow_id, args.length),
                          now=rec.finish_time)
        while not sched.is_empty:
            sched.dequeue()

    if profiler is not None:
        profiler.detach()
    if tuner is not None:
        tuner.detach()
    workload = "pipeline" if args.pipeline else "churned"
    print(f"repro stats — {sched.name}, {args.flows} flows, "
          f"{args.packets} {workload} packets, {args.rate:g} bps")
    if profiler is not None:
        print()
        print(profiler.format_report())
    if tuner is not None:
        chosen = ("pending (calibration window not filled)"
                  if tuner.chosen is None and len(tuner.batch_samples)
                  < tuner.window else repr(tuner.chosen))
        print()
        print(f"chunk autotuner: chosen={chosen} "
              f"(window {len(tuner.batch_samples)}/{tuner.window}, "
              f"drain_chunk={sched.drain_chunk!r})")
    counters = sched.batch_stats()
    print(f"batch API: {counters['batch_calls']} calls moving "
          f"{counters['batch_packets']} packets")
    if vector:
        vs = sched.vector_stats()
        print(f"vector backend: enqueued {vs['vector_enqueued']} vector / "
              f"{vs['exact_enqueued']} exact, dequeued "
              f"{vs['vector_dequeued']} vector / {vs['exact_dequeued']} "
              f"exact (drain_chunk={vs['drain_chunk']!r})")
    if metrics is not None:
        print()
        print(metrics.format_report())
    ledger = sched.conservation()
    print()
    print(f"conservation: arrivals={ledger['arrivals']} "
          f"departures={ledger['departures']} drops={ledger['drops']} "
          f"backlog={ledger['backlog']} "
          f"({'balanced' if ledger['balanced'] else 'IMBALANCED'})")
    if sim is not None:
        processed = sim.events_processed
        elided = sim.events_elided
        total = processed + elided
        share = 100.0 * elided / total if total else 0.0
        print(f"events: processed={processed} elided={elided} "
              f"({share:.1f}% of clock advances inline)")
        line = f"engine: {sim.engine_active}"
        if sim.engine_fallbacks:
            line += (f" (requested {sim.engine}, "
                     f"{sim.engine_fallbacks} heap fallback(s))")
        acquires = sim.pool_hits + sim.pool_misses
        if acquires:
            line += (f", event pool {sim.pool_hits}/{acquires} hits "
                     f"({100.0 * sim.pool_hit_rate:.1f}%)")
        if sim.calendar_resizes:
            line += f", {sim.calendar_resizes} calendar resize(s)"
        print(line)
        if packet_pool is not None:
            total_acq = packet_pool.hits + packet_pool.misses
            print(f"packet pool: {packet_pool.hits}/{total_acq} hits "
                  f"({100.0 * packet_pool.hit_rate:.1f}%), "
                  f"{len(packet_pool)} free")
    if checker is not None:
        print()
        print(f"invariants: OK ({checker.events_checked} events checked, "
              f"monotonic V + SEFF + backlog + tags)")
    if jsonl is not None:
        jsonl.close()
        print(f"trace: wrote {jsonl.events_written} events to {jsonl.path}")
    return 0


def _cmd_sim(args):
    import json

    from repro.errors import ConfigurationError
    from repro.shard import format_report, run_sharded

    migrate = None
    if args.migrate_at is not None:
        migrate = {"cell": args.migrate_cell, "at": args.migrate_at}
    elif args.migrate_cell is not None:
        print("repro sim: --migrate-cell requires --migrate-at")
        return 2
    params = {"flows": args.flows, "cells": args.cells, "rate": args.rate,
              "seed": args.seed, "backend": args.backend,
              "chunk": args.chunk}
    try:
        report = run_sharded(args.scenario, shards=args.shards,
                             duration=args.duration, migrate=migrate,
                             max_retries=args.max_retries,
                             engine=args.engine,
                             **params)
    except ConfigurationError as exc:
        print(f"repro sim: {exc}")
        return 2
    print(format_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, default=str)
            fh.write("\n")
        print(f"wrote merged report to {args.json}")
    if args.verify and (args.shards > 1 or migrate is not None):
        baseline = run_sharded(args.scenario, shards=1,
                               duration=args.duration, engine=args.engine,
                               **params)
        if baseline["digest"] != report["digest"]:
            print(f"verify: FAIL — single-process digest "
                  f"{baseline['digest']} != sharded {report['digest']}")
            return 1
        print(f"verify: OK — digest matches the single-process run")
    return 0


def _cmd_serve(args):
    from repro.errors import CheckpointError, ServiceError
    from repro.serve import (
        ServiceRunner,
        build_service_spec,
        format_soak,
        run_soak,
        supervise,
    )

    if args.soak:
        result = run_soak(flows=args.flows, duration=args.duration,
                          kills=args.kills, seed=args.seed, rate=args.rate,
                          checkpoint_every=args.checkpoint_every,
                          idle_ttl=args.idle_ttl,
                          directory=args.checkpoint_dir,
                          engine=args.engine)
        print(format_soak(result))
        return 0 if result["ok"] else 1

    opts = {"checkpoint_every": args.checkpoint_every,
            "idle_ttl": args.idle_ttl, "stall_wall": args.stall_wall,
            "engine": args.engine}
    try:
        if args.recover:
            if args.checkpoint_dir is None:
                print("repro serve: --recover requires --checkpoint-dir")
                return 2
            runner = ServiceRunner.recover(args.checkpoint_dir, **opts)
            print(f"recovered from checkpoint at t={runner.now:g}s "
                  f"(recovery #{runner.recoveries})")
            runner.run_to(runner.now + args.duration)
        elif args.checkpoint_dir is not None:
            spec = build_service_spec(flows=args.flows, rate=args.rate,
                                      duration=args.duration, seed=args.seed)
            def drive(r):
                r.run_to(args.duration)
                return r

            runner, supervisor = supervise(
                spec, drive, args.checkpoint_dir,
                max_restarts=args.max_restarts, **opts)
            if supervisor.restarts:
                print(f"supervisor: {supervisor.restarts} restart(s): "
                      f"{supervisor.failures}")
        else:
            spec = build_service_spec(flows=args.flows, rate=args.rate,
                                      duration=args.duration, seed=args.seed)
            runner = ServiceRunner(spec, **opts)
            runner.run_to(args.duration)
    except (ServiceError, CheckpointError) as exc:
        print(f"repro serve: {exc}")
        return 1
    status = runner.status()
    print(f"repro serve — {status['scheduler']}, cell {status['cell']!r}, "
          f"t={status['clock']:g}s")
    print(f"  served {status['rows']} packets "
          f"({status['arrivals']} arrivals, backlog {status['backlog']})")
    print(f"  digest: {status['digest']}")
    print(f"  flows: {status['live_flows']} live / {status['flows']} "
          f"registered (peak live {status['peak_live_flows']})")
    print(f"  checkpoints: {status['checkpoints_written']}  "
          f"commands: {status['commands_applied']}  "
          f"recoveries: {status['recoveries']}")
    if status["incidents"]:
        print(f"  incidents: {status['incidents']}")
    print(f"  conservation: "
          f"{'balanced' if status['conservation_balanced'] else 'IMBALANCED'}")
    return 0


def _cmd_bench(args):
    from repro.bench import (
        SCENARIOS,
        compare,
        format_compare,
        format_table,
        load,
        merge_best,
        run_scenarios,
        save,
        to_payload,
    )
    from repro.bench.parallel import run_scenarios_parallel

    if args.report and not args.compare:
        print("repro bench: --report requires --compare "
              "(it records the regression table)")
        return 2
    if args.chunk == "auto":
        # "auto" is a measured *point* inside the chunk-aware scenarios'
        # default sweep, not a sweep override.
        print("repro bench: --chunk takes an integer (the 'auto' point "
              "is part of the default hier_vector sweep)")
        return 2
    names = args.scenario or None
    try:
        if args.jobs > 1:
            points = run_scenarios_parallel(
                names=names, quick=args.quick, jobs=args.jobs,
                chunk=args.chunk,
                progress=lambda name: print(f"finished {name} ..."))
        else:
            points = run_scenarios(
                names=names, quick=args.quick, chunk=args.chunk,
                progress=lambda name: print(f"running {name} ..."))
    except ValueError as exc:
        print(f"repro bench: {exc}")
        return 2
    print()
    print(format_table(points))
    if args.output:
        payload = save(points, args.output)
        print(f"\nwrote {len(points)} points to {args.output}")
    else:
        payload = to_payload(points)
    if args.compare:
        try:
            baseline = load(args.compare)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro bench: cannot load baseline: {exc}")
            return 2
        overrides = {}
        for spec in args.threshold_scenario or ():
            name, sep, value = spec.partition("=")
            try:
                if not sep:
                    raise ValueError
                overrides[name] = float(value)
            except ValueError:
                print(f"repro bench: bad --threshold-scenario {spec!r} "
                      "(expected NAME=FRACTION)")
                return 2
        rows, regressions = compare(baseline, payload,
                                    threshold=args.threshold,
                                    scenario_thresholds=overrides)
        if regressions:
            # Re-measure the regressed scenarios once before failing:
            # on shared runners a single sample of a cheap point can be
            # off by far more than the threshold.  The minimum per point
            # wins (noise only ever adds time).
            retry = sorted({r["scenario"] for r in regressions}
                           & set(SCENARIOS))
            if retry:
                print(f"\npossible regression; re-measuring {retry} "
                      "to rule out timer noise ...")
                points = merge_best(
                    points, run_scenarios(names=retry, quick=args.quick,
                                          chunk=args.chunk))
                if args.output:
                    payload = save(points, args.output)
                else:
                    payload = to_payload(points)
                rows, regressions = compare(
                    baseline, payload, threshold=args.threshold,
                    scenario_thresholds=overrides)
        print()
        print(f"comparison against {args.compare} "
              f"(rev {baseline.get('git_rev', '?')}):")
        print(format_compare(rows, threshold=args.threshold))
        if args.report:
            import json

            report = {
                "baseline": args.compare,
                "baseline_rev": baseline.get("git_rev", "?"),
                "current_rev": payload.get("git_rev", "?"),
                "threshold": args.threshold,
                "scenario_thresholds": overrides,
                "ok": not regressions,
                "regressions": len(regressions),
                "rows": rows,
            }
            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
            print(f"\nwrote per-scenario regression table to {args.report}")
        if regressions:
            return 1
    return 0


def _cmd_chaos(args):
    import json

    from repro.faults import CHAOS_SCHEDULERS, SCENARIOS, run_chaos

    scenarios = args.scenario or list(SCENARIOS)
    schedulers = args.scheduler or ["wf2qplus", "hwf2qplus"]
    results = []
    for scheduler in schedulers:
        for scenario in scenarios:
            result = run_chaos(
                scenario, scheduler=scheduler, seed=args.seed,
                duration=args.duration, flows=args.flows, rate=args.rate,
                load=args.load,
            )
            print(result.format())
            results.append(result)
    failed = [r for r in results if not r.ok]
    if args.json:
        payload = {
            "seed": args.seed,
            "duration": args.duration,
            "flows": args.flows,
            "ok": not failed,
            "results": [r.to_dict() for r in results],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {len(results)} results to {args.json}")
    print()
    if failed:
        print(f"FAIL: {len(failed)} of {len(results)} chaos runs violated "
              "an invariant or lost packets")
        return 1
    print(f"OK: {len(results)} chaos runs, zero invariant violations, "
          "conservation exact")
    return 0


def _cmd_fig2(args):
    from repro.core.wf2q import WF2QScheduler
    from repro.core.wf2qplus import WF2QPlusScheduler
    from repro.core.wfq import WFQScheduler
    from repro.experiments.fig2 import run_fig2

    out = run_fig2([WFQScheduler, WF2QScheduler, WF2QPlusScheduler])
    print("Figure 2 — service timelines (unit packets, unit rate)")
    for name in ("WFQ", "WF2Q", "WF2Q+"):
        order = " ".join(str(fid) for fid, _s, _f in out[name])
        print(f"  {name:6s} {order}")
    gps = " ".join(f"{fid}@{t}" for fid, t in out["GPS"])
    print(f"  GPS    {gps}")
    return 0


def _cmd_delay(args):
    from repro.analysis.bounds import hpfq_delay_bound
    from repro.experiments import delay as exp

    spec = exp.build_fig3_spec()
    bound = float(hpfq_delay_bound(
        spec, "RT-1", exp.RT1_SIGMA, exp.FIG3_LINK_RATE,
        lambda n: exp.FIG3_PACKET_LENGTH))
    trace = exp.run_delay_experiment(args.policy, args.scenario,
                                     duration=args.duration, seed=args.seed)
    delays = [d for _t, d in trace.delays("RT-1")]
    print(f"Figure {3 + args.scenario} scenario {args.scenario}, "
          f"H-{args.policy}, {args.duration:g}s")
    print(f"  RT-1 packets   : {len(delays)}")
    print(f"  max delay      : {1000 * max(delays):.2f} ms")
    print(f"  mean delay     : {1000 * sum(delays) / len(delays):.2f} ms")
    print(f"  Cor. 2 bound   : {1000 * bound:.2f} ms "
          f"({'holds' if max(delays) <= bound else 'exceeded'} "
          f"for H-wf2qplus; informative only for other policies)")
    if args.series:
        for t, d in trace.delays("RT-1"):
            print(f"{t:.4f} {1000 * d:.3f}")
    return 0


def _cmd_linksharing(args):
    from repro.analysis.bandwidth import mean_rate
    from repro.core.hgps import hierarchical_fair_rates
    from repro.experiments import linksharing as exp

    trace = exp.run_linksharing(args.policy, duration=args.duration)
    spec = exp.build_fig8_spec()
    watched = ["TCP-1", "TCP-5", "TCP-8", "TCP-10", "TCP-11"]
    print(f"Figure 9, H-{args.policy}, {args.duration:g}s "
          f"(measured/ideal Mbps)")
    print(f"  {'interval':16s}" + "".join(f"{f:>14s}" for f in watched))
    errs = []
    for t1, t2, active, demands in exp.ideal_intervals(args.duration):
        ideal = hierarchical_fair_rates(spec, active, exp.FIG8_LINK_RATE,
                                        demands)
        m1 = t1 + 0.3 * (t2 - t1)
        row = []
        for fid in watched:
            measured = mean_rate(trace, fid, m1, t2)
            target = float(ideal[fid])
            errs.append(abs(measured - target) / target)
            row.append(f"{measured / 1e6:5.2f}/{target / 1e6:5.2f}")
        print(f"  [{t1:5.2f},{t2:5.2f}) " + "".join(f"{c:>14s}" for c in row))
    print(f"  mean relative error: {sum(errs) / len(errs):.1%}")
    return 0


def _cmd_bounds(args):
    from repro.analysis.bounds import (
        hpfq_bwfi,
        hpfq_delay_bound,
        wf2q_wfi,
        wfq_wfi_lower_bound,
    )
    from repro.experiments import delay as exp

    spec = exp.build_fig3_spec()
    rate = exp.FIG3_LINK_RATE
    pkt = exp.FIG3_PACKET_LENGTH
    print("Closed-form bounds for the Figure 3 hierarchy (8 KB packets)")
    print(f"  link rate: {rate / 1e6:g} Mbps")
    for name in ("RT-1", "BE-1", "CS-1", "PS-1"):
        r_i = float(spec.guaranteed_rate(name, rate))
        alpha = float(hpfq_bwfi(spec, name, rate, lambda n: pkt))
        d = float(hpfq_delay_bound(spec, name, pkt, rate, lambda n: pkt))
        print(f"  {name:5s} r_i={r_i / 1e6:6.2f} Mbps  "
              f"B-WFI={alpha / 8:8.0f} B  D(sigma=1pkt)={1000 * d:8.2f} ms")
    print()
    print("One-level WFI comparison (uniform packets, r_i/r = 1/2):")
    print(f"  WF2Q/WF2Q+ : {wf2q_wfi(pkt, pkt, 0.5, 1.0) / 8:.0f} B "
          "(independent of N)")
    for n in (11, 101, 1001):
        print(f"  WFQ, N={n:5d}: >= "
              f"{wfq_wfi_lower_bound(n, pkt, 0.5, 1.0) / 8:.0f} B")
    return 0


def build_parser():
    from repro.sim.engine import ENGINES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical Packet Fair Queueing (SIGCOMM '96) "
                    "experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flag(p):
        p.add_argument("--engine", default=None, choices=ENGINES,
                       help="event engine for the simulator: heap "
                            "(default), calendar, or their +pool variants "
                            "(byte-identical results; unset resolves from "
                            "$REPRO_ENGINE)")

    sub.add_parser("fig2", help="print the Figure 2 service timelines"
                   ).set_defaults(func=_cmd_fig2)

    p_delay = sub.add_parser("delay", help="run a Figures 4-7 scenario")
    p_delay.add_argument("--scenario", type=int, choices=(1, 2, 3), default=1)
    p_delay.add_argument("--policy", default="wf2qplus",
                         choices=("wf2qplus", "wfq", "scfq", "sfq"))
    p_delay.add_argument("--duration", type=float, default=6.0)
    p_delay.add_argument("--seed", type=int, default=1)
    p_delay.add_argument("--series", action="store_true",
                         help="also print the per-packet delay series")
    p_delay.set_defaults(func=_cmd_delay)

    p_ls = sub.add_parser("linksharing", help="run the Figure 9 experiment")
    p_ls.add_argument("--policy", default="wf2qplus",
                      choices=("wf2qplus", "wfq", "scfq", "sfq"))
    p_ls.add_argument("--duration", type=float, default=10.0)
    p_ls.set_defaults(func=_cmd_linksharing)

    sub.add_parser("bounds", help="print the closed-form bounds"
                   ).set_defaults(func=_cmd_bounds)

    p_stats = sub.add_parser(
        "stats",
        help="profile a scheduler's hot path with metrics/trace/invariants")
    p_stats.add_argument("--scheduler", default="wf2qplus",
                         choices=STATS_SCHEDULERS)
    p_stats.add_argument("--flows", type=_positive_int, default=64)
    p_stats.add_argument("--packets", type=_positive_int, default=20000,
                         help="churned packets after the warm-up fill")
    p_stats.add_argument("--length", type=float, default=8000.0,
                         help="packet length in bits")
    p_stats.add_argument("--rate", type=float, default=1e9,
                         help="link rate in bits per second")
    p_stats.add_argument("--trace", metavar="OUT.JSONL", default=None,
                         help="write the full event stream as JSON lines")
    p_stats.add_argument("--check", action="store_true",
                         help="run the invariant checker on every event")
    p_stats.add_argument("--pipeline", action="store_true",
                         help="drive the workload through the simulator+"
                              "link stack and report event-elision totals")
    p_stats.add_argument("--chunk", type=_chunk_arg, default=None,
                         metavar="N|auto",
                         help="pin the burst-drain chunk, or 'auto' to "
                              "let the batch-histogram autotuner pick it")
    add_engine_flag(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    from repro.shard.scenarios import SHARD_SCENARIOS
    p_sim = sub.add_parser(
        "sim",
        help="run a partition-closed scenario across N shard workers and "
             "print the merged report digest")
    p_sim.add_argument("--scenario", default="cbr_flat",
                       choices=sorted(SHARD_SCENARIOS))
    p_sim.add_argument("--shards", type=_positive_int, default=1,
                       metavar="N",
                       help="worker processes (1 = single-process baseline)")
    p_sim.add_argument("--flows", type=_positive_int, default=None)
    p_sim.add_argument("--cells", type=_positive_int, default=None,
                       help="independent cells to split the scenario into")
    p_sim.add_argument("--duration", type=float, default=None,
                       help="simulated seconds (scenario default if unset)")
    p_sim.add_argument("--rate", type=float, default=None,
                       help="per-cell link rate in bits per second")
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--backend", default=None,
                       choices=("exact", "vector"),
                       help="scheduler implementation: exact reference "
                            "or the columnar float64 vector backend "
                            "(digest-invariant)")
    p_sim.add_argument("--chunk", type=_chunk_arg, default=None,
                       metavar="N|auto",
                       help="burst-drain chunk per scheduler: an integer "
                            "pins drain_chunk, 'auto' attaches the "
                            "batch-histogram autotuner")
    from repro.shard.driver import DEFAULT_MAX_RETRIES
    p_sim.add_argument("--max-retries", type=int, default=DEFAULT_MAX_RETRIES,
                       metavar="N",
                       help="re-run a shard whose worker died up to N extra "
                            "times (exponential backoff) before failing")
    p_sim.add_argument("--migrate-at", type=float, default=None,
                       metavar="T",
                       help="checkpoint one cell at T and resume it in a "
                            "fresh worker")
    p_sim.add_argument("--migrate-cell", default=None, metavar="CELL",
                       help="cell to migrate (default: first flat cell)")
    p_sim.add_argument("--verify", action="store_true",
                       help="also run single-process and fail on digest "
                            "mismatch")
    p_sim.add_argument("--json", metavar="OUT.JSON", default=None,
                       help="write the merged report as JSON")
    add_engine_flag(p_sim)
    p_sim.set_defaults(func=_cmd_sim)

    p_serve = sub.add_parser(
        "serve",
        help="run a cell as a crash-tolerant long-lived service with "
             "checkpoints, recovery, and the kill/recover soak gate")
    p_serve.add_argument("--flows", type=_positive_int, default=32)
    p_serve.add_argument("--duration", type=float, default=2.0,
                         help="simulated seconds to serve this invocation")
    p_serve.add_argument("--rate", type=float, default=1e6,
                         help="link rate in bits per second")
    p_serve.add_argument("--seed", type=int, default=1)
    p_serve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="durable checkpoint directory (enables the "
                              "supervisor); omit for in-memory only")
    p_serve.add_argument("--checkpoint-every", type=float, default=None,
                         metavar="T",
                         help="checkpoint cadence in simulated seconds")
    p_serve.add_argument("--recover", action="store_true",
                         help="resume from the newest verifiable checkpoint "
                              "in --checkpoint-dir instead of starting fresh")
    p_serve.add_argument("--idle-ttl", type=float, default=None, metavar="T",
                         help="evict per-flow state idle longer than T "
                              "simulated seconds (service order unchanged)")
    p_serve.add_argument("--stall-wall", type=float, default=None,
                         metavar="S",
                         help="watchdog: fail if simulated time stalls for "
                              "S wall seconds")
    p_serve.add_argument("--max-restarts", type=_positive_int, default=3,
                         metavar="N",
                         help="supervisor restart budget (with "
                              "--checkpoint-dir)")
    p_serve.add_argument("--soak", action="store_true",
                         help="run the kill/recover soak harness; exit 1 "
                              "unless the recovered digest matches the "
                              "uninterrupted run with zero violations")
    p_serve.add_argument("--kills", type=_positive_int, default=3,
                         help="hard kills to inject during --soak")
    add_engine_flag(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser(
        "bench",
        help="run the perf harness; optionally compare to a baseline JSON")
    p_bench.add_argument("--scenario", action="append", metavar="NAME",
                         help="run only this scenario (repeatable); "
                              "default: all")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-sized workloads (same points, fewer "
                              "packets/repeats)")
    p_bench.add_argument("-o", "--output", metavar="OUT.JSON", default=None,
                         help="write the results as a bench JSON document")
    p_bench.add_argument("--compare", metavar="BASELINE.JSON", default=None,
                         help="compare against a baseline; exit 1 on "
                              "regression")
    p_bench.add_argument("--threshold", type=float, default=0.25,
                         help="regression threshold as a fraction "
                              "(default 0.25 = +25%%)")
    p_bench.add_argument("--threshold-scenario", action="append",
                         metavar="NAME=FRAC", default=None,
                         help="override the threshold for one scenario "
                              "(repeatable), e.g. sharded_pipeline=0.6")
    p_bench.add_argument("--chunk", type=_chunk_arg, default=None,
                         metavar="N",
                         help="override the chunk sweep of the chunk-aware "
                              "scenarios (batch_pipeline, hier_vector)")
    p_bench.add_argument("--jobs", type=_positive_int, default=1,
                         metavar="N",
                         help="run scenarios across N worker processes "
                              "(same points and ordering as --jobs 1)")
    p_bench.add_argument("--report", metavar="OUT.JSON", default=None,
                         help="with --compare: also write the per-scenario "
                              "regression table as machine-readable JSON")
    p_bench.set_defaults(func=_cmd_bench)

    from repro.faults import CHAOS_SCHEDULERS, SCENARIOS as CHAOS_SCENARIOS
    p_chaos = sub.add_parser(
        "chaos",
        help="run fault-injection scenarios under the invariant checker; "
             "exit 1 on any violation or conservation mismatch")
    p_chaos.add_argument("--scenario", action="append", metavar="NAME",
                         choices=CHAOS_SCENARIOS,
                         help="run only this scenario (repeatable); "
                              "default: all")
    p_chaos.add_argument("--scheduler", action="append", metavar="NAME",
                         choices=CHAOS_SCHEDULERS,
                         help="scheduler under attack (repeatable); "
                              "default: wf2qplus and hwf2qplus")
    p_chaos.add_argument("--seed", type=int, default=1,
                         help="seed for traffic and the fault plan")
    p_chaos.add_argument("--duration", type=float, default=2.0,
                         help="traffic window in seconds")
    p_chaos.add_argument("--flows", type=_positive_int, default=8)
    p_chaos.add_argument("--rate", type=float, default=1e6,
                         help="link rate in bits per second")
    p_chaos.add_argument("--load", type=float, default=1.1,
                         help="offered load as a fraction of link capacity")
    p_chaos.add_argument("--json", metavar="OUT.JSON", default=None,
                         help="also write the results as JSON")
    p_chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
