"""Declarative description of a link-sharing hierarchy.

A hierarchy (Figure 1 of the paper) is a tree: the root is the physical
link, interior nodes are link-sharing classes (agencies, service classes),
and leaves are sessions with physical packet queues.  Each node carries a
service share ``phi``; the paper assumes children's shares sum to their
parent's, which is equivalent to treating shares as *relative weights among
siblings* — the convention used here, so specs read naturally
(``leaf("rt", 3)`` next to ``leaf("be", 1)`` means 3:1).

Build a spec with the :func:`node` / :func:`leaf` helpers::

    spec = HierarchySpec(node("root", 1, [
        node("A1", 50, [leaf("rt", 30), leaf("be", 20)]),
        leaf("A2", 20),
        leaf("A3", 30),
    ]))

then feed it to :class:`~repro.core.hierarchy.HPFQScheduler` (packet system)
or :class:`~repro.core.hgps.HGPSFluidSystem` (fluid reference).  Leaf names
are the flow ids used for ``enqueue``.
"""

from fractions import Fraction

from repro.errors import HierarchyError

__all__ = ["NodeSpec", "HierarchySpec", "leaf", "node"]


class NodeSpec:
    """One node of a hierarchy spec: a name, a share, and children.

    A node with no children is a leaf (a session with a packet queue).
    """

    __slots__ = ("name", "share", "children")

    def __init__(self, name, share, children=None):
        if share <= 0:
            raise HierarchyError(
                f"node {name!r}: share must be positive, got {share!r}"
            )
        self.name = name
        self.share = share
        self.children = list(children) if children else []

    @property
    def is_leaf(self):
        return not self.children

    def __repr__(self):
        kind = "leaf" if self.is_leaf else f"node/{len(self.children)}"
        return f"NodeSpec({self.name!r}, share={self.share!r}, {kind})"


def leaf(name, share):
    """A session (physical queue) with the given sibling-relative share."""
    return NodeSpec(name, share)


def node(name, share, children):
    """An interior link-sharing class with the given children."""
    if not children:
        raise HierarchyError(f"node {name!r}: interior node needs children")
    return NodeSpec(name, share, children)


class HierarchySpec:
    """A validated hierarchy: unique names, positive shares, >= 1 leaf.

    Provides the derived quantities the theory needs: normalised shares,
    guaranteed rates (phi products down the path), depth, and ancestor
    paths (the ``p^h(i)`` notation of Section 3.2).
    """

    def __init__(self, root):
        if root.is_leaf:
            raise HierarchyError("the root must have at least one child")
        self.root = root
        self._by_name = {}
        self._parent = {}
        self._index(root, None)
        self.leaves = [n for n in self._by_name.values() if n.is_leaf]

    def _index(self, spec, parent):
        if spec.name in self._by_name:
            raise HierarchyError(f"duplicate node name: {spec.name!r}")
        self._by_name[spec.name] = spec
        self._parent[spec.name] = parent
        for child in spec.children:
            self._index(child, spec)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name):
        return name in self._by_name

    def __getitem__(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise HierarchyError(f"unknown node: {name!r}") from None

    def parent(self, name):
        """Parent NodeSpec, or None for the root."""
        self[name]
        return self._parent[name]

    # ------------------------------------------------------------------
    # Live mutation (share renegotiation, subtree attach/detach)
    # ------------------------------------------------------------------
    def set_share(self, name, share):
        """Renegotiate a node's sibling-relative share.

        The root's share is meaningless (it has no siblings) and cannot
        change.  Callers holding derived state (guaranteed rates, policy
        weights) must rebase it themselves — see
        :meth:`~repro.core.hierarchy.HPFQScheduler.set_share`.
        """
        spec = self[name]
        if self._parent[name] is None:
            raise HierarchyError("the root has no siblings; its share is fixed")
        if share <= 0:
            raise HierarchyError(
                f"node {name!r}: share must be positive, got {share!r}"
            )
        spec.share = share

    @staticmethod
    def _subtree(spec):
        stack = [spec]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children)

    def attach(self, parent_name, subtree):
        """Graft a :class:`NodeSpec` subtree under an existing interior node.

        Validates name uniqueness (within the subtree and against the
        existing tree) before mutating, so a failed attach leaves the spec
        untouched.
        """
        parent = self[parent_name]
        if parent.is_leaf:
            raise HierarchyError(
                f"cannot attach under leaf {parent_name!r}; only interior "
                f"nodes take children"
            )
        names = [n.name for n in self._subtree(subtree)]
        if len(set(names)) != len(names):
            raise HierarchyError(
                f"subtree {subtree.name!r} contains duplicate node names"
            )
        clashes = [n for n in names if n in self._by_name]
        if clashes:
            raise HierarchyError(
                f"subtree node names already in the hierarchy: {sorted(clashes)}"
            )
        parent.children.append(subtree)
        self._index(subtree, parent)
        self.leaves = [n for n in self._by_name.values() if n.is_leaf]
        return subtree

    def detach(self, name):
        """Prune the subtree rooted at ``name``; returns its NodeSpec.

        The root cannot be detached, and a parent must keep at least one
        child (an interior node without children would silently become a
        leaf and change its meaning).
        """
        spec = self[name]
        parent = self._parent[name]
        if parent is None:
            raise HierarchyError("cannot detach the root")
        if len(parent.children) == 1:
            raise HierarchyError(
                f"detaching {name!r} would leave interior node "
                f"{parent.name!r} childless"
            )
        parent.children.remove(spec)
        for pruned in self._subtree(spec):
            del self._by_name[pruned.name]
            del self._parent[pruned.name]
        self.leaves = [n for n in self._by_name.values() if n.is_leaf]
        return spec

    def leaf_names(self):
        return [n.name for n in self.leaves]

    def node_names(self):
        return list(self._by_name)

    def is_leaf(self, name):
        return self[name].is_leaf

    # ------------------------------------------------------------------
    # Derived shares and rates
    # ------------------------------------------------------------------
    def normalized_share(self, name):
        """Share of this node relative to its siblings (phi_n / phi_parent).

        Integer shares divide exactly (as a Fraction), so trees declared
        with whole-number weights keep exact arithmetic end to end; any
        other numeric type falls back to true division.
        """
        parent = self.parent(name)
        if parent is None:
            return 1
        share = self[name].share
        total = sum(c.share for c in parent.children)
        if isinstance(share, int) and isinstance(total, int):
            return Fraction(share, total)
        return share / total

    def guaranteed_fraction(self, name):
        """phi_n: the node's guaranteed fraction of the link."""
        fraction = 1
        current = name
        while self.parent(current) is not None:
            fraction = fraction * self.normalized_share(current)
            current = self.parent(current).name
        return fraction

    def guaranteed_rate(self, name, link_rate):
        """r_n = phi_n * link rate."""
        return self.guaranteed_fraction(name) * link_rate

    def ancestors(self, name):
        """[p(i), p^2(i), ..., root] — the path from parent to root."""
        path = []
        current = self.parent(name)
        while current is not None:
            path.append(current)
            current = self.parent(current.name)
        return path

    def depth(self, name):
        """Number of ancestors (H in the paper's notation)."""
        return len(self.ancestors(name))

    def max_depth(self):
        return max(self.depth(leaf_name) for leaf_name in self.leaf_names())

    def walk(self):
        """Yield every NodeSpec, parents before children."""
        stack = [self.root]
        while stack:
            spec = stack.pop()
            yield spec
            stack.extend(reversed(spec.children))

    def __repr__(self):
        return (
            f"HierarchySpec(nodes={len(self._by_name)}, "
            f"leaves={len(self.leaves)}, depth={self.max_depth()})"
        )
