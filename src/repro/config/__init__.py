"""Declarative configuration of scheduling hierarchies."""

from repro.config.hierarchy_spec import HierarchySpec, NodeSpec, leaf, node

__all__ = ["HierarchySpec", "NodeSpec", "leaf", "node"]
