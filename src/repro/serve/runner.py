"""The long-lived service runner: streaming ingest, live reconfiguration,
checkpoints, and graceful degradation for one scheduling cell.

A :class:`ServiceRunner` hosts a single flat or hierarchical cell — the
same plain-data spec :mod:`repro.shard.worker` runs to a fixed horizon —
but drives it as a *service*: arrivals stream in indefinitely
(:meth:`advance` has no final horizon), metric snapshots are served live
(:meth:`status`, :meth:`metrics_report`), and reconfiguration commands
(:meth:`submit`) apply at run boundaries while mutating the *effective
spec* in lockstep, so a recovery rebuilds the post-command world without
replaying a command log.

Crash tolerance is checkpoint-shaped.  Every ``checkpoint_every``
simulated seconds the runner persists a self-contained payload — the
effective spec, the joint link+scheduler snapshot, per-source emission
snapshots, and the running service digest — through the atomic
:class:`~repro.faults.checkpoint.CheckpointStore`.  A fresh process (or
the in-process :class:`~repro.serve.supervisor.Supervisor`) rebuilds from
the newest verifiable file with :meth:`ServiceRunner.recover`; the
arrival streams replay bit-identically from their snapshots, so the
chained service digest of a killed-and-recovered service is
byte-identical to an uninterrupted run — the property the soak harness
(:mod:`repro.serve.soak`) and CI pin down.

Degradation ladder, mildest first:

* **idle-flow eviction** (``idle_ttl``) bounds memory on flow churn:
  per-flow state of long-idle flows is dropped via the scheduler's
  provably service-order-neutral
  :meth:`~repro.core.scheduler.PacketScheduler.evict_idle_flow` and
  resurrected exactly on the next arrival;
* **quarantine**: an :class:`~repro.errors.InvariantViolation` raised by
  the attached checker names an offending flow — the runner emits a
  typed :class:`~repro.obs.events.IncidentEvent`, blocklists the flow's
  ingress, rolls back to the last checkpoint *minus that flow's
  sources*, and keeps serving everyone else (the flow's residual backlog
  drains and the flow is detached, with exact rate rebasing, at the next
  quiescent boundary);
* **watchdog**: no simulated-time progress within ``stall_wall`` wall
  seconds raises :class:`~repro.errors.ServiceStall` for the supervisor;
* **crash**: anything unrecoverable raises
  :class:`~repro.errors.ServiceCrash`; the supervisor restarts from the
  latest good checkpoint with bounded retries and exponential backoff.
"""

import copy
import hashlib
import time
from collections import deque
from fractions import Fraction

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    InvariantViolation,
    ReproError,
    ServiceCrash,
    ServiceStall,
)

__all__ = ["ServiceRunner", "DigestTrace"]


def _canon(value):
    """Canonical text of one digest field; exact for Fractions."""
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    return repr(value)


class DigestTrace:
    """A constant-memory ServiceTrace stand-in that folds every completed
    transmission into a chained SHA-256 digest.

    Implements the duck interface the :class:`~repro.sim.link.Link`
    expects of its ``trace`` (``record_arrival(s)`` / ``record_service(s)``)
    without retaining per-packet records: each service row
    ``(flow_id, seqno, length, start, finish, vstart, vfinish)`` — with
    ``Fraction`` tags rendered exactly as ``num/den`` — is hashed into
    ``digest = sha256(prev_digest || row)``, so two runs share a digest
    iff they served the *same packets in the same order with the same
    tags*.  Arrival times feed the per-flow ``last_active`` map the
    runner's idle-flow eviction sweeps read.

    The chain state is tiny and picklable (:meth:`snapshot` /
    :meth:`restore`), which is what makes the killed-and-recovered
    service digest comparable to the uninterrupted run's.
    """

    SEED = "repro-serve-digest-v1"

    #: Rows are folded into the digest and discarded — no packet object
    #: survives a record_* call, so a Link may recycle packets through a
    #: :class:`~repro.core.packet.PacketPool` under this trace.
    retains_packets = False

    def __init__(self):
        self.digest = hashlib.sha256(self.SEED.encode()).hexdigest()
        self.rows = 0
        self.arrivals = 0
        #: flow_id -> last arrival or service-completion time seen.
        self.last_active = {}

    # -- ServiceTrace duck interface -----------------------------------
    def record_arrival(self, packet, now):
        self.arrivals += 1
        self.last_active[packet.flow_id] = now

    def record_arrivals(self, packets, now):
        self.arrivals += len(packets)
        active = self.last_active
        for packet in packets:
            active[packet.flow_id] = now

    def record_service(self, record):
        packet = record.packet
        row = "|".join((
            _canon(packet.flow_id), _canon(packet.seqno),
            _canon(packet.length), _canon(record.start_time),
            _canon(record.finish_time), _canon(record.virtual_start),
            _canon(record.virtual_finish),
        ))
        self.digest = hashlib.sha256(
            (self.digest + row).encode()).hexdigest()
        self.rows += 1
        self.last_active[packet.flow_id] = record.finish_time

    def record_services(self, records):
        for record in records:
            self.record_service(record)

    # -- checkpoint ----------------------------------------------------
    def snapshot(self):
        return {"digest": self.digest, "rows": self.rows,
                "arrivals": self.arrivals,
                "last_active": dict(self.last_active)}

    def restore(self, snap):
        self.digest = snap["digest"]
        self.rows = snap["rows"]
        self.arrivals = snap["arrivals"]
        self.last_active = dict(snap["last_active"])

    def __repr__(self):
        return f"DigestTrace(rows={self.rows}, digest={self.digest[:12]}…)"


# ----------------------------------------------------------------------
# Effective-spec surgery for hierarchical trees
# ----------------------------------------------------------------------
def _tree_set_share(tree, name, share):
    """Update ``name``'s share inside a nested-list tree; True on hit."""
    node_name, _share, children = tree
    if node_name == name:
        tree[1] = share
        return True
    return any(_tree_set_share(child, name, share) for child in children)


class ServiceRunner:
    """One scheduling cell run as a crash-tolerant, reconfigurable service.

    Parameters
    ----------
    spec:
        A flat or hierarchical cell spec (the :mod:`repro.shard.worker`
        shape): ``{"cell", "kind": "flat", "scheduler": {...},
        "sources": [...]}``.  Network cells are not servable.  The spec
        is deep-copied; the runner's copy is the *effective spec*,
        mutated by every applied command so checkpoints always describe
        the current world.
    checkpoint_dir / checkpoint_every / keep:
        Durable checkpoint cadence: every ``checkpoint_every`` simulated
        seconds a payload is written atomically into ``checkpoint_dir``
        (``keep`` newest files retained).  With no directory the runner
        still keeps an in-memory checkpoint at the same cadence — the
        quarantine rollback target.
    idle_ttl:
        Evict per-flow scheduler state of flows idle longer than this
        many simulated seconds (flat cells only).  Service order is
        provably unchanged; memory stays bounded under flow churn.
    stall_wall:
        Watchdog budget in *wall* seconds: if simulated time makes no
        progress within one budget, :class:`~repro.errors.ServiceStall`
        is raised.  ``wall_clock`` is injectable for tests.
    check:
        Attach an :class:`~repro.obs.invariants.InvariantChecker`
        (default True); violations trigger the quarantine path instead
        of killing the service.
    engine:
        Event-engine selector for the hosted simulator (see
        :func:`repro.sim.engine.resolve_engine`; None resolves from
        ``REPRO_ENGINE``).  Checkpoints are engine-agnostic — a service
        checkpointed under one engine recovers under any other with a
        byte-identical chained digest — so the engine is a per-process
        runtime choice, not part of the persisted spec.
    on_incident:
        Optional callable receiving every
        :class:`~repro.obs.events.IncidentEvent` as it is recorded.
    """

    def __init__(self, spec, *, checkpoint_dir=None, checkpoint_every=None,
                 keep=3, idle_ttl=None, stall_wall=None, check=True,
                 engine=None, wall_clock=None, on_incident=None,
                 _restore=None):
        if spec.get("kind") == "network":
            raise ConfigurationError(
                "repro serve hosts a single link; network cells are not "
                "servable")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ConfigurationError(
                f"checkpoint_every must be positive, got {checkpoint_every!r}")
        self.spec = copy.deepcopy(spec)
        self.spec.setdefault("faults", [])
        self.checkpoint_every = checkpoint_every
        self.idle_ttl = idle_ttl
        self.stall_wall = stall_wall
        self.check = check
        self.engine = engine
        self._wall = wall_clock if wall_clock is not None else time.monotonic
        self.on_incident = on_incident
        self.incidents = []
        self.quarantined = []
        self._blocked = set()
        self._pending_detach = set()
        self._ingress_dropped = 0
        self._commands = deque()
        self.commands_applied = 0
        self.checkpoints_written = 0
        self.recoveries = 0
        self.peak_live_flows = 0
        self.store = None
        if checkpoint_dir is not None:
            from repro.faults import CheckpointStore

            self.store = CheckpointStore(checkpoint_dir, keep=keep,
                                         on_skip=self._skipped_checkpoint)
        self._build(self.spec)
        if _restore is None:
            for source in self.sources:
                source.start()
            self._arm_faults(after=None)
            self._next_ckpt = checkpoint_every
            self._last_payload = self._payload()
        else:
            self._restore_state(_restore)

    # ------------------------------------------------------------------
    # Construction / restore
    # ------------------------------------------------------------------
    def _build(self, spec):
        """(Re)build the live stack — sim, link, sinks, attached sources —
        from ``spec``.  Sources are attached but not started."""
        from repro.obs import InvariantChecker, MetricsSink
        from repro.shard.worker import build_scheduler, build_source
        from repro.sim.engine import Simulator
        from repro.sim.link import Link

        self.sim = Simulator(engine=self.engine)
        self.trace = DigestTrace()
        scheduler = build_scheduler(spec["scheduler"])
        # Replay completed detaches: flow indices come from a monotonic
        # registration counter, so an exact rebuild must register the
        # *original* roster and then remove the retired entries — building
        # from a pruned flow list would re-index the survivors and make
        # any post-detach checkpoint unrestorable (tie-breaks diverge).
        for name in spec["scheduler"].get("detached", ()):
            if spec["scheduler"].get("kind") == "hpfq":
                scheduler.detach_subtree(name)
            else:
                scheduler.remove_flow(name)
        self.link = Link(self.sim, scheduler, trace=self.trace)
        self.metrics = MetricsSink()
        self.checker = InvariantChecker() if self.check else None
        sinks = [self.metrics]
        if self.checker is not None:
            sinks.append(self.checker)
        self.link.attach_observer(*sinks)
        self.sources = [build_source(s).attach(self.sim, self.link)
                        for s in spec["sources"]]

    def _restore_state(self, payload):
        """Adopt a checkpoint payload into the freshly built stack.

        Mirrors :func:`repro.shard.worker.resume_cell`: the link (and
        with it the scheduler) restores first so the re-armed in-flight
        finish event exists, then pending source emissions re-schedule
        in ascending time order, then an empty ``run(until=clock)``
        snaps the fresh simulator's clock to the checkpoint time (every
        restored event is strictly later).  Metric sinks restart empty —
        gauges are not part of the digest contract — while the chained
        digest resumes exactly.
        """
        self.link.restore(payload["link"], rearm=True)
        pairs = sorted(
            zip(self.sources, payload["sources"]),
            key=lambda p: (p[1]["pending_time"] is None,
                           p[1]["pending_time"] or 0.0))
        for source, snap in pairs:
            source.restore(snap)
        self.sim.run(until=payload["clock"])
        self.trace.restore(payload["digest"])
        self._arm_faults(after=payload["clock"])
        self._blocked = set(payload["ingress"]["blocked"])
        self._ingress_dropped = payload["ingress"]["dropped"]
        self._pending_detach = set(payload["quarantine"]["pending"])
        self.quarantined = list(payload["quarantine"]["done"])
        stats = payload["stats"]
        self.commands_applied = stats["commands"]
        self.checkpoints_written = stats["checkpoints"]
        self.recoveries = stats["recoveries"]
        every = self.checkpoint_every
        if every is not None:
            boundary = every
            while boundary <= payload["clock"]:
                boundary += every
            self._next_ckpt = boundary
        else:
            self._next_ckpt = None
        self._last_payload = payload

    def _arm_faults(self, after):
        """Arm the effective spec's fault plan on the live simulator.

        ``after=None`` arms everything (fresh build); a restore arms only
        actions strictly later than the checkpoint clock — earlier ones
        already fired and their effects live inside the scheduler
        snapshot.
        """
        actions = [a for a in self.spec["faults"]
                   if after is None or a[0] > after]
        if not actions:
            return
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan()
        for action_time, kind, target, value in actions:
            plan._add(action_time, kind, target=target, value=value)
        FaultInjector(plan, self.link).arm()

    @classmethod
    def recover(cls, checkpoint_dir, **kwargs):
        """Rebuild a service from the newest verifiable checkpoint.

        Corrupt, truncated, or version-mismatched files are skipped
        (surfaced as ``checkpoint-skipped`` incidents on the recovered
        runner); with no usable checkpoint at all a
        :class:`~repro.errors.CheckpointError` (reason ``"missing"``)
        is raised so the supervisor can distinguish "recover" from
        "cannot recover".
        """
        from repro.faults import CheckpointStore

        skipped = []
        probe = CheckpointStore(
            checkpoint_dir, on_skip=lambda path, exc: skipped.append(
                (path, exc)))
        payload, path = probe.load_latest()
        if payload is None:
            raise CheckpointError(
                str(checkpoint_dir), "missing",
                "no usable checkpoint to recover from")
        runner = cls(payload["spec"], checkpoint_dir=checkpoint_dir,
                     _restore=payload, **kwargs)
        for skipped_path, exc in skipped:
            runner._incident("checkpoint-skipped", target=skipped_path,
                             detail=f"[{exc.reason}] {exc.message}")
        runner.recoveries += 1
        runner._incident("crash-recovered", target=path,
                         detail=f"clock={runner.now!r}")
        return runner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated service time."""
        return self.sim.now

    @property
    def digest(self):
        """The chained service digest (hex)."""
        return self.trace.digest

    @property
    def live_flows(self):
        """Flows with in-memory scheduler state (excludes evicted ones)."""
        sched = self.link.scheduler
        evicted = getattr(sched, "evicted_flow_ids", ())
        return len(sched.flow_ids) - len(evicted)

    def status(self):
        """A plain-data live snapshot for dashboards and the CLI."""
        sched = self.link.scheduler
        ledger = sched.conservation()
        return {
            "cell": self.spec.get("cell"),
            "scheduler": sched.name,
            "engine": self.sim.engine_active,
            "clock": self.sim.now,
            "digest": self.trace.digest,
            "rows": self.trace.rows,
            "arrivals": self.trace.arrivals,
            "backlog": ledger["backlog"],
            "conservation_balanced": ledger["balanced"],
            "flows": len(sched.flow_ids),
            "live_flows": self.live_flows,
            "peak_live_flows": self.peak_live_flows,
            "link": {"packets_sent": self.link.packets_sent,
                     "bits_sent": self.link.bits_sent,
                     "packets_dropped": self.link.packets_dropped},
            "ingress_blocked": sorted(self._blocked, key=str),
            "ingress_dropped": self._ingress_dropped,
            "quarantined": list(self.quarantined),
            "pending_detach": sorted(self._pending_detach, key=str),
            "incidents": [(e.category, e.target) for e in self.incidents],
            "commands_applied": self.commands_applied,
            "checkpoints_written": self.checkpoints_written,
            "recoveries": self.recoveries,
        }

    def metrics_report(self):
        """The live :class:`~repro.obs.sinks.MetricsSink` report text."""
        return self.metrics.format_report()

    # ------------------------------------------------------------------
    # Streaming ingest
    # ------------------------------------------------------------------
    def inject(self, packet):
        """Hand one externally generated packet to the ingress *now*.

        Quarantined flows are dropped at the door (counted, not
        enqueued).  External injections are at-most-once across a crash:
        unlike source streams they cannot be replayed from a checkpoint.
        """
        if packet.flow_id in self._blocked:
            self._ingress_dropped += 1
            return False
        return self.link.send(packet)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def submit(self, op, **params):
        """Queue a reconfiguration command; applied at the next boundary.

        Ops: ``set_share(flow, share)``, ``set_link_rate(rate)``,
        ``attach(flow, share)``, ``detach(flow)``,
        ``add_source(source=<spec>)``, ``set_buffer(flow, packets)``,
        ``fault(time, fault_kind, target=None, value=None)``.
        """
        self._commands.append({"op": op, **params})

    def apply_pending(self):
        """Apply queued commands now (also called by :meth:`run_to`)."""
        while self._commands:
            self._apply(self._commands.popleft())

    def _apply(self, cmd):
        op = cmd["op"]
        sched = self.link.scheduler
        sspec = self.spec["scheduler"]
        hierarchical = sspec.get("kind") == "hpfq"
        if op == "set_share":
            flow, share = cmd["flow"], cmd["share"]
            sched.set_share(flow, share)
            if hierarchical:
                _tree_set_share(sspec["tree"], flow, share)
            else:
                sspec["flows"] = [
                    (fid, share if fid == flow else old)
                    for fid, old in sspec["flows"]]
        elif op == "set_link_rate":
            self.link.set_rate(cmd["rate"])
            sspec["rate"] = cmd["rate"]
        elif op == "attach":
            if hierarchical:
                raise ConfigurationError(
                    "attach/detach commands support flat cells; use a "
                    "fault action for hierarchical topology changes")
            if cmd["flow"] in sspec.get("detached", ()):
                raise ConfigurationError(
                    f"flow id {cmd['flow']!r} was detached and is retired "
                    f"for the life of this service; attach a fresh id")
            sched.add_flow(cmd["flow"], cmd["share"])
            sspec["flows"].append((cmd["flow"], cmd["share"]))
        elif op == "detach":
            if hierarchical:
                raise ConfigurationError(
                    "attach/detach commands support flat cells; use a "
                    "fault action for hierarchical topology changes")
            self._drop_sources_of(cmd["flow"])
            self._pending_detach.add(cmd["flow"])
            self._complete_detaches()
        elif op == "add_source":
            src_spec = dict(cmd["source"])
            if src_spec["flow"] in sspec.get("detached", ()):
                raise ConfigurationError(
                    f"flow id {src_spec['flow']!r} is retired; a source "
                    f"feeding it could never be served")
            # An emission window opening in the past cannot be scheduled
            # (and could not be replayed): clamp it to the boundary.
            src_spec["start"] = max(src_spec.get("start", 0.0), self.sim.now)
            from repro.shard.worker import build_source

            source = build_source(src_spec).attach(self.sim, self.link)
            self.spec["sources"].append(src_spec)
            self.sources.append(source)
            source.start()
        elif op == "set_buffer":
            sched.set_buffer_limit(cmd["flow"], cmd["packets"])
            self.spec["scheduler"].setdefault(
                "buffers", {})[cmd["flow"]] = cmd["packets"]
        elif op == "fault":
            action = (cmd["time"], cmd["fault_kind"], cmd.get("target"),
                      cmd.get("value"))
            if action[0] <= self.sim.now:
                raise ConfigurationError(
                    f"fault time {action[0]!r} is not in the future "
                    f"(clock is {self.sim.now!r})")
            self.spec["faults"].append(action)
            from repro.faults import FaultInjector, FaultPlan

            plan = FaultPlan()
            plan._add(action[0], action[1], target=action[2],
                      value=action[3])
            FaultInjector(plan, self.link).arm()
        else:
            raise ConfigurationError(f"unknown service command {op!r}")
        self.commands_applied += 1

    def _drop_sources_of(self, flow):
        """Stop and forget every source feeding ``flow`` (spec + live)."""
        keep = [i for i, s in enumerate(self.spec["sources"])
                if s["flow"] != flow]
        for i, source in enumerate(self.sources):
            if i in keep:
                continue
            pending = source._pending
            if (pending is not None and pending.sim is self.sim
                    and pending.epoch == self.sim.epoch):
                pending.cancel()
        self.spec["sources"] = [self.spec["sources"][i] for i in keep]
        self.sources = [self.sources[i] for i in keep]

    # ------------------------------------------------------------------
    # The service loop
    # ------------------------------------------------------------------
    def advance(self, dt):
        """Serve ``dt`` more simulated seconds; returns the new clock."""
        if dt < 0:
            raise ConfigurationError(f"cannot advance by {dt!r}")
        return self.run_to(self.sim.now + dt)

    def run_to(self, target):
        """Serve until simulated ``target``, checkpointing on cadence.

        Pending commands apply first; boundary work (deferred detaches,
        idle-flow eviction, the checkpoint itself) runs between slices so
        it never interleaves with event processing.
        """
        self.apply_pending()
        while True:
            end = target
            boundary = self._next_ckpt
            if boundary is not None and self.sim.now < boundary < end:
                end = boundary
            self._run_slice(end)
            self._sweep()
            if boundary is not None and self.sim.now >= boundary:
                self.checkpoint()
                while self._next_ckpt <= self.sim.now:
                    self._next_ckpt += self.checkpoint_every
            if self.sim.now >= target:
                return self.sim.now

    def _run_slice(self, end):
        """Run guarded to ``end``, absorbing quarantines and stalls.

        The guarded loop (no inline elision, wall budget per slice) is
        the service-mode trade: every event is individually accountable,
        so the watchdog can tell "slow but progressing" (budget renews)
        from "stuck" (no simulated progress in a whole budget).
        """
        while True:
            mark = self.sim.now
            try:
                completed = self.sim.run_guarded(
                    end, max_wall=self.stall_wall, wall_clock=self._wall)
            except InvariantViolation as exc:
                self._quarantine(exc)
                continue
            if completed:
                return
            if self.sim.now <= mark:
                self._incident(
                    "stall", detail=f"no progress past t={mark!r} within "
                                    f"{self.stall_wall!r}s wall")
                raise ServiceStall(
                    f"simulated time stuck at {mark!r} for "
                    f"{self.stall_wall!r} wall seconds")

    def _quarantine(self, exc):
        """Degrade gracefully around an invariant violation.

        The offending flow (from the violation's event) is blocklisted
        and its sources removed; the service rolls back to the last
        checkpoint and replays without it.  A violation that names no
        flow — or re-names an already-quarantined one, meaning the
        replay deterministically re-trips — escalates to
        :class:`~repro.errors.ServiceCrash` for the supervisor.
        """
        flow = getattr(exc.event, "flow_id", None)
        if flow is None or flow in self._blocked:
            self._incident("crash", target=flow, detail=str(exc))
            raise ServiceCrash(exc)
        self._incident("quarantine", target=flow,
                       detail=f"[{exc.invariant}] {exc.message}")
        payload = copy.deepcopy(self._last_payload)
        spec = payload["spec"]
        keep = [i for i, s in enumerate(spec["sources"])
                if s["flow"] != flow]
        spec["sources"] = [spec["sources"][i] for i in keep]
        payload["sources"] = [payload["sources"][i] for i in keep]
        payload["ingress"]["blocked"] = sorted(
            set(payload["ingress"]["blocked"]) | {flow}, key=str)
        payload["quarantine"]["pending"] = sorted(
            set(payload["quarantine"]["pending"]) | {flow}, key=str)
        self.spec = spec
        self._build(spec)
        self._restore_state(payload)

    # ------------------------------------------------------------------
    # Boundary work
    # ------------------------------------------------------------------
    def _sweep(self):
        """Between-slice housekeeping: detaches, eviction, peak gauge."""
        self._complete_detaches()
        self._evict_idle()
        live = self.live_flows
        if live > self.peak_live_flows:
            self.peak_live_flows = live

    def _complete_detaches(self):
        """Detach pending flows whose backlog has drained.

        Removal gives the share back and rebases sibling rates exactly
        (the scheduler's ``remove_flow`` / ``detach_subtree`` contract);
        a still-backlogged flow simply stays pending until a later
        boundary.
        """
        if not self._pending_detach:
            return
        sched = self.link.scheduler
        sspec = self.spec["scheduler"]
        hierarchical = sspec.get("kind") == "hpfq"
        for flow in sorted(self._pending_detach, key=str):
            try:
                if hierarchical:
                    sched.detach_subtree(flow)
                else:
                    if sched.queue_length(flow):
                        continue
                    sched.remove_flow(flow)
            except ReproError:
                continue  # not quiescent yet; retry next boundary
            self._pending_detach.discard(flow)
            self.quarantined.append(flow)
            # The spec keeps the original roster and records the removal:
            # rebuilds replay it (see _build) so surviving flow indices —
            # and with them every future tie-break — stay exact.
            sspec.setdefault("detached", []).append(flow)
            sspec.get("buffers", {}).pop(flow, None)
            self.trace.last_active.pop(flow, None)

    def _evict_idle(self):
        """Evict scheduler state of flows idle past ``idle_ttl``.

        Flat cells only: hierarchical leaves hold ancestor tag state the
        flat eviction contract does not cover.  The scheduler's own
        :meth:`_evictable_idle` gate re-proves order-neutrality per flow,
        so a sweep can never change what is served.
        """
        ttl = self.idle_ttl
        if ttl is None or self.spec["scheduler"].get("kind") == "hpfq":
            return
        sched = self.link.scheduler
        cutoff = self.sim.now - ttl
        if cutoff <= 0:
            return
        evicted = set(sched.evicted_flow_ids)
        active = self.trace.last_active
        for flow in list(sched.flow_ids):
            if flow in evicted or flow in self._pending_detach:
                continue
            if active.get(flow, 0.0) <= cutoff:
                sched.evict_idle_flow(flow, now=self.sim.now)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _payload(self):
        return {
            "kind": "serve",
            "spec": copy.deepcopy(self.spec),
            "clock": self.sim.now,
            "link": self.link.snapshot(),
            "sources": [source.snapshot() for source in self.sources],
            "digest": self.trace.snapshot(),
            "ingress": {"blocked": sorted(self._blocked, key=str),
                        "dropped": self._ingress_dropped},
            "quarantine": {
                "pending": sorted(self._pending_detach, key=str),
                "done": list(self.quarantined)},
            "stats": {"commands": self.commands_applied,
                      "checkpoints": self.checkpoints_written,
                      "recoveries": self.recoveries},
        }

    def checkpoint(self):
        """Capture the service state now; returns the file path (or None).

        Always refreshes the in-memory rollback payload; writes a
        durable file only when a ``checkpoint_dir`` was given.
        """
        payload = self._payload()
        self._last_payload = payload
        path = None
        if self.store is not None:
            path = self.store.save(payload)
        self.checkpoints_written += 1
        return path

    def _skipped_checkpoint(self, path, exc):
        self._incident("checkpoint-skipped", target=path,
                       detail=f"[{exc.reason}] {exc.message}")

    # ------------------------------------------------------------------
    def _incident(self, category, target=None, detail=None):
        from repro.obs import IncidentEvent

        event = IncidentEvent(self.sim.now, self.link.scheduler.name,
                              category, target=target, detail=detail)
        self.incidents.append(event)
        if self.on_incident is not None:
            self.on_incident(event)
        return event

    def __repr__(self):
        return (f"ServiceRunner(cell={self.spec.get('cell')!r}, "
                f"t={self.sim.now!r}, rows={self.trace.rows}, "
                f"recoveries={self.recoveries})")
