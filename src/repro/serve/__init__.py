"""repro.serve — crash-tolerant long-lived service mode.

Three pieces:

* :mod:`repro.serve.runner` — :class:`ServiceRunner`: one scheduling
  cell run as a service with streaming ingest, live metric snapshots,
  mid-run reconfiguration commands, durable atomic checkpoints,
  invariant-violation quarantine, idle-flow eviction, and a stall
  watchdog; :class:`DigestTrace` is the constant-memory chained service
  digest that makes recovery exactness checkable.
* :mod:`repro.serve.supervisor` — :class:`Supervisor` /
  :func:`supervise`: bounded-retry restarts from the latest good
  checkpoint with exponential backoff.
* :mod:`repro.serve.soak` — the kill/recover soak harness behind
  ``python -m repro serve --soak`` and CI's ``soak-smoke`` gate.
"""

from repro.serve.runner import DigestTrace, ServiceRunner
from repro.serve.soak import build_service_spec, format_soak, run_soak
from repro.serve.supervisor import Supervisor, supervise

__all__ = [
    "ServiceRunner",
    "DigestTrace",
    "Supervisor",
    "supervise",
    "run_soak",
    "build_service_spec",
    "format_soak",
]
