"""The service supervisor: bounded restarts from the latest checkpoint.

A :class:`Supervisor` owns two factories — ``start`` (build a fresh
:class:`~repro.serve.runner.ServiceRunner`) and ``recover`` (rebuild one
from the checkpoint directory) — and drives a caller-supplied ``work``
function against whichever runner is current.  When ``work`` raises
(an injected kill, a :class:`~repro.errors.ServiceStall` from the
watchdog, an escalated :class:`~repro.errors.ServiceCrash`), the
supervisor sleeps an exponential backoff, recovers a new runner from the
newest verifiable checkpoint, and calls ``work`` again; ``work``
therefore must be *progress-aware* — it reads ``runner.now`` and drives
from wherever the recovered clock stands, never from a remembered
position.  After ``max_restarts`` failed recoveries the last cause is
re-raised wrapped in :class:`~repro.errors.ServiceCrash`.

``sleep`` is injectable so tests assert the backoff schedule without
waiting; :func:`supervise` is the one-call convenience wrapper the soak
harness and the CLI use.
"""

import time

from repro.errors import ServiceCrash
from repro.serve.runner import ServiceRunner

__all__ = ["Supervisor", "supervise"]

#: Default restart budget: recoveries per supervised run, not per incident
#: type — every distinct failure draws from the same pool.
DEFAULT_MAX_RESTARTS = 3


class Supervisor:
    """Restart a crashing service from checkpoints, with bounded retries.

    Parameters
    ----------
    start:
        Zero-argument factory for the initial runner.
    recover:
        Zero-argument factory rebuilding a runner from the latest good
        checkpoint (typically ``ServiceRunner.recover`` partially
        applied).
    max_restarts:
        Recoveries allowed before giving up.
    backoff:
        First retry delay in seconds; doubles per restart
        (``backoff * 2**(restart-1)``).
    sleep:
        Injectable sleep (defaults to :func:`time.sleep`).
    """

    def __init__(self, start, recover, *, max_restarts=DEFAULT_MAX_RESTARTS,
                 backoff=0.05, sleep=None):
        self._start = start
        self._recover = recover
        self.max_restarts = max_restarts
        self.backoff = backoff
        self._sleep = sleep if sleep is not None else time.sleep
        self.restarts = 0
        #: Stringified cause of every failure, in order.
        self.failures = []

    def run(self, work):
        """Drive ``work(runner)`` to completion across crashes.

        Returns whatever ``work`` returns.  ``BaseException``s that are
        not ``Exception`` (KeyboardInterrupt and friends) pass through
        untouched.
        """
        runner = self._start()
        while True:
            try:
                return work(runner)
            except Exception as exc:
                self.failures.append(f"{type(exc).__name__}: {exc}")
                if self.restarts >= self.max_restarts:
                    raise ServiceCrash(exc) from exc
                self.restarts += 1
                self._sleep(self.backoff * (2 ** (self.restarts - 1)))
                runner = self._recover()

    def __repr__(self):
        return (f"Supervisor(restarts={self.restarts}/"
                f"{self.max_restarts})")


def supervise(spec, work, checkpoint_dir, *,
              max_restarts=DEFAULT_MAX_RESTARTS, backoff=0.05, sleep=None,
              **runner_opts):
    """Run ``work`` under a supervisor; returns ``(result, supervisor)``.

    ``runner_opts`` (``checkpoint_every``, ``idle_ttl``, ``stall_wall``,
    ``check``, ...) configure both the fresh and every recovered runner.
    The first runner is built fresh from ``spec``; recoveries come from
    ``checkpoint_dir`` via :meth:`ServiceRunner.recover`.
    """
    supervisor = Supervisor(
        lambda: ServiceRunner(spec, checkpoint_dir=checkpoint_dir,
                              **runner_opts),
        lambda: ServiceRunner.recover(checkpoint_dir, **runner_opts),
        max_restarts=max_restarts, backoff=backoff, sleep=sleep)
    return supervisor.run(work), supervisor
