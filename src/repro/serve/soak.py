"""The soak harness: kill the service repeatedly and prove nothing broke.

:func:`run_soak` runs the same churny workload twice:

* **baseline** — one uninterrupted :class:`~repro.serve.runner.ServiceRunner`
  driven straight to the horizon;
* **chaos** — an identical runner under a
  :class:`~repro.serve.supervisor.Supervisor`, hard-killed at ``kills``
  seeded random points and recovered from the latest durable checkpoint
  each time.

The verdict is exact: the chained service digest (per-packet
``(flow, seqno, length, times, virtual tags)`` rows) of the recovered
run must be byte-identical to the baseline's, both runs must finish with
zero quarantine/stall incidents and a balanced conservation ledger, and
the workload's staggered on/off flows exercise idle-flow eviction so the
peak live-flow count stays bounded.  CI's ``soak-smoke`` job gates on
this via ``python -m repro serve --soak``.
"""

import random
import tempfile

from repro.serve.runner import ServiceRunner
from repro.serve.supervisor import Supervisor

__all__ = ["build_service_spec", "run_soak", "format_soak"]

#: Incident categories that mean degradation, not routine recovery.
_BAD_INCIDENTS = frozenset({"quarantine", "stall", "crash"})


class InjectedKill(RuntimeError):
    """The soak harness's simulated hard crash."""


def build_service_spec(flows=32, rate=1e6, duration=2.0, length=8000.0,
                       seed=1, waves=4, policy="wf2qplus", backend="exact"):
    """A flat churn cell: flows come and go in staggered waves.

    Each flow emits CBR for roughly ``duration / waves`` seconds and then
    stops for good, with the next wave's flows starting as it quiets —
    so at any instant only ~``flows / waves`` flows are active and the
    rest sit idle, which is exactly the shape idle-flow eviction exists
    for.  Aggregate offered load stays near 90% of the link, split
    evenly across the concurrently active flows.  Everything is seeded
    and deterministic: two builds produce byte-identical specs.
    """
    waves = max(1, min(waves, flows))
    per_wave = max(1, flows // waves)
    wave_len = duration / waves
    rng = random.Random(seed)
    flow_list = []
    sources = []
    for i in range(flows):
        fid = f"f{i:04d}"
        flow_list.append((fid, 1 + (i % 3)))
        wave = min(i // per_wave, waves - 1)
        start = wave * wave_len + rng.uniform(0, 0.1 * wave_len)
        stop = min(start + 0.8 * wave_len, duration)
        active = min(per_wave, flows - wave * per_wave)
        sources.append({
            "type": "cbr", "flow": fid, "length": length,
            "rate": 0.9 * rate / active, "start": start, "stop": stop,
        })
    return {
        "cell": "serve-soak", "kind": "flat",
        "scheduler": {"kind": "flat", "policy": policy, "rate": rate,
                      "flows": flow_list, "backend": backend},
        "sources": sources,
    }


def run_soak(flows=32, duration=2.0, kills=3, seed=1, rate=1e6,
             checkpoint_every=None, idle_ttl=None, directory=None,
             waves=4, sleep=None, engine=None):
    """Kill-and-recover soak; returns a plain-data verdict.

    ``kills`` seeded random kill points land strictly after the second
    checkpoint boundary (so recovery always has a file to come back
    from) and before 95% of the horizon.  ``directory`` overrides the
    checkpoint location (a temp dir by default); ``sleep`` is passed to
    the supervisor (default: no real waiting — the backoff schedule is
    still recorded).  ``engine`` selects the event engine for baseline
    and chaos runners alike (the digest verdict is engine-invariant).
    """
    if checkpoint_every is None:
        checkpoint_every = duration / 16
    if kills < 1:
        raise ValueError(f"kills must be >= 1, got {kills!r}")
    lo, hi = 2.0 * checkpoint_every, 0.95 * duration
    if lo >= hi:
        raise ValueError(
            f"duration {duration!r} too short for checkpoint_every "
            f"{checkpoint_every!r}: kills need room in ({lo!r}, {hi!r})")
    spec = build_service_spec(flows=flows, rate=rate, duration=duration,
                              seed=seed)
    opts = {"checkpoint_every": checkpoint_every, "idle_ttl": idle_ttl,
            "check": True, "engine": engine}

    baseline = ServiceRunner(spec, **opts)
    baseline.run_to(duration)

    rng = random.Random(seed + 0xC0FFEE)
    kill_times = sorted(rng.uniform(lo, hi) for _ in range(kills))
    remaining = list(kill_times)

    def work(runner):
        while remaining:
            cut = remaining[0]
            if runner.now < cut:
                runner.run_to(cut)
            remaining.pop(0)
            raise InjectedKill(f"killed at t={cut!r}")
        runner.run_to(duration)
        return runner

    if sleep is None:
        sleep = lambda _s: None  # noqa: E731 — soak never really waits
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            survivor, supervisor = _supervised(spec, work, tmp, kills,
                                               sleep, opts)
    else:
        survivor, supervisor = _supervised(spec, work, directory, kills,
                                           sleep, opts)

    bad = [(e.category, e.target, e.detail)
           for e in baseline.incidents + survivor.incidents
           if e.category in _BAD_INCIDENTS]
    base_ledger = baseline.link.scheduler.conservation()
    chaos_ledger = survivor.link.scheduler.conservation()
    result = {
        "ok": (baseline.digest == survivor.digest
               and baseline.trace.rows == survivor.trace.rows
               and not bad
               and base_ledger["balanced"] and chaos_ledger["balanced"]),
        "digest_baseline": baseline.digest,
        "digest_recovered": survivor.digest,
        "rows_baseline": baseline.trace.rows,
        "rows_recovered": survivor.trace.rows,
        "kills": kill_times,
        "restarts": supervisor.restarts,
        "failures": list(supervisor.failures),
        "recoveries": survivor.recoveries,
        "checkpoints": survivor.checkpoints_written,
        "bad_incidents": bad,
        "conservation_ok": (base_ledger["balanced"]
                            and chaos_ledger["balanced"]),
        "flows": flows,
        "peak_live_flows": max(baseline.peak_live_flows,
                               survivor.peak_live_flows),
        "idle_ttl": idle_ttl,
        "duration": duration,
    }
    return result


def _supervised(spec, work, directory, kills, sleep, opts):
    supervisor = Supervisor(
        lambda: ServiceRunner(spec, checkpoint_dir=directory, **opts),
        lambda: ServiceRunner.recover(directory, **opts),
        max_restarts=kills, backoff=0.01, sleep=sleep)
    survivor = supervisor.run(work)
    return survivor, supervisor


def format_soak(result):
    """Human-readable soak verdict."""
    lines = [
        f"soak: {result['flows']} flows, {result['duration']:g}s, "
        f"{len(result['kills'])} kills at "
        + ", ".join(f"{t:.4f}" for t in result["kills"]),
        f"  restarts: {result['restarts']}  "
        f"checkpoints: {result['checkpoints']}  "
        f"recoveries: {result['recoveries']}",
        f"  digest baseline : {result['digest_baseline']}",
        f"  digest recovered: {result['digest_recovered']}  "
        f"({'match' if result['digest_baseline'] == result['digest_recovered'] else 'MISMATCH'})",
        f"  service rows: {result['rows_baseline']} baseline / "
        f"{result['rows_recovered']} recovered",
        f"  conservation: "
        f"{'balanced' if result['conservation_ok'] else 'IMBALANCED'}",
        f"  peak live flows: {result['peak_live_flows']} of "
        f"{result['flows']}"
        + (f" (idle_ttl={result['idle_ttl']:g}s)"
           if result["idle_ttl"] is not None else ""),
    ]
    if result["bad_incidents"]:
        lines.append(f"  incidents: {result['bad_incidents']}")
    lines.append("soak: OK" if result["ok"] else "soak: FAIL")
    return "\n".join(lines)
