"""The Figure 8 hierarchy and the Figure 9 link-sharing experiment.

Section 5.2 drives a four-level hierarchy with TCP sources (greedy,
ack-clocked) plus one scripted on/off source per level, and shows that the
bandwidth each TCP session receives under H-WF2Q+ tracks the ideal H-GPS
allocation through every on/off transition.

The exact Figure 8 tree is reconstructed from the narrative:

* TCP-1 and on/off source OO-1 sit at the first level (so OO-1's state
  affects everyone, and nothing below affects TCP-1 while N1 is
  backlogged);
* OO-2 sits with TCP-5 at level two, OO-3 with TCP-8 at level three, and
  OO-4 with TCP-10/11 at the deepest level — giving exactly the gain/lose
  pattern the paper describes at t = 5000/5250/6000/8000 ms.

The scripted schedule reproduces the narrative's transition times::

    t(ms):   0     5000   5250   6000   6750   7500   8000   8250   9000
    OO-1:    on ............ off    on    off    on  ........  off    on
    OO-2:    on    off ..............................................
    OO-3:    on    off ........................................ on ...
    OO-4:    off   on .......................................  off ...
"""

from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hierarchy import HPFQScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.tcp.reno import Demux, TCPConnection
from repro.traffic.source import IntervalSource

__all__ = [
    "FIG8_LINK_RATE",
    "FIG8_PACKET_LENGTH",
    "ONOFF_SCHEDULE",
    "TRANSITIONS",
    "TCP_FLOWS",
    "build_fig8_spec",
    "ideal_intervals",
    "run_linksharing",
]

FIG8_LINK_RATE = 10_000_000
FIG8_PACKET_LENGTH = 8 * 1024 * 8

#: All TCP leaves (the paper examines 1, 5, 8, 10, 11).
TCP_FLOWS = [f"TCP-{i}" for i in range(1, 12)]

#: On intervals (seconds) of each on/off source, per the narrative.
ONOFF_SCHEDULE = {
    "OO-1": [(0.0, 5.25), (6.0, 6.75), (7.5, 8.25), (9.0, None)],
    "OO-2": [(0.0, 5.0)],
    "OO-3": [(0.0, 5.0), (8.0, None)],
    "OO-4": [(5.0, 8.0)],
}

#: Times at which the active set changes.
TRANSITIONS = [0.0, 5.0, 5.25, 6.0, 6.75, 7.5, 8.0, 8.25, 9.0]


def build_fig8_spec():
    """The Figure 8 class hierarchy (shares are sibling-relative).

    The share choices reproduce the paper's step *directions*: OO-4 is a
    heavyweight inside N3 (so its arrival at t=5s costs TCP-10/11 more than
    OO-2/OO-3's simultaneous departure returns to them), while OO-2 and
    OO-3 are light (so their release mainly benefits their own level's
    TCPs, i.e. TCP-5 and TCP-8 gain at t=5s).
    """
    return HierarchySpec(node("root", 1, [
        leaf("TCP-1", 10),
        leaf("TCP-2", 10),
        leaf("OO-1", 30),
        node("N1", 50, [
            leaf("TCP-3", 10),
            leaf("TCP-4", 10),
            leaf("TCP-5", 10),
            leaf("OO-2", 10),
            node("N2", 50, [
                leaf("TCP-6", 10),
                leaf("TCP-7", 10),
                leaf("TCP-8", 10),
                leaf("OO-3", 10),
                node("N3", 50, [
                    leaf("TCP-9", 15),
                    leaf("TCP-10", 15),
                    leaf("TCP-11", 20),
                    leaf("OO-4", 50),
                ]),
            ]),
        ]),
    ]))


def _onoff_peak(spec, name):
    """Peak rate of an on/off source: exactly its guaranteed link fraction.

    Sending *above* the guarantee would build a persistent backlog that
    keeps the class active long after its off transition (smearing the
    Figure 9 steps); at the guarantee the queue stays near-empty and the
    class releases its bandwidth the moment it goes idle.  The ideal-rate
    computation caps these sources at this peak via ``demands``.
    """
    return spec.guaranteed_rate(name, FIG8_LINK_RATE)


def active_onoff(t):
    """Names of the on/off sources active at time ``t``."""
    active = []
    for name, intervals in ONOFF_SCHEDULE.items():
        for start, end in intervals:
            if start <= t and (end is None or t < end):
                active.append(name)
                break
    return sorted(active)


def ideal_intervals(duration=10.0):
    """[(t1, t2, active_leaves, demands)] between on/off transitions.

    TCP leaves are greedy (unbounded demand); active on/off leaves are
    capped at their peak rate — the inputs for
    :func:`repro.core.hgps.hierarchical_fair_rates`.
    """
    spec = build_fig8_spec()
    times = [t for t in TRANSITIONS if t < duration] + [duration]
    out = []
    for t1, t2 in zip(times, times[1:]):
        onoff = active_onoff(t1)
        active = list(TCP_FLOWS) + onoff
        demands = {name: _onoff_peak(spec, name) for name in onoff}
        out.append((t1, t2, active, demands))
    return out


#: TCP segment size: 1 KB keeps the ACK clock fast enough for the TCPs to
#: absorb freed bandwidth within the sub-second on/off intervals (an 8 KB
#: MSS at ~1 Mbps per flow makes RTTs of hundreds of ms and the windows
#: cannot adapt between transitions).
FIG8_TCP_MSS = 8 * 1024


def run_linksharing(policy="wf2qplus", duration=10.0, buffer_packets=8,
                    feedback_delay=0.002, tcp_mss=FIG8_TCP_MSS):
    """Simulate the Figure 8/9 experiment under one H-PFQ policy.

    Every TCP leaf gets a drop-tail buffer of ``buffer_packets``; on/off
    leaves are unbuffered-unlimited (their queues stay short by
    construction).  Returns the :class:`ServiceTrace`; feed it to
    :func:`repro.analysis.bandwidth.throughput_series` for the Figure 9
    curves.
    """
    spec = build_fig8_spec()
    sim = Simulator()
    trace = ServiceTrace()
    scheduler = HPFQScheduler(spec, FIG8_LINK_RATE, policy=policy)
    demux = Demux()
    link = Link(sim, scheduler, receiver=demux, trace=trace)
    for name in TCP_FLOWS:
        scheduler.set_buffer_limit(name, buffer_packets)
        conn = TCPConnection(name, mss=tcp_mss,
                             feedback_delay=feedback_delay)
        conn.attach(sim, link, demux).start()
    for name, intervals in ONOFF_SCHEDULE.items():
        # Short runs may end before a source's first on interval.
        live = [(a, b) for a, b in intervals if a < duration]
        if not live:
            continue
        source = IntervalSource(
            name, peak_rate=_onoff_peak(spec, name),
            packet_length=FIG8_PACKET_LENGTH, intervals=live,
            stop_time=duration,
        )
        source.attach(sim, link).start()
    sim.run(until=duration)
    return trace
