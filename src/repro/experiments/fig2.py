"""Figure 2: the canonical WFQ-vs-WF2Q example (Section 3.1).

Eleven sessions share a unit-rate link with unit packets.  Session 1 has
share 0.5 and sends 11 back-to-back packets at t=0; sessions 2-11 have
share 0.05 each and send one packet at t=0.

The paper's timelines:

* **GPS** finishes session-1 packet k at time 2k (k=1..10), packet 11 at 21,
  and every other session's packet at 20.
* **WFQ** (SFF) transmits session 1's first ten packets back to back
  (inaccuracy of N/2 packets), then the ten other packets, then p1^11.
* **WF2Q / WF2Q+** (SEFF) alternate session 1 with the others, never running
  more than one packet ahead of GPS.

All quantities here are exact when called with
:class:`fractions.Fraction` inputs (the default).
"""

from fractions import Fraction

from repro.core.gps import GPSFluidSystem
from repro.core.packet import Packet

__all__ = ["fig2_schedule", "fig2_gps_departures", "run_fig2",
           "FIG2_SESSIONS", "FIG2_BURST"]

#: Number of sessions in the example.
FIG2_SESSIONS = 11
#: Back-to-back packets sent by session 1.
FIG2_BURST = 11


def _shares():
    yield 1, Fraction(1, 2)
    for j in range(2, FIG2_SESSIONS + 1):
        yield j, Fraction(1, 20)


def _arrivals():
    """(flow_id, length, time) triplets of the example, in enqueue order."""
    for _k in range(FIG2_BURST):
        yield 1, Fraction(1), Fraction(0)
    for j in range(2, FIG2_SESSIONS + 1):
        yield j, Fraction(1), Fraction(0)


def fig2_schedule(scheduler_cls):
    """Run the example through a scheduler class; returns the list of
    (flow_id, start_time, finish_time) in service order."""
    sched = scheduler_cls(rate=Fraction(1))
    for flow_id, share in _shares():
        sched.add_flow(flow_id, share)
    for flow_id, length, t in _arrivals():
        sched.enqueue(Packet(flow_id, length), now=t)
    return [
        (rec.flow_id, rec.start_time, rec.finish_time)
        for rec in sched.drain()
    ]


def fig2_gps_departures():
    """The fluid GPS timeline: [(flow_id, finish_time)] in finish order."""
    gps = GPSFluidSystem(Fraction(1))
    for flow_id, share in _shares():
        gps.add_flow(flow_id, share)
    for flow_id, length, t in _arrivals():
        gps.arrive(flow_id, length, t)
    return [(p.flow_id, p.finish_time) for p in gps.finish_order()]


def run_fig2(scheduler_classes, jobs=None):
    """Run the example under several schedulers plus GPS.

    Returns ``{"GPS": [(flow, finish)], name: [(flow, start, finish)], ...}``
    keyed by each scheduler's ``name``.  ``jobs`` fans the per-scheduler
    runs out over worker processes (scheduler classes and the exact
    Fraction timelines both pickle); the default runs inline.
    """
    from repro.bench.parallel import parallel_map

    scheduler_classes = list(scheduler_classes)
    out = {"GPS": fig2_gps_departures()}
    schedules = parallel_map(fig2_schedule, scheduler_classes, jobs=jobs)
    for cls, schedule in zip(scheduler_classes, schedules):
        out[cls.name] = schedule
    return out


def service_discrepancy_vs_gps(schedule, horizon=None):
    """Max |bits served by the packet system - bits served by GPS| for
    session 1, sampled at each packet boundary of the schedule.

    For WF2Q this is < 1 packet (the Section 3.3 claim); for WFQ it reaches
    ~N/2 packets around t = 10.
    """
    gps = GPSFluidSystem(Fraction(1))
    for flow_id, share in _shares():
        gps.add_flow(flow_id, share)
    for flow_id, length, t in _arrivals():
        gps.arrive(flow_id, length, t)
    worst = Fraction(0)
    served = Fraction(0)
    for flow_id, _start, finish in schedule:
        if horizon is not None and finish > horizon:
            break
        if flow_id == 1:
            served += 1
        fluid = gps.service_received(1, finish)
        gap = abs(served - fluid)
        if gap > worst:
            worst = gap
    return worst
