"""The Figure 3 hierarchy and the three delay scenarios (Figures 4-7).

The paper's Figure 3 (reconstructed from the text of Section 5.1):

* a real-time session **RT-1** with a 0.81 share of its parent N-1, giving a
  guaranteed rate of 9 Mbps; RT-1 is a deterministic on/off source starting
  at t = 200 ms, 25 ms on / 75 ms off, average rate equal to its guarantee;
* **BE-1**, RT-1's best-effort sibling under N-1, continuously backlogged —
  so nodes N-1, N-2 and N-R are continuously backlogged and link-sharing
  between unconstrained and delay-guaranteed sessions is exercised;
* **PS-n**: constant-rate sessions with identical start times and peak =
  guaranteed rate (overloaded scenarios send at 1.5x as Poisson);
* **CS-n**: packet-train sessions (users behind an upstream multiplexer),
  one train roughly every 193 ms;
* all packets are 8 KB.

The exact figure is not in the text, so the tree below reproduces the
stated numbers: link 40 Mbps; N-2 gets 1/2 (20 Mbps); N-1 gets 5/9 of N-2
(11.11 Mbps) so RT-1's 0.81 share is exactly 9 Mbps; CS-1..CS-5 share the
rest of N-2; PS-1..PS-10 take 0.05 of the link each.

Scenarios (Section 5.1):

1. everything at its guaranteed average rate; only BE-1 is backlogged
   (Figures 4 and 5);
2. CS-n off, PS-n sent as Poisson at 1.5x their guarantee (Figure 6);
3. CS-n on *and* PS-n at 1.5x (Figure 7).
"""

from repro.config.hierarchy_spec import HierarchySpec, leaf, node
from repro.core.hierarchy import HPFQScheduler
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ServiceTrace
from repro.traffic.source import (
    CBRSource,
    OnOffSource,
    PacketTrainSource,
    PoissonSource,
)

__all__ = [
    "FIG3_LINK_RATE",
    "FIG3_PACKET_LENGTH",
    "RT1_GUARANTEED_RATE",
    "build_fig3_spec",
    "build_sources",
    "run_delay_experiment",
    "run_delay_sweep",
]

#: Link rate (bits/second).
FIG3_LINK_RATE = 40_000_000
#: 8 KB packets, as in the paper.
FIG3_PACKET_LENGTH = 8 * 1024 * 8
#: RT-1's guaranteed rate: 0.81 * (5/9) * (1/2) * 40 Mbps = 9 Mbps.
RT1_GUARANTEED_RATE = 9_000_000

#: RT-1 duty cycle (seconds).
RT1_ON = 0.025
RT1_OFF = 0.075
RT1_START = 0.200
#: RT-1 sends at exactly its guaranteed rate during the on period, so its
#: (sigma, rho) envelope is (one packet, 9 Mbps): under H-WF2Q+ its delay
#: then stays near the Corollary 2 bound, and the spikes H-WFQ adds on top
#: (the paper's Figure 4 effect) stand out instead of being buried under
#: self-queueing.
RT1_PEAK = RT1_GUARANTEED_RATE
#: Packets per RT-1 burst; with peak == guarantee the burst envelope is a
#: single packet (sigma = L) because emissions are spaced exactly L/rho.
RT1_BURST_PACKETS = int(RT1_ON * RT1_PEAK / FIG3_PACKET_LENGTH) + 1
RT1_SIGMA = FIG3_PACKET_LENGTH

#: CS-n train timing: one train about every 193 ms (Section 5.1.1), giving
#: the ~3 s beat against RT-1's 100 ms duty cycle that the paper describes.
#: Two packets per train keeps each CS session inside its 0.89 Mbps
#: guarantee (scenario 1 sends everything at its guaranteed average rate).
CS_TRAIN_INTERVAL = 0.193
CS_TRAIN_LENGTH = 2
#: Upstream multiplexer line rate: the paper's trains come from "users
#: and/or networks with high speed connections", so they land at link speed.
CS_LINE_RATE = FIG3_LINK_RATE

N_PS = 10
N_CS = 10


def build_fig3_spec():
    """The Figure 3 link-sharing tree.

    Link 40 Mbps; N-2 gets 1/2 (20 Mbps); N-1 gets 5/9 of N-2 (11.1 Mbps)
    so RT-1's 0.81 share is exactly 9 Mbps; CS-1..CS-10 share the remaining
    4/9 of N-2 (0.89 Mbps each); PS-1..PS-10 take 0.05 of the link each
    (2 Mbps).
    """
    return HierarchySpec(node("N-R", 1, [
        node("N-2", 50, [
            node("N-1", 500, [
                leaf("RT-1", 81),
                leaf("BE-1", 19),
            ]),
            # 10 packet-train classes share the other 4/9 of N-2.
            *[leaf(f"CS-{i}", 40) for i in range(1, N_CS + 1)],
        ]),
        *[leaf(f"PS-{i}", 5) for i in range(1, N_PS + 1)],
    ]))


def build_sources(scenario, seed=1):
    """The source set of one scenario: list of unattached Sources.

    ``scenario``: 1 (Figures 4-5), 2 (Figure 6), or 3 (Figure 7).
    """
    if scenario not in (1, 2, 3):
        raise ValueError(f"scenario must be 1, 2, or 3, got {scenario!r}")
    spec = build_fig3_spec()
    length = FIG3_PACKET_LENGTH
    sources = [
        OnOffSource("RT-1", peak_rate=RT1_PEAK, packet_length=length,
                    on_duration=RT1_ON, off_duration=RT1_OFF,
                    start_time=RT1_START),
        # BE-1 continuously backlogged: CBR well above its ~2.1 Mbps share.
        CBRSource("BE-1", rate=3 * spec.guaranteed_rate("BE-1", FIG3_LINK_RATE),
                  packet_length=length),
    ]
    ps_guaranteed = spec.guaranteed_rate("PS-1", FIG3_LINK_RATE)
    if scenario == 1:
        for i in range(1, N_PS + 1):
            sources.append(CBRSource(
                f"PS-{i}", rate=ps_guaranteed, packet_length=length))
    else:
        # Overload: Poisson at 1.5x the guaranteed rate (Sections 5.1.2-3).
        for i in range(1, N_PS + 1):
            sources.append(PoissonSource(
                f"PS-{i}", rate=1.5 * ps_guaranteed, packet_length=length,
                seed=seed * 1000 + i))
    if scenario in (1, 3):
        for i in range(1, N_CS + 1):
            sources.append(PacketTrainSource(
                f"CS-{i}", packet_length=length,
                train_length=CS_TRAIN_LENGTH,
                train_interval=CS_TRAIN_INTERVAL,
                line_rate=CS_LINE_RATE,
                # Stagger train phases so the multiplexer model is honest.
                start_time=0.003 * i,
            ))
    return sources


def run_delay_experiment(policy, scenario, duration=5.0, seed=1):
    """Simulate one scenario under one H-PFQ node policy.

    Returns the :class:`~repro.sim.monitor.ServiceTrace`; RT-1's delay
    series (``trace.delays("RT-1")``) is what Figures 4, 6, and 7 plot, and
    its arrival/service curves (Figure 5) come from
    :func:`repro.analysis.lag.service_lag_series`.
    """
    spec = build_fig3_spec()
    sim = Simulator()
    trace = ServiceTrace()
    scheduler = HPFQScheduler(spec, FIG3_LINK_RATE, policy=policy)
    link = Link(sim, scheduler, trace=trace)
    for source in build_sources(scenario, seed=seed):
        source.attach(sim, link).start()
    sim.run(until=duration)
    return trace


def _delay_sweep_worker(job):
    """Top-level (spawn-picklable) worker: one policy's RT-1 delay series."""
    policy, scenario, duration, seed = job
    trace = run_delay_experiment(policy, scenario, duration=duration,
                                 seed=seed)
    return list(trace.delays("RT-1"))


def run_delay_sweep(policies, scenario, duration=5.0, seed=1, jobs=None):
    """RT-1 delay series for several node policies on one scenario.

    The Figures 4-7 cross-policy comparison: returns
    ``{policy: [(t, delay), ...]}``.  ``jobs`` fans the independent
    simulations out over worker processes via
    :func:`repro.bench.parallel.parallel_map`; each worker reuses the
    same ``seed``, so the traffic is identical across policies and jobs
    levels (the default runs inline).
    """
    from repro.bench.parallel import parallel_map

    policies = list(policies)
    series = parallel_map(
        _delay_sweep_worker,
        [(policy, scenario, duration, seed) for policy in policies],
        jobs=jobs)
    return dict(zip(policies, series))
