"""Reusable builders for every experiment in the paper's evaluation.

* :mod:`repro.experiments.fig2` — the Section 3.1 example (Figure 2):
  WFQ's burst vs WF2Q/WF2Q+'s interleaving vs the GPS fluid timeline.
* :mod:`repro.experiments.delay` — the Figure 3 hierarchy and the three
  cross-traffic scenarios behind Figures 4, 5, 6, and 7.
* :mod:`repro.experiments.linksharing` — the Figure 8 hierarchy with TCP
  and scripted on/off sources behind Figure 9.

Each builder returns plain data (traces, series) so the same code feeds the
tests, the benchmarks, and the examples.
"""

from repro.experiments.fig2 import (
    fig2_gps_departures,
    fig2_schedule,
    run_fig2,
)
from repro.experiments.delay import (
    FIG3_LINK_RATE,
    FIG3_PACKET_LENGTH,
    build_fig3_spec,
    run_delay_experiment,
)
from repro.experiments.linksharing import (
    FIG8_LINK_RATE,
    FIG8_PACKET_LENGTH,
    ONOFF_SCHEDULE,
    build_fig8_spec,
    ideal_intervals,
    run_linksharing,
)

__all__ = [
    "fig2_schedule",
    "fig2_gps_departures",
    "run_fig2",
    "FIG3_LINK_RATE",
    "FIG3_PACKET_LENGTH",
    "build_fig3_spec",
    "run_delay_experiment",
    "FIG8_LINK_RATE",
    "FIG8_PACKET_LENGTH",
    "ONOFF_SCHEDULE",
    "build_fig8_spec",
    "ideal_intervals",
    "run_linksharing",
]
