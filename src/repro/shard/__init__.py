"""repro.shard — sharded scale-out simulation with deterministic merge.

Splits a partition-closed scenario across N worker processes (by flow
set, H-WF2Q+ subtree, or network component), runs one simulator per
shard, and merges service traces, metrics, and drop ledgers into a
single report whose digest is independent of worker count, completion
order, and checkpoint-based shard migration.  See DESIGN.md §8.
"""

from repro.shard.driver import run_sharded
from repro.shard.merge import assemble_report, canonical_digest, format_report
from repro.shard.partition import (
    assign_shards,
    cell_weight,
    connected_components,
    subtree_slices,
    validate_cells,
)
from repro.shard.scenarios import SHARD_SCENARIOS, build_scenario
from repro.shard.worker import (
    build_cell,
    checkpoint_cell,
    merge_segments,
    resume_cell,
    run_cells,
)

__all__ = [
    "run_sharded",
    "assemble_report",
    "canonical_digest",
    "format_report",
    "assign_shards",
    "cell_weight",
    "connected_components",
    "subtree_slices",
    "validate_cells",
    "SHARD_SCENARIOS",
    "build_scenario",
    "build_cell",
    "checkpoint_cell",
    "merge_segments",
    "resume_cell",
    "run_cells",
]
