"""Deterministic merge of shard results into one report with a digest.

The merge has one job beyond bookkeeping: produce output that is a pure
function of the *scenario*, not of how it was executed.  Two rules get
there:

* everything is keyed and sorted by stable identifiers (cell id, link
  name, flow id) — never by completion order, worker id, or process-local
  values like packet uids;
* the digest covers only execution-invariant fields.  Excluded — and why:

  - ``events_processed`` / ``events_elided`` / ``batch_calls`` /
    ``batch_packets``: how far the burst-drain fast path reaches (and
    how large its scheduler batches get) depends on what else shares the
    event heap, which changes with the cell grouping (shards=1 hosts
    every cell in one simulator);
  - ``pool_hits`` / ``pool_misses`` / ``calendar_resizes`` /
    ``engine_fallbacks``: event-engine telemetry — a pure function of
    the engine selection and grouping, never of what was scheduled;
  - ``busy_time``: accumulated in drain-sized float batches, so its
    addition *association* (not its operands) varies with grouping;
  - ``delay_sum`` / ``delay_mean``: a migrated cell adds two segment
    sums, an uninterrupted one folds left — equal in R, not in float64;
  - queue-length gauges (``queue_len``, ``max_queue_len``, backlog
    gauges): a migrated cell's fresh metrics sink never saw the backlog
    build up;
  - the plan, shard count, and wall-clock timings: execution metadata.

Everything else — service rows (with virtual tags, Fractions intact),
conservation ledgers, drop ledgers, streaming counters, delay counts,
maxima, and histograms — is digested.  ``repro sim --verify`` and the CI
shard-smoke job assert digest equality across shard counts.
"""

import hashlib
import json
from fractions import Fraction

__all__ = ["canonical_digest", "assemble_report", "format_report"]

#: Per-flow metric fields that are execution-invariant (see module doc).
_DIGEST_FLOW_FIELDS = ("enqueues", "dequeues", "drops", "bits_in",
                       "bits_out", "delay_count", "delay_max", "histogram")


def _canon(value):
    """JSON fallback for exact non-JSON scalars.

    Fractions serialise as ``"num/den"`` strings — exact, unlike the
    float() fallback the tracing sinks use for human-facing output.
    """
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    raise TypeError(f"not digestable: {value!r}")


def _stable_view(report):
    cells = {}
    for cid in sorted(report["cells"], key=str):
        result = report["cells"][cid]
        links = {}
        for name in sorted(result["links"], key=str):
            link_result = result["links"][name]
            links[str(name)] = {
                "services": link_result["services"],
                "ledger": link_result["ledger"],
                "drops_by_flow": {
                    str(fid): n
                    for fid, n in sorted(link_result["drops_by_flow"].items(),
                                         key=lambda kv: str(kv[0]))},
                "link": {
                    "packets_sent": link_result["link"]["packets_sent"],
                    "bits_sent": link_result["link"]["bits_sent"],
                    "packets_dropped": link_result["link"]["packets_dropped"],
                },
                "flows": {
                    str(fid): {key: m[key] for key in _DIGEST_FLOW_FIELDS}
                    for fid, m in sorted(link_result["flows"].items(),
                                         key=lambda kv: str(kv[0]))},
            }
        cells[str(cid)] = {
            "kind": result["kind"],
            "links": links,
            "deliveries": result.get("deliveries"),
        }
    return {
        "scenario": report["scenario"],
        "duration": report["duration"],
        "cells": cells,
        "totals": report["totals"],
    }


def canonical_digest(report):
    """sha256 over the execution-invariant view of a merged report.

    Floats serialise via :func:`repr` (shortest round-trip — identical
    text for identical IEEE-754 values on every worker), Fractions as
    exact ``num/den`` strings, and every mapping is emitted in sorted-key
    order, so the digest is byte-stable across worker counts, completion
    orders, and migrations.
    """
    text = json.dumps(_stable_view(report), sort_keys=True,
                      separators=(",", ":"), default=_canon)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _totals(cell_results):
    totals = {"arrivals": 0, "departures": 0, "drops": 0, "backlog": 0,
              "packets_sent": 0, "bits_sent": 0, "deliveries": 0}
    balanced = True
    for result in cell_results.values():
        for link_result in result["links"].values():
            ledger = link_result["ledger"]
            totals["arrivals"] += ledger["arrivals"]
            totals["departures"] += ledger["departures"]
            totals["drops"] += ledger["drops"]
            totals["backlog"] += ledger["backlog"]
            balanced = balanced and ledger["balanced"]
            totals["packets_sent"] += link_result["link"]["packets_sent"]
            totals["bits_sent"] += link_result["link"]["bits_sent"]
        totals["deliveries"] += len(result.get("deliveries") or ())
    totals["balanced"] = balanced
    return totals


def assemble_report(scenario, duration, cell_results, plan, sim_stats,
                    wall_seconds, migrated=None):
    """Build the merged report; per-cell results keyed by cell id.

    ``sim_stats`` is the summed event-loop counters across every
    simulator that took part (union, per-shard, and migration segments).
    The digest is computed last, over the assembled report.
    """
    report = {
        "scenario": scenario,
        "duration": duration,
        "cells": {result["cell"]: result for result in
                  sorted(cell_results.values(),
                         key=lambda r: str(r["cell"]))},
        "totals": _totals(cell_results),
        "plan": plan,
        "sim": sim_stats,
        "migrated": migrated,
        "wall_seconds": wall_seconds,
    }
    totals = report["totals"]
    if wall_seconds > 0:
        report["packets_per_second"] = totals["packets_sent"] / wall_seconds
    else:
        report["packets_per_second"] = 0.0
    report["digest"] = canonical_digest(report)
    return report


def format_report(report):
    """Compact text rendering for ``repro sim``."""
    totals = report["totals"]
    plan = report["plan"]
    lines = [
        f"repro sim — scenario {report['scenario']}, "
        f"{len(report['cells'])} cells on {plan['shards']} shard(s), "
        f"{report['duration']:g}s simulated",
    ]
    loads = ", ".join(f"{load:.0f}" for load in plan["loads"])
    lines.append(f"  plan loads (est. packets/shard): [{loads}]")
    if report.get("migrated"):
        mig = report["migrated"]
        lines.append(f"  migrated cell {mig['cell']!r} at t={mig['at']:g}s "
                     f"to a fresh worker")
    lines.append(
        f"  packets: {totals['packets_sent']} sent, "
        f"{totals['drops']} dropped, {totals['backlog']} backlogged "
        f"({'balanced' if totals['balanced'] else 'LEDGER IMBALANCE'})")
    sim = report["sim"]
    processed = sim["events_processed"]
    elided = sim["events_elided"]
    total_ev = processed + elided
    share = (100.0 * elided / total_ev) if total_ev else 0.0
    lines.append(f"  events: {processed} processed, {elided} elided "
                 f"({share:.1f}% inline)")
    calls = sim.get("batch_calls", 0)
    if calls:
        batched = sim.get("batch_packets", 0)
        per = batched / calls
        lines.append(f"  batches: {calls} calls, {batched} packets "
                     f"({per:.1f} packets/batch)")
    acquires = sim.get("pool_hits", 0) + sim.get("pool_misses", 0)
    resizes = sim.get("calendar_resizes", 0)
    if acquires or resizes or sim.get("engine_fallbacks", 0):
        rate = 100.0 * sim.get("pool_hits", 0) / acquires if acquires else 0.0
        lines.append(
            f"  engine: event pool {sim.get('pool_hits', 0)}/{acquires} "
            f"hits ({rate:.1f}%), {resizes} calendar resize(s), "
            f"{sim.get('engine_fallbacks', 0)} heap fallback(s)")
    lines.append(
        f"  wall: {report['wall_seconds']:.3f}s "
        f"({report['packets_per_second']:,.0f} packets/s)")
    lines.append(f"  digest: {report['digest']}")
    return "\n".join(lines)
