"""Partition planning: carve a scenario into cells and pack them onto shards.

The unit of distribution is the *cell*: an independent sub-simulation —
one scheduler-plus-link stack (or one closed multi-hop component) with
its own traffic sources, interacting with nothing outside itself.  The
partitioning rules all produce cells:

* **flow sets** — disjoint flow groups, each behind its own link
  (BennettZ96's sessions never interact except through the shared server,
  so a scenario declared as per-group servers is partition-closed by
  construction);
* **H-WF2Q+ subtrees** — each child of the hierarchy root served at its
  ``guaranteed_rate`` slice of the link (:func:`subtree_slices`; exact
  Fractions for integer shares);
* **network components** — connected components of a multi-hop topology
  under the "routes share a node" relation (:func:`connected_components`).

Because cells are closed, running them all in one simulator (shards = 1)
and running them in separate worker processes (shards = N) produce the
same per-cell results — the property the differential suite pins down
and :func:`repro.shard.merge.canonical_digest` certifies per run.

:func:`assign_shards` packs cells onto shards with the deterministic LPT
greedy (heaviest cell first onto the least-loaded shard); ties break by
cell id and shard index, never by anything runtime-dependent, so the
same scenario always yields the same plan.
"""

from repro.errors import ConfigurationError

__all__ = [
    "cell_weight",
    "assign_shards",
    "connected_components",
    "subtree_slices",
    "validate_cells",
]


def cell_weight(spec):
    """Estimated workload of a cell: expected packet emissions.

    Computed from the source specs alone (mean rate x window / length),
    so the planner never has to run anything.  Deterministic; used as the
    LPT packing key.
    """
    total = 0.0
    for src in spec.get("sources", ()):
        window = (src.get("stop") or spec.get("duration") or 1.0) \
            - src.get("start", 0.0)
        if window <= 0:
            continue
        kind = src["type"]
        if kind in ("cbr", "poisson"):
            mean_rate = src["rate"]
        elif kind == "onoff":
            cycle = src["on"] + src["off"]
            mean_rate = src["peak"] * src["on"] / cycle
        elif kind == "markov":
            mean_rate = (src["peak"] * src["mean_on"]
                         / (src["mean_on"] + src["mean_off"]))
        elif kind == "train":
            mean_rate = src["train_length"] * src["length"] / src["interval"]
        else:
            raise ConfigurationError(f"unknown source type {kind!r}")
        total += mean_rate * window / src["length"]
    return total


def validate_cells(cells):
    """Reject plans that are not actually partitions.

    Cell ids must be unique and the flow sets disjoint — overlapping
    flows would mean two shards each simulate "the" flow and the merge
    would double-count it silently.
    """
    seen_cells = set()
    seen_flows = {}
    for spec in cells:
        cid = spec["cell"]
        if cid in seen_cells:
            raise ConfigurationError(f"duplicate cell id {cid!r}")
        seen_cells.add(cid)
        for fid in _cell_flow_ids(spec):
            if fid in seen_flows:
                raise ConfigurationError(
                    f"flow {fid!r} appears in cells {seen_flows[fid]!r} "
                    f"and {cid!r}; cells must have disjoint flow sets"
                )
            seen_flows[fid] = cid
    return list(cells)


def _cell_flow_ids(spec):
    if spec["kind"] == "network":
        return [route[0] for route in spec["routes"]]
    sched = spec["scheduler"]
    if sched["kind"] == "hpfq":
        return _tree_leaves(sched["tree"])
    return [fid for fid, _share in sched["flows"]]


def _tree_leaves(tree):
    _name, _share, children = tree
    if not children:
        return [_name]
    out = []
    for child in children:
        out.extend(_tree_leaves(child))
    return out


def assign_shards(cells, shards):
    """LPT-pack cells onto ``shards`` workers; returns the plan.

    Heaviest cell first, onto the currently least-loaded shard; ties
    break by cell id (for the ordering) and lowest shard index (for the
    placement), so the plan is a pure function of the scenario.  The
    result maps every cell id to its shard and reports per-shard loads::

        {"shards": N, "assignment": {cell_id: shard}, "loads": [w0, ...]}
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards!r}")
    validate_cells(cells)
    order = sorted(cells, key=lambda s: (-cell_weight(s), str(s["cell"])))
    loads = [0.0] * shards
    assignment = {}
    for spec in order:
        shard = min(range(shards), key=lambda i: (loads[i], i))
        assignment[spec["cell"]] = shard
        loads[shard] += cell_weight(spec)
    return {"shards": shards, "assignment": assignment, "loads": loads}


def connected_components(routes, nodes=None):
    """Group a multi-hop topology into closed components.

    ``routes`` is an iterable of ``(flow_id, path)`` pairs; two nodes are
    connected when some route visits both.  Returns a list of
    ``(node_names, flow_ids)`` pairs — each a partition-closed network
    cell — with nodes and flows sorted, components ordered by their first
    node.  ``nodes`` may list additional (possibly unrouted) node names;
    unrouted nodes come back as their own empty components.
    """
    parent = {}

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:   # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            # Deterministic representative: the smaller name wins.
            if str(rb) < str(ra):
                ra, rb = rb, ra
            parent[rb] = ra

    for name in nodes or ():
        parent.setdefault(name, name)
    route_list = []
    for flow_id, path in routes:
        if not path:
            raise ConfigurationError(f"flow {flow_id!r} has an empty path")
        route_list.append((flow_id, list(path)))
        for name in path:
            parent.setdefault(name, name)
        first = path[0]
        for name in path[1:]:
            union(first, name)
    groups = {}
    for name in parent:
        groups.setdefault(find(name), set()).add(name)
    flows_of = {root: [] for root in groups}
    for flow_id, path in route_list:
        flows_of[find(path[0])].append(flow_id)
    out = []
    for root in sorted(groups, key=str):
        out.append((sorted(groups[root], key=str),
                    sorted(flows_of[root], key=str)))
    return out


def subtree_slices(spec, link_rate):
    """Split a hierarchy at the root: one slice per root child.

    Each child subtree of a :class:`~repro.config.HierarchySpec` is an
    independent H-WF2Q+ system once it is served at its guaranteed slice
    of the link — the aggregation-boundary observation the paper's
    hierarchy is built on.  Returns ``[(child NodeSpec, rate)]`` in child
    order; with integer shares and an integer ``link_rate`` the slice is
    an exact :class:`~fractions.Fraction` (phi products never round).
    """
    out = []
    for child in spec.root.children:
        # Fraction share x int rate stays a Fraction; anything else falls
        # back to the operands' own arithmetic.
        out.append((child, spec.normalized_share(child.name) * link_rate))
    return out
