"""Partition-closed scenarios for the sharded driver.

Each builder returns ``{"name", "duration", "cells"}`` where ``cells``
is a list of plain-data cell specs (see :mod:`repro.shard.worker`).  All
four partitioning rules are represented:

``cbr_flat``
    Disjoint CBR flow groups, one WF2Q+ link per group — the flow-set
    partition, and the throughput workload of the ``sharded_pipeline``
    bench.
``poisson_mix``
    Same shape with Poisson sources; per-source seeds are fixed into the
    spec at build time via the collision-safe
    :func:`~repro.bench.parallel.scenario_seed`, so results are
    independent of which worker draws them.
``hier``
    One H-WF2Q+ hierarchy split at the root: each child subtree becomes
    a cell served at its ``guaranteed_rate`` slice — exact Fractions for
    the integer shares used here.
``multihop``
    A multi-hop topology whose routes form disjoint components; cells
    come out of :func:`~repro.shard.partition.connected_components`.
    One flow per component runs with a tight buffer cap against an
    overloaded hop, so drop ledgers carry real content.

Every parameter that feeds randomness or identity is resolved here, at
plan time; workers only replay the specs.

All builders accept ``backend`` ("exact"/"vector") and ``chunk`` (int or
"auto") knobs, stamped into every scheduler spec so the workers rebuild
the same implementation everywhere — see
:func:`~repro.shard.worker.build_scheduler`.  For a fixed backend the
digest is invariant across shard counts, migrations, and any ``chunk``
setting; the backend itself selects the arithmetic domain (float64
columns vs the exact default), so digests compare like-for-like.
"""

from repro.bench.parallel import scenario_seed
from repro.config import HierarchySpec, leaf, node
from repro.errors import ConfigurationError
from repro.shard.partition import connected_components, subtree_slices
from repro.shard.worker import tree_to_list

__all__ = ["SHARD_SCENARIOS", "build_scenario"]

_LENGTH = 8000  # bits per packet (integer: exact under Fraction rates)


def _stamp(sched_spec, backend, chunk):
    """Record the backend/chunk knobs in a scheduler spec (None = omit)."""
    if backend is not None:
        sched_spec["backend"] = backend
    if chunk is not None:
        sched_spec["chunk"] = chunk
    return sched_spec


def _chunks(n, groups):
    """Split range(n) into ``groups`` contiguous chunks (first ones larger)."""
    base, extra = divmod(n, groups)
    out = []
    start = 0
    for g in range(groups):
        size = base + (1 if g < extra else 0)
        if size:
            out.append(list(range(start, start + size)))
        start += size
    return out


def _flat_cells(name, flows, cells, rate, duration, make_source,
                backend=None, chunk=None):
    specs = []
    for cell_index, members in enumerate(_chunks(flows, cells)):
        flow_ids = [(f"f{i}", 1 + (i % 3)) for i in members]
        total_share = sum(share for _fid, share in flow_ids)
        sources = []
        for (fid, share), i in zip(flow_ids, members):
            sources.append(make_source(cell_index, i, fid,
                                       share / total_share))
        specs.append({
            "cell": f"{name}{cell_index}",
            "kind": "flat",
            "duration": duration,
            "scheduler": _stamp({"kind": "flat", "policy": "wf2qplus",
                                 "rate": rate, "flows": flow_ids},
                                backend, chunk),
            "sources": sources,
        })
    return specs


def scenario_cbr_flat(flows=64, cells=8, rate=1e9, duration=0.01, seed=1,
                      backend=None, chunk=None):
    """Disjoint CBR groups at 92% load, starts staggered per flow."""
    stagger = _LENGTH / rate / max(1, flows)

    def make_source(cell_index, i, fid, fraction):
        return {"type": "cbr", "flow": fid, "length": _LENGTH,
                "rate": 0.92 * rate * fraction, "start": i * stagger}

    return {"name": "cbr_flat", "duration": duration,
            "cells": _flat_cells("c", flows, cells, rate, duration,
                                 make_source, backend, chunk)}


def scenario_poisson_mix(flows=48, cells=6, rate=1e9, duration=0.01, seed=1,
                         backend=None, chunk=None):
    """Disjoint Poisson groups at 85% mean load, seeds fixed per flow."""

    def make_source(cell_index, i, fid, fraction):
        return {"type": "poisson", "flow": fid, "length": _LENGTH,
                "rate": 0.85 * rate * fraction,
                "seed": scenario_seed(f"poisson:{fid}", index=i,
                                      base=seed & 0xFFFFFFFF)}

    return {"name": "poisson_mix", "duration": duration,
            "cells": _flat_cells("p", flows, cells, rate, duration,
                                 make_source, backend, chunk)}


def scenario_hier(flows=48, cells=6, rate=10**9, duration=0.01, seed=1,
                  backend=None, chunk=None):
    """One hierarchy split at the root into per-subtree cells.

    Integer link rate + integer shares keep every slice an exact
    Fraction of the link; the per-cell H-WF2Q+ tag arithmetic then runs
    against those exact rates.
    """
    rate = int(rate)
    groups = _chunks(flows, cells)
    children = []
    for g, members in enumerate(groups):
        leaves = [leaf(f"f{i}", 1 + (i % 3)) for i in members]
        children.append(node(f"g{g}", 1 + (g % 3), leaves))
    spec = HierarchySpec(node("root", 1, children))
    stagger = _LENGTH / rate / max(1, flows)
    specs = []
    for (child, slice_rate), members in zip(subtree_slices(spec, rate),
                                            groups):
        total_share = sum(l.share for l in child.children)
        sources = []
        for l, i in zip(child.children, members):
            sources.append({
                "type": "cbr", "flow": l.name, "length": _LENGTH,
                "rate": 0.9 * float(slice_rate) * l.share / total_share,
                "start": i * stagger,
            })
        specs.append({
            "cell": child.name,
            "kind": "flat",
            "duration": duration,
            "scheduler": _stamp({"kind": "hpfq", "policy": "wf2qplus",
                                 "rate": slice_rate,
                                 "tree": tree_to_list(child)},
                                backend, chunk),
            "sources": sources,
        })
    return {"name": "hier", "duration": duration, "cells": specs}


def scenario_multihop(flows=None, cells=4, rate=1e8, duration=0.02, seed=1,
                      backend=None, chunk=None):
    """Disjoint two-hop chains; cells via connected components.

    Per component: two flows crossing both hops plus one single-hop flow
    with a 4-packet buffer cap; the second hop is offered ~130% load, so
    the capped flow drops deterministically and the merged drop ledger
    has content to certify.
    """
    nodes = []
    routes = []
    source_of = {}
    for k in range(cells):
        a, b = f"a{k}", f"b{k}"
        nodes.append((a, _stamp({"kind": "flat", "policy": "wf2qplus",
                                 "rate": rate, "flows": []},
                                backend, chunk), 0.0))
        nodes.append((b, _stamp({"kind": "flat", "policy": "wf2qplus",
                                 "rate": rate, "flows": []},
                                backend, chunk), 0.0))
        stagger = _LENGTH / rate / 8
        for j, (suffix, path, share, buffer, load) in enumerate((
                ("x", [a, b], 2, None, 0.5),
                ("y", [a, b], 1, None, 0.4),
                ("z", [b], 1, 4, 0.4))):
            fid = f"m{k}{suffix}"
            routes.append((fid, path, share, buffer))
            source_of[fid] = {"type": "cbr", "flow": fid,
                              "length": _LENGTH, "rate": load * rate,
                              "start": (3 * k + j) * stagger}
    node_specs = {name: (name, sched, delay) for name, sched, delay in nodes}
    route_specs = {fid: (fid, path, share, buffer)
                   for fid, path, share, buffer in routes}
    specs = []
    components = connected_components(
        [(fid, path) for fid, path, _s, _b in routes],
        nodes=node_specs)
    for index, (members, flow_ids) in enumerate(components):
        specs.append({
            "cell": f"net{index}",
            "kind": "network",
            "duration": duration,
            "nodes": [node_specs[name] for name in members],
            "routes": [route_specs[fid] for fid in flow_ids],
            "sources": [source_of[fid] for fid in flow_ids],
        })
    return {"name": "multihop", "duration": duration, "cells": specs}


SHARD_SCENARIOS = {
    "cbr_flat": scenario_cbr_flat,
    "poisson_mix": scenario_poisson_mix,
    "hier": scenario_hier,
    "multihop": scenario_multihop,
}


def build_scenario(name, **params):
    """Build a named scenario; unknown names raise ConfigurationError.

    ``params`` (flows, cells, rate, duration, seed, backend, chunk)
    override the scenario's defaults; ``None`` values are dropped so CLI
    plumbing can pass absent flags straight through.
    """
    if name not in SHARD_SCENARIOS:
        raise ConfigurationError(
            f"unknown shard scenario {name!r}; "
            f"choose from {sorted(SHARD_SCENARIOS)}")
    kwargs = {k: v for k, v in params.items() if v is not None}
    return SHARD_SCENARIOS[name](**kwargs)
