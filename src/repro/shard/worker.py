"""Shard worker runtime: build cells from plain-data specs and run them.

Workers receive only picklable cell specs (dicts of numbers, strings,
lists, Fractions) and rebuild the live objects — scheduler, link, traffic
sources, metrics sinks — through the registries here, so the default
``spawn`` start method works everywhere and nothing is inherited from the
parent process.  Every seed a worker uses is written into the spec at
planning time; nothing depends on the worker id or completion order.

One shard = one :class:`~repro.sim.engine.Simulator` hosting all the
shard's cells, exactly mirroring the single-process run at ``shards=1``
(which hosts *every* cell in one simulator).  Cells are closed systems,
so grouping them differently cannot change any per-cell result — only
process-local counters like ``events_elided`` (the burst-drain extent
depends on what else shares the event heap), which the merge layer keeps
out of the digest.

Checkpoint-based migration: :func:`checkpoint_cell` runs a flat cell to
a cut time and returns a picklable checkpoint (link + scheduler snapshot,
per-source emission snapshots, the partial results so far);
:func:`resume_cell` rebuilds the cell in a fresh process, restores, runs
to the end, and splices the two segments into one result identical — up
to the digest-excluded gauges — to the uninterrupted run.
"""

from repro.errors import ConfigurationError

__all__ = [
    "build_cell",
    "run_cells",
    "run_shard",
    "checkpoint_cell",
    "resume_cell",
    "merge_segments",
]


# ----------------------------------------------------------------------
# Registries: spec dict -> live object
# ----------------------------------------------------------------------
def _scheduler_classes():
    from repro.core import (
        DRRScheduler,
        FFQScheduler,
        FIFOScheduler,
        SCFQScheduler,
        SFQScheduler,
        VirtualClockScheduler,
        WF2QPlusScheduler,
        WF2QScheduler,
        WFQScheduler,
        WRRScheduler,
    )

    return {
        "fifo": FIFOScheduler,
        "wrr": WRRScheduler,
        "drr": DRRScheduler,
        "scfq": SCFQScheduler,
        "sfq": SFQScheduler,
        "vclock": VirtualClockScheduler,
        "ffq": FFQScheduler,
        "wfq": WFQScheduler,
        "wf2q": WF2QScheduler,
        "wf2qplus": WF2QPlusScheduler,
    }


def _tree_from_list(tree):
    """``["name", share, [children...]]`` -> :class:`NodeSpec`."""
    from repro.config import leaf, node

    name, share, children = tree
    if not children:
        return leaf(name, share)
    return node(name, share, [_tree_from_list(c) for c in children])


def tree_to_list(spec):
    """:class:`NodeSpec` -> the plain nested-list form workers rebuild."""
    return [spec.name, spec.share,
            [tree_to_list(c) for c in spec.children]]


def build_scheduler(spec):
    """Instantiate a scheduler from its plain-data spec.

    ``spec["backend"]`` selects the implementation: ``"exact"`` (default)
    builds the reference scheduler, ``"vector"`` the columnar float64
    backend (:class:`~repro.core.hbatch.VectorHWF2QPlus` for ``hpfq``
    specs, :class:`~repro.core.batch.VectorWF2QPlus` for flat WF2Q+).
    Because the backend rides in the cell spec, every process — shard
    workers, the single-process ``--verify`` baseline, a migration's
    resume segment — rebuilds the same implementation, so the merged
    digest stays invariant across shard counts and migrations for either
    setting.  (Exact and vector runs are compared like-for-like: the
    vector backends reproduce exact *float* scheduling, but they work in
    a different arithmetic domain than the exact default — float64
    columns versus Fractions-preserving tags — so the two backends'
    digests are not interchangeable.)  ``spec["chunk"]`` bounds the
    burst-drain chunk: an integer pins ``drain_chunk`` directly,
    ``"auto"`` attaches a :class:`~repro.obs.profile.ChunkAutotuner`;
    chunking never changes what is scheduled, so this knob *is*
    digest-invariant.
    """
    backend = spec.get("backend", "exact")
    if backend not in ("exact", "vector"):
        raise ConfigurationError(
            f"unknown scheduler backend {backend!r}; "
            f"choose 'exact' or 'vector'")
    if spec["kind"] == "hpfq":
        if backend == "vector":
            from repro.core import VectorHWF2QPlus

            sched = VectorHWF2QPlus(_tree_from_list(spec["tree"]),
                                    spec["rate"], policy=spec["policy"])
        else:
            from repro.core import HPFQScheduler

            sched = HPFQScheduler(_tree_from_list(spec["tree"]),
                                  spec["rate"], policy=spec["policy"])
    else:
        classes = _scheduler_classes()
        if spec["policy"] not in classes:
            raise ConfigurationError(
                f"unknown scheduler policy {spec['policy']!r}")
        cls = classes[spec["policy"]]
        if backend == "vector":
            if spec["policy"] != "wf2qplus":
                raise ConfigurationError(
                    f"backend 'vector' supports policy 'wf2qplus' only, "
                    f"got {spec['policy']!r}")
            from repro.core import VectorWF2QPlus

            cls = VectorWF2QPlus
        sched = cls(spec["rate"])
        for flow_id, share in spec["flows"]:
            sched.add_flow(flow_id, share)
    chunk = spec.get("chunk")
    if chunk == "auto":
        from repro.obs import ChunkAutotuner

        ChunkAutotuner(sched)
    elif chunk is not None:
        sched.drain_chunk = int(chunk)
    for flow_id, packets in sorted(spec.get("buffers", {}).items(),
                                   key=lambda kv: str(kv[0])):
        sched.set_buffer_limit(flow_id, packets)
    return sched


def build_source(spec):
    """Instantiate a traffic source from its plain-data spec."""
    from repro.traffic.source import (
        CBRSource,
        MarkovOnOffSource,
        OnOffSource,
        PacketTrainSource,
        PoissonSource,
    )

    kind = spec["type"]
    flow, length = spec["flow"], spec["length"]
    start = spec.get("start", 0.0)
    stop = spec.get("stop")
    if kind == "cbr":
        return CBRSource(flow, spec["rate"], length, start_time=start,
                         stop_time=stop)
    if kind == "poisson":
        return PoissonSource(flow, spec["rate"], length, seed=spec["seed"],
                             start_time=start, stop_time=stop)
    if kind == "onoff":
        return OnOffSource(flow, spec["peak"], length, spec["on"],
                           spec["off"], start_time=start, stop_time=stop)
    if kind == "train":
        return PacketTrainSource(flow, length, spec["train_length"],
                                 spec["interval"], spec["line_rate"],
                                 start_time=start, stop_time=stop)
    if kind == "markov":
        return MarkovOnOffSource(flow, spec["peak"], length,
                                 spec["mean_on"], spec["mean_off"],
                                 seed=spec["seed"], start_time=start,
                                 stop_time=stop)
    raise ConfigurationError(f"unknown source type {kind!r}")


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
class _Cell:
    """Live pieces of one cell, held together for collection."""

    __slots__ = ("spec", "links", "sinks", "sources", "network")

    def __init__(self, spec):
        self.spec = spec
        self.links = {}     # link name -> Link
        self.sinks = {}     # link name -> MetricsSink
        self.sources = []
        self.network = None


def build_cell(sim, spec, start=True):
    """Construct a cell's live objects on ``sim``; optionally start traffic.

    ``start=False`` leaves the sources attached but unscheduled, for
    :func:`resume_cell` to restore instead.
    """
    from repro.obs import MetricsSink
    from repro.sim.link import Link
    from repro.sim.monitor import ServiceTrace

    cell = _Cell(spec)
    if spec["kind"] == "network":
        from repro.sim.network import Network

        net = Network(sim)
        cell.network = net
        for name, sched_spec, delay in spec["nodes"]:
            link = net.add_node(name, build_scheduler(sched_spec),
                                propagation_delay=delay)
            cell.links[name] = link
            sink = MetricsSink()
            link.attach_observer(sink)
            cell.sinks[name] = sink
        for flow_id, path, share, buffer in spec["routes"]:
            net.add_route(flow_id, path, share=share, buffer=buffer)
        for src_spec in spec["sources"]:
            source = build_source(src_spec)
            source.attach(sim, net.entry(src_spec["flow"]))
            cell.sources.append(source)
            if start:
                source.start()
    else:
        link = Link(sim, build_scheduler(spec["scheduler"]),
                    trace=ServiceTrace())
        cell.links["link"] = link
        sink = MetricsSink()
        link.attach_observer(sink)
        cell.sinks["link"] = sink
        for src_spec in spec["sources"]:
            source = build_source(src_spec).attach(sim, link)
            cell.sources.append(source)
            if start:
                source.start()
    return cell


def _service_rows(trace, with_arrival):
    """ScheduledPacket records -> plain rows, exact values preserved.

    Rows key packets by ``(flow_id, seqno)`` — never ``uid``, which is a
    process-local counter.  Virtual tags ride along so the differential
    suite compares the scheduler's internal arithmetic (Fractions and
    all), not just wall-clock times.
    """
    rows = []
    for r in trace.services:
        row = [r.packet.flow_id, r.packet.seqno, r.packet.length]
        if with_arrival:
            row.append(r.packet.arrival_time)
        row.extend((r.start_time, r.finish_time,
                    r.virtual_start, r.virtual_finish))
        rows.append(row)
    return rows


def _flow_metrics(sink):
    out = {}
    for fid in sink.flows():
        m = sink.flow(fid)
        out[fid] = {
            "enqueues": m.enqueues,
            "dequeues": m.dequeues,
            "drops": m.drops,
            "bits_in": m.bits_in,
            "bits_out": m.bits_out,
            "queue_len": m.queue_len,
            "max_queue_len": m.max_queue_len,
            "delay_count": m.delay_count,
            "delay_sum": m.delay_sum,
            "delay_max": m.delay_max,
            "histogram": list(m.histogram),
        }
    return out


def _collect_link(link, sink, with_arrival):
    sched = link.scheduler
    return {
        "services": _service_rows(link.trace, with_arrival),
        "flows": _flow_metrics(sink),
        "ledger": sched.conservation(),
        "drops_by_flow": {fid: sched.drops(fid) for fid in sched.flow_ids
                          if sched.drops(fid)},
        "link": {
            "packets_sent": link.packets_sent,
            "bits_sent": link.bits_sent,
            "packets_dropped": link.packets_dropped,
            "busy_time": link.busy_time,
        },
    }


def collect(cell):
    """Harvest one cell's results as plain data (picklable, mergeable)."""
    result = {"cell": cell.spec["cell"], "kind": cell.spec["kind"],
              "links": {}}
    with_arrival = cell.network is None  # per-hop restamps make it hop-local
    for name in sorted(cell.links, key=str):
        result["links"][name] = _collect_link(
            cell.links[name], cell.sinks[name], with_arrival)
    if cell.network is not None:
        # Egress order is deterministic within a cell, but sort anyway so
        # the digest never depends on equal-time callback interleaving.
        result["deliveries"] = sorted(
            cell.network.log.deliveries,
            key=lambda d: (d[2], d[1], str(d[0])))
    return result


def _batch_totals(cells):
    """Sum the schedulers' batch counters across a group of cells.

    Like ``events_elided``, these are *process-local* observability
    counters — how much work went through the batch APIs depends on what
    shares the event heap — so they ride in the sim stats (merged by
    summing, excluded from the digest), not in the cell results.
    """
    calls = packets = 0
    for cell in cells:
        for link in cell.links.values():
            stats = link.scheduler.batch_stats()
            calls += stats["batch_calls"]
            packets += stats["batch_packets"]
    return {"batch_calls": calls, "batch_packets": packets}


def _engine_stats(sim):
    """Event-engine counters for a finished simulator (process-local).

    Like ``events_elided`` these are execution metadata — bucket resizes
    depend on what else shares the event queue — so the merge layer sums
    them and keeps them out of the digest.
    """
    return {
        "pool_hits": sim.pool_hits,
        "pool_misses": sim.pool_misses,
        "calendar_resizes": sim.calendar_resizes,
        "engine_fallbacks": sim.engine_fallbacks,
    }


def run_cells(specs, duration, engine=None):
    """Run a group of cells in ONE simulator; returns (results, sim stats).

    This is both the whole job of a shard worker and — passed every cell —
    the single-process reference run, which is what makes ``--shards 1``
    a genuine baseline rather than a degenerate pool.  ``engine`` selects
    the event engine (see :func:`repro.sim.engine.resolve_engine`); both
    engines produce byte-identical cell results, so the merged digest is
    engine-invariant.
    """
    from repro.sim.engine import Simulator

    sim = Simulator(engine=engine)
    cells = [build_cell(sim, spec) for spec in specs]
    sim.run(until=duration)
    results = {cell.spec["cell"]: collect(cell) for cell in cells}
    stats = {"events_processed": sim.events_processed,
             "events_elided": sim.events_elided}
    stats.update(_batch_totals(cells))
    stats.update(_engine_stats(sim))
    return results, stats


def run_shard(job):
    """Pool entry: ``(shard_id, [cell specs], duration[, attempt[, engine]])``.

    ``attempt`` (default 0) is the driver's retry counter; it feeds the
    deterministic crash injection below and nothing else, so legacy
    3-tuple jobs behave identically.  ``engine`` (default None: resolve
    from ``REPRO_ENGINE``/heap in the worker process) rides in the job so
    spawn-started workers run the engine the driver was asked for.
    """
    shard_id, specs, duration, *rest = job
    attempt = rest[0] if rest else 0
    engine = rest[1] if len(rest) > 1 else None
    _maybe_fail(shard_id, specs, attempt)
    results, stats = run_cells(specs, duration, engine=engine)
    return {"shard": shard_id, "results": results, "sim": stats}


def _maybe_fail(shard_id, specs, attempt):
    """Deterministic worker-crash injection for retry tests and soak runs.

    A cell spec may carry ``"fail": {"mode": "exit"|"raise", "attempts": k}``
    — the worker dies (hard process exit, or a pickled exception) while
    ``attempt < k``, then succeeds, so the driver's retry/backoff logic is
    testable without real flakiness.  Production specs never set the key.
    """
    for spec in specs:
        fail = spec.get("fail")
        if not fail or attempt >= int(fail.get("attempts", 1)):
            continue
        if fail.get("mode", "raise") == "exit":
            import os

            os._exit(17)
        raise RuntimeError(
            f"injected worker failure: shard {shard_id!r}, "
            f"attempt {attempt}")


# ----------------------------------------------------------------------
# Checkpoint-based migration
# ----------------------------------------------------------------------
def checkpoint_cell(spec, at, engine=None):
    """Run a flat cell to ``at`` and capture a picklable checkpoint.

    The checkpoint carries the joint link+scheduler snapshot (including
    the in-flight packet; see :meth:`repro.sim.link.Link.snapshot`), the
    per-source emission snapshots, and the partial results of the first
    segment.  ``sim.run(until=at)`` leaves the stack in a consistent
    state — any transmission crossing the cut holds a real finish event,
    which the snapshot encodes and :func:`resume_cell` re-arms.  The
    checkpoint itself is engine-agnostic: either engine may resume it.
    """
    from repro.sim.engine import Simulator

    if spec["kind"] == "network":
        raise ConfigurationError(
            "network cells cannot be checkpointed (in-flight hop state is "
            "not snapshottable); migrate flat cells only")
    sim = Simulator(engine=engine)
    cell = build_cell(sim, spec)
    sim.run(until=at)
    sim_stats = {"events_processed": sim.events_processed,
                 "events_elided": sim.events_elided}
    sim_stats.update(_batch_totals([cell]))
    sim_stats.update(_engine_stats(sim))
    return {
        "cell": spec["cell"],
        "clock": at,
        "link": cell.links["link"].snapshot(),
        "sources": [src.snapshot() for src in cell.sources],
        "partial": collect(cell),
        "sim": sim_stats,
    }


def resume_cell(spec, ckpt, duration, engine=None):
    """Rebuild a checkpointed cell in a fresh process and finish the run.

    Returns the merged (segment 1 + segment 2) cell result plus the
    combined simulator stats.  The link is restored before the sources so
    the re-armed finish event exists first; pending emissions are then
    re-scheduled in ascending time order, reproducing the heap order the
    uninterrupted run would have used.
    """
    from repro.sim.engine import Simulator

    if ckpt["cell"] != spec["cell"]:
        raise ConfigurationError(
            f"checkpoint is for cell {ckpt['cell']!r}, "
            f"not {spec['cell']!r}")
    sim = Simulator(engine=engine)
    cell = build_cell(sim, spec, start=False)
    link = cell.links["link"]
    link.restore(ckpt["link"], rearm=True)
    pairs = sorted(
        zip(cell.sources, ckpt["sources"]),
        key=lambda p: (p[1]["pending_time"] is None,
                       p[1]["pending_time"] or 0.0))
    for source, snap in pairs:
        source.restore(snap)
    sim.run(until=duration)
    segment = collect(cell)
    merged = merge_segments(ckpt["partial"], segment)
    stats = {
        "events_processed": (ckpt["sim"]["events_processed"]
                             + sim.events_processed),
        "events_elided": (ckpt["sim"]["events_elided"]
                          + sim.events_elided),
    }
    # Scheduler counters are cumulative across the restore (the snapshot
    # carries them), so segment 2's batch totals are already the whole
    # run's — adding the checkpoint's would double-count segment 1.
    stats.update(_batch_totals([cell]))
    # Engine counters are per-simulator, so the two segments add.
    for key, value in _engine_stats(sim).items():
        stats[key] = value + ckpt["sim"].get(key, 0)
    return {"result": merged, "sim": stats}


def merge_segments(seg1, seg2):
    """Splice two segments of a migrated cell into one result.

    Scheduler and link counters are cumulative across the restore, so
    segment 2's ledger and link totals are authoritative.  Service rows
    concatenate (segment 1 served strictly before the cut).  Metrics
    sinks restart empty in the new process, so streaming counters add,
    maxima take the max, and the delay histogram adds bucket-wise;
    the queue-length gauges are left as segment 2 reported them — they
    are wrong after a migration (the fresh sink never saw the backlog
    build up), which is exactly why the digest excludes gauges.
    """
    out = {"cell": seg2["cell"], "kind": seg2["kind"], "links": {}}
    for name, l2 in seg2["links"].items():
        l1 = seg1["links"][name]
        flows = {}
        for fid in sorted(set(l1["flows"]) | set(l2["flows"]), key=str):
            m1 = l1["flows"].get(fid)
            m2 = l2["flows"].get(fid)
            if m1 is None or m2 is None:
                flows[fid] = dict(m1 or m2)
                continue
            merged = {}
            for key in ("enqueues", "dequeues", "drops", "bits_in",
                        "bits_out", "delay_count", "delay_sum"):
                merged[key] = m1[key] + m2[key]
            merged["delay_max"] = max(m1["delay_max"], m2["delay_max"])
            merged["max_queue_len"] = max(m1["max_queue_len"],
                                          m2["max_queue_len"])
            merged["queue_len"] = m2["queue_len"]
            merged["histogram"] = [a + b for a, b in
                                   zip(m1["histogram"], m2["histogram"])]
            flows[fid] = merged
        out["links"][name] = {
            "services": l1["services"] + l2["services"],
            "flows": flows,
            "ledger": l2["ledger"],
            "drops_by_flow": l2["drops_by_flow"],
            "link": l2["link"],
        }
    return out
