"""The sharded-run driver: plan, fan out, migrate, merge.

``run_sharded`` is the one entry point.  ``shards=1`` runs every cell in
a single simulator in-process — the genuine single-process baseline.
``shards=N`` packs cells onto N spawn-safe worker processes (one
simulator per worker) and merges the results; the merged report's digest
is byte-identical to the baseline's, which ``--verify`` (and the CI
shard-smoke job) checks on every run.

Migration: ``migrate={"cell": id, "at": t}`` takes that cell out of the
normal plan, checkpoints it at ``t`` (in a pool worker when ``shards>1``)
and resumes it *in a fresh, separate worker process* — a dedicated
one-process pool spun up only for the resume, so the checkpoint really
crosses a process boundary.  The merged digest is unchanged, which the
migration differential test pins down.
"""

import multiprocessing
from time import perf_counter

from repro.errors import ConfigurationError
from repro.shard.merge import assemble_report
from repro.shard.partition import assign_shards
from repro.shard.scenarios import build_scenario
from repro.shard.worker import (
    checkpoint_cell,
    resume_cell,
    run_cells,
    run_shard,
)

__all__ = ["run_sharded"]

#: Spawn never inherits accidental parent state; tests override with
#: ``fork`` for start-up speed.
_DEFAULT_START = "spawn"


def _resolve(scenario, duration, params):
    if isinstance(scenario, str):
        built = build_scenario(scenario, duration=duration, **params)
    else:
        built = scenario
    cells = built["cells"]
    if not cells:
        raise ConfigurationError("scenario has no cells")
    return built["name"], duration or built["duration"], cells


def _split_migration(cells, migrate):
    if migrate is None:
        return cells, None
    if migrate.get("cell") is None:
        flat = sorted((c for c in cells if c["kind"] != "network"),
                      key=lambda c: str(c["cell"]))
        if not flat:
            raise ConfigurationError(
                "no flat cell available to migrate in this scenario")
        migrate["cell"] = flat[0]["cell"]
    target = str(migrate["cell"])
    chosen = [c for c in cells if str(c["cell"]) == target]
    if not chosen:
        raise ConfigurationError(
            f"cannot migrate unknown cell {migrate['cell']!r}")
    spec = chosen[0]
    if spec["kind"] == "network":
        raise ConfigurationError(
            "network cells cannot be migrated; pick a flat cell")
    rest = [c for c in cells if str(c["cell"]) != target]
    return rest, spec


def run_sharded(scenario="cbr_flat", shards=1, duration=None, migrate=None,
                mp_context=None, **params):
    """Run a scenario across ``shards`` workers; returns the merged report.

    ``scenario`` is a registered name (params like ``flows``/``cells``/
    ``rate``/``seed`` pass through to the builder) or a prebuilt
    ``{"name", "duration", "cells"}`` dict.  ``migrate`` is
    ``{"cell": id, "at": t}`` with ``0 < t < duration``.
    """
    name, duration, cells = _resolve(scenario, duration, params)
    plan = assign_shards(cells, shards)
    rest, migrating = _split_migration(cells, migrate)
    if migrating is not None and not 0 < migrate["at"] < duration:
        raise ConfigurationError(
            f"migration time {migrate['at']!r} must fall inside "
            f"(0, {duration!r})")
    sim_stats = {"events_processed": 0, "events_elided": 0,
                 "batch_calls": 0, "batch_packets": 0}

    def absorb(stats):
        sim_stats["events_processed"] += stats["events_processed"]
        sim_stats["events_elided"] += stats["events_elided"]
        sim_stats["batch_calls"] += stats.get("batch_calls", 0)
        sim_stats["batch_packets"] += stats.get("batch_packets", 0)

    t0 = perf_counter()
    results = {}
    if shards <= 1:
        if rest:
            cell_results, stats = run_cells(rest, duration)
            results.update(cell_results)
            absorb(stats)
        if migrating is not None:
            # Same process, but a genuinely fresh simulator for the
            # resume — the cross-process variant is exercised below and
            # in the differential suite.
            ckpt = checkpoint_cell(migrating, migrate["at"])
            resumed = resume_cell(migrating, ckpt, duration)
            results[migrating["cell"]] = resumed["result"]
            absorb(resumed["sim"])
    else:
        by_shard = {}
        for spec in rest:
            by_shard.setdefault(plan["assignment"][spec["cell"]],
                                []).append(spec)
        jobs = [(shard, specs) for shard, specs in sorted(by_shard.items())]
        ctx = multiprocessing.get_context(mp_context or _DEFAULT_START)
        with ctx.Pool(processes=max(1, len(jobs))) as pool:
            async_ckpt = None
            if migrating is not None:
                async_ckpt = pool.apply_async(
                    checkpoint_cell, (migrating, migrate["at"]))
            # imap_unordered on purpose: the merge must not depend on
            # completion order, and this keeps it honest.
            for shard_out in pool.imap_unordered(
                    run_shard,
                    [(shard, specs, duration) for shard, specs in jobs]):
                results.update(shard_out["results"])
                absorb(shard_out["sim"])
            ckpt = async_ckpt.get() if async_ckpt is not None else None
        if migrating is not None:
            # A dedicated one-worker pool: the resume provably happens in
            # a process that never saw the first segment.
            with ctx.Pool(processes=1) as fresh:
                resumed = fresh.apply(resume_cell,
                                      (migrating, ckpt, duration))
            results[migrating["cell"]] = resumed["result"]
            absorb(resumed["sim"])
    wall = perf_counter() - t0
    migrated = (None if migrating is None
                else {"cell": migrating["cell"], "at": migrate["at"]})
    return assemble_report(name, duration, results, plan, sim_stats, wall,
                           migrated=migrated)
