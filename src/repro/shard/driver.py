"""The sharded-run driver: plan, fan out, migrate, merge.

``run_sharded`` is the one entry point.  ``shards=1`` runs every cell in
a single simulator in-process — the genuine single-process baseline.
``shards=N`` packs cells onto N spawn-safe worker processes (one
simulator per worker) and merges the results; the merged report's digest
is byte-identical to the baseline's, which ``--verify`` (and the CI
shard-smoke job) checks on every run.

Migration: ``migrate={"cell": id, "at": t}`` takes that cell out of the
normal plan, checkpoints it at ``t`` (in a pool worker when ``shards>1``)
and resumes it *in a fresh, separate worker process* — a dedicated
one-process pool spun up only for the resume, so the checkpoint really
crosses a process boundary.  The merged digest is unchanged, which the
migration differential test pins down.
"""

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter

from repro.errors import ConfigurationError, WorkerError
from repro.shard.merge import assemble_report
from repro.shard.partition import assign_shards
from repro.shard.scenarios import build_scenario
from repro.shard.worker import (
    checkpoint_cell,
    resume_cell,
    run_cells,
    run_shard,
)

__all__ = ["run_sharded"]

#: Spawn never inherits accidental parent state; tests override with
#: ``fork`` for start-up speed.
_DEFAULT_START = "spawn"

#: Default retry budget per shard (``--max-retries``): a worker that dies
#: — non-zero exit, killed, or an exception that pickles back — is re-run
#: up to this many extra times with exponential backoff before the driver
#: reports the failed cells.
DEFAULT_MAX_RETRIES = 2


def _run_jobs(ctx, jobs, duration, max_retries, backoff, absorb, sleep=None,
              engine=None):
    """Fan ``(shard, specs)`` jobs out to worker processes with retries.

    Built on :class:`ProcessPoolExecutor`, which *detects* an abruptly
    dead worker (``multiprocessing.Pool`` hangs forever on one): the
    victim's future raises ``BrokenProcessPool``, and a raised-in-worker
    exception pickles back as itself.  A wave that loses workers gets a
    fresh executor for its retries (a broken pool is unusable), after
    ``backoff * 2**attempt`` seconds.  Returns ``(results, failures)``
    where ``failures`` maps shard id -> cause of the last failed attempt;
    shards that eventually succeeded appear only in ``results``.
    """
    if sleep is None:
        sleep = time.sleep
    results = {}
    pending = list(jobs)
    attempt = 0
    failures = {}
    while pending:
        if attempt > 0:
            sleep(backoff * (2 ** (attempt - 1)))
        failed = []
        failures = {}
        with ProcessPoolExecutor(max_workers=max(1, len(pending)),
                                 mp_context=ctx) as pool:
            futures = [
                (shard, specs,
                 pool.submit(run_shard,
                             (shard, specs, duration, attempt, engine)))
                for shard, specs in pending
            ]
            # Merge by dict update, keyed on stable cell ids: completion
            # order cannot matter (the old imap_unordered kept that
            # honest; here result() order is submission order, and the
            # differential suite still pins digest equality).
            for shard, specs, future in futures:
                try:
                    shard_out = future.result()
                except Exception as exc:  # worker died or raised
                    failed.append((shard, specs))
                    failures[shard] = f"{type(exc).__name__}: {exc}"
                else:
                    results.update(shard_out["results"])
                    absorb(shard_out["sim"])
        if not failed:
            return results, {}
        if attempt >= max_retries:
            return results, failures
        pending = failed
        attempt += 1
    return results, failures


def _resolve(scenario, duration, params):
    if isinstance(scenario, str):
        built = build_scenario(scenario, duration=duration, **params)
    else:
        built = scenario
    cells = built["cells"]
    if not cells:
        raise ConfigurationError("scenario has no cells")
    return built["name"], duration or built["duration"], cells


def _split_migration(cells, migrate):
    if migrate is None:
        return cells, None
    if migrate.get("cell") is None:
        flat = sorted((c for c in cells if c["kind"] != "network"),
                      key=lambda c: str(c["cell"]))
        if not flat:
            raise ConfigurationError(
                "no flat cell available to migrate in this scenario")
        migrate["cell"] = flat[0]["cell"]
    target = str(migrate["cell"])
    chosen = [c for c in cells if str(c["cell"]) == target]
    if not chosen:
        raise ConfigurationError(
            f"cannot migrate unknown cell {migrate['cell']!r}")
    spec = chosen[0]
    if spec["kind"] == "network":
        raise ConfigurationError(
            "network cells cannot be migrated; pick a flat cell")
    rest = [c for c in cells if str(c["cell"]) != target]
    return rest, spec


def run_sharded(scenario="cbr_flat", shards=1, duration=None, migrate=None,
                mp_context=None, max_retries=DEFAULT_MAX_RETRIES,
                retry_backoff=0.05, strict=True, engine=None, **params):
    """Run a scenario across ``shards`` workers; returns the merged report.

    ``scenario`` is a registered name (params like ``flows``/``cells``/
    ``rate``/``seed`` pass through to the builder) or a prebuilt
    ``{"name", "duration", "cells"}`` dict.  ``migrate`` is
    ``{"cell": id, "at": t}`` with ``0 < t < duration``.  ``engine``
    selects the simulator's event engine in every worker (heap, calendar,
    or their ``+pool`` variants; None resolves from ``REPRO_ENGINE``);
    the merged digest is engine-invariant, which the differential suite
    pins.

    Worker failures: each shard whose worker dies or raises is retried up
    to ``max_retries`` times (exponential backoff starting at
    ``retry_backoff`` seconds).  With the budget exhausted, ``strict=True``
    raises :class:`~repro.errors.WorkerError` naming the failed cells;
    ``strict=False`` returns the partial report with a ``"failures"``
    section instead.
    """
    name, duration, cells = _resolve(scenario, duration, params)
    plan = assign_shards(cells, shards)
    rest, migrating = _split_migration(cells, migrate)
    if migrating is not None and not 0 < migrate["at"] < duration:
        raise ConfigurationError(
            f"migration time {migrate['at']!r} must fall inside "
            f"(0, {duration!r})")
    sim_stats = {"events_processed": 0, "events_elided": 0,
                 "batch_calls": 0, "batch_packets": 0,
                 "pool_hits": 0, "pool_misses": 0,
                 "calendar_resizes": 0, "engine_fallbacks": 0}

    def absorb(stats):
        for key in sim_stats:
            sim_stats[key] += stats.get(key, 0)

    t0 = perf_counter()
    results = {}
    failures = {}
    if shards <= 1:
        if rest:
            cell_results, stats = run_cells(rest, duration, engine=engine)
            results.update(cell_results)
            absorb(stats)
        if migrating is not None:
            # Same process, but a genuinely fresh simulator for the
            # resume — the cross-process variant is exercised below and
            # in the differential suite.
            ckpt = checkpoint_cell(migrating, migrate["at"], engine=engine)
            resumed = resume_cell(migrating, ckpt, duration, engine=engine)
            results[migrating["cell"]] = resumed["result"]
            absorb(resumed["sim"])
    else:
        by_shard = {}
        for spec in rest:
            by_shard.setdefault(plan["assignment"][spec["cell"]],
                                []).append(spec)
        jobs = [(shard, specs) for shard, specs in sorted(by_shard.items())]
        ctx = multiprocessing.get_context(mp_context or _DEFAULT_START)
        shard_results, failures = _run_jobs(
            ctx, jobs, duration, max_retries, retry_backoff, absorb,
            engine=engine)
        results.update(shard_results)
        if migrating is not None:
            # Checkpoint in one pool worker, resume in *another*: the
            # checkpoint provably crosses a process boundary into a
            # worker that never saw the first segment.
            with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
                ckpt = pool.submit(
                    checkpoint_cell, migrating, migrate["at"],
                    engine).result()
            with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as fresh:
                resumed = fresh.submit(
                    resume_cell, migrating, ckpt, duration, engine).result()
            results[migrating["cell"]] = resumed["result"]
            absorb(resumed["sim"])
    if failures and strict:
        raise WorkerError(failures)
    wall = perf_counter() - t0
    migrated = (None if migrating is None
                else {"cell": migrating["cell"], "at": migrate["at"]})
    report = assemble_report(name, duration, results, plan, sim_stats, wall,
                             migrated=migrated)
    if failures:
        # Non-strict mode: name exactly which shards/cells are missing so
        # a caller can re-plan them instead of diffing the cell map.
        assignment = plan["assignment"]
        report["failures"] = {
            str(shard): {
                "cause": cause,
                "cells": sorted(str(cid) for cid, s in assignment.items()
                                if s == shard and str(cid) not in
                                {str(k) for k in results}),
            }
            for shard, cause in sorted(failures.items())
        }
    return report
