"""H-PFQ: hierarchical packet fair queueing from one-level PFQ building
blocks (Section 4 of the paper).

The scheduler is a tree (:class:`~repro.config.hierarchy_spec.HierarchySpec`)
whose root is the physical link, interior nodes are link-sharing classes and
leaves hold the physical packet queues.  Every non-root node ``n`` is
connected to its parent by a *logical queue* that stores only a reference to
the packet at its head (``Q_n`` in the paper); the physical packet stays in
its leaf queue until the link finishes transmitting it.

The three operations follow the paper's pseudocode:

* ``ARRIVE``     (our :meth:`HPFQScheduler._arrive`): a packet reaching an
  empty leaf becomes the leaf's logical head, gets tags
  ``s = max(f, V_parent)``, ``f = s + L / r_leaf``, and restarts the parent
  if it is idle.
* ``RESTART-NODE`` (:meth:`HPFQScheduler._restart`): a node picks the next
  child by its policy (SEFF for WF2Q+ nodes, SFF for WFQ/SCFQ nodes),
  adopts the child's head packet, updates its own tags
  (``s = f`` while busy, ``s = max(f, V_parent)`` from idle), advances its
  virtual time, and propagates upward while the parent has no selection.
* ``RESET-PATH`` (:meth:`HPFQScheduler._reset_path`): when the link finishes
  a packet, the active path is cleared top-down; at the leaf the next packet
  (if any) becomes head with ``s = f``, and the leaf's parent is restarted,
  which re-selects bottom-up through the cleared path.

Reference time (Section 4.1): node ``n``'s clock is
``T_n = W_n(0, t) / r_n``, advanced by ``L / r_n`` each time the node selects
a packet of length L.  Consequently the whole hierarchy is *event-driven* —
no wall-clock input is needed beyond busy-period boundaries.

Per-node policies
-----------------
:class:`WF2QPlusNodePolicy` implements lines 1 and 12 of ``RESTART-NODE``:
eligibility ``s_m <= max(V_n, Smin_n)`` with smallest-finish selection, and
``V_n <- max(V_n, Smin_n) + L/r_n``.  :class:`WFQNodePolicy`,
:class:`SCFQNodePolicy` and :class:`SFQNodePolicy` provide the baselines the
paper compares against (H-WFQ's large-WFI nodes are what causes its delay
spikes in Figures 4-7).
"""

from collections import deque

from repro.config.hierarchy_spec import HierarchySpec, NodeSpec
from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.dstruct.heap import IndexedHeap
from repro.errors import ConfigurationError, HierarchyError
from repro.obs.events import NodeRestart, VirtualTimeUpdate

__all__ = [
    "HPFQScheduler",
    "NodeSpec",
    "NodePolicy",
    "WF2QPlusNodePolicy",
    "WFQNodePolicy",
    "SCFQNodePolicy",
    "SFQNodePolicy",
    "POLICIES",
    "make_hwf2qplus",
    "make_hwfq",
    "make_hscfq",
    "make_hsfq",
]


class _HNode:
    """Runtime state of one tree node (leaf or interior)."""

    __slots__ = (
        "name", "share", "rate", "inv_rate", "parent", "children", "is_leaf",
        "child_index",
        # child-role state: the logical queue to the parent
        "head", "start_tag", "finish_tag",
        # server-role state
        "policy", "virtual", "reference", "busy", "active_child",
        # lazy busy-period reset stamp (see HPFQScheduler._tree_epoch)
        "epoch",
        # leaf-role state (the physical queue lives in FlowState)
        "flow_state",
    )

    def __init__(self, name, share, rate, parent, is_leaf):
        self.name = name
        self.share = share
        self.rate = rate
        #: 1 / r_n, precomputed once — node rates are fixed at build time,
        #: so tag updates pay one multiply instead of a division.
        self.inv_rate = 1 / rate
        self.parent = parent
        self.children = []
        self.child_index = 0
        self.is_leaf = is_leaf
        self.head = None
        self.start_tag = 0
        self.finish_tag = 0
        self.policy = None
        self.virtual = 0
        self.reference = 0
        self.busy = False
        self.active_child = None
        self.epoch = 0
        self.flow_state = None

    def __repr__(self):  # pragma: no cover - debug aid
        return f"_HNode({self.name!r}, r={self.rate!r}, busy={self.busy})"


# ----------------------------------------------------------------------
# Per-node policies
# ----------------------------------------------------------------------
class NodePolicy:
    """Selection + virtual-time policy of one interior node.

    The framework notifies the policy whenever a child's logical-queue head
    is set (with fresh ``start_tag``/``finish_tag``) or cleared; ``select``
    returns the child to serve next; ``on_select`` advances the node's
    virtual time for the chosen packet.
    """

    name = "abstract"

    def __init__(self, node):
        self.node = node

    def child_head_set(self, child):
        raise NotImplementedError

    def child_head_cleared(self, child):
        raise NotImplementedError

    def select(self):
        """Return the child whose head packet is served next (or None)."""
        raise NotImplementedError

    def on_select(self, child, length):
        """Update node virtual/reference time for a selected packet."""
        raise NotImplementedError

    def reset(self):
        """Forget everything (system busy period ended)."""
        raise NotImplementedError


class WF2QPlusNodePolicy(NodePolicy):
    """SEFF with the hierarchical WF2Q+ virtual time (pseudocode line 12)."""

    name = "wf2qplus"

    def __init__(self, node):
        super().__init__(node)
        self._starts = IndexedHeap()      # all headed children, key = start tag
        self._eligible = IndexedHeap()    # key = finish tag
        self._ineligible = IndexedHeap()  # key = start tag

    def child_head_set(self, child):
        self._starts.push_or_update(child, child.start_tag)
        if child.start_tag <= self.node.virtual:
            self._ineligible.discard(child)
            self._eligible.push_or_update(
                child, (child.finish_tag, child.child_index)
            )
        else:
            self._eligible.discard(child)
            self._ineligible.push_or_update(
                child, (child.start_tag, child.child_index)
            )

    def child_head_cleared(self, child):
        self._starts.discard(child)
        self._eligible.discard(child)
        self._ineligible.discard(child)

    def select(self):
        starts = self._starts
        if not starts:
            return None
        # E_n: children with s_m <= max(V_n, Smin_n).  The max with Smin
        # guarantees at least one eligible child (work conservation).
        threshold = max(self.node.virtual, starts.min_key())
        ineligible = self._ineligible
        eligible = self._eligible
        while ineligible and ineligible.min_key()[0] <= threshold:
            child, _key = ineligible.pop()
            eligible.push(child, (child.finish_tag, child.child_index))
        return eligible.peek_item()

    def on_select(self, child, length):
        node = self.node
        smin = self._starts.min_key()  # selected child is still headed
        dt = length * node.inv_rate
        node.virtual = max(node.virtual, smin) + dt
        node.reference += dt

    def reset(self):
        self._starts.clear()
        self._eligible.clear()
        self._ineligible.clear()


class WFQNodePolicy(NodePolicy):
    """SFF with the practical packet-backlog GPS virtual time.

    V advances at slope ``1 / sum(phi of headed children)`` with respect to
    the node's reference time — the classic implementable approximation of
    V_GPS (the exact fluid V is unavailable inside a hierarchy; Section 2.2).
    No eligibility test: this is what gives H-WFQ its O(N)-packet WFI and
    the delay spikes of Figures 4-7.
    """

    name = "wfq"

    def __init__(self, node):
        super().__init__(node)
        self._finishes = IndexedHeap()  # headed children, key = finish tag
        total = sum(c.share for c in node.children)
        self._phi = {c: c.share / total for c in node.children}
        self._active_phi = 0

    def child_head_set(self, child):
        if child not in self._finishes:
            self._active_phi += self._phi[child]
        self._finishes.push_or_update(
            child, (child.finish_tag, child.child_index)
        )

    def child_head_cleared(self, child):
        if self._finishes.discard(child):
            self._active_phi -= self._phi[child]
            if not self._finishes:
                self._active_phi = 0  # kill numeric residue

    def select(self):
        if not self._finishes:
            return None
        return self._finishes.peek_item()

    def on_select(self, child, length):
        node = self.node
        dt = length * node.inv_rate
        node.reference += dt
        if self._active_phi > 0:
            node.virtual += dt / self._active_phi

    def reset(self):
        self._finishes.clear()
        self._active_phi = 0


class SCFQNodePolicy(NodePolicy):
    """SFF with the self-clocked virtual time (V = finish tag in service)."""

    name = "scfq"

    def __init__(self, node):
        super().__init__(node)
        self._finishes = IndexedHeap()

    def child_head_set(self, child):
        self._finishes.push_or_update(
            child, (child.finish_tag, child.child_index)
        )

    def child_head_cleared(self, child):
        self._finishes.discard(child)

    def select(self):
        if not self._finishes:
            return None
        return self._finishes.peek_item()

    def on_select(self, child, length):
        node = self.node
        node.virtual = child.finish_tag
        node.reference += length * node.inv_rate

    def reset(self):
        self._finishes.clear()


class SFQNodePolicy(NodePolicy):
    """Smallest-start-tag-first with V = start tag in service."""

    name = "sfq"

    def __init__(self, node):
        super().__init__(node)
        self._starts = IndexedHeap()

    def child_head_set(self, child):
        self._starts.push_or_update(
            child, (child.start_tag, child.child_index)
        )

    def child_head_cleared(self, child):
        self._starts.discard(child)

    def select(self):
        if not self._starts:
            return None
        return self._starts.peek_item()

    def on_select(self, child, length):
        node = self.node
        node.virtual = child.start_tag
        node.reference += length * node.inv_rate

    def reset(self):
        self._starts.clear()


POLICIES = {
    "wf2qplus": WF2QPlusNodePolicy,
    "wfq": WFQNodePolicy,
    "scfq": SCFQNodePolicy,
    "sfq": SFQNodePolicy,
}


# ----------------------------------------------------------------------
# The hierarchical scheduler
# ----------------------------------------------------------------------
class HPFQScheduler(PacketScheduler):
    """H-PFQ server over a :class:`HierarchySpec`.

    Parameters
    ----------
    spec:
        The link-sharing tree.  Leaf names become the flow ids accepted by
        :meth:`enqueue`.
    rate:
        Link rate in bits per second.
    policy:
        Name in :data:`POLICIES` (or a NodePolicy subclass) applied at every
        interior node — ``"wf2qplus"`` builds H-WF2Q+, ``"wfq"`` H-WFQ, etc.
    policy_overrides:
        Optional mapping ``node name -> policy`` for mixed hierarchies.
    """

    def __init__(self, spec, rate, policy="wf2qplus", policy_overrides=None):
        super().__init__(rate)
        if not isinstance(spec, HierarchySpec):
            spec = HierarchySpec(spec)
        self.spec = spec
        overrides = dict(policy_overrides or {})
        self._nodes = {}
        self._build(spec.root, None)
        self._root = self._nodes[spec.root.name]
        for node_obj in self._nodes.values():
            if not node_obj.is_leaf:
                chosen = overrides.pop(node_obj.name, policy)
                node_obj.policy = self._resolve_policy(chosen)(node_obj)
        if overrides:
            raise HierarchyError(
                f"policy overrides for unknown interior nodes: {sorted(overrides)}"
            )
        self.policy_name = self._resolve_policy(policy).name
        self.name = f"H-PFQ[{self.policy_name}]"
        # Leaves double as flows of the base scheduler.
        for leaf_spec in spec.leaves:
            state = None
            config = self.add_flow(leaf_spec.name, leaf_spec.share)
            state = self._flows[config.flow_id]
            node_obj = self._nodes[leaf_spec.name]
            node_obj.flow_state = state
        #: The packet handed to the link by the previous dequeue; its
        #: RESET-PATH runs when the transmission completes.
        self._in_flight = None
        #: Busy-period epoch for the lazy whole-tree reset: bumped when the
        #: system drains; a node whose ``epoch`` is stale zeroes its own
        #: tags and virtual time on first touch, so the boundary costs O(1)
        #: instead of O(nodes).
        self._tree_epoch = 0

    @staticmethod
    def _resolve_policy(policy):
        if isinstance(policy, str):
            try:
                return POLICIES[policy]
            except KeyError:
                raise ConfigurationError(
                    f"unknown node policy {policy!r}; choose from {sorted(POLICIES)}"
                ) from None
        if isinstance(policy, type) and issubclass(policy, NodePolicy):
            return policy
        raise ConfigurationError(f"not a node policy: {policy!r}")

    def _build(self, spec_node, parent):
        rate = self.spec.guaranteed_rate(spec_node.name, self.rate)
        node_obj = _HNode(spec_node.name, spec_node.share, rate, parent,
                          spec_node.is_leaf)
        self._nodes[spec_node.name] = node_obj
        if parent is not None:
            node_obj.child_index = len(parent.children)
            parent.children.append(node_obj)
        for child in spec_node.children:
            self._build(child, node_obj)

    # ------------------------------------------------------------------
    # Lazy busy-period reset
    # ------------------------------------------------------------------
    def _touch(self, node):
        """Zero a node's stale per-busy-period state on first use.

        The paper's semantics zero every node's tags and virtual time when
        the system drains; doing that eagerly is O(nodes) per boundary.
        Instead the drain bumps ``_tree_epoch`` and each node re-zeroes
        itself here the first time the new busy period reaches it.
        ``head``/``busy``/``active_child`` need no lazy handling: the final
        RESET-PATH already cleared them on every node, and the per-node
        policy heaps drained with them.  ``reference`` is cumulative and
        deliberately survives (W_n(0, t)).
        """
        if node.epoch != self._tree_epoch:
            node.start_tag = 0
            node.finish_tag = 0
            node.virtual = 0
            node.epoch = self._tree_epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_virtual_time(self, name):
        node = self._nodes[name]
        self._touch(node)
        return node.virtual

    def node_reference_time(self, name):
        return self._nodes[name].reference

    def node_service(self, name):
        """W_n(0, t): bits selected for service through node ``name``."""
        node_obj = self._nodes[name]
        return node_obj.reference * node_obj.rate

    def guaranteed_rate(self, flow_id):
        """r_i of a node or leaf: its phi-fraction of the link rate."""
        return self._nodes[flow_id].rate

    def system_virtual_time(self, now=None):
        """The root node's virtual time (the hierarchy-wide clock)."""
        root = self._root
        self._touch(root)
        return root.virtual

    # ------------------------------------------------------------------
    # Observability (emission sites are guarded by the callers)
    # ------------------------------------------------------------------
    def _emit_head(self, node, child_name=None):
        """Emit a NodeRestart for a node that just adopted a head packet."""
        if node.parent is not None:
            start, finish = node.start_tag, node.finish_tag
            rate = node.rate
        else:
            start = finish = rate = None  # the root has no logical queue
        self._obs.emit(NodeRestart(
            self._clock, self.name, node.name, child_name, start, finish,
            None if node.is_leaf else node.virtual,
            node.head.length if node.head is not None else None, rate))

    # ------------------------------------------------------------------
    # ARRIVE
    # ------------------------------------------------------------------
    def enqueue(self, packet, now=None):
        # A transmission that ended strictly before this arrival must run
        # its RESET-PATH first (and see the pre-arrival queue state), so the
        # new packet is tagged under the correct busy/idle rule.
        arrival = now
        if arrival is None:
            arrival = packet.arrival_time
        if arrival is None:
            arrival = self._clock
        if self._in_flight is not None and arrival >= self._free_at:
            self._complete_transmission()
        return super().enqueue(packet, now=arrival)

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        leaf = self._nodes[packet.flow_id]
        if leaf.head is not None:
            return  # logical queue busy; the packet waits in the FIFO
        parent = leaf.parent
        if leaf.epoch != self._tree_epoch:
            self._touch(leaf)
        if parent.epoch != self._tree_epoch:
            self._touch(parent)
        leaf.head = packet
        leaf.start_tag = max(leaf.finish_tag, parent.virtual)
        leaf.finish_tag = leaf.start_tag + packet.length * leaf.inv_rate
        parent.policy.child_head_set(leaf)
        if self._obs is not None:
            self._emit_head(leaf)
        if not parent.busy:
            self._restart(parent)

    # ------------------------------------------------------------------
    # RESTART-NODE
    # ------------------------------------------------------------------
    def _restart(self, node):
        if node.epoch != self._tree_epoch:
            self._touch(node)
        parent = node.parent
        if parent is not None and parent.epoch != self._tree_epoch:
            self._touch(parent)
        child = node.policy.select()
        if child is not None:
            node.active_child = child
            node.head = child.head
            length = node.head.length
            if parent is not None:
                if node.busy:
                    node.start_tag = node.finish_tag
                else:
                    node.start_tag = max(node.finish_tag, parent.virtual)
                node.finish_tag = node.start_tag + length * node.inv_rate
            node.busy = True
            node.policy.on_select(child, length)
            if self._obs is not None:
                self._emit_head(node, child.name)
                self._obs.emit(VirtualTimeUpdate(
                    self._clock, self.name, node.name, node.virtual))
            if parent is not None:
                parent.policy.child_head_set(node)
                if parent.head is None:
                    self._restart(parent)
        else:
            node.active_child = None
            node.busy = False
            if parent is not None:
                parent.policy.child_head_cleared(node)
                if parent.head is None:
                    self._restart(parent)

    # ------------------------------------------------------------------
    # RESET-PATH
    # ------------------------------------------------------------------
    def _reset_path(self, node):
        node.head = None
        if node.is_leaf:
            # The physical packet was already popped by the base dequeue.
            queue = node.flow_state.queue
            parent = node.parent
            if queue:
                head = queue[0]
                node.head = head
                node.start_tag = node.finish_tag
                node.finish_tag = node.start_tag + head.length * node.inv_rate
                parent.policy.child_head_set(node)
                if self._obs is not None:
                    self._emit_head(node)
            else:
                parent.policy.child_head_cleared(node)
            self._restart(parent)
        else:
            child = node.active_child
            node.active_child = None
            self._reset_path(child)

    def _complete_transmission(self):
        """Run RESET-PATH for the packet returned by the previous dequeue."""
        self._in_flight = None
        self._reset_path(self._root)
        if self._root.head is None:
            if self._backlog_packets > 0:  # pragma: no cover - safety net
                raise HierarchyError(
                    "H-PFQ invariant violated: backlog but no selection after reset"
                )
            # The system drained: the busy period is over; the next one must
            # start fresh (V = T = tags = 0).  The final RESET-PATH already
            # cleared every head/busy/active_child and drained the policy
            # heaps, so only tags and virtual times remain stale — bump the
            # epoch and let each node zero itself lazily in _touch (O(1)
            # boundary instead of O(nodes)).  Reference times are left
            # alone: W_n(0, t) is cumulative.
            self._tree_epoch += 1
            if self._obs is not None:
                # Observers expect explicit reset events, so pay the eager
                # sweep only when someone is watching.
                self._full_reset()

    def _full_reset(self):
        epoch = self._tree_epoch
        for node_obj in self._nodes.values():
            node_obj.head = None
            node_obj.start_tag = 0
            node_obj.finish_tag = 0
            node_obj.virtual = 0
            node_obj.busy = False
            node_obj.active_child = None
            node_obj.epoch = epoch
            if node_obj.policy is not None:
                node_obj.policy.reset()
        if self._obs is not None:
            for node_obj in self._nodes.values():
                if not node_obj.is_leaf:
                    self._obs.emit(VirtualTimeUpdate(
                        self._clock, self.name, node_obj.name, 0,
                        reset=True))

    # ------------------------------------------------------------------
    # Dequeue integration with the PacketScheduler template
    # ------------------------------------------------------------------
    def _select_flow(self, now):
        if self._in_flight is not None:
            self._complete_transmission()
        head = self._root.head
        if head is None:
            raise HierarchyError(
                "H-PFQ invariant violated: backlog exists but no selection"
            )
        return self._flows[head.flow_id]

    def _on_dequeued(self, state, packet, now):
        if packet is not self._root.head:  # pragma: no cover - safety net
            raise HierarchyError(
                "H-PFQ invariant violated: dequeued packet is not the root head"
            )
        # Leaves accrue reference time here (interior nodes accrue at
        # selection inside their parent's on_select).
        leaf = self._nodes[packet.flow_id]
        leaf.reference += packet.length / leaf.rate
        self._in_flight = packet

    def _make_record(self, state, packet, now, finish):
        leaf = self._nodes[packet.flow_id]
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=leaf.start_tag,
            virtual_finish=leaf.finish_tag,
        )

    def _on_system_empty(self, now):
        # The final RESET-PATH happens lazily (next enqueue/dequeue); the
        # tree still references the in-flight packet until then, which is
        # exactly the paper's model of a packet in transmission.
        pass


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def make_hwf2qplus(spec, rate, policy_overrides=None):
    """H-WF2Q+ — the paper's proposed hierarchical scheduler."""
    return HPFQScheduler(spec, rate, policy="wf2qplus",
                         policy_overrides=policy_overrides)


def make_hwfq(spec, rate, policy_overrides=None):
    """H-WFQ — the large-WFI baseline the paper argues against."""
    return HPFQScheduler(spec, rate, policy="wfq",
                         policy_overrides=policy_overrides)


def make_hscfq(spec, rate, policy_overrides=None):
    """H-SCFQ — hierarchical self-clocked fair queueing."""
    return HPFQScheduler(spec, rate, policy="scfq",
                         policy_overrides=policy_overrides)


def make_hsfq(spec, rate, policy_overrides=None):
    """H-SFQ — hierarchical start-time fair queueing."""
    return HPFQScheduler(spec, rate, policy="sfq",
                         policy_overrides=policy_overrides)
