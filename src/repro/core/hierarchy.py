"""H-PFQ: hierarchical packet fair queueing from one-level PFQ building
blocks (Section 4 of the paper).

The scheduler is a tree (:class:`~repro.config.hierarchy_spec.HierarchySpec`)
whose root is the physical link, interior nodes are link-sharing classes and
leaves hold the physical packet queues.  Every non-root node ``n`` is
connected to its parent by a *logical queue* that stores only a reference to
the packet at its head (``Q_n`` in the paper); the physical packet stays in
its leaf queue until the link finishes transmitting it.

The three operations follow the paper's pseudocode:

* ``ARRIVE``     (our :meth:`HPFQScheduler._arrive`): a packet reaching an
  empty leaf becomes the leaf's logical head, gets tags
  ``s = max(f, V_parent)``, ``f = s + L / r_leaf``, and restarts the parent
  if it is idle.
* ``RESTART-NODE`` (:meth:`HPFQScheduler._restart_path`): a node picks the
  next child by its policy (SEFF for WF2Q+ nodes, SFF for WFQ/SCFQ nodes),
  adopts the child's head packet, updates its own tags
  (``s = f`` while busy, ``s = max(f, V_parent)`` from idle), advances its
  virtual time, and propagates upward while the parent has no selection.
* ``RESET-PATH`` (:meth:`HPFQScheduler._complete_transmission`): when the
  link finishes a packet, the active path is cleared; at the leaf the next
  packet (if any) becomes head with ``s = f``, and the leaf's parent is
  restarted, which re-selects bottom-up through the cleared path.

Reference time (Section 4.1): node ``n``'s clock is
``T_n = W_n(0, t) / r_n``, advanced by ``L / r_n`` each time the node selects
a packet of length L.  Consequently the whole hierarchy is *event-driven* —
no wall-clock input is needed beyond busy-period boundaries.

Hot-path layout
---------------
The tree is flattened at build time (dense ``node_id`` ids, precomputed
leaf→root ``path`` tuples), and the three operations above run as *iterative
loops over path tuples* — no recursion, no parent-pointer chasing.  At
WF2Q+ nodes the RESTART chain uses a fused re-selection
(:meth:`WF2QPlusNodePolicy.reselect`) that folds the served child's re-key,
the eligibility classification and the virtual-time advance into one pass
over the policy heaps; the classification against the *final* eligibility
threshold (instead of the pre-promotion virtual time) is packet-for-packet
equivalent because the threshold ``max(V_n, Smin_n)`` is non-decreasing
across consecutive selections of a busy period and heap keys
``(tag, child_index)`` are unique per child.  When an observability sink is
attached the generic (unfused) path runs instead, so event ordering is
byte-identical to the reference implementation and the fused kernels stay
zero-cost-when-off.

Per-node policies
-----------------
:class:`WF2QPlusNodePolicy` implements lines 1 and 12 of ``RESTART-NODE``:
eligibility ``s_m <= max(V_n, Smin_n)`` with smallest-finish selection, and
``V_n <- max(V_n, Smin_n) + L/r_n``.  :class:`WFQNodePolicy`,
:class:`SCFQNodePolicy` and :class:`SFQNodePolicy` provide the baselines the
paper compares against (H-WFQ's large-WFI nodes are what causes its delay
spikes in Figures 4-7).
"""

from repro.config.hierarchy_spec import HierarchySpec, NodeSpec
from repro.core.scheduler import (
    BATCH_KERNEL_MIN,
    PacketScheduler,
    ScheduledPacket,
    kernel_sized,
)
from repro.dstruct.heap import IndexedHeap
from repro.errors import ConfigurationError, HierarchyError
from repro.obs.events import NodeRestart, VirtualTimeUpdate

__all__ = [
    "HPFQScheduler",
    "NodeSpec",
    "NodePolicy",
    "WF2QPlusNodePolicy",
    "WFQNodePolicy",
    "SCFQNodePolicy",
    "SFQNodePolicy",
    "POLICIES",
    "make_hwf2qplus",
    "make_hwfq",
    "make_hscfq",
    "make_hsfq",
]

_INF = float("inf")


class _HNode:
    """Runtime state of one tree node (leaf or interior).

    The tree is *flattened* at build time: every node gets a dense
    integer ``node_id`` (preorder) and a precomputed ``path`` tuple — the
    chain ``(self, parent, ..., root)`` — so the per-packet ARRIVE /
    RESET-PATH / RESTART-NODE walks iterate over a tuple of direct
    references instead of chasing ``parent`` pointers or recursing.  All
    mutable per-node state (tags, virtual/reference time, epoch) lives in
    ``__slots__``: one slot load per access, no instance dict.  (A
    parallel-array layout over ``node_id`` was measured too; in CPython
    ``list[i]`` indexing plus the id indirection costs more than the
    direct slot access, so the slots layout is the flat representation.)
    """

    __slots__ = (
        "name", "share", "rate", "inv_rate", "parent", "children", "is_leaf",
        "child_index",
        # flattened-tree layout (assigned once by HPFQScheduler._flatten)
        "node_id", "path",
        # child-role state: the logical queue to the parent
        "head", "start_tag", "finish_tag",
        # server-role state
        "policy", "virtual", "reference", "busy", "active_child",
        # lazy busy-period reset stamp (see HPFQScheduler._tree_epoch)
        "epoch",
        # leaf-role state (the physical queue lives in FlowState)
        "flow_state",
    )

    def __init__(self, name, share, rate, parent, is_leaf):
        self.name = name
        self.share = share
        self.rate = rate
        #: 1 / r_n, precomputed once — node rates are fixed at build time,
        #: so tag updates pay one multiply instead of a division.
        self.inv_rate = 1 / rate
        self.parent = parent
        self.children = []
        self.child_index = 0
        self.node_id = -1
        self.path = ()
        self.is_leaf = is_leaf
        self.head = None
        self.start_tag = 0
        self.finish_tag = 0
        self.policy = None
        self.virtual = 0
        self.reference = 0
        self.busy = False
        self.active_child = None
        self.epoch = 0
        self.flow_state = None

    def __repr__(self):  # pragma: no cover - debug aid
        return f"_HNode({self.name!r}, r={self.rate!r}, busy={self.busy})"


# ----------------------------------------------------------------------
# Per-node policies
# ----------------------------------------------------------------------
class NodePolicy:
    """Selection + virtual-time policy of one interior node.

    The framework notifies the policy whenever a child's logical-queue head
    is set (with fresh ``start_tag``/``finish_tag``) or cleared; ``select``
    returns the child to serve next; ``on_select`` advances the node's
    virtual time for the chosen packet.
    """

    name = "abstract"

    #: True only on instances whose select/on_select pair can be fused by
    #: the iterative RESTART kernel (set per instance by HPFQScheduler for
    #: exact WF2QPlusNodePolicy objects; subclasses with overridden
    #: selection logic must keep the generic path).
    fast = False

    def __init__(self, node):
        self.node = node

    def child_head_set(self, child):
        raise NotImplementedError

    def child_head_cleared(self, child):
        raise NotImplementedError

    def select(self):
        """Return the child whose head packet is served next (or None)."""
        raise NotImplementedError

    def on_select(self, child, length):
        """Update node virtual/reference time for a selected packet."""
        raise NotImplementedError

    def reset(self):
        """Forget everything (system busy period ended)."""
        raise NotImplementedError

    # -- robustness (cold paths: reconfiguration and checkpointing) -----
    def reconfigure(self):
        """Hook: shares, rates or the child list of ``self.node`` changed.

        Policies holding share-derived state (WFQ's normalised phi table)
        refresh it here; tag-keyed policies need nothing because
        :meth:`rebuild` re-keys their heaps afterwards.
        """

    def rebuild(self):
        """Re-key every headed child after share/rate/index changes.

        Generic over all policies: drop each current child from the
        policy's book-keeping and re-admit it with its (possibly re-based)
        tags and child index.  For WF2Q+ the re-classification uses the
        current ``V_n``; a child that was parked ineligible but now has
        ``s <= V_n`` is promoted early, which ``select`` would have done
        anyway before the next choice — selection order is unchanged.
        """
        self.reconfigure()
        for child in self.node.children:
            self.child_head_cleared(child)
            if child.head is not None:
                self.child_head_set(child)

    def snapshot(self):
        """Plain-data checkpoint of the policy's mutable state.

        Children are tokenised by node name; :meth:`restore` resolves them
        back through the scheduler's node table.
        """
        raise NotImplementedError

    def restore(self, snap, nodes):
        raise NotImplementedError


class WF2QPlusNodePolicy(NodePolicy):
    """SEFF with the hierarchical WF2Q+ virtual time (pseudocode line 12).

    Two heaps, not three: a child in the eligible heap always has
    ``s_m <= V_n`` (it was classified against a threshold no larger than
    the current ``V_n``, which only grows within a busy period), so
    ``Smin_n <= V_n`` whenever the eligible heap is nonempty and the
    eligibility threshold ``max(V_n, Smin_n)`` degenerates to ``V_n``.
    Only when *every* headed child is ineligible does Smin matter — and
    then it is exactly the ineligible heap's top key.  A dedicated
    min-start heap (the paper's literal Smin) would be pure overhead.
    """

    name = "wf2qplus"

    def __init__(self, node):
        super().__init__(node)
        self._eligible = IndexedHeap()    # key = (finish tag, child index)
        self._ineligible = IndexedHeap()  # key = (start tag, child index)
        #: max(V_n, Smin_n) computed by the last ``select`` — consumed by
        #: the immediately following ``on_select`` (no mutation between).
        self._threshold = 0

    def child_head_set(self, child):
        if child.start_tag <= self.node.virtual:
            self._ineligible.discard(child)
            self._eligible.push_or_update(
                child, (child.finish_tag, child.child_index)
            )
        else:
            self._eligible.discard(child)
            self._ineligible.push_or_update(
                child, (child.start_tag, child.child_index)
            )

    def child_head_cleared(self, child):
        self._eligible.discard(child)
        self._ineligible.discard(child)

    def select(self):
        eligible = self._eligible
        ineligible = self._ineligible
        # E_n: children with s_m <= max(V_n, Smin_n).  The max with Smin
        # guarantees at least one eligible child (work conservation).
        if eligible:
            threshold = self.node.virtual
        elif ineligible:
            threshold = max(self.node.virtual, ineligible.min_key()[0])
        else:
            return None
        ient = ineligible.entries
        while ient and ient[0][0][0] <= threshold:
            child = ient[0][2]
            ineligible.move_top_to(
                eligible, (child.finish_tag, child.child_index)
            )
        self._threshold = threshold
        return eligible.peek_item()

    def reselect(self, rekeyed):
        """Fused ``child_head_set`` + ``select``: return ``(child, threshold)``.

        ``rekeyed`` is a child whose head/tags were just refreshed but not
        yet pushed into the policy heaps (or None when nothing changed).
        Instead of classifying it against ``V_n`` and then promoting it in
        ``select``, it is classified directly against the final eligibility
        threshold ``max(V_n, Smin_n)``.  This is exact: within a busy period
        the threshold is non-decreasing across consecutive selections
        (``on_select`` jumps ``V_n`` to threshold + dt), so any child that
        the two-step path would have parked in the ineligible heap and
        promoted later still crosses into the eligible heap before it can
        ever be selected; heap keys ``(tag, child_index)`` are unique per
        child, so the different insertion order is unobservable.

        The returned ``threshold`` lets the caller fuse ``on_select`` too:
        ``V_n <- threshold + L/r_n`` without re-reading Smin.  Returns
        ``(None, None)`` when no child is headed.
        """
        node = self.node
        eligible = self._eligible
        ineligible = self._ineligible
        eent = eligible.entries
        ient = ineligible.entries
        if rekeyed is not None:
            # ``rekeyed`` is either the just-served child (still sitting in
            # the eligible heap under its stale key — it was at the top
            # when selected) or a freshly headed child absent from both
            # heaps; it is never in the ineligible heap.
            rs = rekeyed.start_tag
            in_eligible = rekeyed in eligible.pos
            if len(eent) > (1 if in_eligible else 0):
                # Some *other* eligible child exists => Smin <= V_n.
                threshold = node.virtual
            else:
                smin = rs
                if ient and ient[0][0][0] < smin:
                    smin = ient[0][0][0]
                threshold = node.virtual
                if smin > threshold:
                    threshold = smin
            if rs > threshold:
                # The re-keyed child parks in the ineligible heap.  In the
                # saturated steady state it is the just-served child sitting
                # at the eligible top while the next child to promote sits
                # at the ineligible top, so both cross-heap moves collapse
                # into single-sift replace_top swaps (2 sifts, not 4).
                ikey = (rs, rekeyed.child_index)
                if in_eligible:
                    if eent[0][2] is rekeyed:
                        if ient and ient[0][0][0] <= threshold:
                            child = ient[0][2]
                            ineligible.replace_top(rekeyed, ikey)
                            eligible.replace_top(
                                child, (child.finish_tag, child.child_index)
                            )
                        else:
                            eligible.move_top_to(ineligible, ikey)
                    else:
                        eligible.remove(rekeyed)
                        ineligible.push(rekeyed, ikey)
                else:
                    ineligible.push(rekeyed, ikey)
            elif in_eligible:
                eligible.update(
                    rekeyed, (rekeyed.finish_tag, rekeyed.child_index)
                )
            else:
                eligible.push(
                    rekeyed, (rekeyed.finish_tag, rekeyed.child_index)
                )
        elif eent:
            threshold = node.virtual
        elif ient:
            threshold = node.virtual
            smin = ient[0][0][0]
            if smin > threshold:
                threshold = smin
        else:
            return None, None
        while ient and ient[0][0][0] <= threshold:
            child = ient[0][2]
            ineligible.move_top_to(
                eligible, (child.finish_tag, child.child_index)
            )
        # Smin's owner is eligible by construction, so the heap is nonempty.
        return eent[0][2], threshold

    def on_select(self, child, length):
        # V_n <- max(V_n, Smin_n) + L/r_n, with max(V_n, Smin_n) already
        # computed as the eligibility threshold by the paired ``select``.
        node = self.node
        dt = length * node.inv_rate
        node.virtual = self._threshold + dt
        node.reference += dt

    def reset(self):
        self._eligible.clear()
        self._ineligible.clear()
        self._threshold = 0

    def snapshot(self):
        return {
            "eligible": self._eligible.snapshot(lambda c: c.name),
            "ineligible": self._ineligible.snapshot(lambda c: c.name),
            "threshold": self._threshold,
        }

    def restore(self, snap, nodes):
        self._eligible.restore(snap["eligible"], nodes.__getitem__)
        self._ineligible.restore(snap["ineligible"], nodes.__getitem__)
        self._threshold = snap["threshold"]


class WFQNodePolicy(NodePolicy):
    """SFF with the practical packet-backlog GPS virtual time.

    V advances at slope ``1 / sum(phi of headed children)`` with respect to
    the node's reference time — the classic implementable approximation of
    V_GPS (the exact fluid V is unavailable inside a hierarchy; Section 2.2).
    No eligibility test: this is what gives H-WFQ its O(N)-packet WFI and
    the delay spikes of Figures 4-7.
    """

    name = "wfq"

    def __init__(self, node):
        super().__init__(node)
        self._finishes = IndexedHeap()  # headed children, key = finish tag
        total = sum(c.share for c in node.children)
        self._phi = {c: c.share / total for c in node.children}
        self._active_phi = 0

    def child_head_set(self, child):
        if child not in self._finishes:
            self._active_phi += self._phi[child]
        self._finishes.push_or_update(
            child, (child.finish_tag, child.child_index)
        )

    def child_head_cleared(self, child):
        if self._finishes.discard(child):
            self._active_phi -= self._phi[child]
            if not self._finishes:
                self._active_phi = 0  # kill numeric residue

    def select(self):
        if not self._finishes:
            return None
        return self._finishes.peek_item()

    def on_select(self, child, length):
        node = self.node
        dt = length * node.inv_rate
        node.reference += dt
        if self._active_phi > 0:
            node.virtual += dt / self._active_phi

    def reset(self):
        self._finishes.clear()
        self._active_phi = 0

    def reconfigure(self):
        node = self.node
        total = sum(c.share for c in node.children)
        self._phi = {c: c.share / total for c in node.children}
        self._active_phi = sum(
            self._phi[c] for c in node.children if c in self._finishes
        )

    def snapshot(self):
        return {
            "finishes": self._finishes.snapshot(lambda c: c.name),
            "active_phi": self._active_phi,
        }

    def restore(self, snap, nodes):
        self._finishes.restore(snap["finishes"], nodes.__getitem__)
        node = self.node
        total = sum(c.share for c in node.children)
        self._phi = {c: c.share / total for c in node.children}
        self._active_phi = snap["active_phi"]


class SCFQNodePolicy(NodePolicy):
    """SFF with the self-clocked virtual time (V = finish tag in service)."""

    name = "scfq"

    def __init__(self, node):
        super().__init__(node)
        self._finishes = IndexedHeap()

    def child_head_set(self, child):
        self._finishes.push_or_update(
            child, (child.finish_tag, child.child_index)
        )

    def child_head_cleared(self, child):
        self._finishes.discard(child)

    def select(self):
        if not self._finishes:
            return None
        return self._finishes.peek_item()

    def on_select(self, child, length):
        node = self.node
        node.virtual = child.finish_tag
        node.reference += length * node.inv_rate

    def reset(self):
        self._finishes.clear()

    def snapshot(self):
        return {"finishes": self._finishes.snapshot(lambda c: c.name)}

    def restore(self, snap, nodes):
        self._finishes.restore(snap["finishes"], nodes.__getitem__)


class SFQNodePolicy(NodePolicy):
    """Smallest-start-tag-first with V = start tag in service."""

    name = "sfq"

    def __init__(self, node):
        super().__init__(node)
        self._starts = IndexedHeap()

    def child_head_set(self, child):
        self._starts.push_or_update(
            child, (child.start_tag, child.child_index)
        )

    def child_head_cleared(self, child):
        self._starts.discard(child)

    def select(self):
        if not self._starts:
            return None
        return self._starts.peek_item()

    def on_select(self, child, length):
        node = self.node
        node.virtual = child.start_tag
        node.reference += length * node.inv_rate

    def reset(self):
        self._starts.clear()

    def snapshot(self):
        return {"starts": self._starts.snapshot(lambda c: c.name)}

    def restore(self, snap, nodes):
        self._starts.restore(snap["starts"], nodes.__getitem__)


POLICIES = {
    "wf2qplus": WF2QPlusNodePolicy,
    "wfq": WFQNodePolicy,
    "scfq": SCFQNodePolicy,
    "sfq": SFQNodePolicy,
}


# ----------------------------------------------------------------------
# The hierarchical scheduler
# ----------------------------------------------------------------------
class HPFQScheduler(PacketScheduler):
    """H-PFQ server over a :class:`HierarchySpec`.

    Parameters
    ----------
    spec:
        The link-sharing tree.  Leaf names become the flow ids accepted by
        :meth:`enqueue`.
    rate:
        Link rate in bits per second.
    policy:
        Name in :data:`POLICIES` (or a NodePolicy subclass) applied at every
        interior node — ``"wf2qplus"`` builds H-WF2Q+, ``"wfq"`` H-WFQ, etc.
    policy_overrides:
        Optional mapping ``node name -> policy`` for mixed hierarchies.
    """

    def __init__(self, spec, rate, policy="wf2qplus", policy_overrides=None):
        super().__init__(rate)
        if not isinstance(spec, HierarchySpec):
            spec = HierarchySpec(spec)
        self.spec = spec
        overrides = dict(policy_overrides or {})
        self._nodes = {}
        self._build(spec.root, None)
        self._root = self._nodes[spec.root.name]
        for node_obj in self._nodes.values():
            if not node_obj.is_leaf:
                chosen = overrides.pop(node_obj.name, policy)
                pol = self._resolve_policy(chosen)(node_obj)
                # Exact type check on purpose: a subclass with overridden
                # select/on_select must not be silently bypassed by the
                # fused kernel.
                pol.fast = type(pol) is WF2QPlusNodePolicy
                node_obj.policy = pol
        if overrides:
            raise HierarchyError(
                f"policy overrides for unknown interior nodes: {sorted(overrides)}"
            )
        #: Default policy class; interior nodes of subtrees attached live
        #: (attach_subtree) get instances of this.
        self._policy_factory = self._resolve_policy(policy)
        self.policy_name = self._resolve_policy(policy).name
        self.name = f"H-PFQ[{self.policy_name}]"
        # Leaves double as flows of the base scheduler.
        for leaf_spec in spec.leaves:
            state = None
            config = self.add_flow(leaf_spec.name, leaf_spec.share)
            state = self._flows[config.flow_id]
            node_obj = self._nodes[leaf_spec.name]
            node_obj.flow_state = state
        #: The packet handed to the link by the previous dequeue; its
        #: RESET-PATH runs when the transmission completes.
        self._in_flight = None
        #: Busy-period epoch for the lazy whole-tree reset: bumped when the
        #: system drains; a node whose ``epoch`` is stale zeroes its own
        #: tags and virtual time on first touch, so the boundary costs O(1)
        #: instead of O(nodes).
        self._tree_epoch = 0
        self._flatten()

    @staticmethod
    def _resolve_policy(policy):
        if isinstance(policy, str):
            try:
                return POLICIES[policy]
            except KeyError:
                raise ConfigurationError(
                    f"unknown node policy {policy!r}; choose from {sorted(POLICIES)}"
                ) from None
        if isinstance(policy, type) and issubclass(policy, NodePolicy):
            return policy
        raise ConfigurationError(f"not a node policy: {policy!r}")

    def _build(self, spec_node, parent):
        rate = self.spec.guaranteed_rate(spec_node.name, self.rate)
        node_obj = _HNode(spec_node.name, spec_node.share, rate, parent,
                          spec_node.is_leaf)
        self._nodes[spec_node.name] = node_obj
        if parent is not None:
            node_obj.child_index = len(parent.children)
            parent.children.append(node_obj)
        for child in spec_node.children:
            self._build(child, node_obj)

    def _flatten(self):
        """Assign dense preorder ``node_id`` ids and node→root ``path`` tuples.

        Rates, shares and the topology are fixed at construction, so the
        ancestor chain of every node can be materialised once; the ARRIVE /
        RESTART / RESET walks then iterate a tuple of direct references
        instead of chasing ``parent`` pointers per packet.
        """
        order = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(node.children))
        for node_id, node in enumerate(order):
            node.node_id = node_id
            chain = []
            cursor = node
            while cursor is not None:
                chain.append(cursor)
                cursor = cursor.parent
            node.path = tuple(chain)

    # ------------------------------------------------------------------
    # Lazy busy-period reset
    # ------------------------------------------------------------------
    def _touch(self, node):
        """Zero a node's stale per-busy-period state on first use.

        The paper's semantics zero every node's tags and virtual time when
        the system drains; doing that eagerly is O(nodes) per boundary.
        Instead the drain bumps ``_tree_epoch`` and each node re-zeroes
        itself here the first time the new busy period reaches it.
        ``head``/``busy``/``active_child`` need no lazy handling: the final
        RESET-PATH already cleared them on every node, and the per-node
        policy heaps drained with them.  ``reference`` is cumulative and
        deliberately survives (W_n(0, t)).
        """
        if node.epoch != self._tree_epoch:
            node.start_tag = 0
            node.finish_tag = 0
            node.virtual = 0
            node.epoch = self._tree_epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_virtual_time(self, name):
        node = self._nodes[name]
        self._touch(node)
        return node.virtual

    def node_reference_time(self, name):
        return self._nodes[name].reference

    def node_service(self, name):
        """W_n(0, t): bits selected for service through node ``name``."""
        node_obj = self._nodes[name]
        return node_obj.reference * node_obj.rate

    def guaranteed_rate(self, flow_id):
        """r_i of a node or leaf: its phi-fraction of the link rate."""
        return self._nodes[flow_id].rate

    def system_virtual_time(self, now=None):
        """The root node's virtual time (the hierarchy-wide clock)."""
        root = self._root
        self._touch(root)
        return root.virtual

    # ------------------------------------------------------------------
    # Observability (emission sites are guarded by the callers)
    # ------------------------------------------------------------------
    def _emit_head(self, node, child_name=None):
        """Emit a NodeRestart for a node that just adopted a head packet."""
        if node.parent is not None:
            start, finish = node.start_tag, node.finish_tag
            rate = node.rate
        else:
            start = finish = rate = None  # the root has no logical queue
        self._obs.emit(NodeRestart(
            self._clock, self.name, node.name, child_name, start, finish,
            None if node.is_leaf else node.virtual,
            node.head.length if node.head is not None else None, rate))

    # ------------------------------------------------------------------
    # ARRIVE
    # ------------------------------------------------------------------
    def enqueue(self, packet, now=None):
        # A transmission that ended strictly before this arrival must run
        # its RESET-PATH first (and see the pre-arrival queue state), so the
        # new packet is tagged under the correct busy/idle rule.
        arrival = now
        if arrival is None:
            arrival = packet.arrival_time
        if arrival is None:
            arrival = self._clock
        if self._in_flight is not None and arrival >= self._free_at:
            self._complete_transmission()
        return super().enqueue(packet, now=arrival)

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        leaf = self._nodes[packet.flow_id]
        if leaf.head is not None:
            return  # logical queue busy; the packet waits in the FIFO
        path = leaf.path
        parent = path[1]
        epoch = self._tree_epoch
        if leaf.epoch != epoch:
            leaf.start_tag = 0
            leaf.finish_tag = 0
            leaf.virtual = 0
            leaf.epoch = epoch
        if parent.epoch != epoch:
            parent.start_tag = 0
            parent.finish_tag = 0
            parent.virtual = 0
            parent.epoch = epoch
        leaf.head = packet
        start = leaf.finish_tag
        if parent.virtual > start:
            start = parent.virtual
        leaf.start_tag = start
        leaf.finish_tag = start + packet.length * leaf.inv_rate
        if self._obs is None and not parent.busy and parent.policy.fast:
            # Defer the head-set into the parent's fused re-selection.
            self._restart_path(path, 1, leaf)
            return
        parent.policy.child_head_set(leaf)
        if self._obs is not None:
            self._emit_head(leaf)
        if not parent.busy:
            self._restart_path(path, 1, None)

    # ------------------------------------------------------------------
    # RESTART-NODE
    # ------------------------------------------------------------------
    def _restart(self, node):
        """RESTART-NODE at ``node`` (cold-path wrapper over the kernel)."""
        self._restart_path(node.path, 0, None)

    def _restart_path(self, path, index, rekeyed):
        """Iterative bottom-up RESTART along ``path[index:]``.

        ``rekeyed`` is a child of ``path[index]`` whose head/tags were just
        refreshed but not yet pushed into its parent's policy heaps: at
        fused (WF2Q+, unobserved) nodes the push rides along inside
        :meth:`WF2QPlusNodePolicy.reselect`, saving a separate classify +
        promote round trip per level.  With an observability sink attached
        every node takes the generic select/on_select path, so the emitted
        event stream is identical to the reference implementation.
        """
        obs = self._obs
        epoch = self._tree_epoch
        n = len(path)
        while index < n:
            node = path[index]
            parent = node.parent
            if node.epoch != epoch:
                node.start_tag = 0
                node.finish_tag = 0
                node.virtual = 0
                node.epoch = epoch
            if parent is not None and parent.epoch != epoch:
                parent.start_tag = 0
                parent.finish_tag = 0
                parent.virtual = 0
                parent.epoch = epoch
            pol = node.policy
            if obs is None and pol.fast:
                child, threshold = pol.reselect(rekeyed)
            else:
                if rekeyed is not None:
                    pol.child_head_set(rekeyed)
                child = pol.select()
                threshold = None
            rekeyed = None
            if child is not None:
                node.active_child = child
                head = child.head
                node.head = head
                dt = head.length * node.inv_rate
                if parent is not None:
                    if node.busy:
                        start = node.finish_tag
                    else:
                        start = node.finish_tag
                        if parent.virtual > start:
                            start = parent.virtual
                    node.start_tag = start
                    node.finish_tag = start + dt
                node.busy = True
                if threshold is not None:
                    # Fused on_select: V_n <- max(V_n, Smin_n) + L/r_n,
                    # with max(V, Smin) already computed as the threshold.
                    node.virtual = threshold + dt
                    node.reference += dt
                else:
                    pol.on_select(child, head.length)
                if obs is not None:
                    self._emit_head(node, child.name)
                    obs.emit(VirtualTimeUpdate(
                        self._clock, self.name, node.name, node.virtual))
                if parent is None:
                    return
                if parent.head is not None:
                    parent.policy.child_head_set(node)
                    return
                if obs is None and parent.policy.fast:
                    rekeyed = node  # defer into the parent's reselect
                else:
                    parent.policy.child_head_set(node)
            else:
                node.active_child = None
                node.busy = False
                if parent is None:
                    return
                parent.policy.child_head_cleared(node)
                if parent.head is not None:
                    return
            index += 1

    # ------------------------------------------------------------------
    # RESET-PATH
    # ------------------------------------------------------------------
    def _complete_transmission(self):
        """Run RESET-PATH for the packet returned by the previous dequeue."""
        self._in_flight = None
        root = self._root
        # root.head is the in-flight packet: an ARRIVE cannot displace a
        # busy root's head, so its flow id names the serving leaf and the
        # active root->leaf chain is exactly the leaf's path reversed.
        leaf = self._nodes[root.head.flow_id]
        path = leaf.path
        for node in path:
            node.head = None
            node.active_child = None
        # The physical packet was already popped by the base dequeue.
        queue = leaf.flow_state.queue
        parent = path[1]
        rekeyed = None
        obs = self._obs
        if queue:
            head = queue[0]
            leaf.head = head
            leaf.start_tag = leaf.finish_tag
            leaf.finish_tag = leaf.start_tag + head.length * leaf.inv_rate
            if obs is None and parent.policy.fast:
                rekeyed = leaf
            else:
                parent.policy.child_head_set(leaf)
                if obs is not None:
                    self._emit_head(leaf)
        else:
            parent.policy.child_head_cleared(leaf)
        self._restart_path(path, 1, rekeyed)
        if root.head is None:
            if self._backlog_packets > 0:  # pragma: no cover - safety net
                raise HierarchyError(
                    "H-PFQ invariant violated: backlog but no selection after reset"
                )
            # The system drained: the busy period is over; the next one must
            # start fresh (V = T = tags = 0).  The final RESET-PATH already
            # cleared every head/busy/active_child and drained the policy
            # heaps, so only tags and virtual times remain stale — bump the
            # epoch and let each node zero itself lazily in _touch (O(1)
            # boundary instead of O(nodes)).  Reference times are left
            # alone: W_n(0, t) is cumulative.
            self._tree_epoch += 1
            if self._obs is not None:
                # Observers expect explicit reset events, so pay the eager
                # sweep only when someone is watching.
                self._full_reset()

    def _full_reset(self):
        epoch = self._tree_epoch
        for node_obj in self._nodes.values():
            node_obj.head = None
            node_obj.start_tag = 0
            node_obj.finish_tag = 0
            node_obj.virtual = 0
            node_obj.busy = False
            node_obj.active_child = None
            node_obj.epoch = epoch
            if node_obj.policy is not None:
                node_obj.policy.reset()
        if self._obs is not None:
            for node_obj in self._nodes.values():
                if not node_obj.is_leaf:
                    self._obs.emit(VirtualTimeUpdate(
                        self._clock, self.name, node_obj.name, 0,
                        reset=True))

    # ------------------------------------------------------------------
    # Dequeue integration with the PacketScheduler template
    # ------------------------------------------------------------------
    def _select_flow(self, now):
        if self._in_flight is not None:
            self._complete_transmission()
        head = self._root.head
        if head is None:
            raise HierarchyError(
                "H-PFQ invariant violated: backlog exists but no selection"
            )
        return self._flows[head.flow_id]

    def _on_dequeued(self, state, packet, now):
        if packet is not self._root.head:  # pragma: no cover - safety net
            raise HierarchyError(
                "H-PFQ invariant violated: dequeued packet is not the root head"
            )
        # Leaves accrue reference time here (interior nodes accrue at
        # selection inside their parent's on_select).
        leaf = self._nodes[packet.flow_id]
        leaf.reference += packet.length / leaf.rate
        self._in_flight = packet

    def _make_record(self, state, packet, now, finish):
        leaf = self._nodes[packet.flow_id]
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=leaf.start_tag,
            virtual_finish=leaf.finish_tag,
        )

    def _on_system_empty(self, now):
        # The final RESET-PATH happens lazily (next enqueue/dequeue); the
        # tree still references the in-flight packet until then, which is
        # exactly the paper's model of a packet in transmission.
        pass

    # ------------------------------------------------------------------
    # Batch operations (amortized chunk kernels)
    # ------------------------------------------------------------------
    def enqueue_batch(self, packets, now=None):
        if (type(self) is not HPFQScheduler or self._obs is not None
                or self._buffer_limits or self._shared_limit is not None
                or not kernel_sized(packets)):
            return PacketScheduler.enqueue_batch(self, packets, now)
        # A packet arriving at a leaf whose logical head is committed
        # needs only the FIFO append (ARRIVE early-returns); everything
        # else — a new head, the pending RESET-PATH, odd lengths/times —
        # flushes the hoisted counters and takes the exact per-packet
        # path.  At most one RESET-PATH can trigger per batch (no
        # dequeues happen in between), so the in-flight test degenerates
        # to a None check after the first packet.
        flows = self._flows
        nodes = self._nodes
        backlogged = self._backlogged
        clock = self._clock
        backlog = self._backlog_packets
        backlog_bits = self._backlog_bits
        arrivals = enqueues = 0
        accepted = 0
        enqueue = self.enqueue
        for packet in packets:
            t = packet.arrival_time if now is None else now
            if t is None:
                t = clock
            if self._in_flight is not None and t >= self._free_at:
                # RESET-PATH's drained branch reads _backlog_packets.
                self._backlog_packets = backlog
                self._complete_transmission()
            state = flows.get(packet.flow_id)
            length = packet.length
            if (state is None or t < clock
                    or nodes[packet.flow_id].head is None
                    or (length <= 0 if type(length) is int
                        else type(length) is not float
                        or not 0.0 < length < _INF)):
                self._clock = clock
                self._arrivals += arrivals
                self._enqueues += enqueues
                self._backlog_packets = backlog
                self._backlog_bits = backlog_bits
                arrivals = enqueues = 0
                if enqueue(packet, t):
                    accepted += 1
                clock = self._clock
                backlog = self._backlog_packets
                backlog_bits = self._backlog_bits
                continue
            if packet.arrival_time is None:
                packet.arrival_time = t
            clock = t
            arrivals += 1
            queue = state.queue
            if not queue:
                # The leaf's last packet is still in flight (RESET-PATH is
                # lazy), so its committed head masks an empty FIFO; the
                # flow re-enters the backlogged index here.
                backlogged[packet.flow_id] = True
            queue.append(packet)
            state.bits_queued += length
            backlog += 1
            backlog_bits += length
            enqueues += 1
            accepted += 1
        self._clock = clock
        self._arrivals += arrivals
        self._enqueues += enqueues
        self._backlog_packets = backlog
        self._backlog_bits = backlog_bits
        self._count_batch(accepted)
        return accepted

    def dequeue_batch(self, n, now=None):
        if (type(self) is HPFQScheduler and self._obs is None
                and n >= BATCH_KERNEL_MIN):
            return self._dequeue_chunk(n, None, now, [])
        return PacketScheduler.dequeue_batch(self, n, now)

    def drain_until(self, limit, now=None, into=None):
        if type(self) is HPFQScheduler and self._obs is None:
            return self._dequeue_chunk(
                self.drain_chunk, limit, now, [] if into is None else into)
        return PacketScheduler.drain_until(self, limit, now, into)

    def _dequeue_chunk(self, n, limit, now, records):
        """Amortized dequeue: base bookkeeping and the select/record/
        reference accrual inlined; the tree walks themselves stay in the
        iterative RESET-PATH / RESTART kernels.  Shared contract as
        :meth:`repro.core.wf2qplus.WF2QPlusScheduler._dequeue_chunk`.
        """
        backlog = self._backlog_packets
        if backlog == 0 or (n is not None and n <= 0):
            self._count_batch(0)
            return records
        clock = self._clock
        if now is None:
            now = clock if clock > self._free_at else self._free_at
        elif now < clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {clock!r}"
            )
        if n is None:
            n = backlog
        flows = self._flows
        nodes = self._nodes
        backlogged = self._backlogged
        rate = self._rate
        root = self._root
        complete = self._complete_transmission
        backlog_bits = self._backlog_bits
        append = records.append
        count = 0
        try:
            while count < n and backlog:
                if self._in_flight is not None:
                    # RESET-PATH's drained branch reads _backlog_packets.
                    self._backlog_packets = backlog
                    complete()
                head = root.head
                if head is None:  # pragma: no cover - safety net
                    raise HierarchyError(
                        "H-PFQ invariant violated: backlog exists but no "
                        "selection"
                    )
                flow_id = head.flow_id
                state = flows[flow_id]
                queue = state.queue
                packet = queue.popleft()
                if packet is not head:  # pragma: no cover - safety net
                    raise HierarchyError(
                        "H-PFQ invariant violated: dequeued packet is not "
                        "the root head"
                    )
                length = packet.length
                state.bits_queued -= length
                backlog -= 1
                backlog_bits -= length
                if not queue:
                    del backlogged[flow_id]
                finish = now + length / rate
                leaf = nodes[flow_id]
                append(ScheduledPacket(packet, now, finish,
                                       leaf.start_tag, leaf.finish_tag))
                leaf.reference += length / leaf.rate
                self._in_flight = packet
                count += 1
                clock = now
                now = finish
                if limit is not None and finish >= limit:
                    break
        finally:
            self._clock = clock
            self._free_at = now if count else self._free_at
            self._backlog_packets = backlog
            self._backlog_bits = backlog_bits
            self._dequeues += count
            self._count_batch(count)
        return records

    def sync(self, now=None):
        """Run a pending RESET-PATH whose transmission has completed.

        The tree defers the final RESET of a busy period until the next
        enqueue/dequeue; a caller about to test quiescence (e.g. a
        detach_subtree retry after the system drained) settles it here.
        """
        if now is None:
            now = self._free_at
        if self._in_flight is not None and now >= self._free_at:
            if now > self._clock:
                self._clock = now
            self._complete_transmission()

    # ------------------------------------------------------------------
    # Live reconfiguration (share renegotiation, rate changes, topology)
    # ------------------------------------------------------------------
    def _rebase_subtree(self, top):
        """Recompute guaranteed rates below ``top`` and rebase derived state.

        Called after a share, link-rate or topology change.  For every
        descendant whose rate changed:

        * ``inv_rate`` is refreshed;
        * the cumulative reference time follows Section 4.1's construction
          ``T_n = W_n(0, t) / r_n``: the work already received is an
          invariant of the change, so ``T' = T * r_old / r_new``;
        * a headed child keeps its start tag (service owed is a baseline,
          exactly as in flat WF2Q+'s :meth:`set_share`) and gets its finish
          tag recomputed as ``F = S + L / r_new``, keeping eq. (27)'s
          ``min S_i`` arm and the SEFF eligibility test consistent.

        Policy heaps below ``top`` are then rebuilt so every key reflects
        the fresh tags, child indices and (for WFQ nodes) phi weights.
        Cold path: O(subtree), which a reconfiguration is allowed to cost.
        """
        spec = self.spec
        rate = self._rate
        stack = list(top.children)
        while stack:
            node_obj = stack.pop()
            node_obj.share = spec[node_obj.name].share
            r_new = spec.guaranteed_rate(node_obj.name, rate)
            if r_new != node_obj.rate:
                r_old = node_obj.rate
                node_obj.rate = r_new
                node_obj.inv_rate = 1 / r_new
                if node_obj.reference:
                    node_obj.reference = node_obj.reference * r_old / r_new
                if node_obj.head is not None:
                    node_obj.finish_tag = (
                        node_obj.start_tag
                        + node_obj.head.length * node_obj.inv_rate
                    )
            stack.extend(node_obj.children)
        stack = [top]
        while stack:
            node_obj = stack.pop()
            if not node_obj.is_leaf:
                node_obj.policy.rebuild()
                stack.extend(node_obj.children)

    def set_share(self, name, share):
        """Renegotiate the share of any non-root node (leaf or interior).

        Rates of the node's whole sibling group (and their descendants)
        are re-derived from the spec and rebased by :meth:`_rebase_subtree`
        mid-busy-period.
        """
        spec_node = self.spec[name]  # raises HierarchyError when unknown
        node_obj = self._nodes[name]
        if node_obj is self._root:
            raise ConfigurationError(
                "the root's share is meaningless (it has no siblings)"
            )
        if share <= 0:
            raise ConfigurationError(
                f"node {name!r}: share must be positive, got {share!r}"
            )
        if share == spec_node.share:
            return
        spec_node.share = share
        if node_obj.is_leaf:
            from repro.core.flow import FlowConfig
            state = self._flows[name]
            self._total_share += share - state.config.share
            state.config = FlowConfig(name, share, name=state.config.name)
        self._share_gen += 1
        self._rebase_subtree(node_obj.parent)

    def _on_reconfigured(self):
        # set_link_rate already updated self.rate; propagate it down.
        root = self._root
        r_new = self._rate
        if r_new != root.rate:
            r_old = root.rate
            root.rate = r_new
            root.inv_rate = 1 / r_new
            if root.reference:
                root.reference = root.reference * r_old / r_new
        self._rebase_subtree(root)

    def attach_subtree(self, parent_name, subtree):
        """Graft a :class:`NodeSpec` subtree under a live interior node.

        New interior nodes receive the scheduler's default policy; new
        leaves become enqueue-able flows immediately.  Existing siblings'
        rates shrink (their normalised shares change) and are rebased.
        """
        if not isinstance(subtree, NodeSpec):
            raise ConfigurationError(f"not a NodeSpec: {subtree!r}")
        parent = self._nodes.get(parent_name)
        if parent is None:
            raise HierarchyError(f"unknown node: {parent_name!r}")
        self.spec.attach(parent_name, subtree)  # validates names/leafness
        self._build(subtree, parent)
        factory = self._policy_factory
        epoch = self._tree_epoch
        stack = [self._nodes[subtree.name]]
        while stack:
            node_obj = stack.pop()
            node_obj.epoch = epoch
            if node_obj.is_leaf:
                config = self.add_flow(node_obj.name, node_obj.share)
                node_obj.flow_state = self._flows[config.flow_id]
            else:
                pol = factory(node_obj)
                pol.fast = type(pol) is WF2QPlusNodePolicy
                node_obj.policy = pol
            stack.extend(node_obj.children)
        self._flatten()
        self._rebase_subtree(parent)
        return subtree

    def detach_subtree(self, name):
        """Prune an *idle* subtree; returns its :class:`NodeSpec`.

        Every node in the subtree must be quiescent — no logical head
        (which also covers the in-flight packet's active path) and no
        queued packets — so no tag state is destroyed.  Remaining
        siblings' child indices are compacted and their rates rebased.
        """
        node_obj = self._nodes.get(name)
        if node_obj is None:
            raise HierarchyError(f"unknown node: {name!r}")
        if node_obj is self._root:
            raise HierarchyError("cannot detach the root")
        names = []
        stack = [node_obj]
        while stack:
            cursor = stack.pop()
            names.append(cursor.name)
            if cursor.head is not None or (
                    cursor.flow_state is not None and cursor.flow_state.queue):
                raise ConfigurationError(
                    f"cannot detach busy subtree {name!r}: node "
                    f"{cursor.name!r} still has queued or in-flight work"
                )
            stack.extend(cursor.children)
        parent = node_obj.parent
        spec_node = self.spec.detach(name)  # validates root / last child
        parent.policy.child_head_cleared(node_obj)  # paranoia: idle anyway
        parent.children.remove(node_obj)
        for position, sibling in enumerate(parent.children):
            sibling.child_index = position
        for node_name in names:
            pruned = self._nodes.pop(node_name)
            if pruned.is_leaf:
                self.remove_flow(node_name)
        self._flatten()
        self._rebase_subtree(parent)
        return spec_node

    # ------------------------------------------------------------------
    # Graceful degradation: eviction safety in a hierarchy
    # ------------------------------------------------------------------
    # A leaf's queue head may be *committed*: adopted as the logical head
    # of the leaf (and possibly of ancestors up to the root).  Evicting it
    # would orphan tag state along the whole path, so drop-front starts at
    # slot 1 in that case and longest-queue-drop skips the flow when the
    # committed head is its only packet.  When the head packet is in
    # flight (popped from the queue but still referenced by the tree),
    # queue[0] is untagged and safely evictable.  Evicted non-head packets
    # carry no tags in H-PFQ, so no _on_packet_evicted hook is needed.
    def _evictable_front_index(self, state):
        queue = state.queue
        if not queue:
            return None
        if self._nodes[state.flow_id].head is queue[0]:
            return 1 if len(queue) > 1 else None
        return 0

    def _evictable_tail_index(self, state):
        queue = state.queue
        if not queue:
            return None
        last = len(queue) - 1
        if last == 0 and self._nodes[state.flow_id].head is queue[0]:
            return None
        return last

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def _snapshot_extra(self):
        nodes = {}
        for name, node_obj in self._nodes.items():
            nodes[name] = {
                "share": node_obj.share,
                "rate": node_obj.rate,
                "head": None if node_obj.head is None else node_obj.head.uid,
                "start_tag": node_obj.start_tag,
                "finish_tag": node_obj.finish_tag,
                "virtual": node_obj.virtual,
                "reference": node_obj.reference,
                "busy": node_obj.busy,
                "active_child": (None if node_obj.active_child is None
                                 else node_obj.active_child.name),
                "epoch": node_obj.epoch,
                "policy": (None if node_obj.policy is None
                           else node_obj.policy.snapshot()),
            }
        return {
            "tree_epoch": self._tree_epoch,
            # The in-flight packet is in no queue (the base dequeue popped
            # it) but the tree still references it, so it travels in full.
            "in_flight": (None if self._in_flight is None
                          else self._in_flight.to_dict()),
            "nodes": nodes,
        }

    def _restore_extra(self, extra, uid_map):
        if set(extra["nodes"]) != set(self._nodes):
            mismatched = set(extra["nodes"]) ^ set(self._nodes)
            raise ConfigurationError(
                f"{self.name}: snapshot tree does not match this hierarchy "
                f"(mismatched nodes: {sorted(mismatched)})"
            )
        from repro.core.packet import Packet
        if extra["in_flight"] is not None:
            packet = Packet.from_dict(extra["in_flight"])
            uid_map[packet.uid] = packet
            self._in_flight = packet
        else:
            self._in_flight = None
        self._tree_epoch = extra["tree_epoch"]
        nodes = self._nodes
        for name, ns in extra["nodes"].items():
            node_obj = nodes[name]
            node_obj.share = ns["share"]
            self.spec[name].share = ns["share"]
            if ns["rate"] != node_obj.rate:
                node_obj.rate = ns["rate"]
                node_obj.inv_rate = 1 / ns["rate"]
            node_obj.head = (None if ns["head"] is None
                             else uid_map[ns["head"]])
            node_obj.start_tag = ns["start_tag"]
            node_obj.finish_tag = ns["finish_tag"]
            node_obj.virtual = ns["virtual"]
            node_obj.reference = ns["reference"]
            node_obj.busy = ns["busy"]
            node_obj.active_child = (None if ns["active_child"] is None
                                     else nodes[ns["active_child"]])
            node_obj.epoch = ns["epoch"]
        # Policies second: heap items resolve through the node table and
        # phi tables read the already-restored shares.
        for name, ns in extra["nodes"].items():
            if ns["policy"] is not None:
                nodes[name].policy.restore(ns["policy"], nodes)


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def make_hwf2qplus(spec, rate, policy_overrides=None):
    """H-WF2Q+ — the paper's proposed hierarchical scheduler."""
    return HPFQScheduler(spec, rate, policy="wf2qplus",
                         policy_overrides=policy_overrides)


def make_hwfq(spec, rate, policy_overrides=None):
    """H-WFQ — the large-WFI baseline the paper argues against."""
    return HPFQScheduler(spec, rate, policy="wfq",
                         policy_overrides=policy_overrides)


def make_hscfq(spec, rate, policy_overrides=None):
    """H-SCFQ — hierarchical self-clocked fair queueing."""
    return HPFQScheduler(spec, rate, policy="scfq",
                         policy_overrides=policy_overrides)


def make_hsfq(spec, rate, policy_overrides=None):
    """H-SFQ — hierarchical start-time fair queueing."""
    return HPFQScheduler(spec, rate, policy="sfq",
                         policy_overrides=policy_overrides)
