"""Weighted Fair Queueing (WFQ / PGPS) — Demers, Keshav & Shenker;
Parekh & Gallager.

WFQ applies the *Smallest virtual Finish time First* (SFF) policy over the
exact GPS virtual finish tags: when the link is free it transmits, among all
queued packets, the one that would finish first in the corresponding fluid
GPS system assuming no further arrivals (Property 1 makes this a consistent
order).

The implementation embeds an exact :class:`~repro.core.gps.GPSFluidSystem`,
mirroring the paper's observation that WFQ's virtual time has an O(N) worst
case: one ``advance`` may process O(N) GPS session-empty events.

WFQ's known weakness — the reason this paper exists — is its Worst-case Fair
Index of O(N) packets: a session may run up to ``N/2`` packets *ahead* of its
GPS service (Section 3.1, Figure 2), which makes hierarchies built from WFQ
(H-WFQ) exhibit large delay spikes.
"""

from repro.core.gps import GPSFluidSystem
from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.dstruct.heap import IndexedHeap
from repro.errors import ConfigurationError

__all__ = ["WFQScheduler", "ExactGPSLimitsMixin"]


class ExactGPSLimitsMixin:
    """Robustness limits shared by the exact-GPS reference schedulers.

    The embedded exact GPS fluid reference cannot be rebased
    mid-busy-period (its per-session service curves assume fixed shares
    and rate) nor have queued packets removed from under it, so live
    reconfiguration, evicting drop policies and checkpointing are refused
    explicitly rather than silently desynchronised.  WF2Q+ is the
    production path and supports all three.
    """

    _GPS_LIMIT = ("the exact-GPS reference schedulers (WFQ, WF2Q) do not "
                  "support {what}; use WF2Q+ (the self-contained virtual "
                  "time) instead")

    def set_share(self, flow_id, share):
        raise ConfigurationError(
            f"{self.name}: "
            + self._GPS_LIMIT.format(what="live share changes"))

    def set_link_rate(self, rate):
        raise ConfigurationError(
            f"{self.name}: "
            + self._GPS_LIMIT.format(what="live rate changes"))

    def set_buffer_limit(self, flow_id, packets, policy="tail"):
        if packets is not None and policy != "tail":
            raise ConfigurationError(
                f"{self.name}: "
                + self._GPS_LIMIT.format(what="evicting drop policies"))
        super().set_buffer_limit(flow_id, packets, policy)

    def set_shared_buffer(self, packets, policy="tail"):
        if packets is not None and policy != "tail":
            raise ConfigurationError(
                f"{self.name}: "
                + self._GPS_LIMIT.format(what="evicting drop policies"))
        super().set_shared_buffer(packets, policy)

    def snapshot(self):
        raise ConfigurationError(
            f"{self.name}: "
            + self._GPS_LIMIT.format(what="checkpoint/restore"))


class WFQScheduler(ExactGPSLimitsMixin, PacketScheduler):
    """One-level WFQ server with exact GPS virtual time (SFF policy)."""

    name = "WFQ"

    def __init__(self, rate):
        super().__init__(rate)
        self._gps = GPSFluidSystem(rate)
        #: flow_id -> parallel deque of GPSPacket tag records is avoided by
        #: keying on packet uid: uid -> GPSPacket.
        self._tags = {}
        #: Heap of flows keyed by head-packet virtual finish tag.
        self._head_heap = IndexedHeap()

    # -- registration ---------------------------------------------------
    def _on_flow_added(self, state):
        self._gps.add_flow(state.flow_id, state.share)

    # -- arrivals ---------------------------------------------------------
    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        gps_pkt = self._gps.arrive(state.flow_id, packet.length, now)
        self._tags[packet.uid] = gps_pkt
        if was_flow_empty:
            # Ties on the finish tag break by registration order, the
            # convention under which Figure 2's WFQ timeline is drawn.
            self._head_heap.push(
                state.flow_id, (gps_pkt.virtual_finish, state.index)
            )

    # -- service ----------------------------------------------------------
    def _select_flow(self, now):
        self._gps.advance(now)
        flow_id = self._head_heap.peek_item()
        return self._flows[flow_id]

    def _on_dequeued(self, state, packet, now):
        self._last_tags = self._tags.pop(packet.uid)
        heap = self._head_heap
        head = state.head()
        if heap.peek_item() == state.flow_id:
            # SFF serves the heap top; re-key it in a single sift.
            if head is not None:
                heap.replace_top(
                    state.flow_id,
                    (self._tags[head.uid].virtual_finish, state.index),
                )
            else:
                heap.pop()
        else:  # subclass with a different selection policy
            heap.remove(state.flow_id)
            if head is not None:
                heap.push(
                    state.flow_id,
                    (self._tags[head.uid].virtual_finish, state.index),
                )

    def _make_record(self, state, packet, now, finish):
        tags = self._tags[packet.uid]
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=tags.virtual_start,
            virtual_finish=tags.virtual_finish,
        )

    # -- introspection -----------------------------------------------------
    @property
    def gps(self):
        """The embedded fluid GPS reference (read-only use recommended)."""
        return self._gps

    def gps_virtual_time(self, now=None):
        return self._gps.virtual_time(now)

    def system_virtual_time(self, now=None):
        return self._gps.virtual_time(now)
