"""Exact event-driven simulation of the fluid H-GPS server (Section 2.2).

H-GPS distributes the link's capacity down the hierarchy: each backlogged
node receives service from its parent in proportion to its share *among the
backlogged siblings*, recursively, until the service reaches leaf queues.
A non-leaf node is backlogged iff some leaf descendant is backlogged
(eq. 8).  H-GPS has B-WFI = 0 — a packet arriving at an empty queue starts
receiving its guaranteed rate immediately — which is the gold standard the
packet H-PFQ servers are measured against.

Two tools live here:

* :class:`HGPSFluidSystem` — a true fluid simulation (arrivals add fluid to
  leaf queues; between events each backlogged leaf drains at its
  hierarchical fair rate).  Used for ideal service curves and as ground
  truth in tests.
* :func:`hierarchical_fair_rates` — the static allocation: given which
  leaves are greedy (always backlogged) and optional finite demands, compute
  each leaf's H-GPS rate by hierarchical waterfilling.  This generates the
  "ideal H-GPS bandwidth" curves of Figure 9(b), where the active set only
  changes at on/off source transitions.
"""

from repro.errors import HierarchyError, UnknownFlowError

__all__ = ["HGPSFluidSystem", "hierarchical_fair_rates"]


def hierarchical_fair_rates(spec, active_leaves, link_rate, demands=None):
    """Static H-GPS allocation by hierarchical waterfilling.

    Parameters
    ----------
    spec:
        A :class:`~repro.config.hierarchy_spec.HierarchySpec`.
    active_leaves:
        Iterable of leaf names that currently want bandwidth.
    link_rate:
        Capacity of the root link (bps).
    demands:
        Optional mapping ``leaf name -> maximum rate it can use``; leaves
        absent from the mapping are greedy (unbounded demand).  A leaf whose
        demand is below its fair share is capped at its demand and the
        excess is redistributed *within the hierarchy* (closest subtrees
        first), exactly as H-GPS does.

    Returns a dict ``leaf name -> rate`` (inactive leaves get 0).
    """
    active = set(active_leaves)
    for name in active:
        if name not in spec or not spec.is_leaf(name):
            raise HierarchyError(f"not a leaf: {name!r}")
    demands = dict(demands or {})
    rates = {name: 0 for name in spec.leaf_names()}

    def subtree_active(node):
        if node.is_leaf:
            return node.name in active
        return any(subtree_active(c) for c in node.children)

    def subtree_demand(node):
        """Total demand of active leaves below ``node`` (None = unbounded)."""
        if node.is_leaf:
            if node.name not in active:
                return 0
            return demands.get(node.name)  # None means greedy
        total = 0
        for child in node.children:
            d = subtree_demand(child)
            if d is None:
                return None
            total += d
        return total

    def allocate(node, capacity):
        if node.is_leaf:
            rates[node.name] = capacity
            return
        children = [c for c in node.children if subtree_active(c)]
        if not children:
            return
        # Waterfill among the active children: capped children keep their
        # demand, the rest split the remainder by share.
        remaining = capacity
        uncapped = list(children)
        allocation = {}
        while True:
            total_share = sum(c.share for c in uncapped)
            newly_capped = []
            for child in uncapped:
                fair = remaining * child.share / total_share
                demand = subtree_demand(child)
                if demand is not None and demand < fair:
                    allocation[child.name] = demand
                    newly_capped.append(child)
            if not newly_capped:
                for child in uncapped:
                    allocation[child.name] = remaining * child.share / total_share
                break
            for child in newly_capped:
                uncapped.remove(child)
                remaining -= allocation[child.name]
            if not uncapped:
                break
        for child in children:
            allocate(child, allocation.get(child.name, 0))

    if subtree_active(spec.root):
        allocate(spec.root, link_rate)
    return rates


class _FluidLeaf:
    __slots__ = ("name", "backlog", "service", "rate")

    def __init__(self, name):
        self.name = name
        self.backlog = 0   # bits of fluid queued
        self.service = 0   # cumulative bits served
        self.rate = 0      # current drain rate (recomputed at events)


class HGPSFluidSystem:
    """Fluid hierarchical GPS over a :class:`HierarchySpec`.

    ``arrive`` adds fluid to a leaf queue; ``advance`` runs the fluid
    dynamics forward.  Time inputs must be non-decreasing.
    """

    def __init__(self, spec, rate):
        if rate <= 0:
            raise HierarchyError(f"rate must be positive, got {rate!r}")
        self.spec = spec
        self.rate = rate
        self._leaves = {name: _FluidLeaf(name) for name in spec.leaf_names()}
        self._time = 0

    def _leaf(self, name):
        try:
            return self._leaves[name]
        except KeyError:
            raise UnknownFlowError(name) from None

    @property
    def time(self):
        return self._time

    @property
    def is_idle(self):
        return all(leaf.backlog == 0 for leaf in self._leaves.values())

    def backlog_of(self, name):
        return self._leaf(name).backlog

    # ------------------------------------------------------------------
    # Fluid dynamics
    # ------------------------------------------------------------------
    def _recompute_rates(self):
        """Set each leaf's drain rate by hierarchical share splitting."""
        for leaf in self._leaves.values():
            leaf.rate = 0

        def backlogged(node):
            if node.is_leaf:
                return self._leaves[node.name].backlog > 0
            return any(backlogged(c) for c in node.children)

        def distribute(node, capacity):
            if node.is_leaf:
                self._leaves[node.name].rate = capacity
                return
            children = [c for c in node.children if backlogged(c)]
            total = sum(c.share for c in children)
            for child in children:
                distribute(child, capacity * child.share / total)

        if backlogged(self.spec.root):
            distribute(self.spec.root, self.rate)

    def advance(self, now):
        """Run the fluid system forward to time ``now``."""
        if now < self._time:
            raise ValueError(f"time moved backwards: {now!r} < {self._time!r}")
        while self._time < now:
            self._recompute_rates()
            draining = [lf for lf in self._leaves.values() if lf.rate > 0]
            if not draining:
                self._time = now
                return
            # Next leaf-empty event.
            dt_empty = min(lf.backlog / lf.rate for lf in draining)
            dt = min(dt_empty, now - self._time)
            for lf in draining:
                served = lf.rate * dt
                lf.service += served
                lf.backlog -= served
                if lf.backlog < 0:
                    lf.backlog = 0  # numeric residue
            self._time = self._time + dt
            # Clamp leaves that emptied within numerical noise of the event.
            if dt == dt_empty:
                for lf in draining:
                    if lf.backlog > 0 and lf.backlog / lf.rate < 1e-15:
                        lf.backlog = 0

    def arrive(self, name, bits, now):
        """Add ``bits`` of fluid to leaf ``name`` at time ``now``."""
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits!r}")
        leaf = self._leaf(name)
        self.advance(now)
        leaf.backlog += bits

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def service_received(self, name, now=None):
        """Cumulative fluid service W_i(0, now) in bits."""
        if now is not None:
            self.advance(now)
        return self._leaf(name).service

    def current_rates(self):
        """Instantaneous drain rate of every leaf (after last advance)."""
        self._recompute_rates()
        return {name: lf.rate for name, lf in self._leaves.items()}

    def drain(self):
        """Advance until every queue is empty; returns the drain time."""
        while not self.is_idle:
            self._recompute_rates()
            draining = [lf for lf in self._leaves.values() if lf.rate > 0]
            dt = min(lf.backlog / lf.rate for lf in draining)
            self.advance(self._time + dt)
        return self._time
