"""Ablation variants of WF2Q+ — each removes exactly one design element.

DESIGN.md calls out two load-bearing choices in WF2Q+; these classes let
the benchmarks isolate them:

* :class:`NoEligibilityWF2QPlus` — keeps the eq. (27) virtual time but
  selects by *smallest finish tag over all backlogged flows* (SFF), i.e.
  drops the eligibility test.  This is "WFQ with the cheap virtual time":
  delay bounds survive, worst-case fairness does not (a high-share flow's
  queued burst runs ahead again, as in Figure 2).

* :class:`NoFloorWF2QPlus` — keeps SEFF but removes the ``min S_i`` arm of
  the virtual time, leaving pure slope-1 advance.  The floor is what
  guarantees an eligible packet always exists; without it the scheduler
  must fall back to the earliest start tag to stay work-conserving, and a
  newly backlogged session can start *behind* every existing session,
  hurting its short-term share.

These classes are for experiments; production code should use
:class:`~repro.core.wf2qplus.WF2QPlusScheduler`.
"""

from repro.core.wf2qplus import WF2QPlusScheduler

__all__ = ["NoEligibilityWF2QPlus", "NoFloorWF2QPlus"]


class NoEligibilityWF2QPlus(WF2QPlusScheduler):
    """WF2Q+ virtual time, SFF selection (ablates the eligibility test)."""

    name = "WF2Q+[no-SEFF]"
    # The whole point of this ablation is serving ineligible packets; don't
    # claim SEFF to the invariant checker.
    seff = False

    def _select_flow(self, now):
        self._advance_virtual(now)
        self._promote_eligible()
        # Smallest finish tag across *both* heaps: O(N) scan over the
        # ineligible side (fine for an ablation; a production SFF scheduler
        # would keep a finish-keyed heap instead).
        best = None
        if self._eligible:
            flow_id = self._eligible.peek_item()
            state = self._flows[flow_id]
            best = (state.finish_tag, state.index, state)
        for flow_id in self._ineligible:
            state = self._flows[flow_id]
            key = (state.finish_tag, state.index, state)
            if best is None or key[:2] < best[:2]:
                best = key
        return best[2]


class NoFloorWF2QPlus(WF2QPlusScheduler):
    """SEFF selection, slope-1-only virtual time (ablates the min-S arm)."""

    name = "WF2Q+[no-floor]"
    # Without the floor the work-conserving fallback can legitimately serve
    # an ineligible packet, so the SEFF claim does not hold here either.
    seff = False

    def _advance_virtual(self, now, floor=True):
        super()._advance_virtual(now, floor=False)

    def _select_flow(self, now):
        self._advance_virtual(now)
        self._promote_eligible()
        if self._eligible:
            return self._flows[self._eligible.peek_item()]
        # Without the floor nothing may be eligible; stay work-conserving
        # by serving the earliest start tag.
        flow_id = self._ineligible.peek_item()
        return self._flows[flow_id]
