"""FFQ — Frame-based Fair Queueing (Stilliadis & Verma, 1995; cited by the
paper as reference [18]).

FFQ is a *rate-proportional server*: a system potential ``P`` advances at
slope 1 in real time during busy periods (like WF2Q+'s virtual time), but
instead of tracking the exact minimum start tag it is recalibrated only at
**frame boundaries** — multiples of a fixed frame of potential ``T``.  When
every backlogged flow's head start potential has moved past the current
frame, the server jumps ``P`` to the frame boundary and opens the next
frame.  That keeps the potential-update O(1) while bounding how far ``P``
can lag the session tags (by one frame), which is what gives FFQ its delay
bound.

Tags are per-flow like the other self-clocked schedulers::

    S_i = max(F_i, P)  on becoming backlogged;  S_i = F_i otherwise
    F_i = S_i + L / r_i

and service is SFF (smallest finish potential first — no eligibility test),
so FFQ inherits the large WFI of all SFF schedulers: the paper lists it in
the related work as low-complexity but *not* worst-case fair.

The frame ``T`` must be at least ``max_i (L_i,max / r_i)`` so every packet's
tag span fits in a frame; the constructor takes an ``mtu`` and derives the
minimal valid frame from the registered shares (recomputed as flows are
added while idle).
"""

from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.dstruct.heap import IndexedHeap
from repro.errors import ConfigurationError

__all__ = ["FFQScheduler"]


class FFQScheduler(PacketScheduler):
    """Frame-based Fair Queueing with automatic minimal frame sizing."""

    name = "FFQ"

    def __init__(self, rate, mtu=12_000):
        super().__init__(rate)
        if mtu <= 0:
            raise ConfigurationError(f"mtu must be positive, got {mtu!r}")
        self.mtu = mtu
        self._potential = 0
        self._stamp = 0            # real time of the last potential update
        self._frame_end = None     # potential value where the frame closes
        self._heads = IndexedHeap()    # backlogged flows keyed by finish tag
        self._starts = IndexedHeap()   # backlogged flows keyed by start tag

    # ------------------------------------------------------------------
    # Frame machinery
    # ------------------------------------------------------------------
    def frame_size(self):
        """T = mtu / min guaranteed rate: one max packet of the slowest flow."""
        min_rate = min(
            self.guaranteed_rate(fid) for fid in self._flows
        )
        return self.mtu / min_rate

    def _advance_potential(self, now):
        self._potential += now - self._stamp
        self._stamp = now
        if self._frame_end is None:
            self._frame_end = self.frame_size()
        # Frame recalibration: once every backlogged head has started past
        # the current frame, jump the potential to the boundary and open
        # the next frame.  (O(1) amortised; the drift is at most a frame.)
        while self._starts and self._starts.min_key() >= self._frame_end:
            if self._potential < self._frame_end:
                self._potential = self._frame_end
            self._frame_end += self.frame_size()

    # ------------------------------------------------------------------
    # Tag bookkeeping
    # ------------------------------------------------------------------
    def _set_head_tags(self, state, was_flow_empty):
        head = state.head()
        if state.tag_epoch != self._tag_epoch:
            state.start_tag = 0  # lazy busy-period reset
            state.finish_tag = 0
            state.tag_epoch = self._tag_epoch
        if was_flow_empty:
            state.start_tag = max(state.finish_tag, self._potential)
        else:
            state.start_tag = state.finish_tag
        state.finish_tag = state.start_tag + head.length * self._inv_rate(state)
        self._heads.push_or_update(
            state.flow_id, (state.finish_tag, state.index))
        self._starts.push_or_update(state.flow_id, state.start_tag)

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        # Lazy O(1) busy-period boundary: epoch bump instead of an O(N)
        # sweep; flows zero their own stale tags on next read.
        if was_idle and now >= self._free_at:
            self._potential = 0
            self._stamp = now
            self._frame_end = None
            self._tag_epoch += 1
        if was_flow_empty:
            self._advance_potential(now)
            self._set_head_tags(state, True)

    def _select_flow(self, now):
        self._advance_potential(now)
        return self._flows[self._heads.peek_item()]

    def _on_dequeued(self, state, packet, now):
        heads = self._heads
        if heads.peek_item() == state.flow_id:
            # Served flow is the finish-tag heap top: re-key in place.
            if state.queue:
                start = state.finish_tag  # Q != 0: S = F
                state.start_tag = start
                finish = start + state.queue[0].length * self._inv_rate(state)
                state.finish_tag = finish
                heads.replace_top(state.flow_id, (finish, state.index))
                self._starts.update(state.flow_id, start)
            else:
                heads.pop()
                self._starts.remove(state.flow_id)
        else:  # subclass with a different selection policy
            heads.remove(state.flow_id)
            self._starts.remove(state.flow_id)
            if state.queue:
                self._set_head_tags(state, False)

    def _make_record(self, state, packet, now, finish):
        return ScheduledPacket(packet, now, finish,
                               virtual_start=state.start_tag,
                               virtual_finish=state.finish_tag)

    def potential(self):
        """Current system potential (for tests)."""
        return self._potential

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Keep start tags, rebase finish tags and re-key the finish heap.
        # The frame is derived from the (changed) minimum rate: drop the
        # cached boundary so the next potential advance re-derives it.
        heads = self._heads
        for state in self._flows.values():
            if not state.queue:
                continue
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            heads.update(state.flow_id, (finish, state.index))
        self._frame_end = None

    def _on_packet_evicted(self, state, packet, index, now):
        if index != 0:
            return
        if state.queue:
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            self._heads.update(state.flow_id, (finish, state.index))
        else:
            state.finish_tag = state.start_tag
            self._heads.discard(state.flow_id)
            self._starts.discard(state.flow_id)

    def _snapshot_extra(self):
        return {
            "potential": self._potential,
            "stamp": self._stamp,
            "frame_end": self._frame_end,
            "heads": self._heads.snapshot(),
            "starts": self._starts.snapshot(),
        }

    def _restore_extra(self, extra, uid_map):
        self._potential = extra["potential"]
        self._stamp = extra["stamp"]
        self._frame_end = extra["frame_end"]
        self._heads.restore(extra["heads"])
        self._starts.restore(extra["starts"])
