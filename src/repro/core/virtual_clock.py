"""Virtual Clock (Lixia Zhang, SIGCOMM '90).

Each flow runs a private clock at its reserved rate: packet tags are

    VC_i = max(VC_i + L / r_i, real arrival time)

and the server transmits in increasing tag order.  Virtual Clock provides
the same *delay bound* as WFQ for leaky-bucket traffic, but it is **not
fair**: a flow that idles keeps its old clock, so on return it can either
monopolise the link (clock far behind real time after the ``max``) or — in
the unsynchronised variant without the ``max`` — be starved while it pays
back service it never received.  It is included as the classic example that
*bounded delay does not imply fairness*, the distinction the paper's WFI
machinery makes precise.
"""

from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.dstruct.heap import IndexedHeap

__all__ = ["VirtualClockScheduler"]


class VirtualClockScheduler(PacketScheduler):
    """Virtual Clock: per-flow clocks paced at the guaranteed rate.

    Tags are assigned per packet at arrival (the flow clock advances by
    ``L / r_i`` per packet, floored at real time), and service is in
    increasing tag order.
    """

    name = "VirtualClock"

    def __init__(self, rate):
        super().__init__(rate)
        self._heads = IndexedHeap()   # backlogged flows keyed by head tag
        self._tags = {}               # packet uid -> (start, finish) tags

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        # auxVC update: the flow's clock never lags real time.  (No busy-
        # period epoch here — Virtual Clock's whole pathology is that flow
        # clocks persist across idle periods.)
        start = max(state.finish_tag, now)
        finish = start + packet.length * self._inv_rate(state)
        state.finish_tag = finish
        self._tags[packet.uid] = (start, finish)
        if was_flow_empty:
            self._heads.push(state.flow_id, (finish, state.index))

    def _select_flow(self, now):
        return self._flows[self._heads.peek_item()]

    def _on_dequeued(self, state, packet, now):
        self._tags.pop(packet.uid)
        heads = self._heads
        head = state.head()
        if heads.peek_item() == state.flow_id:
            # Served flow is the tag-heap top: re-key in a single sift.
            if head is not None:
                heads.replace_top(
                    state.flow_id, (self._tags[head.uid][1], state.index)
                )
            else:
                heads.pop()
        else:  # subclass with a different selection policy
            heads.remove(state.flow_id)
            if head is not None:
                heads.push(
                    state.flow_id, (self._tags[head.uid][1], state.index)
                )

    def _make_record(self, state, packet, now, finish):
        start_tag, finish_tag = self._tags[packet.uid]
        return ScheduledPacket(packet, now, finish,
                               virtual_start=start_tag,
                               virtual_finish=finish_tag)

    def flow_clock(self, flow_id):
        """Current value of a flow's virtual clock (its last finish tag)."""
        return self._flow(flow_id).finish_tag

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Virtual Clock tags are per *packet*, fixed at arrival.  A rate
        # change replays the VC recurrence over each flow's queued packets
        # under the new rate, anchored at the head's original start (the
        # service baseline); the flow clock becomes the new last finish.
        for state in self._flows.values():
            if not state.queue:
                continue
            inv_rate = self._inv_rate(state)
            tags = self._tags
            finish = tags[state.queue[0].uid][0]  # head's original start
            for queued in state.queue:
                start = finish
                finish = start + queued.length * inv_rate
                tags[queued.uid] = (start, finish)
            state.finish_tag = finish
            self._heads.update(
                state.flow_id, (tags[state.queue[0].uid][1], state.index)
            )

    def _on_packet_evicted(self, state, packet, index, now):
        # Virtual Clock bills the flow clock at arrival and does not
        # refund it on eviction (tags are immutable once assigned) — the
        # pathology the scheduler exists to demonstrate extends naturally
        # to drops.  Only heap membership needs maintenance.
        self._tags.pop(packet.uid)
        if index != 0:
            return
        if state.queue:
            self._heads.update(
                state.flow_id,
                (self._tags[state.queue[0].uid][1], state.index),
            )
        else:
            self._heads.discard(state.flow_id)

    def _snapshot_extra(self):
        return {
            "heads": self._heads.snapshot(),
            "tags": dict(self._tags),
        }

    def _restore_extra(self, extra, uid_map):
        self._heads.restore(extra["heads"])
        self._tags = dict(extra["tags"])
