"""DRR — Deficit Round Robin (Shreedhar & Varghese, SIGCOMM '95).

DRR visits backlogged flows round-robin; each visit adds a per-flow
*quantum* (proportional to its share) to a deficit counter and transmits
head packets while the counter covers them.  O(1) per packet provided every
quantum is at least one maximum packet — but its delay bound and WFI are
frame-sized (O(sum of quanta)), i.e. large.  The paper's related-work section
cites DRR as a low-complexity scheme that "does not address worst-case
fairness"; we include it so the WFI benches can quantify that.

The quantum of flow i is ``quantum_scale * share_i``; ``quantum_scale``
defaults so that the smallest-share flow gets one ``mtu`` per round.
"""

from collections import deque

from repro.core.scheduler import PacketScheduler
from repro.errors import ConfigurationError

__all__ = ["DRRScheduler"]


class DRRScheduler(PacketScheduler):
    """Deficit Round Robin over weighted flows.

    Parameters
    ----------
    rate:
        Link rate (bps); used only for timing the output, not for selection.
    mtu:
        Maximum packet length in bits; the smallest-share flow receives one
        MTU of quantum per round.  Packets longer than their flow's quantum
        are still served (the deficit accumulates over rounds).
    """

    name = "DRR"

    def __init__(self, rate, mtu=12_000):
        super().__init__(rate)
        if mtu <= 0:
            raise ConfigurationError(f"mtu must be positive, got {mtu!r}")
        self.mtu = mtu
        self._active = deque()     # round-robin list of backlogged flow ids
        self._in_round = set()
        self._deficit = {}
        self._current = None       # flow id being drained this visit
        self._min_share = None     # cached so selection stays O(1)

    def _quantum(self, state):
        return self.mtu * state.share / self._min_share

    def _on_flow_added(self, state):
        self._deficit[state.flow_id] = 0
        if self._min_share is None or state.share < self._min_share:
            self._min_share = state.share

    def _on_flow_removed(self, state):
        del self._deficit[state.flow_id]
        if self._flows:
            others = (st.share for st in self._flows.values()
                      if st.flow_id != state.flow_id)
            self._min_share = min(others, default=None)
        else:
            self._min_share = None

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        if state.flow_id not in self._in_round:
            self._active.append(state.flow_id)
            self._in_round.add(state.flow_id)

    def _select_flow(self, now):
        # Continue draining the current flow if its deficit still covers the
        # head packet; otherwise rotate.
        while True:
            if self._current is not None:
                state = self._flows[self._current]
                head = state.head()
                if head is not None and self._deficit[self._current] >= head.length:
                    return state
                # Visit over: empty flows forfeit their deficit.
                if head is None:
                    self._deficit[self._current] = 0
                    self._in_round.discard(self._current)
                else:
                    self._active.append(self._current)
                self._current = None
            flow_id = self._active.popleft()
            state = self._flows[flow_id]
            if not state.queue:
                # Stale entry (flow drained outside a visit).
                self._deficit[flow_id] = 0
                self._in_round.discard(flow_id)
                continue
            self._current = flow_id
            self._deficit[flow_id] += self._quantum(state)

    def _on_dequeued(self, state, packet, now):
        self._deficit[state.flow_id] -= packet.length
        if not state.queue:
            self._deficit[state.flow_id] = 0
            self._in_round.discard(state.flow_id)
            self._current = None

    def deficit_of(self, flow_id):
        """Current deficit counter (bits) of a flow, for tests."""
        return self._deficit[flow_id]

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Quanta are derived per visit from share / min_share; refresh the
        # cached minimum.  Accumulated deficits (service already owed)
        # persist across the change.
        self._min_share = min(
            (st.share for st in self._flows.values()), default=None
        )

    # Eviction needs no hook: _select_flow already skips flows whose
    # queues drained outside a visit (stale round entries).

    def _snapshot_extra(self):
        return {
            "active": list(self._active),
            "in_round": sorted(self._in_round, key=repr),
            "deficit": dict(self._deficit),
            "current": self._current,
            "min_share": self._min_share,
        }

    def _restore_extra(self, extra, uid_map):
        self._active = deque(extra["active"])
        self._in_round = set(extra["in_round"])
        self._deficit = dict(extra["deficit"])
        self._current = extra["current"]
        self._min_share = extra["min_share"]
