"""SCFQ — Self-Clocked Fair Queueing (Golestani, INFOCOM '94).

SCFQ avoids tracking the GPS fluid system entirely: the system virtual time
is simply the *finish tag of the packet currently in service*.  That makes
the virtual time O(1), but — as Section 3.4 of the paper points out — this
virtual time can have slope 0 for long stretches (while a long packet of a
small-share flow is in service), so SCFQ's delay bound is roughly
``sum over j != i of L_j,max / r`` worse than GPS, and its WFI grows with N.
SCFQ is included as the "cheap but loose" baseline.

Tags (per flow, updated at head-of-queue like WF2Q+):

    S_i = max(F_i, V)   on becoming backlogged;  S_i = F_i otherwise
    F_i = S_i + L / r_i

and the service policy is SFF (smallest finish tag, no eligibility test).
"""

from repro.core.scheduler import PacketScheduler, ScheduledPacket
from repro.dstruct.heap import IndexedHeap

__all__ = ["SCFQScheduler"]


class SCFQScheduler(PacketScheduler):
    """One-level Self-Clocked Fair Queueing server."""

    name = "SCFQ"

    def __init__(self, rate):
        super().__init__(rate)
        self._virtual = 0  # finish tag of the packet in (or last in) service
        self._heads = IndexedHeap()  # backlogged flows keyed by finish tag

    def _set_head_tags(self, state, was_flow_empty):
        head = state.head()
        if state.tag_epoch != self._tag_epoch:
            state.start_tag = 0  # lazy busy-period reset
            state.finish_tag = 0
            state.tag_epoch = self._tag_epoch
        if was_flow_empty:
            state.start_tag = max(state.finish_tag, self._virtual)
        else:
            state.start_tag = state.finish_tag
        state.finish_tag = state.start_tag + head.length * self._inv_rate(state)
        self._heads.push_or_update(
            state.flow_id, (state.finish_tag, state.index)
        )

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        # A new busy period starts only once the in-flight packet (if any)
        # has left the link; an arrival during transmission keeps the
        # current virtual time and tags.  Tag clearing is lazy (epoch bump;
        # each flow zeroes its own tags on next read) so the boundary is
        # O(1) instead of O(N).
        if was_idle and now >= self._free_at:
            self._virtual = 0
            self._tag_epoch += 1
        if was_flow_empty:
            self._set_head_tags(state, True)

    def _select_flow(self, now):
        flow_id = self._heads.peek_item()
        return self._flows[flow_id]

    def _on_dequeued(self, state, packet, now):
        # Self-clocking: V jumps to the tag of the packet entering service.
        self._virtual = state.finish_tag
        heads = self._heads
        if heads.peek_item() == state.flow_id:
            # The served flow is the heap top (finish-tag selection), so it
            # can be re-keyed in a single sift.
            if state.queue:
                start = state.finish_tag  # Q != 0: S = F
                state.start_tag = start
                finish = start + state.queue[0].length * self._inv_rate(state)
                state.finish_tag = finish
                heads.replace_top(state.flow_id, (finish, state.index))
            else:
                heads.pop()
        else:  # subclass with a different selection policy
            heads.remove(state.flow_id)
            if state.queue:
                self._set_head_tags(state, False)

    def _make_record(self, state, packet, now, finish):
        return ScheduledPacket(
            packet, now, finish,
            virtual_start=state.start_tag,
            virtual_finish=state.finish_tag,
        )

    def virtual_time(self):
        return self._virtual

    def system_virtual_time(self, now=None):
        return self._virtual

    # ------------------------------------------------------------------
    # Robustness hooks (reconfiguration / eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_reconfigured(self):
        # Keep start tags, rebase finish tags under the new rates and
        # re-key the finish-ordered heap.
        heads = self._heads
        for state in self._flows.values():
            if not state.queue:
                continue
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            heads.update(state.flow_id, (finish, state.index))

    def _on_packet_evicted(self, state, packet, index, now):
        if index != 0:
            return
        if state.queue:
            finish = state.start_tag \
                + state.queue[0].length * self._inv_rate(state)
            state.finish_tag = finish
            self._heads.update(state.flow_id, (finish, state.index))
        else:
            state.finish_tag = state.start_tag
            self._heads.discard(state.flow_id)

    def _snapshot_extra(self):
        return {"virtual": self._virtual, "heads": self._heads.snapshot()}

    def _restore_extra(self, extra, uid_map):
        self._virtual = extra["virtual"]
        self._heads.restore(extra["heads"])
