"""First-In First-Out scheduling — the trivial baseline.

FIFO provides no isolation whatsoever: a burst from one flow delays every
other flow by the full burst length.  It exists here as the degenerate
reference point for the fairness and WFI measurements (its B-WFI is unbounded
as the backlog grows).
"""

from collections import deque

from repro.core.scheduler import PacketScheduler

__all__ = ["FIFOScheduler"]


class FIFOScheduler(PacketScheduler):
    """Serve packets strictly in global arrival order.

    Flow shares are accepted (for interface compatibility) but ignored.
    """

    name = "FIFO"

    def __init__(self, rate):
        super().__init__(rate)
        self._order = deque()

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        self._order.append(packet)

    def _select_flow(self, now):
        packet = self._order.popleft()
        return self._flows[packet.flow_id]

    def _on_flow_removed(self, state):
        # An idle flow has no packets in the global order; nothing to do.
        pass

    # ------------------------------------------------------------------
    # Robustness hooks (eviction / checkpoint)
    # ------------------------------------------------------------------
    def _on_packet_evicted(self, state, packet, index, now):
        # Packets compare by identity, so this removes exactly the victim.
        self._order.remove(packet)

    def _snapshot_extra(self):
        return {"order": [p.uid for p in self._order]}

    def _restore_extra(self, extra, uid_map):
        self._order = deque(uid_map[uid] for uid in extra["order"])
