"""First-In First-Out scheduling — the trivial baseline.

FIFO provides no isolation whatsoever: a burst from one flow delays every
other flow by the full burst length.  It exists here as the degenerate
reference point for the fairness and WFI measurements (its B-WFI is unbounded
as the backlog grows).
"""

from collections import deque

from repro.core.scheduler import (
    BATCH_KERNEL_MIN,
    PacketScheduler,
    ScheduledPacket,
    kernel_sized,
)

__all__ = ["FIFOScheduler"]

_INF = float("inf")


class FIFOScheduler(PacketScheduler):
    """Serve packets strictly in global arrival order.

    Flow shares are accepted (for interface compatibility) but ignored.
    """

    name = "FIFO"

    def __init__(self, rate):
        super().__init__(rate)
        self._order = deque()

    def _on_enqueue(self, state, packet, now, was_flow_empty, was_idle):
        self._order.append(packet)

    def _select_flow(self, now):
        packet = self._order.popleft()
        return self._flows[packet.flow_id]

    def _on_flow_removed(self, state):
        # An idle flow has no packets in the global order; nothing to do.
        pass

    # ------------------------------------------------------------------
    # Batch operations (amortized chunk kernels)
    # ------------------------------------------------------------------
    def enqueue_batch(self, packets, now=None):
        if (self._obs is not None or self._buffer_limits
                or self._shared_limit is not None
                or type(self)._on_enqueue is not FIFOScheduler._on_enqueue
                or not kernel_sized(packets)):
            return PacketScheduler.enqueue_batch(self, packets, now)
        # FIFO has no tags: every admitted packet just joins its flow
        # queue and the global order, so the whole enqueue inlines here.
        # Odd packets (unknown flow, exotic length, time error) flush the
        # hoisted counters and take the exact per-packet path.
        flows = self._flows
        order_append = self._order.append
        backlogged = self._backlogged
        clock = self._clock
        free_at = self._free_at
        backlog = self._backlog_packets
        backlog_bits = self._backlog_bits
        arrivals = enqueues = 0
        accepted = 0
        enqueue = self.enqueue
        for packet in packets:
            t = packet.arrival_time if now is None else now
            if t is None:
                t = clock
            state = flows.get(packet.flow_id)
            length = packet.length
            if (state is None or t < clock
                    or (length <= 0 if type(length) is int
                        else type(length) is not float
                        or not 0.0 < length < _INF)):
                self._clock = clock
                self._free_at = free_at
                self._arrivals += arrivals
                self._enqueues += enqueues
                self._backlog_packets = backlog
                self._backlog_bits = backlog_bits
                arrivals = enqueues = 0
                if enqueue(packet, t):
                    accepted += 1
                clock = self._clock
                free_at = self._free_at
                backlog = self._backlog_packets
                backlog_bits = self._backlog_bits
                continue
            if packet.arrival_time is None:
                packet.arrival_time = t
            clock = t
            arrivals += 1
            queue = state.queue
            if not queue:
                backlogged[packet.flow_id] = True
            queue.append(packet)
            state.bits_queued += length
            if backlog == 0 and t > free_at:
                free_at = t
            backlog += 1
            backlog_bits += length
            enqueues += 1
            order_append(packet)
            accepted += 1
        self._clock = clock
        self._free_at = free_at
        self._arrivals += arrivals
        self._enqueues += enqueues
        self._backlog_packets = backlog
        self._backlog_bits = backlog_bits
        self._count_batch(accepted)
        return accepted

    def dequeue_batch(self, n, now=None):
        if (type(self) is FIFOScheduler and self._obs is None
                and n >= BATCH_KERNEL_MIN):
            return self._dequeue_chunk(n, None, now, [])
        return PacketScheduler.dequeue_batch(self, n, now)

    def drain_until(self, limit, now=None, into=None):
        if type(self) is FIFOScheduler and self._obs is None:
            return self._dequeue_chunk(
                self.drain_chunk, limit, now, [] if into is None else into)
        return PacketScheduler.drain_until(self, limit, now, into)

    def _dequeue_chunk(self, n, limit, now, records):
        """Amortized dequeue: pop the global order, no tags, no dispatch.

        Identical results to repeated :meth:`dequeue` calls; see
        :meth:`WF2QPlusScheduler._dequeue_chunk` for the shared contract
        (``n=None`` unbounded, crossing packet included, appends into
        ``records`` as it goes).
        """
        backlog = self._backlog_packets
        if backlog == 0 or (n is not None and n <= 0):
            self._count_batch(0)
            return records
        clock = self._clock
        if now is None:
            now = clock if clock > self._free_at else self._free_at
        elif now < clock:
            raise ValueError(
                f"dequeue time {now!r} precedes scheduler clock {clock!r}"
            )
        if n is None:
            n = backlog
        flows = self._flows
        backlogged = self._backlogged
        rate = self._rate
        order_popleft = self._order.popleft
        backlog_bits = self._backlog_bits
        append = records.append
        count = 0
        try:
            while count < n and backlog:
                packet = order_popleft()
                state = flows[packet.flow_id]
                queue = state.queue
                queue.popleft()
                length = packet.length
                state.bits_queued -= length
                backlog -= 1
                backlog_bits -= length
                if not queue:
                    del backlogged[packet.flow_id]
                finish = now + length / rate
                append(ScheduledPacket(packet, now, finish))
                count += 1
                clock = now
                now = finish
                if limit is not None and finish >= limit:
                    break
        finally:
            self._clock = clock
            self._free_at = now if count else self._free_at
            self._backlog_packets = backlog
            self._backlog_bits = backlog_bits
            self._dequeues += count
            self._count_batch(count)
        return records

    # ------------------------------------------------------------------
    # Robustness hooks (eviction / checkpoint)
    # ------------------------------------------------------------------
    def _evictable_idle(self, state, now):
        # FIFO keeps no per-flow algorithm state: an idle flow has no
        # packets in the global order and its (ignored) tags cannot
        # influence anything, so idle eviction is always exact.
        return True

    def _on_packet_evicted(self, state, packet, index, now):
        # Packets compare by identity, so this removes exactly the victim.
        self._order.remove(packet)

    def _snapshot_extra(self):
        return {"order": [p.uid for p in self._order]}

    def _restore_extra(self, extra, uid_map):
        self._order = deque(uid_map[uid] for uid in extra["order"])
